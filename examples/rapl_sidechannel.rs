//! The PLATYPUS question (Section VII-B): can software distinguish the
//! *data* a victim processes by reading RAPL? On Intel parts Lipp et al.
//! demonstrated exactly that; this example replays their operand-weight
//! experiment on the simulated Zen 2 machine and shows why the answer is
//! "barely": AMD's RAPL is an event model that never sees bit toggles,
//! and only the thermal/leakage path leaks a whisper.
//!
//! This is a defensive characterization of an already-published attack
//! methodology, reproduced on a simulator.
//!
//! ```sh
//! cargo run --release --example rapl_sidechannel
//! ```

use zen2_ee::experiments::fig10_hamming::{self, Config};
use zen2_ee::prelude::*;

fn main() {
    let cfg = Config { blocks: 60, block_s: 0.15 };

    println!("victim: 256-bit vxorps over secret-dependent operands, all 128 threads\n");
    let r = fig10_hamming::run(&cfg, 0x5EC2E7, KernelClass::VXorps);

    let (ac0, _, ac1) = r.ac_w.means();
    println!("physical (wall) measurement:");
    println!("  mean AC @weight 0: {ac0:7.1} W");
    println!("  mean AC @weight 1: {ac1:7.1} W");
    println!(
        "  separation {:.1} W with{} overlap -> a *physical* attacker wins easily\n",
        ac1 - ac0,
        if r.ac_w.distributions_overlap() { "" } else { "out" }
    );

    let (c0, _, c1) = r.rapl_core0_w.means();
    println!("software (RAPL) measurement:");
    println!("  mean RAPL core0 @weight 0: {c0:9.4} W");
    println!("  mean RAPL core0 @weight 1: {c1:9.4} W");
    println!(
        "  separation {:.4} W ({:.3} % of the reading), distributions {}",
        (c1 - c0).abs(),
        (c1 - c0).abs() / c0 * 100.0,
        if r.rapl_core0_w.distributions_overlap() { "overlap strongly" } else { "separate" }
    );
    println!("  -> the event-based model is data-blind; only indirect thermal effects leak");
    println!("     and \"distinguishing the operand weight from RAPL values on this system");
    println!("     would take substantially more samples compared to a physical measurement\"\n");

    println!("defense notes from the paper:");
    println!("  * RAPL on this system is not accessible to unprivileged users");
    println!("  * model-based telemetry doubles as a side-channel mitigation");
}
