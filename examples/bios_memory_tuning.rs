//! The BIOS-tuning scenario from Section V-D: should an operator pin the
//! I/O-die P-state, and is paying for DDR4-3200 worth it? The example
//! sweeps the same knobs as Fig. 5 and prints the trade-offs, including
//! the counter-intuitive results the paper highlights.
//!
//! ```sh
//! cargo run --release --example bios_memory_tuning
//! ```

use zen2_ee::prelude::*;

fn main() {
    println!("BIOS memory tuning on the simulated EPYC 7502 (NPS4, per-CCD view)\n");
    println!(
        "{:<12} {:<10} {:>12} {:>12} {:>14}",
        "IOD P-state", "DRAM", "1-core GB/s", "4-core GB/s", "latency [ns]"
    );
    for pstate in [IodPstate::P3, IodPstate::P2, IodPstate::P1, IodPstate::P0, IodPstate::Auto] {
        for dram in [DramFreq::Mhz1467, DramFreq::Mhz1600] {
            let mut cfg = SimConfig::epyc_7502_2s();
            cfg.iod_pstate = pstate;
            cfg.dram = dram;
            let sys = System::new(cfg, 11);
            println!(
                "{:<12} {:<10} {:>12.1} {:>12.1} {:>14.1}",
                pstate.to_string(),
                dram.to_string(),
                sys.stream_triad_gbs(1),
                sys.stream_triad_gbs(4),
                sys.dram_latency_ns()
            );
        }
    }

    println!("\nfindings (matching the paper's Section V-D):");
    let auto = System::new(SimConfig::epyc_7502_2s(), 1);
    let pinned = {
        let mut cfg = SimConfig::epyc_7502_2s();
        cfg.iod_pstate = IodPstate::P0;
        System::new(cfg, 1)
    };
    let faster_dram = {
        let mut cfg = SimConfig::epyc_7502_2s();
        cfg.dram = DramFreq::Mhz1600;
        System::new(cfg, 1)
    };
    println!(
        "  * pinning P-state 0 looks safe but costs {:.1} ns of latency vs auto ({:.1} vs {:.1})",
        pinned.dram_latency_ns() - auto.dram_latency_ns(),
        pinned.dram_latency_ns(),
        auto.dram_latency_ns()
    );
    println!(
        "  * DDR4-3200 raises saturated bandwidth only {:.1} GB/s and *worsens* latency by {:.1} ns",
        faster_dram.stream_triad_gbs(4) - auto.stream_triad_gbs(4),
        faster_dram.dram_latency_ns() - auto.dram_latency_ns()
    );
    println!("    (FCLK tops out at 1467 MHz, so the faster DIMMs run asynchronously)");
    println!("  * 'auto' is the right default: coupled clocks beat every pinned setting here");
}
