//! A powertop/lo2s-style monitor: runs a scripted scenario while sampling
//! the machine once per interval, then dumps the event timeline the
//! tracer recorded — the observability workflow the paper's group builds
//! its studies on.
//!
//! ```sh
//! cargo run --release --example powertop
//! ```

use zen2_ee::prelude::*;
use zen2_ee::sim::perf::ThreadCounters;

fn sample_row(sys: &mut System, label: &str, before: &ThreadCounters) -> ThreadCounters {
    let after = sys.counters(ThreadId(0));
    let b = sys.power_breakdown();
    println!(
        "{:>6.2}s {:<26} {:>7.1} W wall {:>7.1} W rapl {:>6.3} GHz {:>6.1} C  {}",
        sys.now_ns() as f64 / 1e9,
        label,
        b.ac_w,
        b.pkg_est_w.iter().sum::<f64>(),
        ThreadCounters::effective_ghz(before, &after, 2.5),
        sys.die_temp_c(SocketId(0)),
        if sys.package_awake(SocketId(0)) { "awake" } else { "PC6" },
    );
    after
}

fn main() {
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 0x70_70);
    sys.set_tracing(true);
    println!(
        "{:>7} {:<26} {:>12} {:>12} {:>10} {:>8}",
        "t", "phase", "wall", "rapl(sum)", "core0", "die"
    );

    let mut prev = sys.counters(ThreadId(0));

    // Phase 1: idle.
    sys.run_for_secs(0.25);
    prev = sample_row(&mut sys, "idle (all C2)", &prev);

    // Phase 2: a single compute job at minimum frequency.
    sys.set_thread_pstate_mhz(ThreadId(0), 1500);
    sys.set_thread_pstate_mhz(ThreadId(1), 1500);
    sys.set_workload(ThreadId(0), KernelClass::Compute, OperandWeight::HALF);
    sys.run_for_secs(0.25);
    prev = sample_row(&mut sys, "1 thread compute @1.5GHz", &prev);

    // Phase 3: raise the frequency mid-flight.
    sys.set_thread_pstate_mhz(ThreadId(0), 2500);
    sys.set_thread_pstate_mhz(ThreadId(1), 2500);
    sys.run_for_secs(0.25);
    prev = sample_row(&mut sys, "1 thread compute @2.5GHz", &prev);

    // Phase 4: fill the machine with FIRESTARTER and watch the throttle.
    for t in 1..128u32 {
        sys.set_workload(ThreadId(t), KernelClass::Firestarter, OperandWeight::HALF);
    }
    sys.set_workload(ThreadId(0), KernelClass::Firestarter, OperandWeight::HALF);
    sys.run_for_secs(0.4);
    prev = sample_row(&mut sys, "FIRESTARTER x128 (throttled)", &prev);

    // Phase 5: back to idle.
    for t in 0..128u32 {
        sys.set_idle(ThreadId(t));
    }
    sys.run_for_secs(0.25);
    let _ = sample_row(&mut sys, "idle again", &prev);

    // The recorded machine-event timeline (condensed).
    let tracer = sys.tracer();
    let records = tracer.records();
    println!("\nevent timeline: {} records; first/last 6:", records.len());
    for r in records.iter().take(6) {
        println!("  {:>12} ns  {:?}", r.at_ns, r.event);
    }
    println!("  ...");
    for r in records.iter().rev().take(6).collect::<Vec<_>>().into_iter().rev() {
        println!("  {:>12} ns  {:?}", r.at_ns, r.event);
    }

    // Frequency timeline of core 0 across the scenario.
    let timeline = tracer.frequency_timeline(CoreId(0));
    println!("\ncore 0 applied-frequency timeline ({} transitions):", timeline.len());
    for (t, mhz) in timeline.iter().take(12) {
        println!("  {:>9.4} s -> {} MHz", *t as f64 / 1e9, mhz);
    }
    if timeline.len() > 12 {
        println!("  ... ({} more)", timeline.len() - 12);
    }

    // Package-sleep accounting over the whole run.
    let asleep = tracer.asleep_ns(SocketId(0), 0, sys.now_ns());
    println!(
        "\nsocket 0 spent {:.0} % of the scenario in PC6",
        asleep as f64 / sys.now_ns() as f64 * 100.0
    );
}
