//! The HPC-operator scenario from the paper's introduction: a well
//! balanced, highly parallel job is only as fast as its slowest core, so
//! hidden frequency mechanisms turn directly into lost throughput or
//! wasted energy.
//!
//! This example walks three pitfalls the paper documents and quantifies
//! them on the simulated machine:
//!
//! 1. mixed frequencies within a CCX (Table I),
//! 2. unused sibling threads left at the default frequency (§V-A),
//! 3. 256-bit SIMD throttling that static "AVX frequency" tables would
//!    have announced but Zen 2 leaves to measurement (§V-E).
//!
//! ```sh
//! cargo run --release --example hpc_job_tuning
//! ```

use zen2_ee::prelude::*;

fn effective(sys: &mut System, ghz_target: &str) -> f64 {
    sys.run_for_secs(0.05);
    let f = sys.effective_core_ghz(CoreId(0));
    println!("    core 0 effective: {f:.3} GHz (intended {ghz_target})");
    f
}

fn main() {
    println!("pitfall 1: mixed frequencies within one CCX");
    {
        let mut sys = System::new(SimConfig::epyc_7502_2s(), 1);
        // The job pins its latency-critical rank to core 0 at 2.2 GHz and
        // lets three throughput ranks run at 2.5 GHz on the same CCX.
        for t in 0..8u32 {
            sys.set_workload(ThreadId(t), KernelClass::BusyWait, OperandWeight::HALF);
            sys.set_thread_pstate_mhz(ThreadId(t), if t < 2 { 2200 } else { 2500 });
        }
        let f = effective(&mut sys, "2.2 GHz");
        println!("    -> the CCX mesh follows the 2.5 GHz neighbors; core 0 is re-derived");
        println!("       through the 1/8-step divider and loses {:.0} MHz\n", (2.2 - f) * 1000.0);
    }

    println!("pitfall 2: unused sibling threads keep their frequency request");
    {
        let mut sys = System::new(SimConfig::epyc_7502_2s(), 2);
        sys.set_workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
        sys.set_thread_pstate_mhz(ThreadId(0), 1500);
        println!("  sibling idle at the default 2.5 GHz request:");
        effective(&mut sys, "1.5 GHz");
        sys.set_thread_pstate_mhz(ThreadId(1), 1500);
        println!("  after lowering the idle sibling's request (the paper's advice):");
        effective(&mut sys, "1.5 GHz");
        println!();
    }

    println!("pitfall 3: wide-SIMD throttling is invisible without measurement");
    {
        let mut sys = System::new(SimConfig::epyc_7502_2s(), 3);
        for t in 0..128u32 {
            sys.set_workload(ThreadId(t), KernelClass::Firestarter, OperandWeight::HALF);
        }
        sys.run_for_secs(0.2);
        sys.preheat();
        sys.run_for_secs(0.1);
        let f = sys.effective_core_ghz(CoreId(0));
        let slowdown = (2.5 - f) / 2.5 * 100.0;
        println!("    FMA-heavy job at nominal 2.5 GHz actually runs {f:.3} GHz");
        println!("    ({slowdown:.0} % below nominal — every balanced rank waits for this)");
        println!(
            "    RAPL-visible package power: {:.1} W (PPT target 170 W)",
            sys.power_breakdown().pkg_est_w[0]
        );
        println!("    paper's advice: monitor frequencies; no static table exists on Rome");
    }
}
