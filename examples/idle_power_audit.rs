//! The datacenter idle-power audit from Section VI: how C-state
//! management decisions change the power bill of an idle node, including
//! the two Rome-specific traps the paper warns about.
//!
//! ```sh
//! cargo run --release --example idle_power_audit
//! ```

use zen2_ee::prelude::*;

fn measure(sys: &mut System, label: &str) -> f64 {
    sys.run_for_secs(0.1);
    let t0 = sys.now_ns();
    sys.run_for_secs(0.5);
    let w = sys.trace_mean_w(t0, sys.now_ns());
    println!("  {label:<52} {w:7.1} W");
    w
}

fn main() {
    println!("idle-power audit of the simulated 2x EPYC 7502 node\n");

    let mut sys = System::new(SimConfig::epyc_7502_2s(), 7);
    let floor = measure(&mut sys, "all 128 threads idle in C2 (package C6 reached)");

    // Trap 1: disabling deep C-states "for latency".
    let numbering = sys.numbering().clone();
    for cpu in 0..128u32 {
        sys.set_cstate_enabled(numbering.thread_of(LogicalCpu(cpu)), 2, false);
    }
    let all_c1 = measure(&mut sys, "C2 disabled everywhere (all threads in C1)");
    for cpu in 0..128u32 {
        sys.set_cstate_enabled(numbering.thread_of(LogicalCpu(cpu)), 2, true);
    }
    println!(
        "    -> cost of shallow idle: {:+.1} W, dominated by the lost package C6\n",
        all_c1 - floor
    );

    // Trap 2: a single busy housekeeping thread on an otherwise idle node.
    sys.set_workload(ThreadId(0), KernelClass::Poll, OperandWeight::HALF);
    let one_poll = measure(&mut sys, "one POLL loop (cpuidle states disabled on one cpu)");
    sys.set_idle(ThreadId(0));
    println!("    -> one non-idle thread costs {:+.1} W on this machine\n", one_poll - floor);

    // Trap 3 (Section VI-B): offlining sibling threads to "help" idle
    // power actually destroys it until they are re-onlined.
    for cpu in 64..128u32 {
        sys.set_online(numbering.thread_of(LogicalCpu(cpu)), false);
    }
    let offline = measure(&mut sys, "second hardware threads offlined via sysfs");
    for cpu in 64..128u32 {
        sys.set_online(numbering.thread_of(LogicalCpu(cpu)), true);
    }
    let fixed = measure(&mut sys, "after explicitly re-onlining them");
    println!(
        "    -> the paper \"strongly discourages\" offlining threads on Rome: {:+.1} W\n       while offline, fixed only by re-onlining ({:+.1} W residual)\n",
        offline - floor,
        fixed - floor
    );

    println!(
        "summary: deepest C-states everywhere are worth {:.0} W (~{:.0} %) on this node",
        all_c1 - floor,
        (all_c1 - floor) / all_c1 * 100.0
    );
}
