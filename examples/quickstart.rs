//! Quickstart: boot the paper's test system, watch the idle floor, wake a
//! core, run a workload, and read both the wall meter and RAPL.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use zen2_ee::prelude::*;

fn main() {
    // The paper's machine: 2x AMD EPYC 7502 (64 cores / 128 threads),
    // SMT on, NPS4, DDR4-2933, I/O-die P-state "auto".
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 0xC0FFEE);
    println!("machine: {}", sys.config().topology.describe());
    // The hwloc view (first CCD only, for brevity):
    let tree = zen2_ee::topology::render::lstopo(&sys.config().topology);
    for line in tree.lines().take(10) {
        println!("  {line}");
    }
    println!("  ...");

    // 1. Idle: all threads in C2, both packages in deep sleep (PC6).
    sys.run_for_secs(0.5);
    println!("idle, all C2:            {:6.1} W AC   (paper: 99.1 W)", sys.ac_power_w());

    // 2. A single thread leaving the deepest C-state wakes *both*
    //    packages — the disproportionate first step of Fig. 7.
    sys.set_cstate_enabled(ThreadId(0), 2, false); // thread 0 now idles in C1
    sys.run_for_secs(0.1);
    println!("one thread in C1:        {:6.1} W AC   (paper: 180.3 W)", sys.ac_power_w());
    sys.set_cstate_enabled(ThreadId(0), 2, true);

    // 3. Schedule a busy loop at the minimum frequency and observe the
    //    effective frequency through APERF/MPERF, like `perf stat` does.
    sys.set_workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
    sys.set_thread_pstate_mhz(ThreadId(0), 1500);
    sys.set_thread_pstate_mhz(ThreadId(1), 1500);
    sys.run_for_secs(0.1);
    println!(
        "busy loop @1.5 GHz:      {:6.3} GHz effective",
        sys.effective_core_ghz(CoreId(0))
    );

    // 4. Fill the whole machine with FIRESTARTER: the SMU's telemetry
    //    loop throttles below nominal (Fig. 6) while RAPL reads ~170 W.
    for t in 0..128u32 {
        sys.set_workload(ThreadId(t), KernelClass::Firestarter, OperandWeight::HALF);
        sys.set_thread_pstate_mhz(ThreadId(t), 2500);
    }
    sys.run_for_secs(0.3);
    sys.preheat(); // the paper's 15-minute warm-up, fast-forwarded
    let t0 = sys.now_ns();
    let (rapl_pkg_sum, rapl_core_sum) = sys.measure_rapl_w(1.0);
    let wall = sys.trace_mean_w(t0, sys.now_ns());
    println!("FIRESTARTER, all threads:");
    println!("  effective frequency    {:6.3} GHz  (paper: 2.03 GHz)", sys.effective_core_ghz(CoreId(0)));
    println!("  wall power             {wall:6.1} W    (paper: 509 W)");
    println!("  RAPL package (socket)  {:6.1} W    (paper: 170 W)", rapl_pkg_sum / 2.0);
    println!("  RAPL core sum          {rapl_core_sum:6.1} W");
    println!(
        "  die temperature        {:6.1} C",
        sys.die_temp_c(SocketId(0))
    );
}
