//! Quickstart: boot the paper's test system and drive it with the
//! declarative Scenario/Session API — record timed actions as data,
//! declare observation windows, and read back one typed `Run`.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use zen2_ee::prelude::*;

fn main() {
    // The paper's machine: 2x AMD EPYC 7502 (64 cores / 128 threads),
    // SMT on, NPS4, DDR4-2933, I/O-die P-state "auto".
    let config = SimConfig::epyc_7502_2s();
    println!("machine: {}", config.topology.describe());
    // The hwloc view (first CCD only, for brevity):
    let tree = zen2_ee::topology::render::lstopo(&config.topology);
    for line in tree.lines().take(10) {
        println!("  {line}");
    }
    println!("  ...");

    // One declarative scenario walks the whole story. Each `at(...)`
    // records actions as data; each `probe(...)` declares what to observe
    // and when. Nothing simulates until the scenario runs.
    let mut sc = Scenario::new();

    // 1. Idle: all threads in C2, both packages in deep sleep (PC6).
    sc.probe("idle", Probe::AcTrueMeanW, Window::span_secs(0.1, 0.5));

    // 2. A single thread leaving the deepest C-state wakes *both*
    //    packages — the disproportionate first step of Fig. 7.
    sc.at_secs(0.5).cstate(ThreadId(0), 2, false); // thread 0 now idles in C1
    sc.probe("one_c1", Probe::AcTrueMeanW, Window::span_secs(0.55, 0.65));
    sc.at_secs(0.65).cstate(ThreadId(0), 2, true);

    // 3. Schedule a busy loop at the minimum frequency and observe the
    //    effective frequency at the end of the phase, like `perf stat`.
    sc.at_secs(0.65)
        .workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF)
        .pstate(ThreadId(0), 1500)
        .pstate(ThreadId(1), 1500);
    sc.probe("slow_ghz", Probe::EffectiveGhz(CoreId(0)), Window::at_secs(0.75));

    // 4. Fill the whole machine with FIRESTARTER: the SMU's telemetry
    //    loop throttles below nominal (Fig. 6) while RAPL reads ~170 W.
    let mut at = sc.at_secs(0.75);
    for t in 0..128u32 {
        at = at
            .workload(ThreadId(t), KernelClass::Firestarter, OperandWeight::HALF)
            .pstate(ThreadId(t), 2500);
    }
    sc.at_secs(1.05).preheat(); // the paper's 15-minute warm-up, fast-forwarded
    sc.probe("wall", Probe::AcTrueMeanW, Window::span_secs(1.05, 2.05));
    sc.probe("rapl", Probe::RaplW, Window::span_secs(1.05, 2.05));
    sc.probe("hot_ghz", Probe::EffectiveGhz(CoreId(0)), Window::at_secs(2.05));

    // Scenarios validate against the topology before anything simulates;
    // a Session runs batches of them across a worker pool. One case is
    // the smallest batch.
    let cases = vec![Case::new("quickstart", config, sc, 0xC0FFEE)];
    let run = &Session::new().run(&cases).expect("scenario validates")[0];

    println!("idle, all C2:            {:6.1} W AC   (paper: 99.1 W)", run.watts("idle"));
    println!("one thread in C1:        {:6.1} W AC   (paper: 180.3 W)", run.watts("one_c1"));
    println!("busy loop @1.5 GHz:      {:6.3} GHz effective", run.ghz("slow_ghz"));
    let (rapl_pkg_sum, rapl_core_sum) = run.watts_pair("rapl");
    println!("FIRESTARTER, all threads:");
    println!("  effective frequency    {:6.3} GHz  (paper: 2.03 GHz)", run.ghz("hot_ghz"));
    println!("  wall power             {:6.1} W    (paper: 509 W)", run.watts("wall"));
    println!("  RAPL package (socket)  {:6.1} W    (paper: 170 W)", rapl_pkg_sum / 2.0);
    println!("  RAPL core sum          {rapl_core_sum:6.1} W");
}
