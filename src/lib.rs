//! # zen2-ee — Energy-efficiency aspects of the AMD Zen 2 architecture
//!
//! A full reproduction of Schöne et al., *"Energy Efficiency Aspects of
//! the AMD Zen 2 Architecture"* (IEEE CLUSTER 2021), built as a
//! mechanistic, deterministic simulator of the paper's dual-socket EPYC
//! 7502 test system plus faithful re-implementations of every experiment
//! in the paper's evaluation.
//!
//! ## Quick start
//!
//! Scenarios record timed actions as data, probes declare what to
//! observe, and a session executes `(config, scenario, seed)` cases over
//! a worker pool — the same machinery every experiment module drives:
//!
//! ```
//! use zen2_ee::prelude::*;
//!
//! // The paper's test system: 2x EPYC 7502, SMT on, booted all idle.
//! let config = SimConfig::epyc_7502_2s();
//!
//! // Watch the Fig. 7 idle floor, then put FIRESTARTER on every
//! // hardware thread and watch the EDC/PPT manager pull the cores
//! // below nominal (Fig. 6).
//! let mut sc = Scenario::new();
//! sc.probe("idle", Probe::AcTrueMeanW, Window::span_secs(0.05, 0.25));
//! let mut at = sc.at_secs(0.25);
//! for t in 0..128u32 {
//!     at = at.workload(ThreadId(t), KernelClass::Firestarter, OperandWeight::HALF);
//! }
//! sc.probe("throttled", Probe::EffectiveGhz(CoreId(0)), Window::at_secs(0.35));
//!
//! let cases = vec![Case::new("quickstart", config, sc, 42)];
//! let run = &Session::new().run(&cases).expect("scenario validates")[0];
//! assert!((run.watts("idle") - 99.1).abs() < 1.5); // Fig. 7 idle floor
//! let f = run.ghz("throttled");
//! assert!(f < 2.2, "throttled from the nominal 2.5 GHz to {f:.2} GHz");
//! ```
//!
//! ## Crate map
//!
//! * [`topology`] — the Rome SoC structure (sockets/CCDs/CCXs/cores/SMT).
//! * [`msr`] — Family-17h MSRs: P-state encodings, RAPL counters.
//! * [`isa`] — workload kernels with per-unit activity (FIRESTARTER,
//!   STREAM, pointer chase, the Fig. 9/10 kernel sets).
//! * [`power`] — calibrated true-power models and the LMG670 meter.
//! * [`mem`] — FCLK/UCLK/MEMCLK clock domains, L3/DRAM latency, STREAM
//!   bandwidth.
//! * [`rapl`] — AMD's modeled RAPL with its structural blind spots.
//! * [`sim`] — the event-driven machine: SMU slots and ramps, CCX clock
//!   coupling, C-states and package C6, PPT/EDC control, OS interfaces.
//! * [`experiments`] — one module per paper table/figure with
//!   paper-vs-measured reporting.

pub use zen2_experiments as experiments;
pub use zen2_isa as isa;
pub use zen2_mem as mem;
pub use zen2_msr as msr;
pub use zen2_power as power;
pub use zen2_rapl as rapl;
pub use zen2_sim as sim;
pub use zen2_topology as topology;

/// The most common imports for driving the simulated machine.
pub mod prelude {
    pub use zen2_isa::{KernelClass, OperandWeight, SmtMode};
    pub use zen2_mem::{DramFreq, IodPstate};
    pub use zen2_sim::{
        Axis, Case, CaseDraft, Checkpoint, CheckpointError, CheckpointSpec, EventFilter,
        FreqResidency, GroupedStats, Json, Measurement, Merge, MergeError, OnlineStats, P2Quantile,
        Probe, Run, Scenario, ScenarioError, Session, SessionError, SessionErrorKind, ShardRange,
        SimConfig, Snapshot, SnapshotError, StreamControl, StreamEvent, Sweep, System,
        TransitionStats, Welford, Window,
    };
    pub use zen2_topology::{CoreId, LogicalCpu, SocketId, ThreadId, Topology};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_boots_the_paper_system() {
        let sys = System::new(SimConfig::epyc_7502_2s(), 1);
        assert_eq!(sys.config().topology.num_threads(), 128);
    }
}
