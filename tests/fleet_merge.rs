//! The fleet acceptance guarantee: partitioning a wide-grid experiment
//! into contiguous `--shard-range i/N` slices, running every slice as
//! its own checkpointed run (under varying worker counts), and merging
//! the range checkpoints with `Checkpoint::merge` produces a checkpoint
//! file that is **byte-for-byte identical** to the one a single-process
//! run of the same experiment writes.
//!
//! The battery drives the real experiment modules behind the `fig07`,
//! `fig09`, and `tab1` bins — grouped states, rider cases (fig09's
//! appended idle case) and all — across every partition in
//! shards ∈ {1, 2, 3, 7} × workers ∈ {1, 2, 7}, and then checks the
//! rejection paths: overlapping ranges, gapped ranges, and checkpoints
//! from a different run all fail with their named errors.

use std::path::PathBuf;
use zen2_ee::experiments as exp;
use zen2_ee::prelude::*;

use exp::Scale;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("zen2-fleet-equiv-{tag}-{}", std::process::id()))
}

/// A run of one experiment under a given session and checkpoint spec;
/// returns whether the run completed (a shard slice that does not end
/// the grid reports `None` from the module, i.e. `false` here).
type RunFn<'a> = &'a dyn Fn(&Session, &CheckpointSpec) -> Result<bool, CheckpointError>;

/// The shrunk Fig. 9 grid: the real driver (kernel × placement ×
/// frequency grid plus the appended idle rider case) at a fraction of
/// the quick scale's runtime.
fn fig09_cfg() -> exp::fig09_rapl_quality::Config {
    let mut cfg = exp::fig09_rapl_quality::Config::new(Scale::Quick);
    cfg.duration_s = 0.1;
    cfg.placements = vec![(8, false), (64, true)];
    cfg.freqs_mhz = vec![1500, 2500];
    cfg
}

fn fig09_run(seed: u64) -> impl Fn(&Session, &CheckpointSpec) -> Result<bool, CheckpointError> {
    move |session, spec| {
        exp::fig09_rapl_quality::run_checkpointed(&fig09_cfg(), seed, session, spec)
            .map(|r| r.is_some())
    }
}

/// Runs the full partition battery for one experiment: a clean
/// single-process checkpointed run is the baseline; every shard
/// partition, merged in shard order, must reproduce its file exactly.
fn partition_battery(name: &str, run: RunFn) {
    let clean_path = tmp(&format!("{name}-clean"));
    let complete = run(&Session::new().workers(2), &CheckpointSpec::at(&clean_path))
        .expect("clean run checkpoints");
    assert!(complete, "{name}: clean run completes");
    let clean_bytes = std::fs::read_to_string(&clean_path).expect("clean checkpoint exists");
    let total = Checkpoint::load(&clean_path).expect("clean checkpoint loads").total();

    for shards in [1usize, 2, 3, 7] {
        for workers in [1usize, 2, 7] {
            let context = format!("{name}: {shards} shards, {workers} workers");
            let mut merged: Option<Checkpoint> = None;
            for index in 0..shards {
                let range = ShardRange { index, of: shards };
                let path = tmp(&format!("{name}-{shards}-{workers}-{index}"));
                let spec = CheckpointSpec { shard: Some(range), ..CheckpointSpec::at(&path) };
                let complete = run(&Session::new().workers(workers), &spec)
                    .unwrap_or_else(|e| panic!("{context}, shard {index}: {e}"));
                // Only the 1/1 "partition" is a whole run; a real slice
                // always reports unfinished so the bin never prints.
                assert_eq!(complete, shards == 1, "{context}, shard {index}");
                let (lo, hi) = range.bounds(total);
                if lo == hi {
                    assert!(!path.exists(), "{context}: empty shard {index} wrote a file");
                    continue;
                }
                let shard_ck = Checkpoint::load(&path)
                    .unwrap_or_else(|e| panic!("{context}, shard {index}: {e}"));
                std::fs::remove_file(&path).unwrap();
                assert_eq!(shard_ck.covered(), (lo, hi), "{context}, shard {index}");
                match &mut merged {
                    None => merged = Some(shard_ck),
                    Some(into) => into
                        .merge(&shard_ck)
                        .unwrap_or_else(|e| panic!("{context}, shard {index}: {e}")),
                }
            }
            let merged = merged.expect("at least one shard is non-empty");
            assert!(merged.is_complete(), "{context}: merged covers {:?}", merged.covered());
            let merged_path = tmp(&format!("{name}-{shards}-{workers}-merged"));
            merged.save(&merged_path).expect("merged checkpoint saves");
            let merged_bytes = std::fs::read_to_string(&merged_path).unwrap();
            std::fs::remove_file(&merged_path).unwrap();
            assert_eq!(merged_bytes, clean_bytes, "{context}: merged file differs");
        }
    }
    std::fs::remove_file(&clean_path).unwrap();
}

#[test]
fn fig07_partitions_merge_to_the_single_process_checkpoint() {
    let cfg = exp::fig07_idle_power::Config::new(Scale::Quick);
    partition_battery("fig07", &|session, spec| {
        exp::fig07_idle_power::run_checkpointed(&cfg, 6, session, spec).map(|r| r.is_some())
    });
}

#[test]
fn fig09_partitions_merge_to_the_single_process_checkpoint() {
    // Fig. 9 is the interesting one: its grid carries a rider (the idle
    // case appended past the placement × frequency grid), so merge's
    // rider-ownership rule is on the hook for every partition.
    partition_battery("fig09", &fig09_run(8));
}

#[test]
fn tab1_partitions_merge_to_the_single_process_checkpoint() {
    let cfg = exp::tab1_mixed_freq::Config::new(Scale::Quick);
    partition_battery("tab1", &|session, spec| {
        exp::tab1_mixed_freq::run_checkpointed(&cfg, 2, session, spec).map(|r| r.is_some())
    });
}

#[test]
fn merge_rejects_overlap_gap_and_foreign_shards() {
    // Real shard files from the fig09 driver, cut two different ways.
    let run = fig09_run(8);
    let shard_file = |tag: &str, range: ShardRange| -> PathBuf {
        let path = tmp(&format!("reject-{tag}"));
        let spec = CheckpointSpec { shard: Some(range), ..CheckpointSpec::at(&path) };
        run(&Session::new().workers(2), &spec).expect("shard run checkpoints");
        path
    };
    let thirds: Vec<PathBuf> = (0..3)
        .map(|index| shard_file(&format!("3-{index}"), ShardRange { index, of: 3 }))
        .collect();
    let half = shard_file("2-0", ShardRange { index: 0, of: 2 });
    // A checkpoint from a *different run*: same grid shape, other seed.
    let foreign = {
        let path = tmp("reject-foreign");
        let spec = CheckpointSpec {
            shard: Some(ShardRange { index: 1, of: 3 }),
            ..CheckpointSpec::at(&path)
        };
        fig09_run(9)(&Session::new().workers(2), &spec).expect("foreign shard checkpoints");
        path
    };
    let load = |path: &PathBuf| Checkpoint::load(path).expect("shard file loads");

    // Gap: shards 0/3 and 2/3 leave 1/3's cases unfolded.
    let err = load(&thirds[0]).merge(&load(&thirds[2])).unwrap_err();
    assert!(matches!(err, CheckpointError::RangeGap(_)), "{err}");
    assert!(err.to_string().contains("gap"), "{err}");

    // Overlap: shard 0/3 and shard 0/2 both folded the grid's front.
    let err = load(&thirds[0]).merge(&load(&half)).unwrap_err();
    assert!(matches!(err, CheckpointError::RangeOverlap(_)), "{err}");
    assert!(err.to_string().contains("overlap"), "{err}");

    // Foreign: an adjacent range from a different seed is caught by the
    // grid fingerprint before any state is touched.
    let mut target = load(&thirds[0]);
    let before = target.covered();
    let err = target.merge(&load(&foreign)).unwrap_err();
    assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    assert!(err.to_string().contains("different run"), "{err}");
    assert_eq!(target.covered(), before, "failed merge must not touch the target");

    // And the happy path on the very same files still closes the grid.
    let mut merged = load(&thirds[0]);
    merged.merge(&load(&thirds[1])).expect("adjacent thirds merge");
    merged.merge(&load(&thirds[2])).expect("final third merges");
    assert!(merged.is_complete());
    for path in thirds.iter().chain([&half, &foreign]) {
        std::fs::remove_file(path).unwrap();
    }
}
