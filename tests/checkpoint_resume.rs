//! The checkpoint/resume acceptance guarantee: a sweep interrupted at
//! *any* shard boundary and resumed — under a *different* worker/shard
//! split — produces bit-identical `GroupedStats` / `OnlineStats` state
//! to an uninterrupted run.
//!
//! The interrupt points are exhaustive: for every split in
//! workers ∈ {1, 2, 7} × shard sizes ∈ {1, 5, 64}, the sweep is halted
//! after every shard boundary the split produces, the checkpoint file
//! on disk is reloaded, and the run is finished by a session with a
//! different parallelism. Bit-identity is asserted two ways — structural
//! equality of the accumulators and equality of their exact JSON
//! snapshots.

use std::path::{Path, PathBuf};
use zen2_ee::prelude::*;

/// A 3 × 4 grid of instantaneous power reads — cheap enough to run a
/// few hundred times, rich enough that every cell differs.
fn grid() -> Sweep {
    let mut base = Scenario::new();
    base.probe("ac", Probe::AcPowerW, Window::at(20_000));
    let mut load = Axis::new("busy_threads");
    for n in [1u32, 4, 9] {
        load = load.with(format!("{n}"), move |draft| {
            let mut at = draft.scenario.at(0);
            for t in 0..n {
                at = at.workload(ThreadId(t), KernelClass::BusyWait, OperandWeight::HALF);
            }
        });
    }
    Sweep::new("resume-grid", SimConfig::epyc_7502_2s())
        .scenario(base)
        .seed(0xC0FFEE)
        .axis(load)
        .axis(Axis::param("rep", (0..4).map(f64::from)))
}

/// The shared driver shape of every checkpointed experiment module: a
/// grouped reducer plus one overall accumulator, persisted at each
/// shard boundary per `spec`. Returns `None` when the run halted early.
fn run_grid(
    sweep: &Sweep,
    session: &Session,
    spec: &CheckpointSpec,
) -> Option<(GroupedStats<OnlineStats>, OnlineStats)> {
    let total = sweep.len();
    let mut grouped: GroupedStats<OnlineStats> = GroupedStats::new(sweep, &["busy_threads"]);
    let mut overall = OnlineStats::new();
    let mut start = 0;
    if let Some(checkpoint) = spec.load(sweep, total).expect("checkpoint loads") {
        grouped = checkpoint.grouped("grid", &grouped).expect("grid state restores");
        overall = checkpoint.single("overall").expect("overall state restores");
        start = checkpoint.done();
    }
    let mut saves = 0;
    let delivered = sweep
        .stream_checkpointed(session, start, |event| match event {
            StreamEvent::Run { index, run } => {
                let watts = run.watts("ac");
                grouped.entry(index).push(watts);
                overall.push(watts);
                Ok(StreamControl::Continue)
            }
            StreamEvent::ShardBoundary { next } => spec.on_boundary(&mut saves, || {
                let mut checkpoint = Checkpoint::new(sweep, total, next);
                checkpoint.set_grouped("grid", &grouped);
                checkpoint.set_single("overall", &overall);
                checkpoint
            }),
        })
        .expect("grid scenarios validate");
    (start + delivered == total).then_some((grouped, overall))
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("zen2-resume-equiv-{tag}-{}", std::process::id()))
}

fn assert_bit_identical(
    (grouped, overall): &(GroupedStats<OnlineStats>, OnlineStats),
    baseline: &(GroupedStats<OnlineStats>, OnlineStats),
    context: &str,
) {
    assert_eq!(grouped, &baseline.0, "{context}");
    assert_eq!(overall, &baseline.1, "{context}");
    // Bit-identity, not just comparison equality: the exact snapshots
    // (every f64 rendered with full round-trip precision) must match.
    assert_eq!(grouped.to_json_text(), baseline.0.to_json_text(), "{context}");
    assert_eq!(overall.to_json_text(), baseline.1.to_json_text(), "{context}");
}

#[test]
fn every_shard_boundary_resumes_bit_identically_across_splits() {
    let sweep = grid();
    let total = sweep.len();
    assert_eq!(total, 12);
    let baseline =
        run_grid(&sweep, &Session::new().workers(1).shard_size(1), &CheckpointSpec::none())
            .expect("uninterrupted run completes");

    for workers in [1usize, 2, 7] {
        for shard in [1usize, 5, 64] {
            let group = workers * shard;
            let boundaries = total.div_ceil(group);
            for halt_after in 1..=boundaries {
                let context = format!("workers {workers} shard {shard} halt {halt_after}");
                let path = tmp(&format!("{workers}-{shard}-{halt_after}"));
                let interrupt_spec =
                    CheckpointSpec { halt_after: Some(halt_after), ..CheckpointSpec::at(&path) };
                let first = run_grid(
                    &sweep,
                    &Session::new().workers(workers).shard_size(shard),
                    &interrupt_spec,
                );
                // Halting at the final boundary completes the grid; any
                // earlier boundary leaves it unfinished.
                assert_eq!(first.is_some(), halt_after * group >= total, "{context}");
                // Resume under a *different* split than the one that
                // wrote the checkpoint.
                let resumed = run_grid(
                    &sweep,
                    &Session::new().workers(3).shard_size(2),
                    &CheckpointSpec::resume_from(&path),
                )
                .expect("resumed run completes");
                std::fs::remove_file(&path).unwrap();
                assert_bit_identical(&resumed, &baseline, &context);
            }
        }
    }
}

#[test]
fn a_checkpoint_survives_two_interruptions() {
    // Interrupt, resume, interrupt the resumed run, resume again: the
    // double-resumed result is still bit-identical.
    let sweep = grid();
    let path = tmp("double");
    let spec =
        |halt| CheckpointSpec { halt_after: halt, resume: true, ..CheckpointSpec::at(&path) };
    let baseline =
        run_grid(&sweep, &Session::new().workers(2).shard_size(3), &CheckpointSpec::none())
            .expect("uninterrupted run completes");
    assert!(run_grid(&sweep, &Session::new().workers(1).shard_size(3), &spec(Some(1))).is_none());
    assert!(run_grid(&sweep, &Session::new().workers(2).shard_size(2), &spec(Some(1))).is_none());
    let resumed = run_grid(&sweep, &Session::new().workers(7).shard_size(64), &spec(None))
        .expect("final resume completes");
    std::fs::remove_file(&path).unwrap();
    assert_bit_identical(&resumed, &baseline, "double interruption");
}

#[test]
fn resume_from_a_mismatched_sweep_is_an_error_not_a_panic() {
    let sweep = grid();
    let path = tmp("mismatch");
    let interrupted = run_grid(
        &sweep,
        &Session::new().workers(1).shard_size(5),
        &CheckpointSpec { halt_after: Some(1), ..CheckpointSpec::at(&path) },
    );
    assert!(interrupted.is_none());
    // A sweep with a different grid shape must be rejected up front.
    let reshaped = Sweep::new("resume-grid", SimConfig::epyc_7502_2s())
        .seed(0xC0FFEE)
        .axis(Axis::param("rep", (0..5).map(f64::from)));
    let err = CheckpointSpec::resume_from(&path).load(&reshaped, reshaped.len()).unwrap_err();
    assert!(err.to_string().contains("grid shape"), "{err}");
    // And a rewritten label too.
    let relabeled = grid();
    let relabeled = Sweep::new("other-grid", SimConfig::epyc_7502_2s())
        .seed(0xC0FFEE)
        .axis(relabeled.axes()[0].clone())
        .axis(relabeled.axes()[1].clone());
    let err = CheckpointSpec::resume_from(&path).load(&relabeled, relabeled.len()).unwrap_err();
    assert!(err.to_string().contains("other-grid"), "{err}");
    std::fs::remove_file(Path::new(&path)).unwrap();
}
