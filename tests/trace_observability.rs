//! Integration tests of the lo2s-style event tracer against real machine
//! scenarios.

use zen2_ee::prelude::*;
use zen2_ee::sim::trace::Event;

#[test]
fn throttle_descent_is_visible_in_the_trace() {
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 3001);
    sys.set_tracing(true);
    for t in 0..128u32 {
        sys.set_workload(ThreadId(t), KernelClass::Firestarter, OperandWeight::HALF);
    }
    sys.run_for_secs(0.1);
    // The controller must have stepped the cap down repeatedly...
    let cap_changes: Vec<u32> = sys
        .tracer()
        .records()
        .iter()
        .filter_map(|r| match r.event {
            Event::CapChanged { socket, cap_mhz } if socket == SocketId(0) => Some(cap_mhz),
            _ => None,
        })
        .collect();
    assert!(cap_changes.len() >= 15, "cap changes: {}", cap_changes.len());
    // ...in 25 MHz steps (mostly downward; brief upward corrections while
    // the lagging DVFS transitions catch up are part of the anti-windup).
    for w in cap_changes.windows(2) {
        assert_eq!(w[0].abs_diff(w[1]), 25, "steps must be 25 MHz");
    }
    let down_steps = cap_changes.windows(2).filter(|w| w[1] < w[0]).count();
    assert!(down_steps * 3 >= cap_changes.len() * 2, "descent dominates");
    assert!((2000..=2100).contains(cap_changes.last().unwrap()));
    // And the core's applied-frequency timeline follows the caps.
    let timeline = sys.tracer().frequency_timeline(CoreId(0));
    assert!(timeline.len() >= 15);
    assert_eq!(timeline.last().unwrap().1, *cap_changes.last().unwrap());
}

#[test]
fn fast_path_transitions_are_flagged() {
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 3002);
    sys.set_tracing(true);
    sys.set_workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
    sys.run_for_secs(0.02);
    // 2.5 -> 2.2 -> (quickly) 2.5: the return takes the fast path.
    sys.set_thread_pstate_mhz(ThreadId(1), 2200);
    sys.set_thread_pstate_mhz(ThreadId(0), 2200);
    sys.run_for_secs(0.002);
    sys.set_thread_pstate_mhz(ThreadId(1), 2500);
    sys.set_thread_pstate_mhz(ThreadId(0), 2500);
    sys.run_for_secs(0.002);
    let applied: Vec<(u32, bool)> = sys
        .tracer()
        .records()
        .iter()
        .filter_map(|r| match r.event {
            Event::FreqApplied { core, mhz, fast_path } if core == CoreId(0) => {
                Some((mhz, fast_path))
            }
            _ => None,
        })
        .collect();
    assert_eq!(applied.len(), 2, "{applied:?}");
    assert_eq!(applied[0], (2200, false));
    assert_eq!(applied[1], (2500, true), "the return must be flagged fast-path");
}

#[test]
fn package_sleep_time_accounting_matches_the_scenario() {
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 3003);
    sys.set_tracing(true);
    // 100 ms asleep, 100 ms awake, 100 ms asleep.
    sys.run_for_secs(0.1);
    sys.set_workload(ThreadId(0), KernelClass::Pause, OperandWeight::HALF);
    sys.run_for_secs(0.1);
    sys.set_idle(ThreadId(0));
    sys.run_for_secs(0.1);
    let asleep = sys.tracer().asleep_ns(SocketId(0), 0, sys.now_ns());
    let frac = asleep as f64 / sys.now_ns() as f64;
    assert!((frac - 2.0 / 3.0).abs() < 0.02, "asleep fraction {frac:.3}");
}

#[test]
fn tracing_off_by_default_and_cheap() {
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 3004);
    sys.set_workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
    sys.run_for_secs(0.05);
    assert!(sys.tracer().records().is_empty(), "no records unless enabled");
}
