//! Integration tests of the lo2s-style event tracer, driven through the
//! declarative [`Probe::TraceEvents`] observation (the engine enables the
//! tracer automatically when a scenario carries a trace probe).

use zen2_ee::prelude::*;
use zen2_ee::sim::trace::{Event, Record};

#[test]
fn throttle_descent_is_visible_in_the_trace() {
    let mut sc = Scenario::new();
    let mut at = sc.at(0);
    for t in 0..128u32 {
        at = at.workload(ThreadId(t), KernelClass::Firestarter, OperandWeight::HALF);
    }
    sc.probe(
        "caps",
        Probe::TraceEvents(EventFilter::CapChanged(SocketId(0))),
        Window::span_secs(0.0, 0.1),
    );
    sc.probe("freq", Probe::TraceEvents(EventFilter::Freq(CoreId(0))), Window::span_secs(0.0, 0.1));
    let run = System::new(SimConfig::epyc_7502_2s(), 3001).run_scenario(&sc).unwrap();

    // The controller must have stepped the cap down repeatedly...
    let cap_changes: Vec<u32> = run
        .events("caps")
        .iter()
        .filter_map(|r| match r.event {
            Event::CapChanged { cap_mhz, .. } => Some(cap_mhz),
            _ => None,
        })
        .collect();
    assert!(cap_changes.len() >= 15, "cap changes: {}", cap_changes.len());
    // ...in 25 MHz steps (mostly downward; brief upward corrections while
    // the lagging DVFS transitions catch up are part of the anti-windup).
    for w in cap_changes.windows(2) {
        assert_eq!(w[0].abs_diff(w[1]), 25, "steps must be 25 MHz");
    }
    let down_steps = cap_changes.windows(2).filter(|w| w[1] < w[0]).count();
    assert!(down_steps * 3 >= cap_changes.len() * 2, "descent dominates");
    assert!((2000..=2100).contains(cap_changes.last().unwrap()));
    // And the core's applied-frequency timeline follows the caps.
    let timeline: Vec<u32> = run
        .events("freq")
        .iter()
        .filter_map(|r| match r.event {
            Event::FreqApplied { mhz, .. } => Some(mhz),
            _ => None,
        })
        .collect();
    assert!(timeline.len() >= 15);
    assert_eq!(timeline.last().unwrap(), cap_changes.last().unwrap());
}

#[test]
fn fast_path_transitions_are_flagged() {
    let mut sc = Scenario::new();
    sc.at(0).workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
    // 2.5 -> 2.2 -> (quickly) 2.5: the return takes the fast path.
    sc.at_secs(0.02).pstate(ThreadId(1), 2200).pstate(ThreadId(0), 2200);
    sc.at_secs(0.022).pstate(ThreadId(1), 2500).pstate(ThreadId(0), 2500);
    sc.probe(
        "freq",
        Probe::TraceEvents(EventFilter::Freq(CoreId(0))),
        Window::span_secs(0.0, 0.024),
    );
    let run = System::new(SimConfig::epyc_7502_2s(), 3002).run_scenario(&sc).unwrap();
    let applied: Vec<(u32, bool)> = run
        .events("freq")
        .iter()
        .filter_map(|r| match r.event {
            Event::FreqApplied { mhz, fast_path, .. } => Some((mhz, fast_path)),
            _ => None,
        })
        .collect();
    assert_eq!(applied.len(), 2, "{applied:?}");
    assert_eq!(applied[0], (2200, false));
    assert_eq!(applied[1], (2500, true), "the return must be flagged fast-path");
}

/// Time a socket spends asleep within `[from, to)` according to a
/// [`EventFilter::PackageSleep`] record stream, assuming the stream's
/// first record establishes the baseline state.
fn asleep_ns(records: &[Record], from_ns: u64, to_ns: u64) -> u64 {
    let mut asleep_since: Option<u64> = None;
    let mut total = 0;
    for r in records {
        let Event::PackageSleep { asleep, .. } = r.event else { continue };
        match (asleep, asleep_since) {
            (true, None) => asleep_since = Some(r.at_ns.max(from_ns)),
            (false, Some(since)) => {
                total += r.at_ns.min(to_ns).saturating_sub(since);
                asleep_since = None;
            }
            _ => {}
        }
    }
    if let Some(since) = asleep_since {
        total += to_ns.saturating_sub(since);
    }
    total
}

#[test]
fn package_sleep_time_accounting_matches_the_scenario() {
    // 100 ms asleep, 100 ms awake, 100 ms asleep.
    let mut sc = Scenario::new();
    sc.at_secs(0.1).workload(ThreadId(0), KernelClass::Pause, OperandWeight::HALF);
    sc.at_secs(0.2).idle(ThreadId(0));
    sc.run_until_secs(0.3);
    sc.probe(
        "sleep",
        Probe::TraceEvents(EventFilter::PackageSleep(SocketId(0))),
        Window::span_secs(0.0, 0.3),
    );
    let run = System::new(SimConfig::epyc_7502_2s(), 3003).run_scenario(&sc).unwrap();
    // The auto-enabled tracer records the boot sleep state as a baseline
    // event at t = 0, so the accounting starts from the right state.
    let asleep = asleep_ns(run.events("sleep"), 0, run.end_ns);
    let frac = asleep as f64 / run.end_ns as f64;
    assert!((frac - 2.0 / 3.0).abs() < 0.02, "asleep fraction {frac:.3}");
}

#[test]
fn tracing_off_by_default_and_cheap() {
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 3004);
    sys.set_workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
    sys.run_for_secs(0.05);
    assert!(sys.tracer().records().is_empty(), "no records unless enabled");
}

#[test]
fn scenarios_without_trace_probes_leave_the_tracer_off() {
    let mut sc = Scenario::new();
    sc.probe("ac", Probe::AcTrueMeanW, Window::span_secs(0.0, 0.01));
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 3005);
    sys.run_scenario(&sc).unwrap();
    assert!(!sys.tracer().is_enabled());
    assert!(sys.tracer().records().is_empty());
}

#[test]
fn auto_enabled_tracing_is_restored_after_the_run() {
    // The engine turns the tracer on for a TraceEvents probe; a reused
    // machine must not keep recording (and allocating) forever after.
    let mut sc = Scenario::new();
    sc.at(0).workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
    sc.probe(
        "freq",
        Probe::TraceEvents(EventFilter::Freq(CoreId(0))),
        Window::span_secs(0.0, 0.01),
    );
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 3006);
    sys.run_scenario(&sc).unwrap();
    assert!(!sys.tracer().is_enabled(), "implicit enable must be undone");
    let recorded = sys.tracer().records().len();
    sys.run_for_secs(0.05);
    assert_eq!(sys.tracer().records().len(), recorded, "no recording after the run");

    // An explicit tracing(true) step is the author's choice and stays.
    let mut sc = Scenario::new();
    sc.at(0).tracing(true);
    sc.run_until_secs(0.001);
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 3007);
    sys.run_scenario(&sc).unwrap();
    assert!(sys.tracer().is_enabled());
}
