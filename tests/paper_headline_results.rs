//! End-to-end regression tests: every headline number of the paper, from
//! the public API, at quick scale. Each test corresponds to one row of
//! EXPERIMENTS.md.

use zen2_ee::experiments as e;
use zen2_ee::experiments::Scale;
use zen2_ee::isa::KernelClass;

#[test]
fn fig01_rome_leads_the_green500_x86_field() {
    let summaries = e::fig01_green500::run();
    let rome = summaries.iter().find(|s| s.arch.contains("Rome")).unwrap();
    assert!(rome.max > 5.0);
    for other in summaries.iter().filter(|s| !s.arch.contains("Rome")) {
        assert!(rome.median >= other.median, "{} outranks Rome", other.arch);
    }
}

#[test]
fn fig03_transition_delays_are_uniform_390_to_1390_us() {
    let cfg = e::fig03_transition::Config {
        samples: 1_500,
        ..e::fig03_transition::Config::fig3(Scale::Quick)
    };
    let r = e::fig03_transition::run(&cfg, 1001);
    assert!(r.down.min_us >= 389.0 && r.down.max_us <= 1393.0);
    assert!((r.down.mean_us - 890.0).abs() < 30.0);
    assert!(r.plateau_cv < 0.4, "uniform plateau, CV {}", r.plateau_cv);
}

#[test]
fn sec5b_anomaly_exists_only_for_the_25_22_pair_and_short_waits() {
    let quick = e::fig03_transition::run(&e::fig03_transition::Config::anomaly(Scale::Quick), 1002);
    assert!(quick.up.fast_fraction > 0.05, "instantaneous returns must exist");
    assert!(quick.down.min_us < 250.0, "sub-390 us down-switches must exist");
    let long = e::fig03_transition::run(
        &e::fig03_transition::Config::anomaly_long_waits(Scale::Quick),
        1003,
    );
    assert_eq!(long.up.fast_fraction, 0.0, "the effect disappears with >=5 ms waits");
}

#[test]
fn table1_mixed_frequency_matrix_reproduces() {
    let cfg = e::tab1_mixed_freq::Config { duration_s: 0.4, sample_interval_s: 0.1 };
    let r = e::tab1_mixed_freq::run(&cfg, 1004);
    assert!(r.worst_rel_err < 0.01, "worst cell deviation {:.3}%", r.worst_rel_err * 100.0);
    assert!((e::tab1_mixed_freq::coupling_penalty_ghz(&r) - 0.2).abs() < 0.01);
}

#[test]
fn fig04_l3_latency_matrix_reproduces() {
    let r = e::fig04_l3_latency::run(&e::fig04_l3_latency::Config { repetitions: 2 }, 1005);
    assert!(r.worst_rel_err < 0.04, "worst {:.3}", r.worst_rel_err);
}

#[test]
fn fig05_memory_matrices_reproduce() {
    let r = e::fig05_membw::run(1006);
    assert!(r.worst_bw_rel_err < 0.10, "bandwidth worst {:.3}", r.worst_bw_rel_err);
    assert!(r.worst_lat_rel_err < 0.08, "latency worst {:.3}", r.worst_lat_rel_err);
}

#[test]
fn fig06_firestarter_throttling_reproduces() {
    let cfg =
        e::fig06_firestarter::Config { duration_s: 1.0, sample_interval_s: 0.25, boost: false };
    let r = e::fig06_firestarter::run(&cfg, 1007);
    assert!((r.smt.freq_ghz - 2.03).abs() < 0.05);
    assert!((r.no_smt.freq_ghz - 2.10).abs() < 0.05);
    assert!((r.smt.ac_w - 509.0).abs() < 10.0);
    assert!((r.no_smt.ac_w - 489.0).abs() < 10.0);
    assert!((r.smt.rapl_pkg_w - 170.0).abs() < 5.0);
    assert!((r.smt.ipc - 3.56).abs() < 0.05);
    assert!((r.no_smt.ipc - 3.23).abs() < 0.05);
}

#[test]
fn fig07_idle_staircase_reproduces() {
    let cfg = e::fig07_idle_power::Config {
        duration_s: 0.2,
        thread_counts: vec![1, 2, 64, 128],
        freqs_mhz: vec![2500],
    };
    let r = e::fig07_idle_power::run(&cfg, 1008);
    assert!((r.baseline_w - 99.1).abs() < 1.5);
    let (first, slope) = e::fig07_idle_power::c1_staircase(&r);
    assert!((first - 180.3).abs() < 2.0);
    assert!((slope - 0.09).abs() < 0.02);
}

#[test]
fn fig08_wakeup_latencies_reproduce() {
    let r = e::fig08_wakeup::run(&e::fig08_wakeup::Config { samples: 80 }, 1009);
    let c1 = e::fig08_wakeup::find(&r, 1, 2500, false);
    assert!((c1.median_us - 1.0).abs() < 0.2);
    let c2 = e::fig08_wakeup::find(&r, 2, 2500, false);
    assert!((19.0..27.0).contains(&c2.median_us));
    let remote = e::fig08_wakeup::find(&r, 2, 2500, true);
    assert!((remote.median_us - c2.median_us - 1.0).abs() < 0.4);
}

#[test]
fn fig09_rapl_quality_reproduces() {
    let cfg = e::fig09_rapl_quality::Config {
        duration_s: 0.25,
        placements: vec![(16, false), (64, true)],
        freqs_mhz: vec![1500, 2500],
    };
    let r = e::fig09_rapl_quality::run(&cfg, 1010);
    assert!(r.worst_residual_w > 10.0, "RAPL is not a single function of AC");
    assert!(r.memory_residual_w > 5.0, "memory power is invisible to RAPL");
    for p in r.points.iter().filter(|p| p.workload != "idle") {
        assert!(p.rapl_pkg_w < p.ac_w);
    }
}

#[test]
fn fig10_hamming_weight_reproduces() {
    let cfg = e::fig10_hamming::Config { blocks: 45, block_s: 0.1 };
    let vx = e::fig10_hamming::run(&cfg, 1011, KernelClass::VXorps);
    assert!((vx.ac_w.mean_spread() - 21.0).abs() < 4.0, "AC spread {}", vx.ac_w.mean_spread());
    assert!(!vx.ac_w.distributions_overlap());
    let rel = vx.rapl_core0_w.mean_spread() / zen2_ee::sim::methodology::mean(&vx.rapl_core0_w.w05);
    assert!(rel < 0.005, "RAPL relative spread {rel}");
    let shr = e::fig10_hamming::run(&cfg, 1012, KernelClass::Shr);
    let shr_rel = shr.ac_w.mean_spread() / zen2_ee::sim::methodology::mean(&shr.ac_w.w05);
    assert!(shr_rel < 0.012, "shr AC spread {shr_rel}");
}

#[test]
fn sec5a_sibling_influence_reproduces() {
    let r = e::sec5a_sibling::run(1013);
    for o in &r.observations {
        match o.mode {
            e::sec5a_sibling::SiblingMode::IdleAtMinimum => {
                assert!((o.active_freq_ghz - 1.5).abs() < 0.01)
            }
            _ => assert!((o.active_freq_ghz - 2.5).abs() < 0.01),
        }
    }
}

#[test]
fn sec6b_offline_anomaly_reproduces() {
    let r = e::sec6b_offline::run(1014);
    assert!(r.offline_w > r.baseline_w + 75.0);
    assert!((r.reonline_w - r.baseline_w).abs() < 1.0);
}

#[test]
fn sec7_rapl_updates_every_millisecond() {
    let r = e::sec7_update_rate::run(&e::sec7_update_rate::Config::default(), 1015);
    assert!((r.mean_us - 1000.0).abs() < 60.0);
}
