//! Workspace-level guarantees of the telemetry layer (`zen2-sim::obs`
//! facade + `zen2-obs` sinks): attaching the full sink stack to a
//! session cannot change any result, the JSONL trace it writes is
//! well-formed, and the counters it reports reflect real engine
//! behavior — the prototype LRU cache's eviction policy in particular.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use zen2_ee::prelude::*;
use zen2_obs::{Heartbeat, JsonlSink, MemorySink, Multi, SummarySink};
use zen2_sim::obs::{
    CTR_CACHE_EVICT, CTR_CACHE_HIT, CTR_CACHE_MISS, CTR_CASES_DONE, GAUGE_CACHE_LEN, SPAN_BOOT,
    SPAN_CASE, SPAN_SHARD, SPAN_SWEEP,
};
use zen2_sim::time::MICROSECOND;

/// A 10 × 8 grid: load levels × reps, one instantaneous power read per
/// case — the same shape the sweep-engine acceptance tests use.
fn grid() -> Sweep {
    let mut base = Scenario::new();
    base.probe("ac", Probe::AcPowerW, Window::at(20 * MICROSECOND));
    let mut load = Axis::new("busy_threads");
    for n in 1..=10u32 {
        load = load.with(format!("{n}"), move |draft| {
            let mut at = draft.scenario.at(0);
            for t in 0..n {
                at = at.workload(ThreadId(t), KernelClass::BusyWait, OperandWeight::HALF);
            }
        });
    }
    Sweep::new("obs-grid", SimConfig::epyc_7502_2s())
        .scenario(base)
        .seed(0x0B5)
        .axis(load)
        .axis(Axis::param("rep", (0..8).map(f64::from)))
}

/// Every watt reading of a streamed run of `session`, as exact bits.
fn watt_bits(session: &Session, sweep: &Sweep) -> Vec<u64> {
    let mut bits = Vec::new();
    session
        .run_streaming(sweep.cases(), |_, run| bits.push(run.watts("ac").to_bits()))
        .expect("sweep validates");
    bits
}

/// A scratch path unique to this process (no wall-clock naming: the
/// `no-wallclock` lint covers this file too).
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("zen2-obs-test-{}-{tag}.jsonl", std::process::id()))
}

#[test]
fn results_are_byte_identical_with_the_full_sink_stack_attached() {
    let sweep = grid();
    let reference = watt_bits(&Session::new().workers(1).shard_size(1), &sweep);
    assert_eq!(reference.len(), 80);

    for workers in [1usize, 2, 7] {
        for shard in [1usize, 5, 64] {
            let bare = Session::new().workers(workers).shard_size(shard);
            let plain = watt_bits(&bare, &sweep);

            let trace = scratch(&format!("{workers}-{shard}"));
            let jsonl = Arc::new(JsonlSink::create(&trace).expect("create trace file"));
            let stack = Multi::new(vec![
                jsonl.clone(),
                Arc::new(SummarySink::new()),
                Arc::new(Heartbeat::every_ns(u64::MAX)),
                Arc::new(MemorySink::new()),
            ]);
            let observed_session = bare.recorder(Arc::new(stack));
            let observed = watt_bits(&observed_session, &sweep);
            jsonl.finish().expect("flush trace");
            fs::remove_file(&trace).expect("remove scratch trace");

            assert_eq!(plain, reference, "workers {workers} shard {shard}: bare run drifted");
            assert_eq!(observed, reference, "workers {workers} shard {shard}: telemetry leaked");
        }
    }
}

#[test]
fn jsonl_trace_is_one_wellformed_object_per_line() {
    let sweep = grid();
    let trace = scratch("wellformed");
    let jsonl = Arc::new(JsonlSink::create(&trace).expect("create trace file"));
    let session = Session::new().workers(3).shard_size(4).recorder(jsonl.clone());
    session.run_streaming(sweep.cases(), |_, _| {}).expect("sweep validates");
    jsonl.finish().expect("flush trace");

    let text = fs::read_to_string(&trace).expect("read trace");
    fs::remove_file(&trace).expect("remove scratch trace");
    let mut opens = 0usize;
    let mut closes = 0usize;
    let mut lines = 0usize;
    for line in text.lines() {
        lines += 1;
        let v = Json::parse(line).unwrap_or_else(|e| panic!("line {lines} not JSON ({e}): {line}"));
        let kind = v.get("e").and_then(Json::as_str).expect("every line has a kind");
        v.get("t").and_then(|t| t.as_u64()).expect("every line has a timestamp");
        match kind {
            "span_open" => opens += 1,
            "span_close" => closes += 1,
            _ => {}
        }
    }
    assert!(lines > 80, "a full run leaves a real trace, got {lines} lines");
    assert_eq!(opens, closes, "a completed run closes every span it opens");
}

#[test]
fn prototype_lru_evicts_and_reboots_under_mixed_config_sweeps() {
    // Seven pair-shards cycle six distinct configs through the
    // capacity-4 prototype cache, then bring the first config back: the
    // cache must evict for configs 5 and 6 and again for the return,
    // and the returning config must boot a fresh prototype (7 boots
    // for 6 distinct configs). A final shard of two solo configs
    // exercises the per-case fallback: no prototype, two misses.
    let mut scenario = Scenario::new();
    scenario.probe("ac", Probe::AcPowerW, Window::at(20 * MICROSECOND));
    let config_nr = |i: usize| {
        let mut c = SimConfig::epyc_7502_2s();
        c.controller.deadband_w += i as f64;
        c
    };
    let case = |i: usize, tag: &str| {
        Case::new(format!("mixed/{i}/{tag}"), config_nr(i), scenario.clone(), 1)
    };
    let mut cases = Vec::new();
    for i in [0usize, 1, 2, 3, 4, 5, 0] {
        cases.push(case(i, "a"));
        cases.push(case(i, "b"));
    }
    cases.push(case(6, "solo"));
    cases.push(case(7, "solo"));

    let sink = Arc::new(MemorySink::new());
    let session = Session::new().workers(1).shard_size(2).recorder(sink.clone());
    let n = session.run_streaming(cases, |_, _| {}).expect("cases validate");
    assert_eq!(n, 16);

    // Pair shards all fork their shared prototype; the solo shard
    // cannot, and boots each case from scratch.
    assert_eq!(sink.counter_total(CTR_CACHE_HIT), 14);
    assert_eq!(sink.counter_total(CTR_CACHE_MISS), 2);
    assert_eq!(sink.counter_total(CTR_CASES_DONE), 16);

    // Capacity 4, six distinct shared configs plus one return: three
    // evictions, and the seventh prototype boot is the re-boot of the
    // evicted config 0.
    assert_eq!(sink.counter_total(CTR_CACHE_EVICT), 3);
    let prototype_boots = sink
        .records()
        .iter()
        .filter(|r| match r {
            zen2_obs::Record::SpanOpen { name, attrs, .. } => {
                *name == SPAN_BOOT && attrs.contains(&("prototype", zen2_obs::Value::Bool(true)))
            }
            _ => false,
        })
        .count();
    assert_eq!(prototype_boots, 7, "6 distinct configs + 1 re-boot after eviction");
    assert_eq!(sink.gauge_last(GAUGE_CACHE_LEN), Some(4.0), "cache full at the end");

    // The span stream has the documented shape: one sweep root, a
    // shard per pull, a case per case.
    assert_eq!(sink.span_count(SPAN_SWEEP), 1);
    assert_eq!(sink.span_count(SPAN_SHARD), 8);
    assert_eq!(sink.span_count(SPAN_CASE), 16);
}
