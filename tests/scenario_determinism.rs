//! Determinism guarantees of the declarative scenario machinery: the same
//! `(SimConfig, Scenario, seed)` produces byte-identical [`Run`]s no
//! matter how it is executed — directly, twice, forked from a prototype,
//! or through [`Session`] pools of any worker count.

use zen2_ee::prelude::*;

/// A scenario touching every probe family: workloads, DVFS, C-states,
/// hotplug, pre-heat, counters, RAPL, metered AC and wakeup sampling.
fn rich_scenario() -> Scenario {
    let mut sc = Scenario::new();
    sc.at_secs(0.0)
        .workload(ThreadId(0), KernelClass::Firestarter, OperandWeight::HALF)
        .workload(ThreadId(2), KernelClass::AddPd, OperandWeight(0.8))
        .pstate(ThreadId(4), 1500)
        .cstate(ThreadId(6), 2, false)
        .online(ThreadId(9), false);
    sc.at_secs(0.1).preheat();
    sc.at_secs(0.15).idle(ThreadId(2)).online(ThreadId(9), true);

    sc.probe("ac_true", Probe::AcTrueMeanW, Window::span_secs(0.05, 0.35));
    sc.probe("ac_metered", Probe::AcMeteredW, Window::span_secs(0.05, 0.35));
    sc.probe("meter", Probe::MeterSamples, Window::span_secs(0.05, 0.35));
    sc.probe("rapl", Probe::RaplW, Window::span_secs(0.05, 0.35));
    sc.probe("perf", Probe::CounterDelta(ThreadId(0)), Window::span_secs(0.05, 0.35));
    sc.probe(
        "series",
        Probe::CounterSeries { thread: ThreadId(0), every: 50_000_000 },
        Window::span_secs(0.05, 0.35),
    );
    sc.probe(
        "wakeups",
        Probe::WakeupSamples { caller: ThreadId(0), callee: ThreadId(16), count: 20, gap: 200_000 },
        Window::span_secs(0.36, 0.36 + 20.0 * 0.0002),
    );
    sc.probe("energy", Probe::AcEnergyJ, Window::span_secs(0.0, 0.4));
    sc.probe("ghz", Probe::EffectiveGhz(CoreId(0)), Window::at_secs(0.4));
    sc.probe("pkg", Probe::PkgTrueW(SocketId(0)), Window::at_secs(0.4));
    sc.probe("rapl_core0", Probe::RaplCoreW(CoreId(0)), Window::span_secs(0.05, 0.35));
    sc.probe("l3", Probe::L3LatencyNs(CoreId(0)), Window::at_secs(0.4));
    sc.probe(
        "events",
        Probe::TraceEvents(EventFilter::PackageSleep(SocketId(0))),
        Window::span_secs(0.0, 0.4),
    );
    sc
}

fn cases(n: u64) -> Vec<Case> {
    (0..n)
        .map(|i| {
            Case::new(format!("case{i}"), SimConfig::epyc_7502_2s(), rich_scenario(), 1000 + i)
        })
        .collect()
}

#[test]
fn same_inputs_same_run_twice() {
    let sc = rich_scenario();
    let a = System::new(SimConfig::epyc_7502_2s(), 77).run_scenario(&sc).unwrap();
    let b = System::new(SimConfig::epyc_7502_2s(), 77).run_scenario(&sc).unwrap();
    assert_eq!(a, b);
    // Byte-identical, not merely approximately equal.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn forked_prototype_matches_fresh_boot() {
    let sc = rich_scenario();
    let proto = System::new(SimConfig::epyc_7502_2s(), 0);
    let via_fork = proto.fork(123).run_scenario(&sc).unwrap();
    let via_new = System::new(SimConfig::epyc_7502_2s(), 123).run_scenario(&sc).unwrap();
    assert_eq!(via_fork, via_new);
    assert_eq!(format!("{via_fork:?}"), format!("{via_new:?}"));
}

#[test]
fn session_results_are_independent_of_worker_count() {
    let batch = cases(8);
    let serial = Session::new().workers(1).run(&batch).unwrap();
    let parallel = Session::new().workers(4).run(&batch).unwrap();
    let oversubscribed = Session::new().workers(64).run(&batch).unwrap();
    assert_eq!(serial, parallel);
    assert_eq!(serial, oversubscribed);
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}

#[test]
fn session_boot_reuse_does_not_change_results() {
    let batch = cases(4);
    let reused = Session::new().workers(2).run(&batch).unwrap();
    let cold = Session::new().workers(2).reuse_boots(false).run(&batch).unwrap();
    assert_eq!(reused, cold);
}

#[test]
fn different_seeds_differ() {
    // The stochastic surfaces (meter noise, wakeup jitter) must actually
    // flow from the seed, or the determinism tests above prove nothing.
    let sc = rich_scenario();
    let a = System::new(SimConfig::epyc_7502_2s(), 1).run_scenario(&sc).unwrap();
    let b = System::new(SimConfig::epyc_7502_2s(), 2).run_scenario(&sc).unwrap();
    assert_ne!(a.samples("meter"), b.samples("meter"));
    assert_ne!(a.durations_ns("wakeups"), b.durations_ns("wakeups"));
    // ...while the deterministic physics agree.
    assert_eq!(a.ghz("ghz"), b.ghz("ghz"));
}

#[test]
fn run_scenario_validates_against_live_machine_state() {
    // A machine that already has work scheduled (or threads offlined)
    // before the scenario starts: validation must see that state, not
    // boot defaults.
    let mut busy = System::new(SimConfig::epyc_7502_2s(), 5);
    busy.set_workload(ThreadId(2), KernelClass::BusyWait, OperandWeight::HALF);
    busy.run_for_ns(10_000_000);
    let mut wakeup = Scenario::new();
    wakeup.probe(
        "w",
        Probe::WakeupSamples { caller: ThreadId(0), callee: ThreadId(2), count: 3, gap: 1000 },
        Window::span(0, 3000),
    );
    assert!(busy.run_scenario(&wakeup).is_err(), "busy callee must fail validation");

    let mut offlined = System::new(SimConfig::epyc_7502_2s(), 5);
    offlined.set_online(ThreadId(3), false);
    let mut work = Scenario::new();
    work.at(0).workload(ThreadId(3), KernelClass::BusyWait, OperandWeight::HALF);
    assert!(offlined.run_scenario(&work).is_err(), "offline target must fail validation");
    // Re-onlining it first makes the same scenario valid.
    offlined.set_online(ThreadId(3), true);
    assert!(offlined.run_scenario(&work).is_ok());
}

#[test]
fn validation_rejects_bad_scenarios_before_simulating() {
    let cfg = SimConfig::epyc_7502_2s();

    let mut bad_thread = Scenario::new();
    bad_thread.at(0).idle(ThreadId(500));
    assert!(bad_thread.validate(&cfg).is_err());

    let mut bad_freq = Scenario::new();
    bad_freq.at(0).pstate(ThreadId(0), 1234);
    assert!(bad_freq.validate(&cfg).is_err());

    let mut bad_cstate = Scenario::new();
    bad_cstate.at(0).cstate(ThreadId(0), 6, false);
    assert!(bad_cstate.validate(&cfg).is_err());

    let mut offline_workload = Scenario::new();
    offline_workload.at(0).online(ThreadId(3), false);
    offline_workload.at_secs(0.1).workload(ThreadId(3), KernelClass::BusyWait, OperandWeight::HALF);
    assert!(offline_workload.validate(&cfg).is_err());

    let mut backwards = Scenario::new();
    backwards.probe("w", Probe::AcTrueMeanW, Window::span(100, 50));
    assert!(backwards.validate(&cfg).is_err());

    let mut idle_offline = Scenario::new();
    idle_offline.at(0).online(ThreadId(3), false);
    idle_offline.at_secs(0.1).idle(ThreadId(3));
    assert!(idle_offline.validate(&cfg).is_err());

    let mut duplicate = Scenario::new();
    duplicate.probe("ac", Probe::AcTrueMeanW, Window::span_secs(0.0, 0.1));
    duplicate.probe("ac", Probe::AcMeteredW, Window::span_secs(0.0, 0.1));
    assert!(duplicate.validate(&cfg).is_err());

    // A wakeup probe whose callee is busy (or offlined) at sample time
    // has no latency to measure; the validator must catch it pre-run.
    let mut busy_callee = Scenario::new();
    busy_callee.at(0).workload(ThreadId(2), KernelClass::BusyWait, OperandWeight::HALF);
    busy_callee.probe(
        "w",
        Probe::WakeupSamples { caller: ThreadId(0), callee: ThreadId(2), count: 5, gap: 1000 },
        Window::span(0, 5000),
    );
    assert!(busy_callee.validate(&cfg).is_err());

    // A POLL-latched callee (all C-states disabled while idle, then one
    // re-enabled) keeps spinning at runtime; the validator must model
    // that latch rather than assume re-enabling re-settles the thread.
    let mut poll_latched = Scenario::new();
    poll_latched.at(0).cstate(ThreadId(2), 2, false).cstate(ThreadId(2), 1, false);
    poll_latched.at_secs(0.001).cstate(ThreadId(2), 2, true);
    poll_latched.probe(
        "w",
        Probe::WakeupSamples { caller: ThreadId(0), callee: ThreadId(2), count: 3, gap: 1000 },
        Window::span_secs(0.002, 0.002 + 3.0 * 1e-6),
    );
    assert!(poll_latched.validate(&cfg).is_err());

    // Absurd sampling plans are rejected before they can exhaust memory.
    let mut dense = Scenario::new();
    dense.probe(
        "s",
        Probe::CounterSeries { thread: ThreadId(0), every: 1 },
        Window::span_secs(0.0, 0.3),
    );
    assert!(dense.validate(&cfg).is_err());

    // Streaming-core counts outside [1, machine cores] are rejected (a
    // huge count would wrap the bandwidth model's i32 exponent).
    let mut zero_cores = Scenario::new();
    zero_cores.probe("bw", Probe::StreamTriadGbs(0), Window::at(0));
    assert!(zero_cores.validate(&cfg).is_err());
    let mut too_many_cores = Scenario::new();
    too_many_cores.probe("bw", Probe::StreamTriadGbs(3_000_000_000), Window::at(0));
    assert!(too_many_cores.validate(&cfg).is_err());

    // ...but a callee that goes back to sleep before the window is fine.
    let mut sleeps_again = Scenario::new();
    sleeps_again.at(0).workload(ThreadId(2), KernelClass::BusyWait, OperandWeight::HALF);
    sleeps_again.at_secs(0.01).idle(ThreadId(2));
    sleeps_again.probe(
        "w",
        Probe::WakeupSamples { caller: ThreadId(0), callee: ThreadId(2), count: 5, gap: 1000 },
        Window::span_secs(0.02, 0.02 + 5.0 * 1e-6),
    );
    assert!(sleeps_again.validate(&cfg).is_ok());

    // Errors surface through Session with the case attributed.
    let err = Session::new().run(&[Case::new("broken", cfg, bad_thread, 1)]).unwrap_err();
    assert_eq!(err.case, "broken");
    assert!(matches!(err.kind, SessionErrorKind::InvalidScenario(_)));
}

#[test]
fn inverted_windows_are_rejected_for_every_probe_family() {
    // `Window::span`/`span_secs` happily construct a backwards window;
    // validation must reject it before it can reach probe evaluation as
    // a negative duration.
    let cfg = SimConfig::epyc_7502_2s();
    let probes = [
        Probe::AcTrueMeanW,
        Probe::AcMeteredW,
        Probe::MeterSamples,
        Probe::RaplW,
        Probe::RaplCoreW(CoreId(0)),
        Probe::CounterDelta(ThreadId(0)),
        Probe::AcEnergyJ,
        Probe::TraceEvents(EventFilter::All),
    ];
    for probe in probes {
        let mut sc = Scenario::new();
        sc.probe("w", probe, Window::span(100, 50));
        assert!(
            matches!(sc.validate(&cfg), Err(ScenarioError::NegativeWindow { .. })),
            "{probe:?} must reject an inverted window"
        );
        let mut sc = Scenario::new();
        sc.probe("w", probe, Window::span_secs(0.25, 0.05));
        assert!(sc.validate(&cfg).is_err(), "{probe:?} must reject inverted seconds");
        // ...and the rejection carries the case label through a Session.
        let mut sc = Scenario::new();
        sc.probe("w", probe, Window::span(100, 50));
        let err = Session::new().run(&[Case::new("inverted", cfg.clone(), sc, 1)]).unwrap_err();
        assert_eq!(err.case, "inverted");
    }
}

#[test]
fn mixed_config_batches_never_share_prototypes_across_configs() {
    // Prototype reuse is keyed by structural config identity: a batch
    // mixing two configurations must produce exactly what the same cases
    // produce when booted cold, and what each config's own batch
    // produces.
    let sc = rich_scenario();
    let two_socket = SimConfig::epyc_7502_2s();
    let mut tweaked = two_socket.clone();
    tweaked.power.platform_dc_w += 5.0;
    assert_ne!(two_socket, tweaked);
    let batch = vec![
        Case::new("a0", two_socket.clone(), sc.clone(), 1),
        Case::new("b0", tweaked.clone(), sc.clone(), 1),
        Case::new("a1", two_socket.clone(), sc.clone(), 2),
        Case::new("b1", tweaked.clone(), sc.clone(), 2),
    ];
    let mixed = Session::new().workers(2).run(&batch).unwrap();
    let cold = Session::new().workers(2).reuse_boots(false).run(&batch).unwrap();
    assert_eq!(mixed, cold);
    // The two configs genuinely behave differently, so sharing a booted
    // prototype across them would have been observable.
    assert_ne!(mixed[0].measurements, mixed[1].measurements);
}

/// One newly ported experiment scenario per family (transition, memory,
/// RAPL, mixed-frequency): byte-identical [`Run`]s across worker counts.
#[test]
fn ported_experiment_scenarios_are_worker_count_invariant() {
    use zen2_ee::experiments as e;

    let transition = e::fig03_transition::scenario(
        &e::fig03_transition::Config {
            samples: 30,
            ..e::fig03_transition::Config::fig3(e::Scale::Quick)
        },
        99,
    );
    let memory = e::fig05_membw::cell_scenario();
    let rapl = e::fig09_rapl_quality::point_scenario(
        &e::fig09_rapl_quality::Config {
            duration_s: 0.2,
            placements: vec![(8, false)],
            freqs_mhz: vec![2200],
        },
        KernelClass::AddPd,
        8,
        false,
        2200,
    );
    let mixed_freq = e::tab1_mixed_freq::cell_scenario(
        &e::tab1_mixed_freq::Config { duration_s: 0.2, sample_interval_s: 0.1 },
        2200,
        2500,
    );
    let batch = vec![
        Case::new("transition", SimConfig::epyc_7502_2s(), transition, 1),
        Case::new("memory", SimConfig::epyc_7502_2s(), memory, 2),
        Case::new("rapl", SimConfig::epyc_7502_2s(), rapl, 3),
        Case::new("mixed-freq", SimConfig::epyc_7502_2s(), mixed_freq, 4),
    ];
    let serial = Session::new().workers(1).run(&batch).unwrap();
    let parallel = Session::new().workers(3).run(&batch).unwrap();
    let oversubscribed = Session::new().workers(16).run(&batch).unwrap();
    assert_eq!(serial, parallel);
    assert_eq!(serial, oversubscribed);
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}

/// Streaming sweeps must reduce to *bit-identical* statistics for any
/// worker count and any shard size: the sink sees runs in case order
/// regardless of scheduling, so order-sensitive floating-point
/// accumulation (Welford, P² quantiles, residency histograms) cannot
/// drift with parallelism.
#[test]
fn streamed_sweep_statistics_are_worker_and_shard_invariant() {
    use zen2_sim::time::MILLISECOND;

    let mut base = Scenario::new();
    base.at(0)
        .workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF)
        .pstate(ThreadId(0), 2200)
        .pstate(ThreadId(1), 2200);
    base.at(10 * MILLISECOND).pstate(ThreadId(0), 1500).pstate(ThreadId(1), 1500);
    base.probe("ac", Probe::AcTrueMeanW, Window::span(0, 30 * MILLISECOND));
    base.probe(
        "events",
        Probe::TraceEvents(EventFilter::Freq(CoreId(0))),
        Window::span(0, 30 * MILLISECOND),
    );
    let sweep = Sweep::new("invariance", SimConfig::epyc_7502_2s())
        .scenario(base)
        .seed(99)
        .axis(Axis::param("rep", (0..12).map(f64::from)));

    let reduce = |workers: usize, shard: usize| {
        let mut watts = OnlineStats::new();
        let mut residency = FreqResidency::new();
        let mut transitions = TransitionStats::new();
        let n = sweep
            .stream(&Session::new().workers(workers).shard_size(shard), |_, run| {
                watts.push(run.watts("ac"));
                let records = run.events("events");
                residency.observe(records, 0, 30 * MILLISECOND);
                transitions.observe(records);
            })
            .unwrap();
        assert_eq!(n, 12, "workers {workers} shard {shard}");
        (watts, residency, transitions)
    };

    let baseline = reduce(1, 1);
    for (workers, shard) in [(2, 1), (2, 5), (7, 1), (7, 3), (7, 64), (1, 12)] {
        let other = reduce(workers, shard);
        assert_eq!(baseline, other, "workers {workers} shard {shard}");
    }
}
