//! The sweep engine's acceptance guarantees: a 10^4-case grid streams
//! through `Sweep::stream` with peak resident cases bounded by
//! `workers × shard_size`, and its aggregated statistics are identical
//! to a materialized `Session::run` of the same grid.

use std::cell::Cell;
use zen2_ee::prelude::*;
use zen2_sim::stats::TransitionStats;
use zen2_sim::time::{MICROSECOND, MILLISECOND};

/// A 10^4-point grid: 10 load levels × 1000 seeds, one instantaneous
/// power read per case shortly after the load lands.
fn grid() -> Sweep {
    let mut base = Scenario::new();
    base.probe("ac", Probe::AcPowerW, Window::at(20 * MICROSECOND));
    let mut load = Axis::new("busy_threads");
    for n in 1..=10u32 {
        load = load.with(format!("{n}"), move |draft| {
            let mut at = draft.scenario.at(0);
            for t in 0..n {
                at = at.workload(ThreadId(t), KernelClass::BusyWait, OperandWeight::HALF);
            }
        });
    }
    Sweep::new("grid10k", SimConfig::epyc_7502_2s())
        .scenario(base)
        .seed(0xABCD)
        .axis(load)
        .axis(Axis::param("rep", (0..1000).map(f64::from)))
}

#[test]
fn ten_thousand_case_sweep_has_bounded_residency_and_materialized_identical_stats() {
    let sweep = grid();
    assert_eq!(sweep.len(), 10_000);

    let (workers, shard) = (4, 8);
    let created = Cell::new(0usize);
    let delivered = Cell::new(0usize);
    let peak = Cell::new(0usize);
    let lazy_cases = sweep.cases().inspect(|_| {
        created.set(created.get() + 1);
        peak.set(peak.get().max(created.get() - delivered.get()));
    });

    let mut streamed = OnlineStats::new();
    let session = Session::new().workers(workers).shard_size(shard);
    let n = session
        .run_streaming(lazy_cases, |_, run| {
            delivered.set(delivered.get() + 1);
            streamed.push(run.watts("ac"));
        })
        .unwrap();
    assert_eq!(n, 10_000);
    assert!(
        peak.get() <= workers * shard,
        "peak resident cases {} exceeds workers × shard_size = {}",
        peak.get(),
        workers * shard
    );

    // The same grid, fully materialized through `Session::run`, reduces
    // to bit-identical statistics.
    let cases: Vec<Case> = sweep.cases().collect();
    let runs = Session::new().run(&cases).unwrap();
    let mut materialized = OnlineStats::new();
    for run in &runs {
        materialized.push(run.watts("ac"));
    }
    assert_eq!(streamed, materialized);
    assert_eq!(streamed.count(), 10_000);
    // Sanity on the numbers themselves: a loaded machine draws more
    // than the idle floor and the spread over placements is real.
    assert!(streamed.min() > 90.0);
    assert!(streamed.max() > streamed.min());
}

/// A 10 × 25 grid for grouped-aggregation tests: load levels × seeds,
/// with an instantaneous power read per case.
fn grouped_grid() -> Sweep {
    let mut base = Scenario::new();
    base.probe("ac", Probe::AcPowerW, Window::at(20 * MICROSECOND));
    let mut load = Axis::new("busy_threads");
    for n in 1..=10u32 {
        load = load.with(format!("{n}"), move |draft| {
            let mut at = draft.scenario.at(0);
            for t in 0..n {
                at = at.workload(ThreadId(t), KernelClass::BusyWait, OperandWeight::HALF);
            }
        });
    }
    Sweep::new("grouped", SimConfig::epyc_7502_2s())
        .scenario(base)
        .seed(0x6789)
        .axis(load)
        .axis(Axis::param("rep", (0..25).map(f64::from)))
}

#[test]
fn grouped_stats_are_invariant_across_worker_and_shard_splits() {
    // The per-axis-bucket reduction must be bit-identical for any
    // worker/shard split: same groups, same labels, same statistics.
    let sweep = grouped_grid();
    let reduce = |workers: usize, shard: usize| {
        let mut by_load: GroupedStats<OnlineStats> = GroupedStats::new(&sweep, &["busy_threads"]);
        let session = Session::new().workers(workers).shard_size(shard);
        sweep.stream(&session, |i, run| by_load.entry(i).push(run.watts("ac"))).unwrap();
        by_load
    };
    let reference = reduce(1, 1);
    assert_eq!(reference.len(), 10);
    for (labels, stats) in reference.rows() {
        assert_eq!(labels.len(), 1);
        assert_eq!(stats.count(), 25, "load {labels:?}");
    }
    // More load draws more power, group by group.
    let means: Vec<f64> = reference.rows().map(|(_, s)| s.mean()).collect();
    assert!(means.windows(2).all(|w| w[0] < w[1]), "means not monotone: {means:?}");
    for workers in [1, 2, 7] {
        for shard in [1, 5, 64] {
            assert_eq!(reduce(workers, shard), reference, "workers {workers} shard {shard}");
        }
    }
}

#[test]
fn zero_case_grid_streams_nothing_and_grouped_stats_stay_empty() {
    // An axis with no values empties the whole grid: the stream
    // delivers zero runs and the grouped reducer has no rows.
    let sweep = grouped_grid().axis(Axis::new("empty"));
    assert!(sweep.is_empty());
    let mut grouped: GroupedStats<OnlineStats> = GroupedStats::new(&sweep, &["busy_threads"]);
    let delivered = sweep
        .stream(&Session::new().workers(3).shard_size(4), |i, _| {
            grouped.entry(i);
        })
        .unwrap();
    assert_eq!(delivered, 0);
    assert!(grouped.is_empty());
    assert_eq!(grouped.rows().count(), 0);
    assert_eq!(grouped.get(&["1"]), None);
}

#[test]
fn take_range_never_derives_cases_past_the_shard() {
    // The engine fetches a full workers × shard_size group from the
    // lazy case iterator before looking at what arrived. `skip` bounds
    // only the front of the grid, so a shard handed `skip(start)` would
    // derive — and execute — cases past its range's end; `take_range`
    // bounds the tail too. Counted with the same Cell pattern as the
    // residency test above.
    let sweep = grouped_grid(); // 250 cases
    let session = Session::new().workers(4).shard_size(8); // 32-case group pulls

    // The latent asymmetry, demonstrated: stream from case 10 with the
    // front-bounded iterator and halt at the very first boundary — the
    // engine has already derived a full 32-case group.
    let over_pulled = Cell::new(0usize);
    let front_bounded = sweep.skip(10).inspect(|_| over_pulled.set(over_pulled.get() + 1));
    session
        .run_streaming_checkpointed(10, front_bounded, |event| match event {
            StreamEvent::ShardBoundary { .. } => Ok(StreamControl::Halt),
            _ => Ok(StreamControl::Continue),
        })
        .unwrap();
    assert_eq!(over_pulled.get(), 32, "skip() let the engine pull a whole group");

    // take_range derives exactly the shard's ten cases — the group pull
    // stops at the slice's end — and delivers them with global indices.
    let created = Cell::new(0usize);
    let bounded = sweep.take_range(10, 10).inspect(|_| created.set(created.get() + 1));
    let mut indices = Vec::new();
    let mut boundaries = Vec::new();
    let delivered = session
        .run_streaming_checkpointed(10, bounded, |event| {
            match event {
                StreamEvent::Run { index, .. } => indices.push(index),
                StreamEvent::ShardBoundary { next } => boundaries.push(next),
            }
            Ok(StreamControl::Continue)
        })
        .unwrap();
    assert_eq!(created.get(), 10);
    assert_eq!(delivered, 10);
    assert_eq!(indices, (10..20).collect::<Vec<_>>());
    assert_eq!(boundaries, [20]);

    // Both ends clamp to the grid.
    assert_eq!(sweep.take_range(245, 32).count(), 5);
    assert_eq!(sweep.take_range(260, 4).count(), 0);
}

/// A small sweep whose scenario switches frequencies, so the trace
/// reductions have transitions and residencies to chew on.
fn dvfs_sweep() -> Sweep {
    let mut base = Scenario::new();
    base.at(0)
        .workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF)
        .pstate(ThreadId(0), 2200)
        .pstate(ThreadId(1), 2200);
    base.at(20 * MILLISECOND).pstate(ThreadId(0), 1500).pstate(ThreadId(1), 1500);
    base.probe(
        "freq_events",
        Probe::TraceEvents(EventFilter::Freq(CoreId(0))),
        Window::span(0, 50 * MILLISECOND),
    );
    Sweep::new("dvfs", SimConfig::epyc_7502_2s())
        .scenario(base)
        .seed(7)
        .axis(Axis::param("rep", (0..6).map(f64::from)))
}

#[test]
fn trace_reductions_accumulate_over_a_streamed_sweep() {
    let sweep = dvfs_sweep();
    let mut residency = FreqResidency::new();
    let mut transitions = TransitionStats::new();
    let session = Session::new().workers(2).shard_size(2);
    let n = sweep
        .stream(&session, |_, run| {
            let records = run.events("freq_events");
            residency.observe(records, 0, 50 * MILLISECOND);
            transitions.observe(records);
        })
        .unwrap();
    assert_eq!(n, 6);

    // Every run contributes its full window to the histogram.
    assert_eq!(residency.total_ns(), 6 * 50 * MILLISECOND);
    // The 2200 → 1500 switch lands at 20 ms + SMU grant/ramp, so the
    // core spends roughly 20/50 of the window at 2200 and the rest at
    // 1500 (the lead-in before the first application is unknown).
    assert!(residency.residency()[&2200] > residency.unknown_ns());
    assert!(residency.residency()[&1500] > residency.residency()[&2200]);
    assert!((residency.share(1500) - 0.6).abs() < 0.05, "share {}", residency.share(1500));

    // Two completed transitions per run (boot → 2200, 2200 → 1500),
    // each granted at a 1 ms SMU slot and ramped in well under 2 ms.
    assert_eq!(transitions.completed(), 12);
    assert_eq!(transitions.latency_ns().count(), 12);
    assert!(transitions.latency_ns().max() < 2.0 * MILLISECOND as f64);

    // The reductions are worker- and shard-invariant, bit for bit.
    let mut invariant = FreqResidency::new();
    let mut invariant_tr = TransitionStats::new();
    sweep
        .stream(&Session::new().workers(7).shard_size(1), |_, run| {
            let records = run.events("freq_events");
            invariant.observe(records, 0, 50 * MILLISECOND);
            invariant_tr.observe(records);
        })
        .unwrap();
    assert_eq!(residency, invariant);
    assert_eq!(transitions, invariant_tr);
}
