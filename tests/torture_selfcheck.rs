//! The invariant checker is tested, not just trusted: hand-built
//! violating `Run`s — a residency histogram missing 2 % of the window,
//! a non-monotone trace, power outside the envelope — must each trip
//! exactly their own invariant, a hand-built clean run must pass, and
//! structurally broken runs must be called malformed.

use zen2_ee::prelude::*;
use zen2_ee::sim::time::MILLISECOND;
use zen2_ee::sim::torture::{check_case, generate_case, inject_fault, Fault, Invariants};
use zen2_ee::sim::trace::{Event, Record};

const END: u64 = 100 * MILLISECOND;

/// A two-probe scenario (the all-events and per-core trace streams the
/// residency cross-check keys on) whose measurements this suite builds
/// by hand instead of running a machine.
fn scenario() -> Scenario {
    let mut sc = Scenario::new();
    sc.probe("ev-all", Probe::TraceEvents(EventFilter::All), Window::span(0, END));
    sc.probe("ev-core", Probe::TraceEvents(EventFilter::Freq(CoreId(0))), Window::span(0, END));
    sc
}

/// A hand-built run for [`scenario`]: `end_ns == END` (offset 0), a
/// mid-envelope closing power, and the two event streams as given.
fn run(all: Vec<Record>, core: Vec<Record>) -> Run {
    Run {
        seed: 7,
        end_ns: END,
        final_ac_w: 250.0,
        measurements: vec![
            ("ev-all".to_string(), Measurement::Events(all)),
            ("ev-core".to_string(), Measurement::Events(core)),
        ],
    }
}

fn checker() -> Invariants {
    Invariants::for_config(&SimConfig::epyc_7502_2s())
}

fn applied(at_ns: u64, mhz: u32) -> Record {
    Record { at_ns, event: Event::FreqApplied { core: CoreId(0), mhz, fast_path: false } }
}

fn sleep(at_ns: u64, asleep: bool) -> Record {
    Record { at_ns, event: Event::PackageSleep { socket: SocketId(0), asleep } }
}

#[test]
fn hand_built_clean_run_passes() {
    let violations = checker().check(&scenario(), &run(vec![], vec![]));
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn residency_missing_two_percent_trips_exactly_residency() {
    // The all-events stream says core 0 switched to 2500 MHz at 98 % of
    // the window; the per-core stream never saw it. The two histograms
    // disagree on the final 2 % — residency no longer sums to 1
    // consistently across filters.
    let switch = applied(END / 50 * 49, 2500);
    let violations = checker().check(&scenario(), &run(vec![switch], vec![]));
    assert!(!violations.is_empty(), "a 2 % residency hole must trip");
    assert!(
        violations.iter().all(|v| v.kind() == "residency"),
        "only residency may trip: {violations:?}"
    );
}

#[test]
fn non_monotone_trace_trips_exactly_trace() {
    // Package-sleep records running backwards in time. (Sleep events,
    // not frequency events, so the residency cross-filter stays blind
    // to them and only the timestamp discipline is at stake.)
    let violations = checker().check(
        &scenario(),
        &run(vec![sleep(50 * MILLISECOND, true), sleep(40 * MILLISECOND, false)], vec![]),
    );
    assert!(!violations.is_empty(), "a backwards trace must trip");
    assert!(violations.iter().all(|v| v.kind() == "trace"), "only trace may trip: {violations:?}");
}

#[test]
fn out_of_envelope_power_trips_exactly_power() {
    let mut bad = run(vec![], vec![]);
    bad.final_ac_w = 20.0; // far below the all-PC6 AC floor
    let violations = checker().check(&scenario(), &bad);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].kind(), "power");
}

#[test]
fn nan_power_trips_power_not_nothing() {
    let mut bad = run(vec![], vec![]);
    bad.final_ac_w = f64::NAN;
    let violations = checker().check(&scenario(), &bad);
    assert!(
        violations.iter().any(|v| v.kind() == "power"),
        "NaN must never satisfy an envelope: {violations:?}"
    );
}

#[test]
fn unmatched_early_apply_is_legal_pairing() {
    // On a monotone stream, matched request→apply pairs are ordered by
    // construction (a time-travelling pair cannot be expressed without
    // also breaking monotonicity, which the trace check owns). What the
    // pairing sweep must NOT flag: an apply with no pending request
    // (applies from throttling or idle-governor moves are unmatched but
    // legal) followed by a normally matched pair.
    let req = Record {
        at_ns: 20 * MILLISECOND,
        event: Event::FreqRequested { core: CoreId(0), target_mhz: 2200 },
    };
    let early_apply = applied(10 * MILLISECOND, 2500);
    let late_apply = applied(30 * MILLISECOND, 2200);
    let all = vec![early_apply.clone(), req, late_apply.clone()];
    let core = vec![early_apply, late_apply];
    let violations = checker().check(&scenario(), &run(all, core));
    assert!(violations.is_empty(), "legal pairing flagged: {violations:?}");
}

#[test]
fn undefined_request_target_trips_exactly_trace() {
    let req = Record {
        at_ns: 20 * MILLISECOND,
        event: Event::FreqRequested { core: CoreId(0), target_mhz: 1234 },
    };
    let violations = checker().check(&scenario(), &run(vec![req], vec![]));
    assert!(!violations.is_empty(), "an undefined P-state request must trip");
    assert!(violations.iter().all(|v| v.kind() == "trace"), "{violations:?}");
}

#[test]
fn super_nominal_apply_trips_exactly_trace() {
    // 2500 MHz nominal; an applied 2600 MHz is beyond the machine.
    let bad = applied(20 * MILLISECOND, 2600);
    let violations = checker().check(&scenario(), &run(vec![bad.clone()], vec![bad]));
    assert!(!violations.is_empty(), "a super-nominal apply must trip");
    assert!(violations.iter().all(|v| v.kind() == "trace"), "{violations:?}");
}

#[test]
fn event_outside_its_window_trips_exactly_trace() {
    let outside = sleep(END + MILLISECOND, true);
    let violations = checker().check(&scenario(), &run(vec![outside], vec![]));
    assert!(!violations.is_empty(), "an out-of-window event must trip");
    assert!(violations.iter().all(|v| v.kind() == "trace"), "{violations:?}");
}

#[test]
fn missing_measurement_is_malformed() {
    let mut bad = run(vec![], vec![]);
    bad.measurements.pop();
    let violations = checker().check(&scenario(), &bad);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].kind(), "malformed");
}

#[test]
fn run_shorter_than_its_scenario_is_malformed() {
    let mut bad = run(vec![], vec![]);
    bad.end_ns = END - 1;
    let violations = checker().check(&scenario(), &bad);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].kind(), "malformed");
}

#[test]
fn injected_faults_on_real_runs_trip_exactly_their_kind() {
    // End-to-end: real generated cases, real runs, one deliberate fault
    // each — the bin's reproducer drill stands on exactly this.
    for (i, fault) in [Fault::Residency, Fault::Trace, Fault::Power].into_iter().enumerate() {
        let case = generate_case(0xC0FFEE, i as u64);
        let mut sys = System::new(case.config.clone(), case.seed);
        let mut run = sys.run_scenario(&case.scenario).expect("generated cases validate");
        assert!(check_case(&case, &run).is_empty(), "clean run must pass");
        inject_fault(&case, &mut run, fault);
        let violations = check_case(&case, &run);
        assert!(!violations.is_empty(), "{fault:?} did not trip");
        assert!(
            violations.iter().all(|v| v.kind() == fault.kind()),
            "{fault:?} tripped foreign invariants: {violations:?}"
        );
    }
}
