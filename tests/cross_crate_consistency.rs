//! Consistency checks that span crates: the same physical quantity read
//! through different interfaces (MSRs, perf counters, meter trace, RAPL
//! reader) must agree.

use zen2_ee::msr::address;
use zen2_ee::prelude::*;
use zen2_ee::rapl::RaplReader;
use zen2_ee::sim::perf::ThreadCounters;

fn loaded_system(seed: u64) -> System {
    let mut sys = System::new(SimConfig::epyc_7502_2s(), seed);
    for t in 0..64u32 {
        sys.set_workload(ThreadId(t), KernelClass::AddPd, OperandWeight::HALF);
    }
    sys.run_for_secs(0.05);
    sys
}

#[test]
fn perf_counters_and_msr_file_tell_the_same_frequency_story() {
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 2001);
    sys.set_workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
    sys.set_thread_pstate_mhz(ThreadId(0), 2200);
    sys.set_thread_pstate_mhz(ThreadId(1), 2200);
    sys.run_for_secs(0.01);
    let before = sys.counters(ThreadId(0));
    sys.run_for_secs(0.5);
    let after = sys.counters(ThreadId(0));
    let via_perf = ThreadCounters::effective_ghz(&before, &after, 2.5);
    let via_sim = sys.effective_core_ghz(CoreId(0));
    assert!((via_perf - via_sim).abs() < 0.02, "perf {via_perf} vs sim {via_sim}");
    // The P-state control MSR carries the request the governor wrote.
    let ctl = sys.msrs().read(ThreadId(0), address::PSTATE_CTL).unwrap();
    assert_eq!(ctl, 1, "2.2 GHz is P-state index 1");
}

#[test]
fn rapl_reader_agrees_with_internal_accounting() {
    let mut sys = loaded_system(2002);
    sys.sync_rapl_msrs();
    let topo = sys.config().topology.clone();
    let mut reader = RaplReader::new(&topo, sys.msrs()).unwrap();
    sys.run_for_secs(1.0);
    sys.sync_rapl_msrs();
    reader.poll(sys.msrs()).unwrap();
    // The reader (wrap-aware, quantized) and the breakdown (exact) agree
    // on mean package power within quantization error.
    let via_reader = reader.package_sum_joules() / 1.0;
    let est_now: f64 = sys.power_breakdown().pkg_est_w.iter().sum();
    assert!(
        (via_reader - est_now).abs() / est_now < 0.02,
        "reader {via_reader:.1} W vs breakdown {est_now:.1} W"
    );
}

#[test]
fn meter_samples_track_the_true_trace_within_instrument_noise() {
    let mut sys = loaded_system(2003);
    let t0 = sys.now_ns();
    sys.run_for_secs(1.0);
    let t1 = sys.now_ns();
    let truth = sys.trace_mean_w(t0, t1);
    let samples = sys.meter_samples(t0, t1);
    assert_eq!(samples.len(), 20, "20 Sa/s for one second");
    let measured: f64 = samples.iter().map(|s| s.watts).sum::<f64>() / samples.len() as f64;
    assert!((measured - truth).abs() < 0.5, "meter {measured:.2} vs truth {truth:.2}");
}

#[test]
fn ac_energy_is_the_integral_of_the_trace() {
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 2004);
    sys.run_for_secs(0.3);
    for t in 0..32u32 {
        sys.set_workload(ThreadId(t), KernelClass::Compute, OperandWeight::HALF);
    }
    sys.run_for_secs(0.3);
    let integral = sys.trace_mean_w(0, sys.now_ns()) * 0.6;
    assert!(
        (sys.ac_energy_j() - integral).abs() < 0.01 * integral,
        "energy {:.1} J vs trace integral {:.1} J",
        sys.ac_energy_j(),
        integral
    );
}

#[test]
fn tsc_is_invariant_while_aperf_halts_in_idle() {
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 2005);
    let before = sys.counters(ThreadId(7));
    sys.run_for_secs(1.0);
    let after = sys.counters(ThreadId(7));
    // TSC runs at the nominal 2.5 GHz regardless of the idle state.
    assert!((after.tsc - before.tsc - 2.5e9).abs() < 1.0);
    // APERF sees only the timer-tick blips.
    assert!(after.aperf - before.aperf < 60_000.0);
}

#[test]
fn intel_tooling_faults_on_this_machine() {
    // Reading Intel's package-energy MSR must #GP, as it does on Rome.
    let sys = System::new(SimConfig::epyc_7502_2s(), 2006);
    let err = sys.msrs().read(ThreadId(0), address::INTEL_PKG_ENERGY_STATUS).unwrap_err();
    assert!(matches!(err, zen2_ee::msr::MsrError::GeneralProtectionFault { .. }));
}

#[test]
fn smt_sibling_shares_the_core_energy_domain() {
    let mut sys = loaded_system(2007);
    sys.run_for_secs(0.2);
    sys.sync_rapl_msrs();
    let a = sys.msrs().read(ThreadId(0), address::CORE_ENERGY_STAT).unwrap();
    let b = sys.msrs().read(ThreadId(1), address::CORE_ENERGY_STAT).unwrap();
    assert_eq!(a, b, "both siblings expose the same per-core counter");
    assert!(a > 0);
}

#[test]
fn package_sleep_state_is_consistent_across_interfaces() {
    let mut sys = System::new(SimConfig::epyc_7502_2s(), 2008);
    sys.run_for_secs(0.1);
    assert!(!sys.package_awake(SocketId(0)));
    assert!((sys.ac_power_w() - 99.1).abs() < 1.5);
    sys.set_workload(ThreadId(127), KernelClass::Pause, OperandWeight::HALF);
    assert!(sys.package_awake(SocketId(0)), "a socket-1 thread wakes socket 0 too");
    assert!(sys.package_awake(SocketId(1)));
    assert!(sys.ac_power_w() > 170.0);
}
