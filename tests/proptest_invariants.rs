//! Property-based invariants over randomized machine schedules: whatever
//! workloads, C-state configurations and frequency requests are applied,
//! physical invariants must hold.

use proptest::prelude::*;
use zen2_ee::prelude::*;

/// A random thread action.
#[derive(Debug, Clone)]
enum Action {
    Work(u32, KernelClass, f64),
    Idle(u32),
    DisableC2(u32),
    EnableC2(u32),
    Offline(u32),
    Online(u32),
    SetFreq(u32, u32),
    Run(u64),
}

fn arb_action() -> impl Strategy<Value = Action> {
    let thread = 0u32..128;
    let kernel = prop::sample::select(vec![
        KernelClass::Pause,
        KernelClass::BusyWait,
        KernelClass::Compute,
        KernelClass::AddPd,
        KernelClass::MemoryRead,
        KernelClass::Firestarter,
        KernelClass::VXorps,
    ]);
    let freq = prop::sample::select(vec![1500u32, 2200, 2500]);
    prop_oneof![
        (thread.clone(), kernel, 0.0..=1.0).prop_map(|(t, k, w)| Action::Work(t, k, w)),
        thread.clone().prop_map(Action::Idle),
        thread.clone().prop_map(Action::DisableC2),
        thread.clone().prop_map(Action::EnableC2),
        thread.clone().prop_map(Action::Offline),
        thread.clone().prop_map(Action::Online),
        (thread, freq).prop_map(|(t, f)| Action::SetFreq(t, f)),
        (100_000u64..20_000_000).prop_map(Action::Run),
    ]
}

fn apply(sys: &mut System, action: &Action) {
    match *action {
        Action::Work(t, k, w) => {
            if sys.thread_state(ThreadId(t)) != zen2_ee::sim::cstate::ThreadState::Offline {
                sys.set_workload(ThreadId(t), k, OperandWeight(w));
            }
        }
        Action::Idle(t) => sys.set_idle(ThreadId(t)),
        Action::DisableC2(t) => sys.set_cstate_enabled(ThreadId(t), 2, false),
        Action::EnableC2(t) => sys.set_cstate_enabled(ThreadId(t), 2, true),
        Action::Offline(t) => sys.set_online(ThreadId(t), false),
        Action::Online(t) => sys.set_online(ThreadId(t), true),
        Action::SetFreq(t, f) => {
            let _ = sys.set_thread_pstate_mhz(ThreadId(t), f);
        }
        Action::Run(ns) => sys.run_for_ns(ns),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// AC power stays within the physical envelope of this machine for
    /// every reachable state, and energy only ever increases.
    #[test]
    fn power_stays_physical(actions in prop::collection::vec(arb_action(), 1..30),
                            seed in 0u64..1000) {
        let mut sys = System::new(SimConfig::epyc_7502_2s(), seed);
        let mut last_energy = 0.0;
        for a in &actions {
            apply(&mut sys, a);
            let w = sys.ac_power_w();
            prop_assert!(w >= 95.0, "below the idle floor: {w}");
            prop_assert!(w <= 700.0, "beyond the PSU envelope: {w}");
            prop_assert!(sys.ac_energy_j() >= last_energy - 1e-9);
            last_energy = sys.ac_energy_j();
        }
    }

    /// Packages sleep iff every thread allows it — through any sequence of
    /// schedule/hotplug/C-state actions.
    #[test]
    fn package_sleep_criterion_holds(actions in prop::collection::vec(arb_action(), 1..30),
                                     seed in 0u64..1000) {
        use zen2_ee::sim::cstate::ThreadState;
        let mut sys = System::new(SimConfig::epyc_7502_2s(), seed);
        for a in &actions {
            apply(&mut sys, a);
            let all_deep = (0..128u32).all(|t| {
                matches!(sys.thread_state(ThreadId(t)), ThreadState::C2)
            });
            let asleep = !sys.package_awake(SocketId(0));
            prop_assert_eq!(asleep, all_deep,
                "asleep={} but all_deep={}", asleep, all_deep);
            // Both sockets always agree (global criterion).
            prop_assert_eq!(sys.package_awake(SocketId(0)), sys.package_awake(SocketId(1)));
        }
    }

    /// Effective core frequencies never exceed the nominal cap and never
    /// fall below the divider floor of the lowest P-state.
    #[test]
    fn frequencies_stay_in_range(actions in prop::collection::vec(arb_action(), 1..30),
                                 seed in 0u64..1000) {
        let mut sys = System::new(SimConfig::epyc_7502_2s(), seed);
        for a in &actions {
            apply(&mut sys, a);
            for c in 0..64u32 {
                let f = sys.effective_core_ghz(CoreId(c));
                prop_assert!(f <= 2.5 + 1e-9, "core {c} at {f} GHz");
                // The divider can pull a 1.5 GHz request at most one step
                // below the request.
                prop_assert!(f >= 1.3, "core {c} at {f} GHz");
            }
        }
    }

    /// Performance counters are monotone and TSC advances exactly with
    /// wall time.
    #[test]
    fn counters_are_monotone(actions in prop::collection::vec(arb_action(), 1..20),
                             seed in 0u64..1000) {
        let mut sys = System::new(SimConfig::epyc_7502_2s(), seed);
        let mut last = (0..128u32).map(|t| sys.counters(ThreadId(t))).collect::<Vec<_>>();
        let mut last_now = sys.now_ns();
        for a in &actions {
            apply(&mut sys, a);
            let dt_s = (sys.now_ns() - last_now) as f64 / 1e9;
            for t in 0..128u32 {
                let c = sys.counters(ThreadId(t));
                let p = &last[t as usize];
                prop_assert!(c.tsc >= p.tsc && c.aperf >= p.aperf && c.mperf >= p.mperf
                    && c.instructions >= p.instructions && c.cycles >= p.cycles);
                // The invariant TSC tracks wall time at the nominal rate.
                prop_assert!((c.tsc - p.tsc - 2.5e9 * dt_s).abs() < 2.0,
                    "thread {} TSC drifted", t);
                last[t as usize] = c;
            }
            last_now = sys.now_ns();
        }
    }

    /// The RAPL estimate never exceeds what the wall sees: the model has
    /// no DRAM, PSU or platform terms.
    #[test]
    fn rapl_is_always_below_the_wall(actions in prop::collection::vec(arb_action(), 1..20),
                                     seed in 0u64..1000) {
        let mut sys = System::new(SimConfig::epyc_7502_2s(), seed);
        for a in &actions {
            apply(&mut sys, a);
            let est: f64 = sys.power_breakdown().pkg_est_w.iter().sum();
            let wall = sys.ac_power_w();
            prop_assert!(est < wall, "estimate {est:.1} W above wall {wall:.1} W");
        }
    }
}
