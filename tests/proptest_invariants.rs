//! Property-based invariants over randomized machine schedules.
//!
//! There is exactly ONE scenario-generation strategy in the tree:
//! `zen2_sim::torture::generate_case`. It subsumes the old ad-hoc
//! `Action` alphabet this suite used to carry — every action kind plus
//! probe attachment and `run_until` boundary shapes (zero-length
//! windows, probes ending exactly at the scenario end, `run_until`
//! below the last step) — so these properties draw `(root, index)`
//! pairs and let the generator build the timeline. The physics
//! invariants themselves live in `torture::Invariants`; this suite
//! checks them on every generated run, plus the machine-internal
//! invariants (package-sleep criterion, RAPL-below-wall) the checker
//! cannot see from a `Run` alone, plus fork/worker invariance and the
//! generator/validator/shrinker contracts.

use proptest::prelude::*;
use zen2_ee::prelude::*;
use zen2_ee::sim::torture::{
    check_case, generate_case, inject_fault, invalid_proposal, shrink_scenario, Fault,
    INVALID_PROPOSALS,
};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Every generated case validates, and its run upholds the full
    /// invariant catalog: residency conservation and filter agreement,
    /// power/energy/frequency envelopes, monotone in-window traces with
    /// request→apply pairing, counter monotonicity, and snapshot
    /// round-trip identity.
    #[test]
    fn generated_runs_uphold_every_invariant(root in 0u64..1000, index in 0u64..10_000) {
        let case = generate_case(root, index);
        prop_assert!(case.scenario.validate(&case.config).is_ok());
        let mut sys = System::new(case.config.clone(), case.seed);
        let run = sys.run_scenario(&case.scenario).expect("validated scenario");
        let violations = check_case(&case, &run);
        prop_assert!(violations.is_empty(), "case ({root}, {index}): {:?}",
            violations.iter().map(|v| v.to_string()).collect::<Vec<_>>());
    }

    /// Machine-internal physics the checker cannot audit from a `Run`:
    /// after any generated schedule, a package sleeps iff every thread
    /// of every package allows it (the global criterion), both sockets
    /// agree, and the RAPL estimate stays below wall power (the model
    /// has no DRAM, PSU, or platform terms).
    #[test]
    fn machine_state_stays_physical_after_any_schedule(root in 0u64..1000,
                                                       index in 0u64..10_000) {
        use zen2_ee::sim::cstate::ThreadState;
        let case = generate_case(root, index);
        let mut sys = System::new(case.config.clone(), case.seed);
        sys.run_scenario(&case.scenario).expect("validated scenario");
        let threads = case.config.topology.num_threads() as u32;
        let sockets = case.config.topology.num_sockets() as u32;
        let all_deep =
            (0..threads).all(|t| matches!(sys.thread_state(ThreadId(t)), ThreadState::C2));
        if case.config.global_package_c6 {
            for s in 0..sockets {
                prop_assert_eq!(!sys.package_awake(SocketId(s)), all_deep, "socket {}", s);
            }
        } else if all_deep {
            for s in 0..sockets {
                prop_assert!(!sys.package_awake(SocketId(s)), "socket {} awake, all deep", s);
            }
        }
        let est: f64 = sys.power_breakdown().pkg_est_w.iter().sum();
        let wall = sys.ac_power_w();
        prop_assert!(est < wall, "estimate {est:.1} W above wall {wall:.1} W");
    }

    /// Fork/worker-count/shard-split invariance: the same generated case
    /// stream produces bit-identical `Run`s through a 1-worker session,
    /// a many-worker small-shard session, and direct `System` execution.
    #[test]
    fn runs_are_invariant_under_worker_and_shard_splits(root in 0u64..1000,
                                                        start in 0u64..10_000) {
        let cases: Vec<_> = (start..start + 5).map(|i| generate_case(root, i)).collect();
        let serial = Session::new().workers(1).run(&cases).expect("valid cases");
        let parallel = Session::new().workers(7).shard_size(2).run(&cases).expect("valid cases");
        prop_assert_eq!(&serial, &parallel, "worker/shard split changed results");
        for (case, from_session) in cases.iter().zip(&serial) {
            let direct = System::new(case.config.clone(), case.seed)
                .run_scenario(&case.scenario)
                .expect("validated scenario");
            prop_assert_eq!(&direct, from_session, "sessionless run diverged");
        }
    }

    /// `Scenario::validate` rejects every invalid timeline the generator
    /// can propose, each with its named error — on top of arbitrary
    /// generated base scenarios, not just hand-picked ones.
    #[test]
    fn validator_rejects_every_invalid_proposal(root in 0u64..1000, index in 0u64..10_000) {
        let case = generate_case(root, index);
        for kind in 0..INVALID_PROPOSALS {
            let (proposal, expected) = invalid_proposal(&case.config, &case.scenario, kind);
            let err = proposal.validate(&case.config);
            prop_assert!(err.is_err(), "proposal {kind} ({expected}) slipped through");
            prop_assert_eq!(
                zen2_ee::sim::torture::error_name(&err.unwrap_err()), expected,
                "proposal {}", kind
            );
        }
    }

    /// The shrinker's output still fails, still validates, and is never
    /// larger than its input — for every fault kind on any case.
    #[test]
    fn shrunk_reproducers_still_fail_and_never_grow(root in 0u64..1000,
                                                    index in 0u64..10_000,
                                                    which in 0u64..3) {
        let fault = [Fault::Residency, Fault::Trace, Fault::Power][which as usize];
        let case = generate_case(root, index);
        let mut fails = |sc: &Scenario| {
            let candidate = Case::new("shrink", case.config.clone(), sc.clone(), case.seed);
            if candidate.scenario.validate(&candidate.config).is_err() {
                return false;
            }
            let mut run = System::new(candidate.config.clone(), candidate.seed)
                .run_scenario(&candidate.scenario)
                .expect("validated scenario");
            inject_fault(&candidate, &mut run, fault);
            check_case(&candidate, &run).iter().any(|v| v.kind() == fault.kind())
        };
        prop_assert!(fails(&case.scenario), "fault {:?} did not trip on the full case", fault);
        let shrunk = shrink_scenario(&case.scenario, &mut fails);
        prop_assert!(fails(&shrunk), "shrunk scenario no longer fails");
        prop_assert!(shrunk.validate(&case.config).is_ok());
        prop_assert!(shrunk.steps().len() <= case.scenario.steps().len());
        prop_assert!(shrunk.probes().len() <= case.scenario.probes().len());
        prop_assert!(shrunk.run_until_ns() <= case.scenario.run_until_ns());
    }
}

/// The generator's boundary-shape coverage, asserted over a block of
/// cases rather than per-case (each shape is probabilistic per case but
/// must appear in any reasonable block): zero-length windows, span
/// probes ending exactly at the scenario end, and all three `run_until`
/// modes — absent, at the end, and *below* the end (steps after
/// `run_until` are legal; it is a minimum, not a cap).
#[test]
fn generator_covers_probe_and_run_until_boundaries() {
    let mut zero_len_at_end = false;
    let mut zero_len_at_start = false;
    let mut span_to_exact_end = false;
    let mut run_until_absent = false;
    let mut run_until_at_end = false;
    let mut run_until_below_end = false;
    for index in 0..200 {
        let case = generate_case(1, index);
        let end = case.scenario.end();
        for p in case.scenario.probes() {
            let w = p.window;
            zero_len_at_end |= w.is_instant() && w.to == end;
            zero_len_at_start |= w.is_instant() && w.from == 0;
            span_to_exact_end |= !w.is_instant() && w.to == end;
        }
        let ru = case.scenario.run_until_ns();
        run_until_absent |= ru == 0;
        run_until_at_end |= ru != 0 && ru == end;
        run_until_below_end |= ru != 0 && ru < end;
    }
    assert!(zero_len_at_end, "no zero-length window at the scenario end");
    assert!(zero_len_at_start, "no zero-length window at t = 0");
    assert!(span_to_exact_end, "no span probe ending exactly at the scenario end");
    assert!(run_until_absent, "run_until never absent");
    assert!(run_until_at_end, "run_until never coincides with the end");
    assert!(run_until_below_end, "run_until never sits below the furthest step/window");
}
