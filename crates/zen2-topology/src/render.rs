//! `lstopo`-style text rendering of the machine topology.
//!
//! Produces the tree view an operator would get from hwloc, so simulated
//! experiments can document the machine shape they ran on.

use crate::ids::LogicalCpu;
use crate::numbering::CpuNumbering;
use crate::topology::{consts, Topology};
use std::fmt::Write as _;

/// Renders the full machine tree with Linux logical CPU numbers.
pub fn lstopo(topology: &Topology) -> String {
    let numbering = CpuNumbering::linux_default(topology);
    let mut out = String::new();
    let _ = writeln!(out, "Machine ({})", topology.numa().mode());
    for socket in topology.all_sockets() {
        let _ = writeln!(out, "  Package P#{}", socket.0);
        for ccd in topology.ccds_of_socket(socket) {
            let quadrant = topology.quadrant_of_ccd(ccd);
            let node = topology.numa().node_of_quadrant(quadrant);
            let _ = writeln!(out, "    CCD #{} (IF switch {}, NUMA {})", ccd.0, quadrant.0, node.0);
            for ccx in topology.ccxs_of_ccd(ccd) {
                let _ = writeln!(
                    out,
                    "      CCX #{} (L3 {} MiB)",
                    ccx.0,
                    consts::L3_BYTES_PER_CCX / (1024 * 1024)
                );
                for core in topology.cores_of_ccx(ccx) {
                    let cpus: Vec<String> = topology
                        .threads_of_core(core)
                        .iter()
                        .flatten()
                        .map(|&t| format!("{}", numbering.cpu_of(t)))
                        .collect();
                    let _ = writeln!(
                        out,
                        "        Core #{:<3} (L2 {} KiB)  PU: {}",
                        core.0,
                        consts::L2_BYTES_PER_CORE / 1024,
                        cpus.join(" + ")
                    );
                }
            }
        }
    }
    out
}

/// Renders a one-line-per-CPU mapping (`cpu -> socket/core/thread`), the
/// `/proc/cpuinfo`-style view.
pub fn cpu_map(topology: &Topology) -> String {
    let numbering = CpuNumbering::linux_default(topology);
    let mut out = String::new();
    for cpu_idx in 0..numbering.num_cpus() as u32 {
        let cpu = LogicalCpu(cpu_idx);
        let thread = numbering.thread_of(cpu);
        let core = topology.core_of(thread);
        let _ = writeln!(
            out,
            "{cpu}: socket {} ccx {} core {} smt {}",
            topology.socket_of_thread(thread).0,
            topology.ccx_of_core(core).0,
            core.0,
            topology.sibling_of(thread).index()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lstopo_covers_every_level() {
        let out = lstopo(&Topology::epyc_7502_2s());
        assert_eq!(out.matches("Package").count(), 2);
        assert_eq!(out.matches("CCD #").count(), 8);
        assert_eq!(out.matches("CCX #").count(), 16);
        assert_eq!(out.matches("Core #").count(), 64);
        assert!(out.contains("L3 16 MiB"));
        assert!(out.contains("L2 512 KiB"));
        // First core of the machine pairs cpu0 with its SMT sibling cpu64.
        assert!(out.contains("PU: cpu0 + cpu64"), "{out}");
    }

    #[test]
    fn cpu_map_is_complete_and_linux_ordered() {
        let topo = Topology::epyc_7502_2s();
        let out = cpu_map(&topo);
        assert_eq!(out.lines().count(), 128);
        assert!(out.starts_with("cpu0: socket 0 ccx 0 core 0 smt 0"));
        // cpu32 is the first core of socket 1.
        assert!(out.contains("cpu32: socket 1"));
        // cpu64 is core 0's second hardware thread.
        assert!(out.contains("cpu64: socket 0 ccx 0 core 0 smt 1"));
    }

    #[test]
    fn lstopo_works_without_smt() {
        let topo =
            crate::TopologyBuilder::new().sockets(1).ccds_per_socket(2).smt(false).build().unwrap();
        let out = lstopo(&topo);
        assert_eq!(out.matches("Core #").count(), 16);
        assert!(out.contains("PU: cpu0\n"), "single PU per core");
    }
}
