//! Strongly-typed identifiers for the Zen 2 hierarchy.
//!
//! All identifiers are *global* within a [`crate::Topology`] (e.g. a
//! [`CoreId`] is unique across sockets, not per-CCX). Conversions between
//! levels are provided by the topology, which knows the machine shape; the
//! identifiers themselves are plain indices so they can be used directly as
//! `Vec` subscripts in hot simulation paths.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index for container subscripting.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds the identifier from a raw container index.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// A processor package (socket). The paper's system has two.
    SocketId,
    "socket"
);
id_type!(
    /// A Core Complex Die: one chiplet with two CCXs. The EPYC 7502 has
    /// four CCDs per socket.
    CcdId,
    "ccd"
);
id_type!(
    /// A Core Complex: four cores sharing a 16 MiB L3 cache and, crucially
    /// for the paper's Section V-C, one clock mesh whose frequency follows
    /// the fastest core in the complex.
    CcxId,
    "ccx"
);
id_type!(
    /// A physical core (front-end, two 256-bit FMA pipes, 512 KiB L2).
    CoreId,
    "core"
);
id_type!(
    /// A hardware thread (SMT sibling). Two per core on Zen 2.
    ThreadId,
    "thread"
);
id_type!(
    /// A unified memory controller on the I/O die; each UMC drives one DDR4
    /// channel. Rome has eight per socket.
    UmcId,
    "umc"
);
id_type!(
    /// An Infinity Fabric switch quadrant on the I/O die. Each quadrant
    /// connects up to two CCDs and two UMCs (Fig. 2b of the paper).
    QuadrantId,
    "quadrant"
);
id_type!(
    /// A NUMA node as exposed to the operating system. The count depends on
    /// the configured [`crate::NumaMode`].
    NumaNodeId,
    "node"
);

/// A Linux-style logical CPU number (`/sys/devices/system/cpu/cpuN`).
///
/// Logical CPU numbers depend on the enumeration policy, not the silicon;
/// [`crate::CpuNumbering`] maps between [`ThreadId`] and `LogicalCpu`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LogicalCpu(pub u32);

impl LogicalCpu {
    /// Returns the raw index for container subscripting.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds the identifier from a raw container index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Self(index as u32)
    }
}

impl fmt::Display for LogicalCpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Which SMT sibling of a core a thread is (0 = first, 1 = second).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SmtSibling {
    /// The first hardware thread of the core.
    Primary,
    /// The second hardware thread of the core.
    Secondary,
}

impl SmtSibling {
    /// Numeric index of the sibling within its core.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            SmtSibling::Primary => 0,
            SmtSibling::Secondary => 1,
        }
    }

    /// Builds the sibling designation from an index (`0` or `1`).
    ///
    /// # Panics
    /// Panics if `index > 1`; Zen 2 cores have exactly two hardware threads.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        match index {
            0 => SmtSibling::Primary,
            1 => SmtSibling::Secondary,
            other => panic!("Zen 2 cores have 2 SMT threads, sibling index {other} is invalid"),
        }
    }
}

pub use self::QuadrantId as IfSwitchId;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_hierarchy_prefix() {
        assert_eq!(SocketId(1).to_string(), "socket1");
        assert_eq!(CcdId(3).to_string(), "ccd3");
        assert_eq!(CcxId(7).to_string(), "ccx7");
        assert_eq!(CoreId(31).to_string(), "core31");
        assert_eq!(ThreadId(63).to_string(), "thread63");
        assert_eq!(LogicalCpu(127).to_string(), "cpu127");
        assert_eq!(UmcId(5).to_string(), "umc5");
    }

    #[test]
    fn index_round_trips() {
        for i in [0usize, 1, 63, 127] {
            assert_eq!(ThreadId::from_index(i).index(), i);
            assert_eq!(CoreId::from_index(i).index(), i);
            assert_eq!(LogicalCpu::from_index(i).index(), i);
        }
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(CoreId(2) < CoreId(10));
        assert!(ThreadId(0) < ThreadId(1));
    }

    #[test]
    fn smt_sibling_round_trips() {
        assert_eq!(SmtSibling::from_index(0), SmtSibling::Primary);
        assert_eq!(SmtSibling::from_index(1), SmtSibling::Secondary);
        assert_eq!(SmtSibling::Primary.index(), 0);
        assert_eq!(SmtSibling::Secondary.index(), 1);
    }

    #[test]
    #[should_panic(expected = "2 SMT threads")]
    fn smt_sibling_rejects_out_of_range() {
        let _ = SmtSibling::from_index(2);
    }
}
