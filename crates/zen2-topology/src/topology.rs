//! Machine-shape description and builder.

use crate::ids::{CcdId, CcxId, CoreId, QuadrantId, SmtSibling, SocketId, ThreadId, UmcId};
use crate::numa::{NumaConfig, NumaMode};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Fixed Zen 2 structural constants (PPR Family 17h Model 31h).
pub mod consts {
    /// Cores per Core Complex.
    pub const CORES_PER_CCX: u32 = 4;
    /// Core Complexes per Core Complex Die.
    pub const CCX_PER_CCD: u32 = 2;
    /// Hardware threads per core with SMT enabled.
    pub const THREADS_PER_CORE: u32 = 2;
    /// Infinity Fabric switch quadrants on the server I/O die.
    pub const QUADRANTS_PER_SOCKET: u32 = 4;
    /// Maximum CCDs attachable to one I/O die.
    pub const MAX_CCDS_PER_SOCKET: u32 = 8;
    /// Unified memory controllers per socket (two per quadrant).
    pub const UMCS_PER_SOCKET: u32 = 8;
    /// L3 capacity per CCX in bytes (16 MiB in four 4 MiB slices).
    pub const L3_BYTES_PER_CCX: u64 = 16 * 1024 * 1024;
    /// L2 capacity per core in bytes.
    pub const L2_BYTES_PER_CORE: u64 = 512 * 1024;
    /// L1 data/instruction capacity per core in bytes.
    pub const L1_BYTES_PER_CORE: u64 = 32 * 1024;
    /// Op-cache capacity in macro-ops.
    pub const OP_CACHE_OPS: u32 = 4096;
}

/// Errors produced while building a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The requested CCD count cannot attach to one I/O die.
    TooManyCcds {
        /// CCDs requested per socket.
        requested: u32,
    },
    /// At least one socket is required.
    NoSockets,
    /// At least one CCD per socket is required.
    NoCcds,
    /// CCD count must allow a symmetric quadrant assignment (1, 2, 4 or 8).
    AsymmetricCcds {
        /// CCDs requested per socket.
        requested: u32,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::TooManyCcds { requested } => write!(
                f,
                "{requested} CCDs per socket exceeds the I/O die maximum of {}",
                consts::MAX_CCDS_PER_SOCKET
            ),
            TopologyError::NoSockets => write!(f, "a system needs at least one socket"),
            TopologyError::NoCcds => write!(f, "a socket needs at least one CCD"),
            TopologyError::AsymmetricCcds { requested } => write!(
                f,
                "{requested} CCDs per socket cannot be distributed symmetrically over {} quadrants (use 1, 2, 4 or 8)",
                consts::QUADRANTS_PER_SOCKET
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Builder for [`Topology`].
///
/// ```
/// use zen2_topology::{Topology, TopologyBuilder, NumaMode};
///
/// let topo: Topology = TopologyBuilder::new()
///     .sockets(2)
///     .ccds_per_socket(4)
///     .smt(true)
///     .numa_mode(NumaMode::Nps4)
///     .build()
///     .unwrap();
/// assert_eq!(topo.num_threads(), 128);
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    sockets: u32,
    ccds_per_socket: u32,
    smt: bool,
    numa_mode: NumaMode,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// Starts from a single-socket, single-CCD, SMT-on configuration.
    pub fn new() -> Self {
        Self { sockets: 1, ccds_per_socket: 1, smt: true, numa_mode: NumaMode::Nps1 }
    }

    /// Sets the number of processor packages.
    pub fn sockets(mut self, sockets: u32) -> Self {
        self.sockets = sockets;
        self
    }

    /// Sets the number of Core Complex Dies attached to each I/O die.
    pub fn ccds_per_socket(mut self, ccds: u32) -> Self {
        self.ccds_per_socket = ccds;
        self
    }

    /// Enables or disables SMT (two hardware threads per core).
    pub fn smt(mut self, smt: bool) -> Self {
        self.smt = smt;
        self
    }

    /// Selects the NUMA-per-socket BIOS mode.
    pub fn numa_mode(mut self, mode: NumaMode) -> Self {
        self.numa_mode = mode;
        self
    }

    /// Validates the configuration and produces the topology.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.sockets == 0 {
            return Err(TopologyError::NoSockets);
        }
        if self.ccds_per_socket == 0 {
            return Err(TopologyError::NoCcds);
        }
        if self.ccds_per_socket > consts::MAX_CCDS_PER_SOCKET {
            return Err(TopologyError::TooManyCcds { requested: self.ccds_per_socket });
        }
        if !matches!(self.ccds_per_socket, 1 | 2 | 4 | 8) {
            return Err(TopologyError::AsymmetricCcds { requested: self.ccds_per_socket });
        }
        let numa = NumaConfig::derive(self.numa_mode, self.sockets);
        Ok(Topology {
            sockets: self.sockets,
            ccds_per_socket: self.ccds_per_socket,
            smt: self.smt,
            numa,
        })
    }
}

/// A concrete machine shape.
///
/// The topology owns the arithmetic mapping between hierarchy levels; all
/// identifiers are globally dense, so conversions are pure index math and
/// suitable for hot simulation loops.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    sockets: u32,
    ccds_per_socket: u32,
    smt: bool,
    numa: NumaConfig,
}

impl Topology {
    /// The paper's test system: two EPYC 7502 packages, 32 cores in 4 CCDs
    /// each, SMT enabled, "2-Channel Interleaving (per Quadrant)" = NPS4.
    pub fn epyc_7502_2s() -> Self {
        TopologyBuilder::new()
            .sockets(2)
            .ccds_per_socket(4)
            .smt(true)
            .numa_mode(NumaMode::Nps4)
            .build()
            .expect("preset is valid")
    }

    /// A single-socket EPYC 7502 for cheaper experiments.
    pub fn epyc_7502_1s() -> Self {
        TopologyBuilder::new()
            .sockets(1)
            .ccds_per_socket(4)
            .smt(true)
            .numa_mode(NumaMode::Nps4)
            .build()
            .expect("preset is valid")
    }

    /// A fully-populated 64-core Rome package (e.g. EPYC 7742), used by the
    /// paper's future-work discussion on higher compute-to-I/O ratios.
    pub fn epyc_7742_1s() -> Self {
        TopologyBuilder::new()
            .sockets(1)
            .ccds_per_socket(8)
            .smt(true)
            .numa_mode(NumaMode::Nps4)
            .build()
            .expect("preset is valid")
    }

    /// A Zen 2 desktop-like part (one CCD), used to mirror the PLATYPUS
    /// desktop observations in Section VII-B.
    pub fn desktop_1ccd() -> Self {
        TopologyBuilder::new()
            .sockets(1)
            .ccds_per_socket(1)
            .smt(true)
            .numa_mode(NumaMode::Nps1)
            .build()
            .expect("preset is valid")
    }

    // ----- counts ---------------------------------------------------------

    /// Number of processor packages.
    pub fn num_sockets(&self) -> usize {
        self.sockets as usize
    }

    /// Number of CCDs in the whole system.
    pub fn num_ccds(&self) -> usize {
        (self.sockets * self.ccds_per_socket) as usize
    }

    /// Number of CCDs attached to each I/O die.
    pub fn ccds_per_socket(&self) -> usize {
        self.ccds_per_socket as usize
    }

    /// Number of CCXs in the whole system.
    pub fn num_ccxs(&self) -> usize {
        self.num_ccds() * consts::CCX_PER_CCD as usize
    }

    /// Number of CCXs per socket.
    pub fn ccxs_per_socket(&self) -> usize {
        (self.ccds_per_socket * consts::CCX_PER_CCD) as usize
    }

    /// Number of physical cores in the whole system.
    pub fn num_cores(&self) -> usize {
        self.num_ccxs() * consts::CORES_PER_CCX as usize
    }

    /// Number of physical cores per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.ccxs_per_socket() * consts::CORES_PER_CCX as usize
    }

    /// Whether SMT is enabled.
    pub fn smt_enabled(&self) -> bool {
        self.smt
    }

    /// Hardware threads per core (2 with SMT, 1 without).
    pub fn threads_per_core(&self) -> usize {
        if self.smt {
            consts::THREADS_PER_CORE as usize
        } else {
            1
        }
    }

    /// Number of hardware threads in the whole system.
    pub fn num_threads(&self) -> usize {
        self.num_cores() * self.threads_per_core()
    }

    /// Number of UMCs (DDR4 channels) in the whole system.
    pub fn num_umcs(&self) -> usize {
        (self.sockets * consts::UMCS_PER_SOCKET) as usize
    }

    /// The NUMA configuration derived from the BIOS mode.
    pub fn numa(&self) -> &NumaConfig {
        &self.numa
    }

    // ----- thread-level mappings -----------------------------------------

    /// The core a hardware thread belongs to.
    #[inline]
    pub fn core_of(&self, thread: ThreadId) -> CoreId {
        CoreId((thread.0 as usize / self.threads_per_core()) as u32)
    }

    /// Which SMT sibling of its core a thread is.
    #[inline]
    pub fn sibling_of(&self, thread: ThreadId) -> SmtSibling {
        SmtSibling::from_index(thread.0 as usize % self.threads_per_core())
    }

    /// The other hardware thread on the same core, if SMT is enabled.
    #[inline]
    pub fn smt_sibling_thread(&self, thread: ThreadId) -> Option<ThreadId> {
        if !self.smt {
            return None;
        }
        Some(ThreadId(thread.0 ^ 1))
    }

    /// Both hardware threads of a core (the second is `None` without SMT).
    #[inline]
    pub fn threads_of_core(&self, core: CoreId) -> [Option<ThreadId>; 2] {
        let base = core.0 * self.threads_per_core() as u32;
        if self.smt {
            [Some(ThreadId(base)), Some(ThreadId(base + 1))]
        } else {
            [Some(ThreadId(base)), None]
        }
    }

    // ----- core-level mappings --------------------------------------------

    /// The CCX a core belongs to.
    #[inline]
    pub fn ccx_of_core(&self, core: CoreId) -> CcxId {
        CcxId(core.0 / consts::CORES_PER_CCX)
    }

    /// The CCD a core belongs to.
    #[inline]
    pub fn ccd_of_core(&self, core: CoreId) -> CcdId {
        self.ccd_of_ccx(self.ccx_of_core(core))
    }

    /// The socket a core belongs to.
    #[inline]
    pub fn socket_of_core(&self, core: CoreId) -> SocketId {
        SocketId(core.0 / self.cores_per_socket() as u32)
    }

    /// The socket a thread belongs to.
    #[inline]
    pub fn socket_of_thread(&self, thread: ThreadId) -> SocketId {
        self.socket_of_core(self.core_of(thread))
    }

    /// The four cores of a CCX.
    pub fn cores_of_ccx(&self, ccx: CcxId) -> impl Iterator<Item = CoreId> + '_ {
        let base = ccx.0 * consts::CORES_PER_CCX;
        (base..base + consts::CORES_PER_CCX).map(CoreId)
    }

    /// All cores of the system in id order.
    pub fn all_cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.num_cores() as u32).map(CoreId)
    }

    /// All hardware threads of the system in id order.
    pub fn all_threads(&self) -> impl Iterator<Item = ThreadId> + '_ {
        (0..self.num_threads() as u32).map(ThreadId)
    }

    /// All CCXs of the system in id order.
    pub fn all_ccxs(&self) -> impl Iterator<Item = CcxId> + '_ {
        (0..self.num_ccxs() as u32).map(CcxId)
    }

    /// All sockets of the system in id order.
    pub fn all_sockets(&self) -> impl Iterator<Item = SocketId> + '_ {
        (0..self.sockets).map(SocketId)
    }

    // ----- CCX/CCD/socket mappings ----------------------------------------

    /// The CCD a CCX belongs to.
    #[inline]
    pub fn ccd_of_ccx(&self, ccx: CcxId) -> CcdId {
        CcdId(ccx.0 / consts::CCX_PER_CCD)
    }

    /// The socket a CCD belongs to.
    #[inline]
    pub fn socket_of_ccd(&self, ccd: CcdId) -> SocketId {
        SocketId(ccd.0 / self.ccds_per_socket)
    }

    /// The socket a CCX belongs to.
    #[inline]
    pub fn socket_of_ccx(&self, ccx: CcxId) -> SocketId {
        self.socket_of_ccd(self.ccd_of_ccx(ccx))
    }

    /// The two CCXs of a CCD.
    pub fn ccxs_of_ccd(&self, ccd: CcdId) -> [CcxId; 2] {
        [CcxId(ccd.0 * consts::CCX_PER_CCD), CcxId(ccd.0 * consts::CCX_PER_CCD + 1)]
    }

    /// The CCDs of a socket in id order.
    pub fn ccds_of_socket(&self, socket: SocketId) -> impl Iterator<Item = CcdId> + '_ {
        let base = socket.0 * self.ccds_per_socket;
        (base..base + self.ccds_per_socket).map(CcdId)
    }

    /// The I/O-die quadrant (Infinity Fabric switch) a CCD attaches to.
    ///
    /// With 8 CCDs two share each quadrant; with 4 (the EPYC 7502) each CCD
    /// has a quadrant of its own; with fewer, quadrants go unused.
    #[inline]
    pub fn quadrant_of_ccd(&self, ccd: CcdId) -> QuadrantId {
        let socket = self.socket_of_ccd(ccd);
        let local = ccd.0 - socket.0 * self.ccds_per_socket;
        let per_quadrant = self.ccds_per_socket.div_ceil(consts::QUADRANTS_PER_SOCKET).max(1);
        QuadrantId(socket.0 * consts::QUADRANTS_PER_SOCKET + local / per_quadrant)
    }

    /// The two UMCs (memory channels) attached to a quadrant.
    pub fn umcs_of_quadrant(&self, quadrant: QuadrantId) -> [UmcId; 2] {
        [UmcId(quadrant.0 * 2), UmcId(quadrant.0 * 2 + 1)]
    }

    /// Human-readable one-line summary (`2 sockets x 4 CCDs x 8 cores ...`).
    pub fn describe(&self) -> String {
        format!(
            "{} socket(s), {} CCD(s)/socket, {} CCX(s), {} cores, {} hardware threads, SMT {}, {}",
            self.num_sockets(),
            self.ccds_per_socket(),
            self.num_ccxs(),
            self.num_cores(),
            self.num_threads(),
            if self.smt { "on" } else { "off" },
            self.numa.mode()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epyc_7502_2s_matches_paper_system() {
        let t = Topology::epyc_7502_2s();
        assert_eq!(t.num_sockets(), 2);
        assert_eq!(t.num_ccds(), 8);
        assert_eq!(t.num_ccxs(), 16);
        assert_eq!(t.num_cores(), 64);
        assert_eq!(t.num_threads(), 128);
        assert_eq!(t.cores_per_socket(), 32);
        assert_eq!(t.num_umcs(), 16);
        assert!(t.smt_enabled());
    }

    #[test]
    fn epyc_7742_has_64_cores_per_socket() {
        let t = Topology::epyc_7742_1s();
        assert_eq!(t.num_cores(), 64);
        assert_eq!(t.num_threads(), 128);
        assert_eq!(t.num_sockets(), 1);
    }

    #[test]
    fn thread_core_mapping_with_smt() {
        let t = Topology::epyc_7502_2s();
        assert_eq!(t.core_of(ThreadId(0)), CoreId(0));
        assert_eq!(t.core_of(ThreadId(1)), CoreId(0));
        assert_eq!(t.core_of(ThreadId(2)), CoreId(1));
        assert_eq!(t.sibling_of(ThreadId(0)), SmtSibling::Primary);
        assert_eq!(t.sibling_of(ThreadId(1)), SmtSibling::Secondary);
        assert_eq!(t.smt_sibling_thread(ThreadId(4)), Some(ThreadId(5)));
        assert_eq!(t.smt_sibling_thread(ThreadId(5)), Some(ThreadId(4)));
    }

    #[test]
    fn thread_core_mapping_without_smt() {
        let t = TopologyBuilder::new().sockets(1).ccds_per_socket(4).smt(false).build().unwrap();
        assert_eq!(t.num_threads(), 32);
        assert_eq!(t.core_of(ThreadId(7)), CoreId(7));
        assert_eq!(t.smt_sibling_thread(ThreadId(7)), None);
        assert_eq!(t.threads_of_core(CoreId(3)), [Some(ThreadId(3)), None]);
    }

    #[test]
    fn ccx_of_core_groups_by_four() {
        let t = Topology::epyc_7502_2s();
        assert_eq!(t.ccx_of_core(CoreId(0)), CcxId(0));
        assert_eq!(t.ccx_of_core(CoreId(3)), CcxId(0));
        assert_eq!(t.ccx_of_core(CoreId(4)), CcxId(1));
        assert_eq!(t.ccx_of_core(CoreId(63)), CcxId(15));
        let cores: Vec<_> = t.cores_of_ccx(CcxId(2)).collect();
        assert_eq!(cores, vec![CoreId(8), CoreId(9), CoreId(10), CoreId(11)]);
    }

    #[test]
    fn socket_boundaries() {
        let t = Topology::epyc_7502_2s();
        assert_eq!(t.socket_of_core(CoreId(31)), SocketId(0));
        assert_eq!(t.socket_of_core(CoreId(32)), SocketId(1));
        assert_eq!(t.socket_of_thread(ThreadId(63)), SocketId(0));
        assert_eq!(t.socket_of_thread(ThreadId(64)), SocketId(1));
        assert_eq!(t.socket_of_ccx(CcxId(7)), SocketId(0));
        assert_eq!(t.socket_of_ccx(CcxId(8)), SocketId(1));
    }

    #[test]
    fn quadrant_assignment_7502() {
        // 4 CCDs per socket: one per quadrant.
        let t = Topology::epyc_7502_2s();
        assert_eq!(t.quadrant_of_ccd(CcdId(0)), QuadrantId(0));
        assert_eq!(t.quadrant_of_ccd(CcdId(3)), QuadrantId(3));
        assert_eq!(t.quadrant_of_ccd(CcdId(4)), QuadrantId(4)); // socket 1
        assert_eq!(t.quadrant_of_ccd(CcdId(7)), QuadrantId(7));
    }

    #[test]
    fn quadrant_assignment_7742_pairs_ccds() {
        // 8 CCDs per socket: two share each quadrant (paper Section III-A).
        let t = Topology::epyc_7742_1s();
        assert_eq!(t.quadrant_of_ccd(CcdId(0)), QuadrantId(0));
        assert_eq!(t.quadrant_of_ccd(CcdId(1)), QuadrantId(0));
        assert_eq!(t.quadrant_of_ccd(CcdId(2)), QuadrantId(1));
        assert_eq!(t.quadrant_of_ccd(CcdId(7)), QuadrantId(3));
    }

    #[test]
    fn builder_rejects_invalid_shapes() {
        assert_eq!(
            TopologyBuilder::new().sockets(0).build().unwrap_err(),
            TopologyError::NoSockets
        );
        assert_eq!(
            TopologyBuilder::new().ccds_per_socket(0).build().unwrap_err(),
            TopologyError::NoCcds
        );
        assert_eq!(
            TopologyBuilder::new().ccds_per_socket(9).build().unwrap_err(),
            TopologyError::TooManyCcds { requested: 9 }
        );
        assert_eq!(
            TopologyBuilder::new().ccds_per_socket(3).build().unwrap_err(),
            TopologyError::AsymmetricCcds { requested: 3 }
        );
    }

    #[test]
    fn describe_mentions_key_counts() {
        let d = Topology::epyc_7502_2s().describe();
        assert!(d.contains("64 cores"));
        assert!(d.contains("128 hardware threads"));
    }
}
