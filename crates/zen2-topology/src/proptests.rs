//! Property-based tests over arbitrary valid topologies.

use crate::ids::{CcxId, CoreId, LogicalCpu, ThreadId};
use crate::numbering::{CpuNumbering, NumberingPolicy};
use crate::topology::{consts, Topology, TopologyBuilder};
use crate::NumaMode;
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    (
        1u32..=4,
        prop::sample::select(vec![1u32, 2, 4, 8]),
        any::<bool>(),
        prop::sample::select(vec![NumaMode::Nps1, NumaMode::Nps2, NumaMode::Nps4]),
    )
        .prop_map(|(sockets, ccds, smt, numa)| {
            TopologyBuilder::new()
                .sockets(sockets)
                .ccds_per_socket(ccds)
                .smt(smt)
                .numa_mode(numa)
                .build()
                .expect("generated shape is valid")
        })
}

proptest! {
    /// Counts are consistent with the structural constants at every level.
    #[test]
    fn counts_are_consistent(topo in arb_topology()) {
        prop_assert_eq!(topo.num_ccxs(), topo.num_ccds() * consts::CCX_PER_CCD as usize);
        prop_assert_eq!(topo.num_cores(), topo.num_ccxs() * consts::CORES_PER_CCX as usize);
        prop_assert_eq!(topo.num_threads(), topo.num_cores() * topo.threads_per_core());
        prop_assert_eq!(topo.cores_per_socket() * topo.num_sockets(), topo.num_cores());
    }

    /// Every thread maps to a core that maps back to containing the thread.
    #[test]
    fn thread_core_membership(topo in arb_topology()) {
        for thread in topo.all_threads() {
            let core = topo.core_of(thread);
            let threads = topo.threads_of_core(core);
            prop_assert!(threads.iter().flatten().any(|&t| t == thread));
        }
    }

    /// The SMT sibling relation is a fix-point-free involution when SMT is on.
    #[test]
    fn smt_sibling_is_involution(topo in arb_topology()) {
        for thread in topo.all_threads() {
            match topo.smt_sibling_thread(thread) {
                Some(sibling) => {
                    prop_assert!(topo.smt_enabled());
                    prop_assert_ne!(sibling, thread);
                    prop_assert_eq!(topo.smt_sibling_thread(sibling), Some(thread));
                    prop_assert_eq!(topo.core_of(sibling), topo.core_of(thread));
                }
                None => prop_assert!(!topo.smt_enabled()),
            }
        }
    }

    /// Each CCX contains exactly four cores and they agree on their CCX.
    #[test]
    fn ccx_partitioning(topo in arb_topology()) {
        let mut total = 0usize;
        for ccx in topo.all_ccxs() {
            let cores: Vec<CoreId> = topo.cores_of_ccx(ccx).collect();
            prop_assert_eq!(cores.len(), consts::CORES_PER_CCX as usize);
            for core in cores {
                prop_assert_eq!(topo.ccx_of_core(core), ccx);
                total += 1;
            }
        }
        prop_assert_eq!(total, topo.num_cores());
    }

    /// CCX -> CCD -> socket chains agree with the direct core -> socket map.
    #[test]
    fn hierarchy_chains_agree(topo in arb_topology()) {
        for core in topo.all_cores() {
            let via_ccx = topo.socket_of_ccx(topo.ccx_of_core(core));
            prop_assert_eq!(via_ccx, topo.socket_of_core(core));
            let via_ccd = topo.socket_of_ccd(topo.ccd_of_core(core));
            prop_assert_eq!(via_ccd, topo.socket_of_core(core));
        }
    }

    /// Logical CPU numbering is a bijection under both policies.
    #[test]
    fn numbering_is_bijective(topo in arb_topology(),
                              adjacent in any::<bool>()) {
        let policy = if adjacent {
            NumberingPolicy::SiblingsAdjacent
        } else {
            NumberingPolicy::LinuxSiblingsLast
        };
        let numbering = CpuNumbering::new(&topo, policy);
        let mut seen = vec![false; topo.num_threads()];
        for cpu in numbering.cpus_in_os_order() {
            let thread = numbering.thread_of(cpu);
            prop_assert!(!seen[thread.index()]);
            seen[thread.index()] = true;
            prop_assert_eq!(numbering.cpu_of(thread), cpu);
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Under the Linux policy, the first half of logical CPUs are all
    /// primary SMT threads (the order the paper's Fig. 7 sweep relies on).
    #[test]
    fn linux_policy_puts_primary_threads_first(topo in arb_topology()) {
        prop_assume!(topo.smt_enabled());
        let numbering = CpuNumbering::linux_default(&topo);
        for cpu in 0..topo.num_cores() as u32 {
            let thread = numbering.thread_of(LogicalCpu(cpu));
            prop_assert_eq!(topo.sibling_of(thread).index(), 0);
        }
        for cpu in topo.num_cores() as u32..topo.num_threads() as u32 {
            let thread = numbering.thread_of(LogicalCpu(cpu));
            prop_assert_eq!(topo.sibling_of(thread).index(), 1);
        }
    }

    /// Quadrant attachment respects sockets and covers each socket's CCDs.
    #[test]
    fn quadrants_stay_within_socket(topo in arb_topology()) {
        for socket in topo.all_sockets() {
            for ccd in topo.ccds_of_socket(socket) {
                let quadrant = topo.quadrant_of_ccd(ccd);
                prop_assert_eq!(quadrant.0 / consts::QUADRANTS_PER_SOCKET, socket.0);
            }
        }
    }

    /// NUMA nodes partition quadrants consistently with the chosen mode.
    #[test]
    fn numa_nodes_cover_quadrants(topo in arb_topology()) {
        let numa = topo.numa();
        for socket in topo.all_sockets() {
            for ccd in topo.ccds_of_socket(socket) {
                let quadrant = topo.quadrant_of_ccd(ccd);
                let node = numa.node_of_quadrant(quadrant);
                prop_assert_eq!(numa.socket_of_node(node), socket);
                prop_assert!(!numa.is_cross_socket(socket, node));
            }
        }
        prop_assert_eq!(
            numa.num_nodes(),
            topo.num_sockets() * numa.mode().nodes_per_socket() as usize
        );
    }

    /// `ccxs_of_ccd` and `ccd_of_ccx` are mutually consistent.
    #[test]
    fn ccd_ccx_round_trip(topo in arb_topology()) {
        for ccd_idx in 0..topo.num_ccds() as u32 {
            let ccd = crate::CcdId(ccd_idx);
            for ccx in topo.ccxs_of_ccd(ccd) {
                prop_assert_eq!(topo.ccd_of_ccx(ccx), ccd);
            }
        }
        for ccx in topo.all_ccxs() {
            let ccd = topo.ccd_of_ccx(ccx);
            prop_assert!(topo.ccxs_of_ccd(ccd).contains(&ccx));
        }
    }
}

#[test]
fn sibling_threads_are_adjacent_ids() {
    let topo = Topology::epyc_7502_2s();
    for core in topo.all_cores() {
        let [a, b] = topo.threads_of_core(core);
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(b.0, a.0 + 1);
        assert_eq!(topo.ccx_of_core(core), topo.ccx_of_core(topo.core_of(b)));
    }
    let _ = CcxId(0);
    let _ = ThreadId(0);
}
