//! NUMA ("nodes per socket") BIOS configuration.
//!
//! Rome exposes its four I/O-die quadrants as configurable NUMA domains.
//! The paper's system uses "2-Channel Interleaving (per Quadrant)" (AMD
//! publication 56338), which corresponds to NPS4: each quadrant with its two
//! memory channels is one NUMA node.

use crate::ids::{CcdId, NumaNodeId, QuadrantId, SocketId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// BIOS "NUMA nodes per socket" selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NumaMode {
    /// One node per socket: all eight channels interleaved.
    Nps1,
    /// Two nodes per socket: four channels each.
    Nps2,
    /// Four nodes per socket: per-quadrant 2-channel interleaving — the
    /// paper's configuration.
    Nps4,
}

impl NumaMode {
    /// NUMA nodes exposed per socket.
    pub fn nodes_per_socket(self) -> u32 {
        match self {
            NumaMode::Nps1 => 1,
            NumaMode::Nps2 => 2,
            NumaMode::Nps4 => 4,
        }
    }

    /// DDR4 channels interleaved within one node.
    pub fn channels_per_node(self) -> u32 {
        8 / self.nodes_per_socket()
    }
}

impl fmt::Display for NumaMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumaMode::Nps1 => write!(f, "NPS1"),
            NumaMode::Nps2 => write!(f, "NPS2"),
            NumaMode::Nps4 => write!(f, "NPS4 (2-channel interleaving per quadrant)"),
        }
    }
}

/// Derived NUMA layout for a whole system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NumaConfig {
    mode: NumaMode,
    sockets: u32,
}

impl NumaConfig {
    /// Computes the layout for `sockets` packages in the given mode.
    pub fn derive(mode: NumaMode, sockets: u32) -> Self {
        Self { mode, sockets }
    }

    /// The BIOS mode this layout was derived from.
    pub fn mode(&self) -> NumaMode {
        self.mode
    }

    /// Total NUMA nodes in the system.
    pub fn num_nodes(&self) -> usize {
        (self.sockets * self.mode.nodes_per_socket()) as usize
    }

    /// The NUMA node local to an I/O-die quadrant.
    pub fn node_of_quadrant(&self, quadrant: QuadrantId) -> NumaNodeId {
        let socket = quadrant.0 / 4;
        let local_quadrant = quadrant.0 % 4;
        let per_socket = self.mode.nodes_per_socket();
        // Quadrants fold onto nodes evenly: NPS4 1:1, NPS2 2:1, NPS1 4:1.
        let local_node = local_quadrant * per_socket / 4;
        NumaNodeId(socket * per_socket + local_node)
    }

    /// The NUMA node a CCD's memory accesses are local to, given its
    /// quadrant attachment.
    pub fn node_of_ccd(&self, ccd: CcdId, quadrant: QuadrantId) -> NumaNodeId {
        let _ = ccd;
        self.node_of_quadrant(quadrant)
    }

    /// The socket that owns a NUMA node.
    pub fn socket_of_node(&self, node: NumaNodeId) -> SocketId {
        SocketId(node.0 / self.mode.nodes_per_socket())
    }

    /// Whether an access from `from` to memory on `to` crosses the xGMI
    /// socket interconnect.
    pub fn is_cross_socket(&self, from: SocketId, to: NumaNodeId) -> bool {
        self.socket_of_node(to) != from
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_per_socket_counts() {
        assert_eq!(NumaMode::Nps1.nodes_per_socket(), 1);
        assert_eq!(NumaMode::Nps2.nodes_per_socket(), 2);
        assert_eq!(NumaMode::Nps4.nodes_per_socket(), 4);
        assert_eq!(NumaMode::Nps4.channels_per_node(), 2);
        assert_eq!(NumaMode::Nps1.channels_per_node(), 8);
    }

    #[test]
    fn nps4_two_socket_exposes_eight_nodes() {
        let cfg = NumaConfig::derive(NumaMode::Nps4, 2);
        assert_eq!(cfg.num_nodes(), 8);
        assert_eq!(cfg.node_of_quadrant(QuadrantId(0)), NumaNodeId(0));
        assert_eq!(cfg.node_of_quadrant(QuadrantId(3)), NumaNodeId(3));
        assert_eq!(cfg.node_of_quadrant(QuadrantId(4)), NumaNodeId(4));
        assert_eq!(cfg.node_of_quadrant(QuadrantId(7)), NumaNodeId(7));
    }

    #[test]
    fn nps1_folds_all_quadrants_per_socket() {
        let cfg = NumaConfig::derive(NumaMode::Nps1, 2);
        assert_eq!(cfg.num_nodes(), 2);
        for q in 0..4 {
            assert_eq!(cfg.node_of_quadrant(QuadrantId(q)), NumaNodeId(0));
        }
        for q in 4..8 {
            assert_eq!(cfg.node_of_quadrant(QuadrantId(q)), NumaNodeId(1));
        }
    }

    #[test]
    fn nps2_pairs_quadrants() {
        let cfg = NumaConfig::derive(NumaMode::Nps2, 1);
        assert_eq!(cfg.num_nodes(), 2);
        assert_eq!(cfg.node_of_quadrant(QuadrantId(0)), NumaNodeId(0));
        assert_eq!(cfg.node_of_quadrant(QuadrantId(1)), NumaNodeId(0));
        assert_eq!(cfg.node_of_quadrant(QuadrantId(2)), NumaNodeId(1));
        assert_eq!(cfg.node_of_quadrant(QuadrantId(3)), NumaNodeId(1));
    }

    #[test]
    fn cross_socket_detection() {
        let cfg = NumaConfig::derive(NumaMode::Nps4, 2);
        assert!(!cfg.is_cross_socket(SocketId(0), NumaNodeId(3)));
        assert!(cfg.is_cross_socket(SocketId(0), NumaNodeId(4)));
        assert!(cfg.is_cross_socket(SocketId(1), NumaNodeId(0)));
        assert!(!cfg.is_cross_socket(SocketId(1), NumaNodeId(7)));
    }

    #[test]
    fn display_names() {
        assert_eq!(NumaMode::Nps1.to_string(), "NPS1");
        assert!(NumaMode::Nps4.to_string().contains("quadrant"));
    }
}
