//! SoC topology model for AMD Zen 2 "Rome" processors.
//!
//! Zen 2 uses a modular design on multiple levels (PPR for Family 17h Model
//! 31h, Section 1.8.1): four cores share one *Core Complex* (CCX) with a
//! 16 MiB L3 cache, two CCXs form a *Core Complex Die* (CCD), and up to
//! eight CCDs attach to a central I/O die that also hosts the unified memory
//! controllers (UMCs) and the Infinity Fabric switches. Each core runs up to
//! two SMT hardware threads.
//!
//! This crate provides:
//!
//! * strongly-typed identifiers for every level of the hierarchy
//!   ([`ThreadId`], [`CoreId`], [`CcxId`], [`CcdId`], [`SocketId`], ...),
//! * a [`Topology`] describing a concrete machine, with a builder and
//!   presets (notably [`Topology::epyc_7502_2s`], the paper's test system),
//! * Linux-style logical CPU numbering ([`CpuNumbering`]) so experiments can
//!   sweep "threads not in C2" in the exact order the paper used (Fig. 7),
//! * NUMA configuration modes ("NPS" settings and the per-quadrant
//!   interleaving the paper configured).
//!
//! The topology is pure data: no behavior lives here. Simulation state
//! machines (`zen2-sim`) and performance/power models (`zen2-mem`,
//! `zen2-power`) are indexed by these identifiers.

pub mod ids;
pub mod numa;
pub mod numbering;
pub mod render;
pub mod topology;

pub use ids::{CcdId, CcxId, CoreId, LogicalCpu, SocketId, ThreadId, UmcId};
pub use numa::{NumaConfig, NumaMode};
pub use numbering::CpuNumbering;
pub use topology::{Topology, TopologyBuilder, TopologyError};

#[cfg(test)]
mod proptests;
