//! Linux-style logical CPU numbering.
//!
//! The paper sweeps C-state configurations "following the logical CPU
//! numbering in steps of single CPUs ... the hardware thread of each core
//! within the first processor package, the second processor package, and
//! then the second hardware threads of each core, again grouped by package"
//! (Section VI-A). That is the standard Linux enumeration on a two-socket
//! SMT system:
//!
//! ```text
//! cpu0..31    socket 0, cores 0..31, SMT thread 0
//! cpu32..63   socket 1, cores 0..31, SMT thread 0
//! cpu64..95   socket 0, cores 0..31, SMT thread 1
//! cpu96..127  socket 1, cores 0..31, SMT thread 1
//! ```
//!
//! [`CpuNumbering`] provides the bijection between [`LogicalCpu`] and
//! [`ThreadId`] so experiments can express sweeps in OS order while the
//! simulator operates on physical ids.

use crate::ids::{LogicalCpu, SmtSibling, ThreadId};
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// How logical CPU numbers map onto hardware threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NumberingPolicy {
    /// Linux default on x86 servers: all primary SMT threads first (grouped
    /// by package), then all secondary threads (grouped by package).
    LinuxSiblingsLast,
    /// Siblings adjacent: cpu0/cpu1 are the two threads of core 0. Some
    /// BIOSes enumerate this way; kept for completeness and testing.
    SiblingsAdjacent,
}

/// A concrete logical-CPU numbering for a topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuNumbering {
    policy: NumberingPolicy,
    num_cores: u32,
    threads_per_core: u32,
}

impl CpuNumbering {
    /// Builds the numbering for a topology under the given policy.
    pub fn new(topology: &Topology, policy: NumberingPolicy) -> Self {
        Self {
            policy,
            num_cores: topology.num_cores() as u32,
            threads_per_core: topology.threads_per_core() as u32,
        }
    }

    /// The Linux default numbering for a topology.
    pub fn linux_default(topology: &Topology) -> Self {
        Self::new(topology, NumberingPolicy::LinuxSiblingsLast)
    }

    /// Total number of logical CPUs.
    pub fn num_cpus(&self) -> usize {
        (self.num_cores * self.threads_per_core) as usize
    }

    /// Maps a logical CPU number to its hardware thread.
    ///
    /// # Panics
    /// Panics if `cpu` is out of range for this system.
    pub fn thread_of(&self, cpu: LogicalCpu) -> ThreadId {
        assert!(
            (cpu.0 as usize) < self.num_cpus(),
            "{cpu} out of range for {} logical CPUs",
            self.num_cpus()
        );
        match self.policy {
            NumberingPolicy::LinuxSiblingsLast => {
                let sibling = cpu.0 / self.num_cores;
                let core = cpu.0 % self.num_cores;
                ThreadId(core * self.threads_per_core + sibling)
            }
            NumberingPolicy::SiblingsAdjacent => ThreadId(cpu.0),
        }
    }

    /// Maps a hardware thread to its logical CPU number.
    pub fn cpu_of(&self, thread: ThreadId) -> LogicalCpu {
        match self.policy {
            NumberingPolicy::LinuxSiblingsLast => {
                let core = thread.0 / self.threads_per_core;
                let sibling = thread.0 % self.threads_per_core;
                LogicalCpu(sibling * self.num_cores + core)
            }
            NumberingPolicy::SiblingsAdjacent => LogicalCpu(thread.0),
        }
    }

    /// Which SMT sibling a logical CPU is under this numbering.
    pub fn sibling_of(&self, cpu: LogicalCpu) -> SmtSibling {
        match self.policy {
            NumberingPolicy::LinuxSiblingsLast => {
                SmtSibling::from_index((cpu.0 / self.num_cores) as usize)
            }
            NumberingPolicy::SiblingsAdjacent => {
                SmtSibling::from_index((cpu.0 % self.threads_per_core) as usize)
            }
        }
    }

    /// All logical CPUs in OS order — the sweep order of the paper's Fig. 7.
    pub fn cpus_in_os_order(&self) -> impl Iterator<Item = LogicalCpu> + '_ {
        (0..self.num_cpus() as u32).map(LogicalCpu)
    }

    /// Hardware threads in OS sweep order (primary threads by package, then
    /// secondary threads by package).
    pub fn threads_in_os_order(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.cpus_in_os_order().map(move |c| self.thread_of(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn linux_numbering_matches_paper_sweep_order() {
        let topo = Topology::epyc_7502_2s();
        let numbering = CpuNumbering::linux_default(&topo);
        assert_eq!(numbering.num_cpus(), 128);

        // cpu0 = core0 thread0; cpu31 = core31 thread0 (socket 0)
        assert_eq!(numbering.thread_of(LogicalCpu(0)), ThreadId(0));
        assert_eq!(numbering.thread_of(LogicalCpu(31)), ThreadId(62));
        // cpu32 = first core of socket 1, thread 0
        assert_eq!(numbering.thread_of(LogicalCpu(32)), ThreadId(64));
        assert_eq!(topo.socket_of_thread(numbering.thread_of(LogicalCpu(32))).0, 1);
        // cpu64 = core0 thread1 (second sibling of socket 0's first core)
        assert_eq!(numbering.thread_of(LogicalCpu(64)), ThreadId(1));
        // cpu127 = last core of socket 1, thread 1
        assert_eq!(numbering.thread_of(LogicalCpu(127)), ThreadId(127));
    }

    #[test]
    fn round_trip_all_cpus() {
        let topo = Topology::epyc_7502_2s();
        for policy in [NumberingPolicy::LinuxSiblingsLast, NumberingPolicy::SiblingsAdjacent] {
            let numbering = CpuNumbering::new(&topo, policy);
            for cpu in numbering.cpus_in_os_order() {
                let thread = numbering.thread_of(cpu);
                assert_eq!(numbering.cpu_of(thread), cpu, "policy {policy:?}");
            }
        }
    }

    #[test]
    fn first_64_cpus_cover_all_cores_once() {
        let topo = Topology::epyc_7502_2s();
        let numbering = CpuNumbering::linux_default(&topo);
        let mut seen = vec![false; topo.num_cores()];
        for cpu in 0..64u32 {
            let thread = numbering.thread_of(LogicalCpu(cpu));
            let core = topo.core_of(thread);
            assert!(!seen[core.index()], "core {core} hit twice in first 64 cpus");
            seen[core.index()] = true;
            assert_eq!(topo.sibling_of(thread).index(), 0);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sibling_classification() {
        let topo = Topology::epyc_7502_2s();
        let numbering = CpuNumbering::linux_default(&topo);
        assert_eq!(numbering.sibling_of(LogicalCpu(5)).index(), 0);
        assert_eq!(numbering.sibling_of(LogicalCpu(70)).index(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cpu_panics() {
        let topo = Topology::epyc_7502_2s();
        let numbering = CpuNumbering::linux_default(&topo);
        let _ = numbering.thread_of(LogicalCpu(128));
    }

    #[test]
    fn numbering_without_smt_is_identity() {
        let topo =
            crate::TopologyBuilder::new().sockets(2).ccds_per_socket(4).smt(false).build().unwrap();
        let numbering = CpuNumbering::linux_default(&topo);
        assert_eq!(numbering.num_cpus(), 64);
        for cpu in numbering.cpus_in_os_order() {
            assert_eq!(numbering.thread_of(cpu).0, cpu.0);
        }
    }
}
