//! Offline shim for `serde_derive`: the derives expand to nothing.
//!
//! The workspace derives `Serialize`/`Deserialize` on result structs for
//! forward compatibility, but nothing consumes the trait impls (there is
//! no serializer in the tree), so empty expansions are sufficient.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
