//! Offline shim for `rand_chacha`: re-exports the ChaCha generators
//! implemented in the vendored `rand` shim.

pub use rand::chacha::{ChaCha12Rng, ChaCha20Rng, ChaCha8Rng};
