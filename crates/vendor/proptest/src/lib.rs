//! Offline mini-proptest: deterministic property testing with the API
//! subset this workspace uses.
//!
//! Differences from upstream proptest:
//! * generation is seeded from the test name, so runs are reproducible;
//! * there is no shrinking — failures report the generated inputs instead;
//! * strategies are simple generator objects evaluated per case.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-importable surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced strategy constructors (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Discards the current case (does not count as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among equally-weighted strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `name(binding in strategy, ...)` function
/// runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            @config($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@config($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($bind:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut ran: u32 = 0;
            let mut attempts: u32 = 0;
            while ran < config.cases && attempts < config.cases * 16 {
                attempts += 1;
                let mut inputs = String::new();
                $(
                    let value = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    inputs.push_str(&format!(
                        "  {} = {:?}\n", stringify!($bind), &value
                    ));
                    let $bind = value;
                )+
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case {} of {}:\n{}\ninputs:\n{}",
                            stringify!($name), ran + 1, config.cases, msg, inputs
                        );
                    }
                }
            }
            assert!(
                ran == config.cases,
                "property {}: too many rejected cases ({} accepted of {} attempts)",
                stringify!($name), ran, attempts
            );
        }
    )*};
}
