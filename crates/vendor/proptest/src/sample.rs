//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::fmt::Debug;

/// Strategy choosing uniformly from a fixed set of values.
#[derive(Clone, Debug)]
pub struct Select<T: Clone + Debug>(Vec<T>);

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.below(self.0.len())].clone()
    }
}

/// Builds a uniform-choice strategy over `options`; panics if empty.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select of empty set");
    Select(options)
}
