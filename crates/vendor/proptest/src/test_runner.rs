//! Deterministic case generation and runner configuration.

/// Per-test configuration; only `cases` is interpreted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case does not count.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// SplitMix64 generator seeded from the test path: deterministic across
/// runs and processes, distinct between tests.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test identifier (FNV-1a of the path).
    pub fn for_test(path: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in path.as_bytes() {
            hash ^= *byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: hash }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `0..n`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}
