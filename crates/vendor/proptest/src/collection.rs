//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// Admissible length specifications for [`vec()`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// Strategy producing `Vec`s of elements drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi_inclusive - self.size.lo + 1;
        let len = self.size.lo + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds a `Vec` strategy with the given element strategy and length.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
