//! Strategies: deterministic value generators with a tiny combinator set.

use crate::test_runner::TestRng;
use core::fmt::Debug;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds the union; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.0.len());
        self.0[arm].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // i128 keeps negative signed bounds correct.
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v.max(self.start)
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        (lo + (hi - lo) * rng.unit_f64()).clamp(lo, hi)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws one value from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Whole-domain strategy for `T` (`any::<T>()`).
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Builds the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
