//! Offline mini-criterion: wall-clock benchmarking with the API subset
//! this workspace uses (`bench_function`, `benchmark_group`, `iter`,
//! `iter_batched`, the `criterion_group!`/`criterion_main!` macros).
//! Results are printed as a text report; nothing is written to disk.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How batched setup values are grouped; accepted for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per timed iteration.
    PerIteration,
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up and calibration: find an iteration count whose batch
        // runtime is long enough to time reliably.
        let mut iters: u64 = 1;
        let warm_until = Instant::now() + self.warm_up_time;
        let mut per_iter = Duration::from_nanos(1);
        while Instant::now() < warm_until {
            let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut bencher);
            per_iter = bencher.elapsed.max(Duration::from_nanos(1)) / iters as u32;
            let batch_target =
                (self.measurement_time / self.sample_size as u32).max(Duration::from_micros(50));
            if bencher.elapsed < batch_target {
                iters = iters.saturating_mul(2);
            } else {
                break;
            }
        }
        // Timed samples.
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let (min, max) = (samples_ns[0], samples_ns[samples_ns.len() - 1]);
        println!(
            "{id:<48} time: [{} {} {}]  ({} samples x {} iters)",
            format_ns(min),
            format_ns(median),
            format_ns(max),
            self.sample_size,
            iters,
        );
        let _ = per_iter;
        self
    }

    /// Opens a named group; group benchmarks are prefixed with its name.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Per-sample measurement context.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` / `cargo bench` pass harness flags; a plain
            // `--test` invocation must not run the full measurement.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
