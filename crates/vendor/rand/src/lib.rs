//! Offline shim for the `rand` crate exposing exactly the API subset this
//! workspace uses: [`RngCore`], [`SeedableRng`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], [`rngs::StdRng`], [`seq::SliceRandom::choose`], and
//! the ChaCha generators re-exported through the `rand_chacha` shim.
//!
//! Streams are deterministic functions of the seed (the contract the
//! simulator relies on) but are not bit-compatible with upstream `rand`.

pub mod chacha;

/// Core source of randomness.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// SplitMix64 step, used to expand `u64` seeds into full seed material.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator constructible from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut s).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // i128 keeps negative signed bounds correct.
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        if v >= self.end {
            self.start
        } else {
            v.max(self.start)
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        (lo + (hi - lo) * unit_f64(rng)).clamp(lo, hi)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator (ChaCha12 core).
    #[derive(Clone, Debug)]
    pub struct StdRng(crate::chacha::ChaChaCore<12>);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            StdRng(crate::chacha::ChaChaCore::new(seed))
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::Rng;

    /// Random element selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Uniformly picks one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chacha::ChaChaCore;

    #[test]
    fn deterministic_streams() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&i));
            let u = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn signed_ranges_with_negative_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = w;
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn chacha8_and_chacha12_streams_differ() {
        let mut a = ChaChaCore::<8>::new([9; 32]);
        let mut b = ChaChaCore::<12>::new([9; 32]);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
