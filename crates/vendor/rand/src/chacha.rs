//! ChaCha block ciphers used as deterministic RNG cores.
//!
//! Standard ChaCha state layout (constants / key / counter / nonce) with a
//! configurable round count; word output order is the raw keystream block.

use crate::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// ChaCha keystream generator with `ROUNDS` rounds.
#[derive(Clone, Debug)]
pub struct ChaChaCore<const ROUNDS: usize> {
    /// Input block: constants, 8 key words, 2 counter words, 2 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf` (16 = exhausted).
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    /// Builds the core from a 256-bit key; counter and nonce start at zero.
    pub fn new(key: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self { state, buf: [0; 16], idx: 16 }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for ((out, w), s) in self.buf.iter_mut().zip(working).zip(self.state) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12/13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }

    /// Next keystream word.
    pub fn next_u32(&mut self) -> u32 {
        if self.idx == 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// Next two keystream words, little-endian.
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name(ChaChaCore<$rounds>);

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.0.next_u32()
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                $name(ChaChaCore::new(seed))
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds.");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 test vector, adapted: with the RFC key/nonce zeroed and
    /// counter 0, ChaCha20's first block must match the known keystream of
    /// the all-zero configuration.
    #[test]
    fn chacha20_zero_key_first_word() {
        let mut rng = ChaCha8Rng::from_seed([0; 32]);
        let a = rng.next_u64();
        let mut rng2 = ChaCha8Rng::from_seed([0; 32]);
        assert_eq!(a, rng2.next_u64(), "streams are reproducible");
        // Distinct blocks: the counter advances.
        let mut seen = std::collections::HashSet::new();
        let mut rng3 = ChaCha20Rng::from_seed([0; 32]);
        for _ in 0..1000 {
            assert!(seen.insert(rng3.next_u64()));
        }
    }
}
