//! Offline shim for `serde`: no-op derive macros plus universally
//! implemented marker traits, so both `#[derive(Serialize)]` and
//! `T: Serialize` bounds compile without a real serialization framework.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; every type qualifies.
pub trait SerializeMarker {}
impl<T: ?Sized> SerializeMarker for T {}

/// Marker stand-in for `serde::Deserialize`; every type qualifies.
pub trait DeserializeMarker {}
impl<T: ?Sized> DeserializeMarker for T {}
