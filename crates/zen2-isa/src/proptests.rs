//! Property-based tests over the workload registry and data models.

use crate::hamming::{relative_weight, sample_with_weight, OperandWeight, ToggleModel};
use crate::ipc::SmtMode;
use crate::kernels::WorkloadSet;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 96 })]

    /// Every registered kernel validates and its core activity is a valid
    /// activity vector in both SMT modes.
    #[test]
    fn all_kernels_stay_valid(idx in 0usize..17) {
        let set = WorkloadSet::paper();
        let kernel = &set.all()[idx];
        prop_assert!(kernel.validate().is_ok());
        kernel.core_activity(SmtMode::Single).validate().unwrap();
        kernel.core_activity(SmtMode::Both).validate().unwrap();
    }

    /// SMT never lowers whole-core IPC and never lowers unit activity.
    #[test]
    fn smt_is_weakly_beneficial(idx in 0usize..17) {
        let set = WorkloadSet::paper();
        let kernel = &set.all()[idx];
        prop_assert!(kernel.ipc_core(SmtMode::Both) >= kernel.ipc_core(SmtMode::Single) - 1e-12);
        let s = kernel.core_activity(SmtMode::Single);
        let b = kernel.core_activity(SmtMode::Both);
        for ((_, sv), (_, bv)) in s.entries().iter().zip(b.entries().iter()) {
            prop_assert!(bv >= sv || (*bv - *sv).abs() < 1e-12);
        }
    }

    /// Toggle factors are positive, monotone in weight, and normalized at
    /// weight 0.5 for any plausible swing.
    #[test]
    fn toggle_model_properties(swing in 0.0f64..1.5, w1 in 0.0f64..=1.0, w2 in 0.0f64..=1.0) {
        let m = ToggleModel::with_relative_swing(swing);
        prop_assert!((m.factor(OperandWeight::HALF) - 1.0).abs() < 1e-12);
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        prop_assert!(m.factor(OperandWeight(lo)) <= m.factor(OperandWeight(hi)) + 1e-12);
        prop_assert!(m.factor(OperandWeight::ZERO) > 0.0);
    }

    /// Sampled operands have the requested expected Hamming weight.
    #[test]
    fn sampled_operands_match_weight(weight in 0.05f64..0.95, seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = OperandWeight(weight);
        let mean: f64 = (0..300)
            .map(|_| relative_weight(sample_with_weight(&mut rng, w)))
            .sum::<f64>() / 300.0;
        // 300 x 64 bits: standard error ~ sqrt(p q / 19200) < 0.004.
        prop_assert!((mean - weight).abs() < 0.02, "mean {mean} vs {weight}");
    }

    /// DRAM demand scales linearly with frequency for every kernel.
    #[test]
    fn dram_demand_is_linear_in_frequency(idx in 0usize..17, f in 0.5f64..3.0) {
        let set = WorkloadSet::paper();
        let kernel = &set.all()[idx];
        let base = kernel.dram_demand_bytes_per_s(SmtMode::Single, 1e9);
        let scaled = kernel.dram_demand_bytes_per_s(SmtMode::Single, f * 1e9);
        prop_assert!((scaled - base * f).abs() <= base * f * 1e-12 + 1e-9);
    }
}
