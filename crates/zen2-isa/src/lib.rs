//! Workload kernels and the micro-architectural execution model.
//!
//! The paper's experiments drive the machine with a small set of
//! well-characterized workloads: `while(1)` busy loops, unrolled `pause`
//! loops, FIRESTARTER 2, STREAM triad, pointer chasing, the Hackenberg
//! RAPL-quality kernel set (`sqrt`, `add_pd`, `mul_pd`, `matmul`,
//! `memory_read/write/copy`, `compute`, `busywait`, `idle`), and the
//! operand-Hamming-weight kernels (`vxorps`, `shr`).
//!
//! Rather than simulating instructions one by one, each workload is
//! described by a [`Kernel`]: sustained IPC (with and without an active SMT
//! sibling), a per-execution-unit [`ActivityVector`] that drives the dynamic
//! power model in `zen2-power`, per-instruction memory traffic, an EDC
//! current intensity (what fraction of the electrical design current
//! envelope the kernel pulls at nominal frequency), and a data-toggle
//! sensitivity for operand-dependent power (Section VII-B).
//!
//! This is the same abstraction level the hardware's own power management
//! uses: Zen 2's RAPL is "a model [that uses] data from processor internal
//! resource usage monitors", and its EDC manager "monitors activity ... and
//! throttles execution only when necessary".

pub mod activity;
pub mod hamming;
pub mod ipc;
pub mod kernel;
pub mod kernels;

#[cfg(test)]
mod proptests;

pub use activity::ActivityVector;
pub use hamming::{relative_weight, sample_with_weight, OperandWeight, ToggleModel};
pub use ipc::SmtMode;
pub use kernel::{Kernel, KernelClass, MemoryProfile};
pub use kernels::WorkloadSet;
