//! SMT occupancy and throughput accounting helpers.

use serde::{Deserialize, Serialize};

/// How many hardware threads of a core are executing a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SmtMode {
    /// One thread active, the sibling idle or offline.
    Single,
    /// Both SMT siblings active.
    Both,
}

impl SmtMode {
    /// Number of active threads.
    pub fn active_threads(self) -> usize {
        match self {
            SmtMode::Single => 1,
            SmtMode::Both => 2,
        }
    }

    /// Derives the mode from a count of active siblings.
    ///
    /// # Panics
    /// Panics if `active` is 0 or exceeds 2: a core with no active thread
    /// has no SMT mode, and Zen 2 has two hardware threads per core.
    pub fn from_active(active: usize) -> Self {
        match active {
            1 => SmtMode::Single,
            2 => SmtMode::Both,
            other => panic!("a Zen 2 core runs 1 or 2 threads, not {other}"),
        }
    }
}

/// Instructions retired over a wall-clock interval at a given effective
/// frequency and IPC.
#[inline]
pub fn instructions_in(seconds: f64, freq_hz: f64, ipc: f64) -> f64 {
    assert!(seconds >= 0.0 && freq_hz >= 0.0 && ipc >= 0.0);
    seconds * freq_hz * ipc
}

/// Unhalted cycles over a wall-clock interval (what APERF accumulates in C0).
#[inline]
pub fn cycles_in(seconds: f64, freq_hz: f64) -> f64 {
    assert!(seconds >= 0.0 && freq_hz >= 0.0);
    seconds * freq_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smt_mode_round_trip() {
        assert_eq!(SmtMode::from_active(1), SmtMode::Single);
        assert_eq!(SmtMode::from_active(2), SmtMode::Both);
        assert_eq!(SmtMode::Single.active_threads(), 1);
        assert_eq!(SmtMode::Both.active_threads(), 2);
    }

    #[test]
    #[should_panic(expected = "1 or 2 threads")]
    fn zero_active_threads_is_a_bug() {
        let _ = SmtMode::from_active(0);
    }

    #[test]
    fn instruction_accounting() {
        // 2 s at 2.5 GHz and IPC 3.56: 17.8e9 instructions.
        let n = instructions_in(2.0, 2.5e9, 3.56);
        assert!((n - 17.8e9).abs() < 1e3);
        assert_eq!(cycles_in(1.0, 2.5e9), 2.5e9);
    }
}
