//! Workload kernel descriptors.

use crate::activity::ActivityVector;
use crate::ipc::SmtMode;
use serde::{Deserialize, Serialize};

/// The paper's workload families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// No runnable thread: the OS parks the hardware thread in an idle state.
    Idle,
    /// Unrolled loop of `pause` instructions (Fig. 7 "active" workload).
    Pause,
    /// The cpuidle POLL loop: `pause` plus per-iteration checks; "less
    /// stable and slightly higher power" than the unrolled loop.
    Poll,
    /// `while(1);` — a one-instruction branch loop (Sections V-A, V-C).
    BusyWait,
    /// Generic scalar compute mix (Fig. 9).
    Compute,
    /// Blocked matrix multiply (Fig. 9).
    Matmul,
    /// `vsqrtpd` latency-bound loop (Fig. 9).
    Sqrt,
    /// Packed double adds, 256-bit (Fig. 9).
    AddPd,
    /// Packed double multiplies, 256-bit (Fig. 9).
    MulPd,
    /// Streaming reads missing all caches (Fig. 9).
    MemoryRead,
    /// Streaming writes missing all caches (Fig. 9).
    MemoryWrite,
    /// Streaming copy (Fig. 9).
    MemoryCopy,
    /// FIRESTARTER 2: near-peak back-end utilization, two 256-bit FMAs per
    /// cycle plus loads/stores and integer ops, loop sized to L1I (Fig. 6).
    Firestarter,
    /// STREAM triad `a[i] = b[i] + s*c[i]` (Fig. 5a).
    StreamTriad,
    /// Dependent-load pointer chase (Figs. 4, 5b).
    PointerChase,
    /// 256-bit `vxorps` with controlled operand Hamming weight (Fig. 10).
    VXorps,
    /// 64-bit `shr` with controlled operand Hamming weight (Fig. 10,
    /// contrasting PLATYPUS).
    Shr,
}

impl KernelClass {
    /// Stable lowercase name used in tables and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            KernelClass::Idle => "idle",
            KernelClass::Pause => "pause",
            KernelClass::Poll => "poll",
            KernelClass::BusyWait => "busywait",
            KernelClass::Compute => "compute",
            KernelClass::Matmul => "matmul",
            KernelClass::Sqrt => "sqrt",
            KernelClass::AddPd => "add_pd",
            KernelClass::MulPd => "mul_pd",
            KernelClass::MemoryRead => "memory_read",
            KernelClass::MemoryWrite => "memory_write",
            KernelClass::MemoryCopy => "memory_copy",
            KernelClass::Firestarter => "firestarter",
            KernelClass::StreamTriad => "stream_triad",
            KernelClass::PointerChase => "pointer_chase",
            KernelClass::VXorps => "vxorps",
            KernelClass::Shr => "shr",
        }
    }
}

/// Memory behavior of a kernel, per retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryProfile {
    /// Bytes read from DRAM per instruction (cache-miss traffic only).
    pub dram_read_bytes_per_instr: f64,
    /// Bytes written to DRAM per instruction.
    pub dram_write_bytes_per_instr: f64,
    /// Performance is bounded by DRAM *latency* (dependent loads): the
    /// simulator derives IPC from the memory model instead of the nominal
    /// value.
    pub latency_bound: bool,
    /// Performance is bounded by DRAM *bandwidth*: the simulator caps
    /// throughput with the bandwidth model.
    pub bandwidth_bound: bool,
}

impl MemoryProfile {
    /// No DRAM traffic at all (cache-resident kernel).
    pub const NONE: MemoryProfile = MemoryProfile {
        dram_read_bytes_per_instr: 0.0,
        dram_write_bytes_per_instr: 0.0,
        latency_bound: false,
        bandwidth_bound: false,
    };
}

/// A fully-described workload kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Which family this kernel belongs to.
    pub class: KernelClass,
    /// Sustained instructions per cycle with one thread on the core.
    pub ipc_single: f64,
    /// Sustained *combined* core IPC with both SMT siblings running it.
    pub ipc_smt: f64,
    /// Per-unit activity with a single thread active.
    pub activity: ActivityVector,
    /// DRAM behavior.
    pub memory: MemoryProfile,
    /// Fraction of the EDC current envelope the kernel pulls per core at
    /// nominal frequency and full activity. Values above ~1 trigger the
    /// EDC manager (Section V-E).
    pub edc_intensity: f64,
    /// Fraction of the kernel's dynamic power that scales with the operand
    /// toggle factor (Section VII-B).
    pub toggle_sensitivity: f64,
}

impl Kernel {
    /// Per-thread IPC under the given SMT occupancy.
    pub fn ipc_per_thread(&self, mode: SmtMode) -> f64 {
        match mode {
            SmtMode::Single => self.ipc_single,
            SmtMode::Both => self.ipc_smt / 2.0,
        }
    }

    /// Whole-core IPC under the given SMT occupancy.
    pub fn ipc_core(&self, mode: SmtMode) -> f64 {
        match mode {
            SmtMode::Single => self.ipc_single,
            SmtMode::Both => self.ipc_smt,
        }
    }

    /// Whole-core activity under the given SMT occupancy. With both
    /// siblings active the per-unit activity grows by the same ratio as the
    /// core IPC, saturating at 1 per unit.
    pub fn core_activity(&self, mode: SmtMode) -> ActivityVector {
        match mode {
            SmtMode::Single => self.activity,
            SmtMode::Both => {
                let ratio =
                    if self.ipc_single > 0.0 { self.ipc_smt / self.ipc_single } else { 1.0 };
                self.activity.scaled(ratio)
            }
        }
    }

    /// DRAM bytes touched per second by one core at the given effective
    /// frequency (Hz), before any bandwidth capping.
    pub fn dram_demand_bytes_per_s(&self, mode: SmtMode, freq_hz: f64) -> f64 {
        let instr_per_s = self.ipc_core(mode) * freq_hz;
        instr_per_s
            * (self.memory.dram_read_bytes_per_instr + self.memory.dram_write_bytes_per_instr)
    }

    /// Internal consistency checks; run by the workload-set constructor.
    pub fn validate(&self) -> Result<(), String> {
        self.activity.validate().map_err(|e| format!("{}: {e}", self.class.name()))?;
        if self.ipc_single < 0.0 || self.ipc_smt < 0.0 {
            return Err(format!("{}: negative IPC", self.class.name()));
        }
        if self.ipc_smt + 1e-12 < self.ipc_single {
            return Err(format!(
                "{}: SMT core IPC {} below single-thread IPC {}",
                self.class.name(),
                self.ipc_smt,
                self.ipc_single
            ));
        }
        if !(0.0..=2.0).contains(&self.edc_intensity) {
            return Err(format!("{}: implausible EDC intensity", self.class.name()));
        }
        if !(0.0..=1.0).contains(&self.toggle_sensitivity) {
            return Err(format!("{}: toggle sensitivity outside [0,1]", self.class.name()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::WorkloadSet;

    #[test]
    fn names_are_stable() {
        assert_eq!(KernelClass::AddPd.name(), "add_pd");
        assert_eq!(KernelClass::MemoryRead.name(), "memory_read");
        assert_eq!(KernelClass::Firestarter.name(), "firestarter");
    }

    #[test]
    fn smt_ipc_split() {
        let set = WorkloadSet::paper();
        let fs = set.kernel(KernelClass::Firestarter);
        assert!((fs.ipc_core(SmtMode::Both) - 3.56).abs() < 1e-9);
        assert!((fs.ipc_core(SmtMode::Single) - 3.23).abs() < 1e-9);
        assert!((fs.ipc_per_thread(SmtMode::Both) - 1.78).abs() < 1e-9);
    }

    #[test]
    fn core_activity_grows_with_smt_but_saturates() {
        let set = WorkloadSet::paper();
        let fs = set.kernel(KernelClass::Firestarter);
        let single = fs.core_activity(SmtMode::Single);
        let both = fs.core_activity(SmtMode::Both);
        assert!(both.int_alu >= single.int_alu);
        assert!(both.fp256_upper <= 1.0);
        both.validate().unwrap();
    }

    #[test]
    fn dram_demand_scales_with_frequency() {
        let set = WorkloadSet::paper();
        let mr = set.kernel(KernelClass::MemoryRead);
        let at_1 = mr.dram_demand_bytes_per_s(SmtMode::Single, 1.0e9);
        let at_2 = mr.dram_demand_bytes_per_s(SmtMode::Single, 2.0e9);
        assert!(at_1 > 0.0);
        assert!((at_2 / at_1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn validate_catches_smt_regression() {
        let set = WorkloadSet::paper();
        let mut k = set.kernel(KernelClass::Compute).clone();
        k.ipc_smt = k.ipc_single / 2.0;
        assert!(k.validate().unwrap_err().contains("below single-thread"));
    }
}
