//! Operand-data power dependence (Section VII-B).
//!
//! "The power consumption for executing a workload does not only depend on
//! the used instructions, but also on the processed data." The paper drives
//! `vxorps`/`shr` loops whose operands have a controlled *relative Hamming
//! weight* (fraction of set bits: 0, 0.5 or 1) and shows a 21 W / 7.6 %
//! full-system AC difference for `vxorps` that AMD's RAPL does not reflect.
//!
//! [`ToggleModel`] converts an operand weight into a dynamic-power *toggle
//! factor* — the multiplier on the data-sensitive share of a kernel's
//! switched capacitance. [`sample_with_weight`] generates operand values of
//! a given weight for tests and for the (deliberately blind) RAPL model's
//! counterexamples.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Relative Hamming weight of operand data: fraction of set bits in `[0,1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct OperandWeight(pub f64);

impl OperandWeight {
    /// All-zero operands.
    pub const ZERO: OperandWeight = OperandWeight(0.0);
    /// Half the bits set — the typical-case reference.
    pub const HALF: OperandWeight = OperandWeight(0.5);
    /// All-ones operands.
    pub const FULL: OperandWeight = OperandWeight(1.0);

    /// The three weights the paper sweeps.
    pub const PAPER_SWEEP: [OperandWeight; 3] =
        [OperandWeight::ZERO, OperandWeight::HALF, OperandWeight::FULL];

    /// Validates the weight is a fraction.
    pub fn validate(self) -> Result<Self, String> {
        if self.0.is_finite() && (0.0..=1.0).contains(&self.0) {
            Ok(self)
        } else {
            Err(format!("operand weight {} outside [0, 1]", self.0))
        }
    }
}

/// Linear toggle-factor model: data-sensitive switched capacitance scales
/// with the number of toggling result bits.
///
/// For an xor whose destination toggles proportionally to the operand
/// weight, the factor at weight `w` is `base + span * w`. The factor is
/// normalized so weight 0.5 gives 1.0 (typical data), which keeps
/// calibration of the absolute power model independent of the data sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToggleModel {
    /// Factor at weight 0.
    pub base: f64,
    /// Increase from weight 0 to weight 1.
    pub span: f64,
}

impl ToggleModel {
    /// A data-insensitive model (factor 1 regardless of weight).
    pub const FLAT: ToggleModel = ToggleModel { base: 1.0, span: 0.0 };

    /// Builds a model from the relative power swing between weight 0 and
    /// weight 1 (e.g. `0.152` for the 15.2 % swing that produces the
    /// paper's 21 W at a 276 W operating point when applied to the
    /// data-sensitive share). Normalized to 1.0 at weight 0.5.
    pub fn with_relative_swing(swing: f64) -> Self {
        assert!((0.0..2.0).contains(&swing), "implausible toggle swing {swing}");
        // factor(w) = base + span*w with factor(0.5) = 1 and
        // (factor(1) - factor(0)) / factor(0.5) = swing.
        ToggleModel { base: 1.0 - swing / 2.0, span: swing }
    }

    /// The toggle factor for operands of weight `w`.
    pub fn factor(&self, w: OperandWeight) -> f64 {
        let w = w.validate().expect("operand weight validated");
        self.base + self.span * w.0
    }
}

/// Generates a 64-bit operand whose expected relative Hamming weight is `w`
/// (each bit set independently with probability `w`).
pub fn sample_with_weight<R: Rng + ?Sized>(rng: &mut R, w: OperandWeight) -> u64 {
    let w = w.validate().expect("operand weight validated");
    if w.0 <= 0.0 {
        return 0;
    }
    if w.0 >= 1.0 {
        return u64::MAX;
    }
    let mut value = 0u64;
    for bit in 0..64 {
        if rng.gen_bool(w.0) {
            value |= 1 << bit;
        }
    }
    value
}

/// The relative Hamming weight of a value.
pub fn relative_weight(value: u64) -> f64 {
    value.count_ones() as f64 / 64.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn toggle_model_normalized_at_half_weight() {
        let m = ToggleModel::with_relative_swing(0.152);
        assert!((m.factor(OperandWeight::HALF) - 1.0).abs() < 1e-12);
        let swing = m.factor(OperandWeight::FULL) - m.factor(OperandWeight::ZERO);
        assert!((swing - 0.152).abs() < 1e-12);
        assert!(m.factor(OperandWeight::ZERO) < m.factor(OperandWeight::FULL));
    }

    #[test]
    fn flat_model_ignores_weight() {
        for w in OperandWeight::PAPER_SWEEP {
            assert_eq!(ToggleModel::FLAT.factor(w), 1.0);
        }
    }

    #[test]
    fn extreme_weights_are_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(sample_with_weight(&mut rng, OperandWeight::ZERO), 0);
        assert_eq!(sample_with_weight(&mut rng, OperandWeight::FULL), u64::MAX);
        assert_eq!(relative_weight(0), 0.0);
        assert_eq!(relative_weight(u64::MAX), 1.0);
    }

    #[test]
    fn sampled_weight_concentrates_near_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mean: f64 = (0..2000)
            .map(|_| relative_weight(sample_with_weight(&mut rng, OperandWeight::HALF)))
            .sum::<f64>()
            / 2000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean weight {mean}");
    }

    #[test]
    fn invalid_weight_is_rejected() {
        assert!(OperandWeight(1.5).validate().is_err());
        assert!(OperandWeight(f64::NAN).validate().is_err());
        assert!(OperandWeight(-0.1).validate().is_err());
    }
}
