//! Per-execution-unit activity factors.
//!
//! Zen 2 clock-gates idle portions of its wide back-end at fine granularity
//! ("Zen 2 gated the FP clock mesh 128-bit regions with no additional
//! clocking overhead", Singh et al.). Dynamic core power therefore depends
//! on *which* units a workload keeps busy, not just on instruction count.
//! An [`ActivityVector`] captures per-unit utilization in `[0, 1]`; the
//! power model multiplies each entry by that unit's switched capacitance.

use serde::{Deserialize, Serialize};

/// Utilization of each gateable core region, normalized to `[0, 1]`
/// (1 = the unit switches every cycle).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivityVector {
    /// Front-end: fetch windows consumed, decode slots, op-cache misses.
    pub frontend: f64,
    /// Integer ALUs and AGUs.
    pub int_alu: f64,
    /// Lower 128-bit lanes of the FP/SIMD units.
    pub fp128: f64,
    /// Upper 128-bit lanes — only powered for 256-bit SIMD work; their
    /// gating "saved 15 % clock mesh power ... where FP was inactive".
    pub fp256_upper: f64,
    /// Load/store pipes and L1D traffic.
    pub load_store: f64,
    /// L2 traffic intensity.
    pub l2: f64,
    /// L3 (CCX) traffic intensity.
    pub l3: f64,
}

impl ActivityVector {
    /// A fully idle core region set (clock-gated everything).
    pub const IDLE: ActivityVector = ActivityVector {
        frontend: 0.0,
        int_alu: 0.0,
        fp128: 0.0,
        fp256_upper: 0.0,
        load_store: 0.0,
        l2: 0.0,
        l3: 0.0,
    };

    /// Validates that every factor is a finite value in `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in self.entries() {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(format!("activity factor {name} = {v} outside [0, 1]"));
            }
        }
        Ok(())
    }

    /// Named entries, for validation and diagnostics.
    pub fn entries(&self) -> [(&'static str, f64); 7] {
        [
            ("frontend", self.frontend),
            ("int_alu", self.int_alu),
            ("fp128", self.fp128),
            ("fp256_upper", self.fp256_upper),
            ("load_store", self.load_store),
            ("l2", self.l2),
            ("l3", self.l3),
        ]
    }

    /// Weighted sum against per-unit switched-capacitance weights; the
    /// power model's inner product.
    pub fn weighted_sum(&self, weights: &ActivityVector) -> f64 {
        self.frontend * weights.frontend
            + self.int_alu * weights.int_alu
            + self.fp128 * weights.fp128
            + self.fp256_upper * weights.fp256_upper
            + self.load_store * weights.load_store
            + self.l2 * weights.l2
            + self.l3 * weights.l3
    }

    /// Scales every factor (e.g. for partial-duty workloads), clamping to 1.
    pub fn scaled(&self, factor: f64) -> ActivityVector {
        assert!(factor >= 0.0 && factor.is_finite(), "scale factor must be non-negative");
        ActivityVector {
            frontend: (self.frontend * factor).min(1.0),
            int_alu: (self.int_alu * factor).min(1.0),
            fp128: (self.fp128 * factor).min(1.0),
            fp256_upper: (self.fp256_upper * factor).min(1.0),
            load_store: (self.load_store * factor).min(1.0),
            l2: (self.l2 * factor).min(1.0),
            l3: (self.l3 * factor).min(1.0),
        }
    }

    /// Combines the activity of two SMT threads sharing one core. Units
    /// saturate: two threads cannot switch one ALU twice per cycle.
    pub fn saturating_add(&self, other: &ActivityVector) -> ActivityVector {
        ActivityVector {
            frontend: (self.frontend + other.frontend).min(1.0),
            int_alu: (self.int_alu + other.int_alu).min(1.0),
            fp128: (self.fp128 + other.fp128).min(1.0),
            fp256_upper: (self.fp256_upper + other.fp256_upper).min(1.0),
            load_store: (self.load_store + other.load_store).min(1.0),
            l2: (self.l2 + other.l2).min(1.0),
            l3: (self.l3 + other.l3).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ActivityVector {
        ActivityVector {
            frontend: 0.5,
            int_alu: 0.25,
            fp128: 1.0,
            fp256_upper: 1.0,
            load_store: 0.5,
            l2: 0.1,
            l3: 0.05,
        }
    }

    #[test]
    fn idle_is_valid_and_zero() {
        ActivityVector::IDLE.validate().unwrap();
        assert_eq!(ActivityVector::IDLE.weighted_sum(&sample()), 0.0);
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut v = sample();
        v.fp256_upper = 1.5;
        assert!(v.validate().unwrap_err().contains("fp256_upper"));
        v.fp256_upper = f64::NAN;
        assert!(v.validate().is_err());
        v.fp256_upper = -0.1;
        assert!(v.validate().is_err());
    }

    #[test]
    fn weighted_sum_is_inner_product() {
        let v = sample();
        let mut w = ActivityVector::IDLE;
        w.fp128 = 2.0;
        w.fp256_upper = 3.0;
        assert!((v.weighted_sum(&w) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_clamps_at_one() {
        let v = sample().scaled(4.0);
        assert_eq!(v.fp128, 1.0);
        assert_eq!(v.int_alu, 1.0);
        v.validate().unwrap();
        let half = sample().scaled(0.5);
        assert!((half.frontend - 0.25).abs() < 1e-12);
    }

    #[test]
    fn saturating_add_models_shared_units() {
        let v = sample().saturating_add(&sample());
        assert_eq!(v.fp128, 1.0);
        assert!((v.int_alu - 0.5).abs() < 1e-12);
        v.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn scaled_rejects_negative() {
        let _ = sample().scaled(-1.0);
    }
}
