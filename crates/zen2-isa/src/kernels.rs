//! The paper's workload registry with calibrated descriptors.
//!
//! IPC values come straight from the paper where reported (FIRESTARTER:
//! 3.56 core IPC with SMT, 3.23 without; busy loops retire one branch per
//! cycle). Activity vectors encode which units each kernel keeps busy; the
//! absolute power scale lives in `zen2-power`, so the vectors here only
//! need to get the *relative* unit mix right.

use crate::activity::ActivityVector;
use crate::kernel::{Kernel, KernelClass, MemoryProfile};

/// Registry of all workload kernels used by the experiments.
#[derive(Debug, Clone)]
pub struct WorkloadSet {
    kernels: Vec<Kernel>,
}

impl WorkloadSet {
    /// Builds the full calibrated paper workload set.
    ///
    /// # Panics
    /// Panics if any descriptor fails validation — that is a construction
    /// bug, caught at startup rather than mid-experiment.
    pub fn paper() -> Self {
        let kernels = vec![
            Kernel {
                class: KernelClass::Idle,
                ipc_single: 0.0,
                ipc_smt: 0.0,
                activity: ActivityVector::IDLE,
                memory: MemoryProfile::NONE,
                edc_intensity: 0.0,
                toggle_sensitivity: 0.0,
            },
            Kernel {
                class: KernelClass::Pause,
                // `pause` stalls the pipeline for tens of cycles; the
                // unrolled loop retires very few instructions.
                ipc_single: 0.05,
                ipc_smt: 0.10,
                activity: ActivityVector {
                    frontend: 0.04,
                    int_alu: 0.02,
                    fp128: 0.0,
                    fp256_upper: 0.0,
                    load_store: 0.0,
                    l2: 0.0,
                    l3: 0.0,
                },
                memory: MemoryProfile::NONE,
                edc_intensity: 0.05,
                toggle_sensitivity: 0.0,
            },
            Kernel {
                class: KernelClass::Poll,
                // POLL adds per-iteration need_resched checks: more
                // front-end and ALU work than the unrolled pause loop.
                ipc_single: 0.12,
                ipc_smt: 0.22,
                activity: ActivityVector {
                    frontend: 0.08,
                    int_alu: 0.05,
                    fp128: 0.0,
                    fp256_upper: 0.0,
                    load_store: 0.02,
                    l2: 0.0,
                    l3: 0.0,
                },
                memory: MemoryProfile::NONE,
                edc_intensity: 0.07,
                toggle_sensitivity: 0.0,
            },
            Kernel {
                class: KernelClass::BusyWait,
                // while(1);  — one taken branch per cycle.
                ipc_single: 1.0,
                ipc_smt: 2.0,
                activity: ActivityVector {
                    frontend: 0.35,
                    int_alu: 0.25,
                    fp128: 0.0,
                    fp256_upper: 0.0,
                    load_store: 0.0,
                    l2: 0.0,
                    l3: 0.0,
                },
                memory: MemoryProfile::NONE,
                edc_intensity: 0.25,
                toggle_sensitivity: 0.02,
            },
            Kernel {
                class: KernelClass::Compute,
                ipc_single: 2.5,
                ipc_smt: 3.2,
                activity: ActivityVector {
                    frontend: 0.7,
                    int_alu: 0.7,
                    fp128: 0.3,
                    fp256_upper: 0.0,
                    load_store: 0.3,
                    l2: 0.1,
                    l3: 0.02,
                },
                memory: MemoryProfile::NONE,
                edc_intensity: 0.55,
                toggle_sensitivity: 0.08,
            },
            Kernel {
                class: KernelClass::Matmul,
                ipc_single: 3.0,
                ipc_smt: 3.4,
                activity: ActivityVector {
                    frontend: 0.8,
                    int_alu: 0.5,
                    fp128: 0.9,
                    fp256_upper: 0.9,
                    load_store: 0.7,
                    l2: 0.5,
                    l3: 0.3,
                },
                memory: MemoryProfile {
                    dram_read_bytes_per_instr: 0.2,
                    dram_write_bytes_per_instr: 0.05,
                    latency_bound: false,
                    bandwidth_bound: false,
                },
                edc_intensity: 0.95,
                toggle_sensitivity: 0.10,
            },
            Kernel {
                class: KernelClass::Sqrt,
                // vsqrtpd: ~20-cycle reciprocal throughput, latency chain.
                ipc_single: 0.25,
                ipc_smt: 0.45,
                activity: ActivityVector {
                    frontend: 0.1,
                    int_alu: 0.05,
                    fp128: 0.35,
                    fp256_upper: 0.25,
                    load_store: 0.0,
                    l2: 0.0,
                    l3: 0.0,
                },
                memory: MemoryProfile::NONE,
                edc_intensity: 0.35,
                toggle_sensitivity: 0.06,
            },
            Kernel {
                class: KernelClass::AddPd,
                // Two 256-bit FADD pipes.
                ipc_single: 2.0,
                ipc_smt: 2.0,
                activity: ActivityVector {
                    frontend: 0.5,
                    int_alu: 0.1,
                    fp128: 0.9,
                    fp256_upper: 0.9,
                    load_store: 0.0,
                    l2: 0.0,
                    l3: 0.0,
                },
                memory: MemoryProfile::NONE,
                edc_intensity: 0.70,
                toggle_sensitivity: 0.12,
            },
            Kernel {
                class: KernelClass::MulPd,
                // Two 256-bit FMUL pipes; multipliers switch more logic
                // than adders.
                ipc_single: 2.0,
                ipc_smt: 2.0,
                activity: ActivityVector {
                    frontend: 0.5,
                    int_alu: 0.1,
                    fp128: 1.0,
                    fp256_upper: 1.0,
                    load_store: 0.0,
                    l2: 0.0,
                    l3: 0.0,
                },
                memory: MemoryProfile::NONE,
                edc_intensity: 0.80,
                toggle_sensitivity: 0.14,
            },
            Kernel {
                class: KernelClass::MemoryRead,
                ipc_single: 0.40,
                ipc_smt: 0.50,
                activity: ActivityVector {
                    frontend: 0.2,
                    int_alu: 0.1,
                    fp128: 0.0,
                    fp256_upper: 0.0,
                    load_store: 0.6,
                    l2: 0.6,
                    l3: 0.6,
                },
                memory: MemoryProfile {
                    dram_read_bytes_per_instr: 16.0,
                    dram_write_bytes_per_instr: 0.0,
                    latency_bound: false,
                    bandwidth_bound: true,
                },
                edc_intensity: 0.35,
                toggle_sensitivity: 0.04,
            },
            Kernel {
                class: KernelClass::MemoryWrite,
                ipc_single: 0.40,
                ipc_smt: 0.50,
                activity: ActivityVector {
                    frontend: 0.2,
                    int_alu: 0.1,
                    fp128: 0.0,
                    fp256_upper: 0.0,
                    load_store: 0.6,
                    l2: 0.6,
                    l3: 0.6,
                },
                memory: MemoryProfile {
                    dram_read_bytes_per_instr: 0.0,
                    dram_write_bytes_per_instr: 16.0,
                    latency_bound: false,
                    bandwidth_bound: true,
                },
                edc_intensity: 0.35,
                toggle_sensitivity: 0.04,
            },
            Kernel {
                class: KernelClass::MemoryCopy,
                ipc_single: 0.40,
                ipc_smt: 0.50,
                activity: ActivityVector {
                    frontend: 0.2,
                    int_alu: 0.1,
                    fp128: 0.0,
                    fp256_upper: 0.0,
                    load_store: 0.7,
                    l2: 0.7,
                    l3: 0.7,
                },
                memory: MemoryProfile {
                    dram_read_bytes_per_instr: 8.0,
                    dram_write_bytes_per_instr: 8.0,
                    latency_bound: false,
                    bandwidth_bound: true,
                },
                edc_intensity: 0.35,
                toggle_sensitivity: 0.04,
            },
            Kernel {
                class: KernelClass::Firestarter,
                // Paper Fig. 6: 3.23 core IPC without SMT, 3.56 with
                // (maximum is 4 due to the L1I-resident inner loop).
                ipc_single: 3.23,
                ipc_smt: 3.56,
                activity: ActivityVector {
                    frontend: 0.95,
                    int_alu: 0.65,
                    fp128: 1.0,
                    fp256_upper: 1.0,
                    load_store: 0.85,
                    l2: 0.5,
                    l3: 0.35,
                },
                memory: MemoryProfile {
                    dram_read_bytes_per_instr: 0.3,
                    dram_write_bytes_per_instr: 0.1,
                    latency_bound: false,
                    bandwidth_bound: false,
                },
                // Above 1: exceeds the electrical design envelope at
                // nominal frequency, which is what forces the EDC manager
                // to throttle to ~2.0-2.1 GHz.
                edc_intensity: 1.30,
                toggle_sensitivity: 0.10,
            },
            Kernel {
                class: KernelClass::StreamTriad,
                ipc_single: 0.9,
                ipc_smt: 1.0,
                activity: ActivityVector {
                    frontend: 0.4,
                    int_alu: 0.2,
                    fp128: 0.3,
                    fp256_upper: 0.3,
                    load_store: 0.9,
                    l2: 0.8,
                    l3: 0.8,
                },
                memory: MemoryProfile {
                    // Triad: 16 B read (b, c) + 8 B write (a) per 8 B of
                    // arithmetic; expressed per instruction of the loop.
                    dram_read_bytes_per_instr: 10.0,
                    dram_write_bytes_per_instr: 5.0,
                    latency_bound: false,
                    bandwidth_bound: true,
                },
                edc_intensity: 0.45,
                toggle_sensitivity: 0.04,
            },
            Kernel {
                class: KernelClass::PointerChase,
                // One dependent load outstanding; IPC is derived from the
                // memory-latency model at run time.
                ipc_single: 0.01,
                ipc_smt: 0.02,
                activity: ActivityVector {
                    frontend: 0.02,
                    int_alu: 0.01,
                    fp128: 0.0,
                    fp256_upper: 0.0,
                    load_store: 0.05,
                    l2: 0.05,
                    l3: 0.05,
                },
                memory: MemoryProfile {
                    dram_read_bytes_per_instr: 64.0,
                    dram_write_bytes_per_instr: 0.0,
                    latency_bound: true,
                    bandwidth_bound: false,
                },
                edc_intensity: 0.10,
                toggle_sensitivity: 0.0,
            },
            Kernel {
                class: KernelClass::VXorps,
                // 256-bit xors on both FP pipes. An xor switches far less
                // logic than a multiplier (no partial products), so its
                // unit activity is modest — but what it does switch is the
                // datapath itself, so destination toggles track the
                // operand Hamming weight almost directly, hence the high
                // toggle sensitivity (Fig. 10a: 21 W / 7.6 % system swing).
                ipc_single: 2.0,
                ipc_smt: 2.0,
                activity: ActivityVector {
                    frontend: 0.3,
                    int_alu: 0.1,
                    fp128: 0.35,
                    fp256_upper: 0.35,
                    load_store: 0.0,
                    l2: 0.0,
                    l3: 0.0,
                },
                memory: MemoryProfile::NONE,
                edc_intensity: 0.60,
                toggle_sensitivity: 0.55,
            },
            Kernel {
                class: KernelClass::Shr,
                // Scalar 64-bit shifts: narrow datapath, so the operand
                // weight barely matters (paper: system power within 0.9 %).
                ipc_single: 3.5,
                ipc_smt: 4.0,
                activity: ActivityVector {
                    frontend: 0.8,
                    int_alu: 0.9,
                    fp128: 0.0,
                    fp256_upper: 0.0,
                    load_store: 0.0,
                    l2: 0.0,
                    l3: 0.0,
                },
                memory: MemoryProfile::NONE,
                edc_intensity: 0.40,
                toggle_sensitivity: 0.05,
            },
        ];
        for k in &kernels {
            if let Err(e) = k.validate() {
                panic!("invalid kernel descriptor: {e}");
            }
        }
        Self { kernels }
    }

    /// Looks a kernel up by class.
    ///
    /// # Panics
    /// Panics if the class is missing from the registry (construction bug).
    pub fn kernel(&self, class: KernelClass) -> &Kernel {
        self.kernels
            .iter()
            .find(|k| k.class == class)
            .unwrap_or_else(|| panic!("kernel {:?} missing from workload set", class))
    }

    /// Looks a kernel up by its stable name.
    pub fn by_name(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.class.name() == name)
    }

    /// All kernels.
    pub fn all(&self) -> &[Kernel] {
        &self.kernels
    }

    /// The ten workloads of the Fig. 9 RAPL-quality sweep, in the paper's
    /// legend order.
    pub fn rapl_quality_set(&self) -> Vec<&Kernel> {
        [
            KernelClass::Idle,
            KernelClass::AddPd,
            KernelClass::BusyWait,
            KernelClass::Compute,
            KernelClass::Matmul,
            KernelClass::MemoryRead,
            KernelClass::MulPd,
            KernelClass::Sqrt,
            KernelClass::MemoryWrite,
            KernelClass::MemoryCopy,
        ]
        .iter()
        .map(|&c| self.kernel(c))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipc::SmtMode;

    #[test]
    fn registry_contains_all_classes() {
        let set = WorkloadSet::paper();
        assert_eq!(set.all().len(), 17);
        for class in [
            KernelClass::Idle,
            KernelClass::Pause,
            KernelClass::Poll,
            KernelClass::BusyWait,
            KernelClass::Compute,
            KernelClass::Matmul,
            KernelClass::Sqrt,
            KernelClass::AddPd,
            KernelClass::MulPd,
            KernelClass::MemoryRead,
            KernelClass::MemoryWrite,
            KernelClass::MemoryCopy,
            KernelClass::Firestarter,
            KernelClass::StreamTriad,
            KernelClass::PointerChase,
            KernelClass::VXorps,
            KernelClass::Shr,
        ] {
            assert_eq!(set.kernel(class).class, class);
        }
    }

    #[test]
    fn by_name_round_trips() {
        let set = WorkloadSet::paper();
        for k in set.all() {
            assert_eq!(set.by_name(k.class.name()).unwrap().class, k.class);
        }
        assert!(set.by_name("no_such_kernel").is_none());
    }

    #[test]
    fn rapl_quality_set_matches_figure_legend() {
        let set = WorkloadSet::paper();
        let names: Vec<_> = set.rapl_quality_set().iter().map(|k| k.class.name()).collect();
        assert_eq!(
            names,
            vec![
                "idle",
                "add_pd",
                "busywait",
                "compute",
                "matmul",
                "memory_read",
                "mul_pd",
                "sqrt",
                "memory_write",
                "memory_copy"
            ]
        );
    }

    #[test]
    fn firestarter_matches_paper_ipc() {
        let set = WorkloadSet::paper();
        let fs = set.kernel(KernelClass::Firestarter);
        assert!((fs.ipc_core(SmtMode::Both) - 3.56).abs() < 1e-12);
        assert!((fs.ipc_core(SmtMode::Single) - 3.23).abs() < 1e-12);
        assert!(fs.edc_intensity > 1.0, "FIRESTARTER must exceed the EDC envelope");
    }

    #[test]
    fn only_wide_simd_kernels_power_upper_lanes() {
        let set = WorkloadSet::paper();
        assert_eq!(set.kernel(KernelClass::Shr).activity.fp256_upper, 0.0);
        assert_eq!(set.kernel(KernelClass::BusyWait).activity.fp256_upper, 0.0);
        assert!(set.kernel(KernelClass::Firestarter).activity.fp256_upper > 0.9);
        assert!(set.kernel(KernelClass::VXorps).activity.fp256_upper > 0.2);
    }

    #[test]
    fn vxorps_is_data_sensitive_and_shr_is_not() {
        let set = WorkloadSet::paper();
        let vx = set.kernel(KernelClass::VXorps).toggle_sensitivity;
        let shr = set.kernel(KernelClass::Shr).toggle_sensitivity;
        assert!(vx > 5.0 * shr, "vxorps {vx} should dwarf shr {shr}");
    }

    #[test]
    fn memory_kernels_are_bandwidth_bound() {
        let set = WorkloadSet::paper();
        for class in [KernelClass::MemoryRead, KernelClass::MemoryWrite, KernelClass::MemoryCopy] {
            assert!(set.kernel(class).memory.bandwidth_bound);
        }
        assert!(set.kernel(KernelClass::PointerChase).memory.latency_bound);
        assert!(!set.kernel(KernelClass::AddPd).memory.bandwidth_bound);
    }
}
