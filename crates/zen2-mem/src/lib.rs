//! Memory-subsystem performance model for Zen 2 "Rome".
//!
//! Rome routes every DRAM access through the I/O die: core → CCX L3 → CCD
//! Infinity Fabric link (GMI) → I/O-die switch → unified memory controller
//! → DDR4 channel. Three clock domains are involved (Section V-D of the
//! paper):
//!
//! * **FCLK** — the Infinity Fabric / I/O-die clock, selected by the BIOS
//!   "I/O die P-state" or by the `auto` hardware control loop,
//! * **UCLK** — the memory-controller clock,
//! * **MEMCLK** — the DRAM clock (1467 MHz for DDR4-2933, 1600 MHz for
//!   DDR4-3200 on the paper's system).
//!
//! The paper's central observation is that *matching* these domains matters
//! more than raising any one of them: the `auto` setting (FCLK coupled to
//! MEMCLK) beats the pinned fastest P-state for latency, and a higher DRAM
//! clock does not help because it forces asynchronous domain crossings.
//! [`fclk::ClockPlan`] captures the mechanism: each crossing is cheap when
//! the two clocks are synchronous or form a small integer ratio (the
//! crossing scheduler can run a fixed pattern) and expensive otherwise.
//!
//! The crate also models the CCX-local L3 whose clock follows the fastest
//! core in the complex ([`latency::L3LatencyModel`], Fig. 4), DRAM load
//! latency ([`latency::DramLatencyModel`], Fig. 5b), and STREAM-style
//! bandwidth saturation ([`bandwidth::StreamBandwidthModel`], Fig. 5a).

pub mod bandwidth;
pub mod fclk;
pub mod hierarchy;
pub mod latency;

#[cfg(test)]
mod proptests;

pub use bandwidth::StreamBandwidthModel;
pub use fclk::{ClockPlan, CrossingQuality, DramFreq, IodPstate};
pub use hierarchy::CacheHierarchy;
pub use latency::{DramLatencyModel, L3LatencyModel};
