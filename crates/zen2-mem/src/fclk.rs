//! I/O-die P-states and clock-domain planning.

use serde::{Deserialize, Serialize};
use std::fmt;

/// DRAM clock options on the paper's system (DDR4-2933 and DDR4-3200).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramFreq {
    /// DDR4-2933: MEMCLK 1467 MHz — the platform default ("memory is
    /// clocked at 1.6 GHz" refers to the faster BIOS option).
    Mhz1467,
    /// DDR4-3200: MEMCLK 1600 MHz.
    Mhz1600,
}

impl DramFreq {
    /// MEMCLK in MHz.
    pub fn memclk_mhz(self) -> u32 {
        match self {
            DramFreq::Mhz1467 => 1467,
            DramFreq::Mhz1600 => 1600,
        }
    }

    /// Both options, in the paper's sweep order.
    pub const SWEEP: [DramFreq; 2] = [DramFreq::Mhz1467, DramFreq::Mhz1600];

    /// Peak DDR4 transfer rate per channel in GB/s (two transfers per
    /// MEMCLK cycle, 8 bytes per transfer).
    pub fn channel_peak_gbs(self) -> f64 {
        2.0 * self.memclk_mhz() as f64 * 1e6 * 8.0 / 1e9
    }
}

impl fmt::Display for DramFreq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramFreq::Mhz1467 => write!(f, "1.467 GHz"),
            DramFreq::Mhz1600 => write!(f, "1.6 GHz"),
        }
    }
}

/// BIOS I/O-die P-state selection.
///
/// The FCLK value behind each numbered P-state is *not publicly
/// documented* ("the underlying mechanism is not disclosed", Section
/// III-C); the table below is inferred from the paper's Fig. 5
/// measurements, which show a non-monotone mapping: P2 outperforms P1 in
/// both bandwidth and latency, and P0 matches the `auto` setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IodPstate {
    /// Reference fabric clock (1467 MHz, synchronous with DDR4-2933).
    P0,
    /// Power-save fabric clock (1200 MHz).
    P1,
    /// Intermediate fabric clock (1333 MHz).
    P2,
    /// Deep power-save fabric clock (800 MHz).
    P3,
    /// Hardware control loop: couples FCLK to MEMCLK where possible.
    Auto,
}

impl IodPstate {
    /// The paper's sweep order (Fig. 5 rows, top to bottom).
    pub const SWEEP: [IodPstate; 5] =
        [IodPstate::P3, IodPstate::P2, IodPstate::P1, IodPstate::P0, IodPstate::Auto];

    /// Maximum fabric clock the I/O die supports.
    pub const MAX_FCLK_MHZ: u32 = 1467;

    /// The fabric clock this P-state runs for a given DRAM clock.
    pub fn fclk_mhz(self, dram: DramFreq) -> u32 {
        match self {
            IodPstate::P0 => 1467,
            IodPstate::P1 => 1200,
            IodPstate::P2 => 1333,
            IodPstate::P3 => 800,
            // The control loop tracks MEMCLK but cannot exceed the fabric
            // maximum: with DDR4-3200 it runs 1467 MHz asynchronously.
            IodPstate::Auto => dram.memclk_mhz().min(Self::MAX_FCLK_MHZ),
        }
    }

    /// Whether this is the hardware-controlled setting.
    pub fn is_auto(self) -> bool {
        matches!(self, IodPstate::Auto)
    }

    /// I/O-die power at this P-state relative to P0 (used by the power
    /// model; "using higher I/O die P-states reduces power consumption").
    pub fn relative_power(self, dram: DramFreq) -> f64 {
        let fclk = self.fclk_mhz(dram) as f64;
        // Fabric power is dominated by switching: roughly linear in FCLK
        // with a constant floor for PHYs and misc logic.
        0.35 + 0.65 * fclk / 1467.0
    }
}

impl fmt::Display for IodPstate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IodPstate::P0 => write!(f, "0"),
            IodPstate::P1 => write!(f, "1"),
            IodPstate::P2 => write!(f, "2"),
            IodPstate::P3 => write!(f, "3"),
            IodPstate::Auto => write!(f, "auto"),
        }
    }
}

/// Quality of the MEMCLK/UCLK clock-domain crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrossingQuality {
    /// Same clock, coupled by the auto controller: no crossing cost.
    Synchronous,
    /// The two clocks form a small integer ratio (within 1 %): the
    /// crossing scheduler runs a fixed pattern with minimal margin.
    Aligned,
    /// Unrelated (plesiochronous) clocks: every transfer pays
    /// synchronizer margin.
    Misaligned,
}

/// Small integer ratios the crossing hardware can schedule statically.
/// Numerators/denominators up to 11 with the denominators the fabric
/// actually produces.
const ALIGNED_RATIOS: [(u32, u32); 8] =
    [(6, 5), (5, 4), (4, 3), (11, 8), (3, 2), (11, 6), (2, 1), (11, 10)];

/// Relative tolerance for calling a ratio "aligned". Tight enough that
/// 12:11 (DDR4-3200 against the 1467 MHz fabric maximum) does *not* pass
/// as 11:10 — that crossing is the expensive one in the paper's data.
const ALIGN_TOLERANCE: f64 = 0.005;

/// Classifies the crossing between two clocks (order-insensitive).
pub fn classify_crossing(a_mhz: u32, b_mhz: u32) -> CrossingQuality {
    assert!(a_mhz > 0 && b_mhz > 0, "clock domains must run at a positive frequency");
    let (hi, lo) = if a_mhz >= b_mhz { (a_mhz, b_mhz) } else { (b_mhz, a_mhz) };
    let ratio = hi as f64 / lo as f64;
    if (ratio - 1.0).abs() <= ALIGN_TOLERANCE {
        return CrossingQuality::Synchronous;
    }
    for (p, q) in ALIGNED_RATIOS {
        let target = p as f64 / q as f64;
        if (ratio / target - 1.0).abs() <= ALIGN_TOLERANCE {
            return CrossingQuality::Aligned;
        }
    }
    CrossingQuality::Misaligned
}

/// The resolved clock plan for one (I/O-die P-state, DRAM clock) setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockPlan {
    /// The BIOS selection that produced this plan.
    pub pstate: IodPstate,
    /// The DRAM clock.
    pub dram: DramFreq,
    /// Fabric clock in MHz.
    pub fclk_mhz: u32,
    /// Memory-controller clock in MHz (the slower of FCLK and MEMCLK).
    pub uclk_mhz: u32,
    /// Quality of the UCLK/MEMCLK boundary.
    pub crossing: CrossingQuality,
    /// Whether the plan came from a pinned (non-auto) P-state. Pinned
    /// plans bypass the coupled fast path even at matched clocks, which is
    /// why `auto` beats pinned P0 by ~4 ns in the paper.
    pub pinned: bool,
}

impl ClockPlan {
    /// Resolves the clock plan for a configuration.
    pub fn resolve(pstate: IodPstate, dram: DramFreq) -> Self {
        let fclk = pstate.fclk_mhz(dram);
        let memclk = dram.memclk_mhz();
        let uclk = fclk.min(memclk);
        let crossing = classify_crossing(uclk, memclk);
        Self { pstate, dram, fclk_mhz: fclk, uclk_mhz: uclk, crossing, pinned: !pstate.is_auto() }
    }

    /// FCLK in GHz.
    pub fn fclk_ghz(&self) -> f64 {
        self.fclk_mhz as f64 / 1000.0
    }

    /// UCLK in GHz.
    pub fn uclk_ghz(&self) -> f64 {
        self.uclk_mhz as f64 / 1000.0
    }

    /// MEMCLK in GHz.
    pub fn memclk_ghz(&self) -> f64 {
        self.dram.memclk_mhz() as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_couples_to_memclk_up_to_fabric_max() {
        assert_eq!(IodPstate::Auto.fclk_mhz(DramFreq::Mhz1467), 1467);
        assert_eq!(IodPstate::Auto.fclk_mhz(DramFreq::Mhz1600), 1467);
    }

    #[test]
    fn auto_at_2933_is_synchronous() {
        let plan = ClockPlan::resolve(IodPstate::Auto, DramFreq::Mhz1467);
        assert_eq!(plan.crossing, CrossingQuality::Synchronous);
        assert!(!plan.pinned);
        assert_eq!(plan.uclk_mhz, 1467);
    }

    #[test]
    fn auto_at_3200_is_asynchronous() {
        // FCLK tops out at 1467 so DDR4-3200 always crosses domains — the
        // mechanism behind "a higher DRAM frequency does not increase
        // memory bandwidth significantly".
        let plan = ClockPlan::resolve(IodPstate::Auto, DramFreq::Mhz1600);
        assert_ne!(plan.crossing, CrossingQuality::Synchronous);
        assert_eq!(plan.fclk_mhz, 1467);
    }

    #[test]
    fn pinned_p0_at_matched_clock_still_pays_arbitration() {
        // auto (92.0 ns) beats pinned P0 (96.0 ns) in the paper: the
        // clocks match either way, but the pinned path keeps the generic
        // arbitration stage in the loop.
        let plan = ClockPlan::resolve(IodPstate::P0, DramFreq::Mhz1467);
        assert!(plan.pinned);
        assert_eq!(plan.crossing, CrossingQuality::Synchronous);
    }

    #[test]
    fn crossing_classification() {
        assert_eq!(classify_crossing(1467, 1467), CrossingQuality::Synchronous);
        // 1600:1333 = 6:5 within tolerance.
        assert_eq!(classify_crossing(1600, 1333), CrossingQuality::Aligned);
        // 1600:1200 = 4:3.
        assert_eq!(classify_crossing(1600, 1200), CrossingQuality::Aligned);
        // 1600:800 = 2:1.
        assert_eq!(classify_crossing(1600, 800), CrossingQuality::Aligned);
        // 1467:1333 = 11:10.
        assert_eq!(classify_crossing(1467, 1333), CrossingQuality::Aligned);
        // 1467:800 = 11:6.
        assert_eq!(classify_crossing(1467, 800), CrossingQuality::Aligned);
        // 1600:1467 = 12:11 — not in the scheduler's table.
        assert_eq!(classify_crossing(1600, 1467), CrossingQuality::Misaligned);
        // 1467:1200 = 11:9 — not schedulable.
        assert_eq!(classify_crossing(1467, 1200), CrossingQuality::Misaligned);
    }

    #[test]
    fn uclk_is_the_slower_domain() {
        let plan = ClockPlan::resolve(IodPstate::P3, DramFreq::Mhz1600);
        assert_eq!(plan.uclk_mhz, 800);
        let plan = ClockPlan::resolve(IodPstate::P0, DramFreq::Mhz1467);
        assert_eq!(plan.uclk_mhz, 1467);
    }

    #[test]
    fn relative_power_decreases_with_deeper_pstates() {
        let d = DramFreq::Mhz1467;
        let p0 = IodPstate::P0.relative_power(d);
        let p3 = IodPstate::P3.relative_power(d);
        assert!((p0 - 1.0).abs() < 1e-12);
        assert!(p3 < p0);
        assert!(p3 > 0.5, "the I/O die never powers fully down while active");
    }

    #[test]
    fn channel_peak_rates() {
        assert!((DramFreq::Mhz1467.channel_peak_gbs() - 23.472).abs() < 1e-9);
        assert!((DramFreq::Mhz1600.channel_peak_gbs() - 25.6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive frequency")]
    fn zero_clock_is_rejected() {
        let _ = classify_crossing(0, 1467);
    }
}
