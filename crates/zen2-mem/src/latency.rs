//! Load-latency models: CCX L3 (Fig. 4) and DRAM (Fig. 5b).

use crate::fclk::{ClockPlan, CrossingQuality, DramFreq, IodPstate};
use crate::hierarchy::CacheHierarchy;
use serde::{Deserialize, Serialize};

/// L3 hit latency under mixed core frequencies (Fig. 4).
///
/// The L3/CCX clock mesh follows the *fastest* core in the complex
/// (Section V-C: "an increased L3-cache frequency that is defined by the
/// highest clocked core in the CCX"). An L3 hit therefore splits into a
/// core-domain share (issue, L1/L2 lookup and fill on the reader's clock)
/// and a mesh-domain share (slice access on the L3 clock).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct L3LatencyModel {
    /// Core-domain share in core cycles.
    pub core_cycles: f64,
    /// Mesh-domain share in L3 cycles.
    pub mesh_cycles: f64,
}

impl Default for L3LatencyModel {
    fn default() -> Self {
        let h = CacheHierarchy::zen2();
        Self { core_cycles: h.l3_core_cycles, mesh_cycles: h.l3_mesh_cycles }
    }
}

impl L3LatencyModel {
    /// The L3 mesh frequency for a CCX: the maximum effective core clock
    /// in the complex, floored at the architecture's 400 MHz minimum
    /// ("L3 frequencies below 400 MHz are not supported").
    pub fn mesh_ghz(core_clocks_ghz: &[f64]) -> f64 {
        let max = core_clocks_ghz.iter().copied().fold(0.0f64, f64::max);
        max.max(0.4)
    }

    /// Pointer-chase L3 hit latency in nanoseconds for a reader at
    /// `reader_ghz` in a CCX whose mesh runs at `mesh_ghz`.
    pub fn latency_ns(&self, reader_ghz: f64, mesh_ghz: f64) -> f64 {
        assert!(reader_ghz > 0.0 && mesh_ghz > 0.0, "frequencies must be positive");
        self.core_cycles / reader_ghz + self.mesh_cycles / mesh_ghz
    }
}

/// DRAM load latency through the I/O die (Fig. 5b).
///
/// `latency = core_path + fabric_cycles/FCLK + controller_cycles/UCLK +
/// crossing penalties`. The penalties implement the paper's observation
/// that `auto` (coupled domains) beats the pinned fastest P-state and that
/// mismatched DRAM/fabric clocks hurt: a pinned plan always pays the
/// generic arbitration cost, and an unaligned MEMCLK/UCLK pair pays full
/// synchronizer margin on every transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramLatencyModel {
    /// Core + CCX + DRAM-array share, independent of I/O-die clocks (ns).
    pub fixed_ns: f64,
    /// Fabric cycles on the request/response path (converted via FCLK).
    pub fabric_ns_ghz: f64,
    /// Memory-controller cycles (converted via UCLK).
    pub controller_ns_ghz: f64,
    /// Cost of the pinned (non-auto) arbitration path (ns).
    pub pinned_penalty_ns: f64,
    /// Crossing penalty when MEMCLK/UCLK form a schedulable ratio (ns).
    pub aligned_penalty_ns: f64,
    /// Crossing penalty for plesiochronous MEMCLK/UCLK (ns).
    pub misaligned_penalty_ns: f64,
}

impl Default for DramLatencyModel {
    fn default() -> Self {
        Self::zen2()
    }
}

impl DramLatencyModel {
    /// Calibration for the paper's EPYC 7502 (prefetchers off, huge
    /// pages): reproduces the auto = 92.0 ns / pinned P0 = 96.0 ns split
    /// and the Fig. 5b matrix within a few percent.
    pub fn zen2() -> Self {
        Self {
            fixed_ns: 42.2,
            fabric_ns_ghz: 36.5,
            controller_ns_ghz: 36.5,
            pinned_penalty_ns: 4.0,
            aligned_penalty_ns: 3.9,
            misaligned_penalty_ns: 13.0,
        }
    }

    /// Idle pointer-chase latency for a clock plan, in nanoseconds.
    pub fn latency_ns(&self, plan: &ClockPlan) -> f64 {
        let mut ns = self.fixed_ns
            + self.fabric_ns_ghz / plan.fclk_ghz()
            + self.controller_ns_ghz / plan.uclk_ghz();
        if plan.pinned {
            ns += self.pinned_penalty_ns;
        }
        ns += match plan.crossing {
            CrossingQuality::Synchronous => 0.0,
            CrossingQuality::Aligned => self.aligned_penalty_ns,
            CrossingQuality::Misaligned => self.misaligned_penalty_ns,
        };
        ns
    }

    /// Convenience: latency for a (P-state, DRAM clock) pair.
    pub fn latency_for(&self, pstate: IodPstate, dram: DramFreq) -> f64 {
        self.latency_ns(&ClockPlan::resolve(pstate, dram))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_follows_fastest_core_with_400mhz_floor() {
        assert_eq!(L3LatencyModel::mesh_ghz(&[1.5, 2.2, 2.5, 1.5]), 2.5);
        assert_eq!(L3LatencyModel::mesh_ghz(&[1.5; 4]), 1.5);
        assert_eq!(L3LatencyModel::mesh_ghz(&[0.2]), 0.4);
    }

    #[test]
    fn fig4_matrix_within_tolerance() {
        // Paper Fig. 4: rows = reader frequency, columns = other cores.
        // (reader_ghz, mesh_ghz from max(reader, others), expected ns)
        let m = L3LatencyModel::default();
        let cases = [
            (1.5, 1.5, 25.2),
            (1.5, 2.2, 22.0),
            (1.5, 2.5, 21.2),
            (2.2, 2.2, 17.2),
            (2.5, 2.5, 15.2),
        ];
        for (reader, mesh, expect) in cases {
            let got = m.latency_ns(reader, mesh);
            let err = (got - expect).abs() / expect;
            assert!(err < 0.015, "reader {reader} mesh {mesh}: {got:.2} vs {expect} ns");
        }
    }

    #[test]
    fn fig4_known_deviation_reader_22_others_25() {
        // The two-domain model predicts ~16.4 ns where the paper measured
        // 17.2 ns (documented deviation in DESIGN.md §6). Keep the model
        // honest: it must stay below the same-frequency 17.2 ns value.
        let m = L3LatencyModel::default();
        let got = m.latency_ns(2.2, 2.5);
        assert!(got < 17.2 && got > 15.2, "got {got:.2}");
    }

    #[test]
    fn auto_beats_pinned_p0_at_2933() {
        // Paper: 92.0 ns (auto) vs 96.0 ns (P0).
        let m = DramLatencyModel::zen2();
        let auto = m.latency_for(IodPstate::Auto, DramFreq::Mhz1467);
        let p0 = m.latency_for(IodPstate::P0, DramFreq::Mhz1467);
        assert!((auto - 92.0).abs() < 1.0, "auto {auto:.1}");
        assert!((p0 - 96.0).abs() < 1.0, "p0 {p0:.1}");
        assert!(auto < p0);
    }

    #[test]
    fn fig5b_matrix_shape() {
        let m = DramLatencyModel::zen2();
        // (pstate, dram, paper ns, tolerance %)
        let cases = [
            (IodPstate::P3, DramFreq::Mhz1467, 142.0, 0.05),
            (IodPstate::P2, DramFreq::Mhz1467, 101.0, 0.05),
            (IodPstate::P1, DramFreq::Mhz1467, 113.0, 0.08),
            (IodPstate::P0, DramFreq::Mhz1467, 96.0, 0.02),
            (IodPstate::Auto, DramFreq::Mhz1467, 92.0, 0.02),
            (IodPstate::P3, DramFreq::Mhz1600, 137.0, 0.05),
            (IodPstate::P2, DramFreq::Mhz1600, 104.0, 0.04),
            (IodPstate::P1, DramFreq::Mhz1600, 110.0, 0.04),
            (IodPstate::P0, DramFreq::Mhz1600, 109.0, 0.02),
            (IodPstate::Auto, DramFreq::Mhz1600, 104.0, 0.02),
        ];
        for (p, d, expect, tol) in cases {
            let got = m.latency_for(p, d);
            let err = (got - expect).abs() / expect;
            assert!(err < tol, "P{p}/{d}: {got:.1} ns vs paper {expect} ns (err {err:.3})");
        }
    }

    #[test]
    fn higher_dram_clock_does_not_improve_latency_on_auto() {
        // "for the higher memory frequency, also the I/O die P-state 2
        // performs better than P-state 0" and auto@3200 is worse than
        // auto@2933 — asynchronous crossings eat the raw speed.
        let m = DramLatencyModel::zen2();
        assert!(
            m.latency_for(IodPstate::Auto, DramFreq::Mhz1600)
                > m.latency_for(IodPstate::Auto, DramFreq::Mhz1467)
        );
        assert!(
            m.latency_for(IodPstate::P2, DramFreq::Mhz1600)
                < m.latency_for(IodPstate::P0, DramFreq::Mhz1600)
        );
    }

    #[test]
    fn p2_beats_p1_in_both_columns() {
        // The non-monotonicity the paper measured (and that motivates the
        // inferred FCLK table).
        let m = DramLatencyModel::zen2();
        for d in DramFreq::SWEEP {
            assert!(m.latency_for(IodPstate::P2, d) < m.latency_for(IodPstate::P1, d));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn l3_rejects_zero_frequency() {
        let _ = L3LatencyModel::default().latency_ns(0.0, 1.0);
    }
}
