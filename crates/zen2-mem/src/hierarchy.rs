//! Cache hierarchy parameters (PPR / Suggs et al., "The AMD Zen 2
//! Processor").

use serde::{Deserialize, Serialize};

/// Structural and timing parameters of the Zen 2 cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheHierarchy {
    /// L1D capacity in bytes.
    pub l1d_bytes: u64,
    /// L1I capacity in bytes.
    pub l1i_bytes: u64,
    /// Per-core unified L2 capacity in bytes.
    pub l2_bytes: u64,
    /// Per-CCX L3 capacity in bytes (four 4 MiB slices).
    pub l3_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// L1D load-to-use latency in core cycles.
    pub l1_cycles: f64,
    /// L2 load-to-use latency in core cycles.
    pub l2_cycles: f64,
    /// Core-domain share of an L3 hit, in core cycles (see
    /// [`crate::latency::L3LatencyModel`]).
    pub l3_core_cycles: f64,
    /// L3-domain share of an L3 hit, in L3 cycles.
    pub l3_mesh_cycles: f64,
}

impl Default for CacheHierarchy {
    fn default() -> Self {
        Self::zen2()
    }
}

impl CacheHierarchy {
    /// Zen 2 values. The L3 split is calibrated from the paper's Fig. 4:
    /// with all cores at the same frequency `f`, an L3 hit costs
    /// `(l3_core_cycles + l3_mesh_cycles) / f`; the paper measures 25.2 ns
    /// at 1.5 GHz, 17.2 ns at 2.2 GHz and 15.2 ns at 2.5 GHz, and the
    /// mixed-frequency cells separate the two shares.
    pub fn zen2() -> Self {
        Self {
            l1d_bytes: 32 * 1024,
            l1i_bytes: 32 * 1024,
            l2_bytes: 512 * 1024,
            l3_bytes: 16 * 1024 * 1024,
            line_bytes: 64,
            l1_cycles: 4.0,
            l2_cycles: 12.0,
            l3_core_cycles: 22.7,
            l3_mesh_cycles: 15.1,
        }
    }

    /// Which cache level a working set of `bytes` is resident in.
    pub fn level_for_working_set(&self, bytes: u64) -> CacheLevel {
        if bytes <= self.l1d_bytes {
            CacheLevel::L1
        } else if bytes <= self.l2_bytes {
            CacheLevel::L2
        } else if bytes <= self.l3_bytes {
            CacheLevel::L3
        } else {
            CacheLevel::Dram
        }
    }

    /// Load-to-use latency in nanoseconds for a level, at a core frequency
    /// `core_ghz` and L3 mesh frequency `l3_ghz` (DRAM handled by
    /// [`crate::latency::DramLatencyModel`]).
    pub fn hit_latency_ns(&self, level: CacheLevel, core_ghz: f64, l3_ghz: f64) -> Option<f64> {
        assert!(core_ghz > 0.0 && l3_ghz > 0.0, "frequencies must be positive");
        match level {
            CacheLevel::L1 => Some(self.l1_cycles / core_ghz),
            CacheLevel::L2 => Some(self.l2_cycles / core_ghz),
            CacheLevel::L3 => Some(self.l3_core_cycles / core_ghz + self.l3_mesh_cycles / l3_ghz),
            CacheLevel::Dram => None,
        }
    }
}

/// A memory-hierarchy level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheLevel {
    /// Level-1 data cache.
    L1,
    /// Per-core level-2 cache.
    L2,
    /// CCX-shared level-3 cache.
    L3,
    /// Main memory behind the I/O die.
    Dram,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_classification() {
        let h = CacheHierarchy::zen2();
        assert_eq!(h.level_for_working_set(16 * 1024), CacheLevel::L1);
        assert_eq!(h.level_for_working_set(32 * 1024), CacheLevel::L1);
        assert_eq!(h.level_for_working_set(33 * 1024), CacheLevel::L2);
        assert_eq!(h.level_for_working_set(512 * 1024), CacheLevel::L2);
        assert_eq!(h.level_for_working_set(4 * 1024 * 1024), CacheLevel::L3);
        assert_eq!(h.level_for_working_set(64 * 1024 * 1024), CacheLevel::Dram);
    }

    #[test]
    fn l3_latency_matches_same_frequency_diagonal() {
        // Fig. 4 diagonal (all cores equal): 25.2 / 17.2 / 15.2 ns.
        let h = CacheHierarchy::zen2();
        let cases = [(1.5, 25.2), (2.2, 17.2), (2.5, 15.2)];
        for (f, expect) in cases {
            let got = h.hit_latency_ns(CacheLevel::L3, f, f).unwrap();
            assert!(
                (got - expect).abs() / expect < 0.01,
                "at {f} GHz expected ~{expect} ns, got {got:.2} ns"
            );
        }
    }

    #[test]
    fn faster_l3_reduces_latency_for_slow_reader() {
        // Fig. 4, reading core at 1.5 GHz: 25.2 -> 22.0 -> 21.2 ns as the
        // other cores (and with them the L3 mesh) speed up.
        let h = CacheHierarchy::zen2();
        let own = 1.5;
        let at_15 = h.hit_latency_ns(CacheLevel::L3, own, 1.5).unwrap();
        let at_22 = h.hit_latency_ns(CacheLevel::L3, own, 2.2).unwrap();
        let at_25 = h.hit_latency_ns(CacheLevel::L3, own, 2.5).unwrap();
        assert!((at_15 - 25.2).abs() < 0.3);
        assert!((at_22 - 22.0).abs() < 0.3);
        assert!((at_25 - 21.2).abs() < 0.3);
    }

    #[test]
    fn l1_l2_scale_with_core_clock_only() {
        let h = CacheHierarchy::zen2();
        let l1 = h.hit_latency_ns(CacheLevel::L1, 2.0, 1.0).unwrap();
        assert!((l1 - 2.0).abs() < 1e-12);
        let l2 = h.hit_latency_ns(CacheLevel::L2, 2.0, 1.0).unwrap();
        assert!((l2 - 6.0).abs() < 1e-12);
        assert!(h.hit_latency_ns(CacheLevel::Dram, 2.0, 2.0).is_none());
    }
}
