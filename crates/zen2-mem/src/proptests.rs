//! Property-based tests of the memory models.

use crate::bandwidth::StreamBandwidthModel;
use crate::fclk::{classify_crossing, ClockPlan, DramFreq, IodPstate};
use crate::hierarchy::{CacheHierarchy, CacheLevel};
use crate::latency::{DramLatencyModel, L3LatencyModel};
use proptest::prelude::*;

fn arb_pstate() -> impl Strategy<Value = IodPstate> {
    prop::sample::select(IodPstate::SWEEP.to_vec())
}

fn arb_dram() -> impl Strategy<Value = DramFreq> {
    prop::sample::select(DramFreq::SWEEP.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128 })]

    /// L3 latency decreases (weakly) with both reader and mesh frequency.
    #[test]
    fn l3_latency_monotone(r1 in 0.5f64..3.0, r2 in 0.5f64..3.0,
                           m1 in 0.5f64..3.0, m2 in 0.5f64..3.0) {
        let model = L3LatencyModel::default();
        let (rlo, rhi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let (mlo, mhi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        prop_assert!(model.latency_ns(rhi, mlo) <= model.latency_ns(rlo, mlo) + 1e-12);
        prop_assert!(model.latency_ns(rlo, mhi) <= model.latency_ns(rlo, mlo) + 1e-12);
    }

    /// DRAM latency is positive and bounded for every configuration, and
    /// `auto` is never worse than every pinned setting.
    #[test]
    fn dram_latency_bounds(p in arb_pstate(), d in arb_dram()) {
        let model = DramLatencyModel::zen2();
        let lat = model.latency_for(p, d);
        prop_assert!(lat > 60.0 && lat < 200.0, "latency {lat}");
        // "According to our observations, the auto setting performs good
        // for all scenarios": best or tied-best within measurement noise
        // (the paper's own Fig. 5b has P2 tie auto at DDR4-3200).
        let auto = model.latency_for(IodPstate::Auto, d);
        let best = IodPstate::SWEEP
            .iter()
            .map(|&q| model.latency_for(q, d))
            .fold(f64::INFINITY, f64::min);
        prop_assert!(auto - best < 0.5, "auto {auto} vs best {best}");
    }

    /// Bandwidth is monotone in cores and capped by the binding limiter.
    #[test]
    fn bandwidth_monotone_and_capped(p in arb_pstate(), d in arb_dram(),
                                     n in 1u32..16) {
        let m = StreamBandwidthModel::zen2();
        let plan = ClockPlan::resolve(p, d);
        let bw_n = m.bandwidth_gbs(&plan, n);
        let bw_n1 = m.bandwidth_gbs(&plan, n + 1);
        prop_assert!(bw_n1 >= bw_n - 1e-9);
        let cap = m.link_cap_gbs(&plan).min(m.dram_cap_gbs(&plan));
        prop_assert!(bw_n <= cap + 1e-9);
        prop_assert!(bw_n > 0.0);
    }

    /// Crossing classification is symmetric and scale-invariant.
    #[test]
    fn crossing_is_symmetric(a in 400u32..3200, b in 400u32..3200) {
        prop_assert_eq!(classify_crossing(a, b), classify_crossing(b, a));
        // Doubling both clocks preserves the ratio and the class.
        prop_assert_eq!(classify_crossing(a, b), classify_crossing(a * 2, b * 2));
    }

    /// The UCLK never exceeds either of its source domains.
    #[test]
    fn uclk_is_bounded_by_both_domains(p in arb_pstate(), d in arb_dram()) {
        let plan = ClockPlan::resolve(p, d);
        prop_assert!(plan.uclk_mhz <= plan.fclk_mhz);
        prop_assert!(plan.uclk_mhz <= d.memclk_mhz());
        prop_assert!(plan.fclk_mhz <= IodPstate::MAX_FCLK_MHZ);
    }

    /// Working-set classification is monotone: bigger sets never move to a
    /// smaller level.
    #[test]
    fn working_set_classification_is_monotone(a in 1u64..1 << 28, b in 1u64..1 << 28) {
        fn rank(l: CacheLevel) -> u8 {
            match l {
                CacheLevel::L1 => 0,
                CacheLevel::L2 => 1,
                CacheLevel::L3 => 2,
                CacheLevel::Dram => 3,
            }
        }
        let h = CacheHierarchy::zen2();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(rank(h.level_for_working_set(lo)) <= rank(h.level_for_working_set(hi)));
    }

    /// Cache hit latencies scale inversely with the core clock.
    #[test]
    fn hit_latency_scales_with_clock(f in 0.5f64..3.0) {
        let h = CacheHierarchy::zen2();
        let l1 = h.hit_latency_ns(CacheLevel::L1, f, f).unwrap();
        let l1_double = h.hit_latency_ns(CacheLevel::L1, 2.0 * f, 2.0 * f).unwrap();
        prop_assert!((l1 / l1_double - 2.0).abs() < 1e-9);
    }
}
