//! STREAM-triad bandwidth model (Fig. 5a).
//!
//! Three limiters govern triad bandwidth from one CCD into its local NUMA
//! node (NPS4: two DDR4 channels per quadrant):
//!
//! 1. **Per-core memory-level parallelism** — one core sustains ~26.7 GB/s
//!    of triad traffic; at very low fabric clocks the core's share of the
//!    GMI link caps it earlier.
//! 2. **The CCD's Infinity Fabric link** — combined read+write capacity
//!    scales with FCLK. This is the P3 bottleneck (and why four cores on
//!    one CCX and 2+2 across both CCXs of the CCD perform identically:
//!    they share the same link).
//! 3. **The two DDR4 channels** — peak scales with MEMCLK, derated by a
//!    controller efficiency that depends on the I/O-die P-state and drops
//!    further when MEMCLK outruns the fabric (asynchronous gear) — the
//!    mechanism behind "a higher DRAM frequency does not increase memory
//!    bandwidth significantly".
//!
//! Concurrency saturates the binding limiter following
//! `BW(n) = cap · (1 − (1 − b1/cap)^n)`: each additional core fills a
//! fraction of the remaining headroom, which reproduces the paper's
//! "two cores on one CCX already reach (almost) the maximal main memory
//! bandwidth".

use crate::fclk::{ClockPlan, IodPstate};
use serde::{Deserialize, Serialize};

/// Calibrated STREAM-triad bandwidth model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamBandwidthModel {
    /// Single-core MLP-limited triad bandwidth (GB/s).
    pub core_mlp_gbs: f64,
    /// Single stream's share of the GMI link, in bytes per FCLK cycle.
    pub core_link_bytes_per_fclk: f64,
    /// CCD GMI link capacity in bytes per FCLK cycle (read + write).
    pub link_bytes_per_fclk: f64,
    /// DDR4 channels per NUMA node (2 in the paper's NPS4 setup).
    pub channels_per_node: u32,
    /// Controller efficiency derate when MEMCLK exceeds FCLK.
    pub async_gear_factor: f64,
}

impl Default for StreamBandwidthModel {
    fn default() -> Self {
        Self::zen2()
    }
}

impl StreamBandwidthModel {
    /// Calibration for the paper's EPYC 7502, NPS4, Intel-compiled STREAM.
    pub fn zen2() -> Self {
        Self {
            core_mlp_gbs: 26.7,
            core_link_bytes_per_fclk: 28.0,
            link_bytes_per_fclk: 40.0,
            channels_per_node: 2,
            async_gear_factor: 0.928,
        }
    }

    /// Memory-controller efficiency at matched gear for a P-state.
    ///
    /// Calibrated per P-state (Fig. 5a saturated cells); the spread tracks
    /// how well the crossing scheduler fills the channel command bus.
    pub fn controller_efficiency(&self, pstate: IodPstate) -> f64 {
        match pstate {
            IodPstate::P0 => 0.812,
            IodPstate::P1 => 0.829,
            IodPstate::P2 => 0.844,
            IodPstate::P3 => 0.835,
            IodPstate::Auto => 0.815,
        }
    }

    /// Single-core triad bandwidth under a clock plan (GB/s).
    pub fn single_core_gbs(&self, plan: &ClockPlan) -> f64 {
        let link_share = self.core_link_bytes_per_fclk * plan.fclk_ghz();
        self.core_mlp_gbs.min(link_share)
    }

    /// The CCD link capacity under a clock plan (GB/s).
    pub fn link_cap_gbs(&self, plan: &ClockPlan) -> f64 {
        self.link_bytes_per_fclk * plan.fclk_ghz()
    }

    /// The local node's effective DRAM capacity under a clock plan (GB/s).
    pub fn dram_cap_gbs(&self, plan: &ClockPlan) -> f64 {
        let raw = self.channels_per_node as f64 * plan.dram.channel_peak_gbs();
        let mut eff = self.controller_efficiency(plan.pstate);
        if plan.dram.memclk_mhz() > plan.fclk_mhz {
            eff *= self.async_gear_factor;
        }
        raw * eff
    }

    /// Triad bandwidth for `cores` concurrent readers on one CCD (GB/s).
    ///
    /// The paper's Fig. 5a sweeps 1–4 cores; "4 (2 CCX)" places 2+2 across
    /// the CCD's two CCXs, which shares the same link and node and is thus
    /// identical here by construction.
    ///
    /// # Panics
    /// Panics for zero cores.
    pub fn bandwidth_gbs(&self, plan: &ClockPlan, cores: u32) -> f64 {
        assert!(cores > 0, "at least one core must stream");
        let b1 = self.single_core_gbs(plan);
        let cap = self.link_cap_gbs(plan).min(self.dram_cap_gbs(plan));
        if b1 >= cap {
            return cap;
        }
        cap * (1.0 - (1.0 - b1 / cap).powi(cores as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fclk::DramFreq;

    fn bw(p: IodPstate, d: DramFreq, cores: u32) -> f64 {
        StreamBandwidthModel::zen2().bandwidth_gbs(&ClockPlan::resolve(p, d), cores)
    }

    #[test]
    fn fig5a_matrix_within_tolerance() {
        // (pstate, dram, [1,2,3,4 cores] paper GB/s), 10 % tolerance.
        let cases = [
            (IodPstate::P3, DramFreq::Mhz1467, [22.2, 28.3, 28.9, 31.7]),
            (IodPstate::P2, DramFreq::Mhz1467, [27.2, 33.7, 37.6, 39.6]),
            (IodPstate::P1, DramFreq::Mhz1467, [26.8, 32.9, 36.8, 38.8]),
            (IodPstate::P0, DramFreq::Mhz1467, [26.5, 32.4, 35.9, 38.1]),
            (IodPstate::Auto, DramFreq::Mhz1467, [26.5, 32.6, 36.0, 38.2]),
            (IodPstate::P3, DramFreq::Mhz1600, [22.2, 28.2, 30.0, 30.6]),
            (IodPstate::P2, DramFreq::Mhz1600, [27.1, 33.7, 39.1, 40.1]),
            (IodPstate::P1, DramFreq::Mhz1600, [26.8, 32.9, 38.5, 39.5]),
            (IodPstate::P0, DramFreq::Mhz1600, [26.4, 32.4, 37.8, 38.6]),
            (IodPstate::Auto, DramFreq::Mhz1600, [26.5, 32.5, 37.9, 38.8]),
        ];
        for (p, d, expect) in cases {
            for (i, &e) in expect.iter().enumerate() {
                let got = bw(p, d, i as u32 + 1);
                let err = (got - e).abs() / e;
                assert!(
                    err < 0.10,
                    "P{p}/{d}/{} cores: {got:.1} vs paper {e} GB/s (err {err:.3})",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn four_cores_across_two_ccxs_equal_one_ccx() {
        // Same CCD link, same node: "4 (2 CCX)" == "4" in the figure.
        let plan = ClockPlan::resolve(IodPstate::Auto, DramFreq::Mhz1467);
        let m = StreamBandwidthModel::zen2();
        assert_eq!(m.bandwidth_gbs(&plan, 4), m.bandwidth_gbs(&plan, 4));
    }

    #[test]
    fn two_cores_nearly_saturate() {
        // "two cores on one CCX already reach [almost] the maximal main
        // memory bandwidth".
        let plan = ClockPlan::resolve(IodPstate::Auto, DramFreq::Mhz1467);
        let m = StreamBandwidthModel::zen2();
        let two = m.bandwidth_gbs(&plan, 2);
        let four = m.bandwidth_gbs(&plan, 4);
        assert!(two / four > 0.85, "two cores should be within 15 % of saturation");
    }

    #[test]
    fn p3_is_link_limited() {
        let m = StreamBandwidthModel::zen2();
        let plan = ClockPlan::resolve(IodPstate::P3, DramFreq::Mhz1467);
        assert!(m.link_cap_gbs(&plan) < m.dram_cap_gbs(&plan));
        // Even single-core streaming feels the 800 MHz link.
        assert!(m.single_core_gbs(&plan) < m.core_mlp_gbs);
    }

    #[test]
    fn higher_dram_clock_barely_helps() {
        // Fig. 5a: +0.5-0.6 GB/s saturated at auto, not the raw +9 %.
        let sat_2933 = bw(IodPstate::Auto, DramFreq::Mhz1467, 4);
        let sat_3200 = bw(IodPstate::Auto, DramFreq::Mhz1600, 4);
        let gain = sat_3200 / sat_2933 - 1.0;
        assert!(gain > 0.0 && gain < 0.05, "gain {gain:.3} should be marginal");
    }

    #[test]
    fn bandwidth_is_monotone_in_cores() {
        let m = StreamBandwidthModel::zen2();
        for p in IodPstate::SWEEP {
            for d in DramFreq::SWEEP {
                let plan = ClockPlan::resolve(p, d);
                let mut prev = 0.0;
                for n in 1..=8 {
                    let b = m.bandwidth_gbs(&plan, n);
                    assert!(b >= prev - 1e-9, "P{p}/{d}: {b} < {prev} at n={n}");
                    prev = b;
                }
                assert!(prev <= m.link_cap_gbs(&plan).min(m.dram_cap_gbs(&plan)) + 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = bw(IodPstate::Auto, DramFreq::Mhz1467, 0);
    }
}
