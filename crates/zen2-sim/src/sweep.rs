//! Declarative parameter sweeps: a grid of axes lazily yielding
//! [`Case`]s, streamed through a [`Session`] worker pool and reduced
//! with the on-line aggregators in [`stats`](crate::stats).
//!
//! A [`Sweep`] describes a cross product without materializing it: each
//! [`Axis`] contributes a list of labelled values, and every grid point
//! is built on demand by applying one value per axis to a draft of the
//! base `(config, scenario, seed)`. [`Sweep::stream`] then pushes each
//! completed [`Run`] to a sink in case order while the session holds at
//! most `workers × shard_size` cases in memory — a million-point grid
//! reduces to bounded-size summaries:
//!
//! ```
//! use zen2_sim::stats::OnlineStats;
//! use zen2_sim::{Axis, Probe, Scenario, Session, SimConfig, Sweep, Window};
//! use zen2_isa::{KernelClass, OperandWeight};
//! use zen2_topology::{CoreId, ThreadId};
//!
//! let mut base = Scenario::new();
//! base.at(0).workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
//! base.probe("ghz", Probe::EffectiveGhz(CoreId(0)), Window::at_secs(0.03));
//! let sweep = Sweep::new("demo", SimConfig::epyc_7502_2s())
//!     .scenario(base)
//!     .seed(42)
//!     .axis(Axis::new("freq").with("1500", |d| {
//!         d.scenario.at(0).pstate(ThreadId(0), 1500).pstate(ThreadId(1), 1500);
//!     }).with("2200", |d| {
//!         d.scenario.at(0).pstate(ThreadId(0), 2200).pstate(ThreadId(1), 2200);
//!     }));
//! let mut ghz = OnlineStats::new();
//! let session = Session::new().workers(2).shard_size(4);
//! let n = sweep.stream(&session, |_, run| ghz.push(run.ghz("ghz"))).unwrap();
//! assert_eq!(n, 2);
//! assert!(ghz.min() < ghz.max());
//! ```

use crate::config::SimConfig;
use crate::obs::{AttrValue, EVT_SWEEP_TOTAL};
use crate::probe::Run;
use crate::scenario::Scenario;
use crate::session::{Case, Session, SessionError, StreamControl, StreamEvent};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// SplitMix64-based child-seed derivation: the `index`-th child of a
/// root seed. Deterministic, decorrelated between adjacent indices, and
/// shared with the experiment crate's fan-outs.
pub fn child_seed(root: u64, index: u64) -> u64 {
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut state = root ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
    let mut out = splitmix64(&mut state);
    // One extra round decorrelates adjacent indices thoroughly.
    out ^= splitmix64(&mut state);
    out
}

/// A case under construction: the base `(config, scenario, seed)` with
/// one value per axis applied to it, plus a scratch parameter map for
/// axes whose effect is only realized jointly (a [`Sweep::finish`] hook
/// reads the accumulated parameters and performs the combined edit).
#[derive(Debug, Clone)]
pub struct CaseDraft {
    /// The machine configuration this case will boot.
    pub config: SimConfig,
    /// The schedule this case will execute.
    pub scenario: Scenario,
    /// The seed this case will run under (pre-set from the sweep's seed
    /// derivation; an axis may overwrite it).
    pub seed: u64,
    params: BTreeMap<String, f64>,
}

impl CaseDraft {
    /// Stores a named parameter for a later axis or the
    /// [`Sweep::finish`] hook.
    pub fn set_param(&mut self, name: impl Into<String>, value: f64) {
        self.params.insert(name.into(), value);
    }

    /// Reads a stored parameter.
    ///
    /// # Panics
    /// Panics when no axis stored `name`.
    pub fn param(&self, name: &str) -> f64 {
        *self.params.get(name).unwrap_or_else(|| panic!("no sweep parameter named {name:?}"))
    }
}

type Applier = Arc<dyn Fn(&mut CaseDraft) + Send + Sync>;

/// One labelled value of an [`Axis`].
#[derive(Clone)]
struct AxisValue {
    label: String,
    apply: Applier,
}

/// One dimension of a sweep grid: a name plus an ordered list of
/// labelled values, each a [`CaseDraft`] edit.
#[derive(Clone)]
pub struct Axis {
    name: String,
    values: Vec<AxisValue>,
}

impl fmt::Debug for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Axis")
            .field("name", &self.name)
            .field("values", &self.values.iter().map(|v| &v.label).collect::<Vec<_>>())
            .finish()
    }
}

impl Axis {
    /// An empty axis; add values with [`with`](Self::with).
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), values: Vec::new() }
    }

    /// Appends a labelled value applying an arbitrary draft edit
    /// (mutate the scenario, swap the config, override the seed, store
    /// a parameter — anything).
    pub fn with(
        mut self,
        label: impl Into<String>,
        apply: impl Fn(&mut CaseDraft) + Send + Sync + 'static,
    ) -> Self {
        self.values.push(AxisValue { label: label.into(), apply: Arc::new(apply) });
        self
    }

    /// An axis over whole machine configurations.
    pub fn configs(
        name: impl Into<String>,
        items: impl IntoIterator<Item = (String, SimConfig)>,
    ) -> Self {
        items.into_iter().fold(Self::new(name), |axis, (label, config)| {
            axis.with(label, move |draft| draft.config = config.clone())
        })
    }

    /// An axis over explicit seeds (replaces the sweep's derived seed).
    pub fn seeds(name: impl Into<String>, seeds: impl IntoIterator<Item = u64>) -> Self {
        seeds.into_iter().fold(Self::new(name), |axis, seed| {
            axis.with(format!("{seed}"), move |draft| draft.seed = seed)
        })
    }

    /// An axis storing a numeric parameter under this axis's name, for
    /// a later axis or the [`Sweep::finish`] hook to consume.
    pub fn param(name: impl Into<String>, values: impl IntoIterator<Item = f64>) -> Self {
        let name = name.into();
        let param = name.clone();
        values.into_iter().fold(Self::new(name), move |axis, value| {
            let param = param.clone();
            axis.with(format!("{value}"), move |draft| draft.set_param(param.clone(), value))
        })
    }

    /// The axis name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of values on this axis.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the axis has no values (its sweep yields no cases).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The label of value `i`, or `None` when `i` is out of range.
    pub fn value_label(&self, i: usize) -> Option<&str> {
        self.values.get(i).map(|v| v.label.as_str())
    }

    /// All value labels, in axis order.
    pub fn value_labels(&self) -> impl Iterator<Item = &str> {
        self.values.iter().map(|v| v.label.as_str())
    }
}

type SeedFn = Arc<dyn Fn(u64) -> u64 + Send + Sync>;

/// A declarative parameter grid over a base `(config, scenario)`. The
/// cross product of all axes is never materialized: [`cases`](Self::cases)
/// yields each grid point on demand, in row-major order (the first axis
/// declared is the outermost, the last varies fastest).
#[derive(Clone)]
pub struct Sweep {
    label: String,
    base_config: SimConfig,
    base_scenario: Scenario,
    axes: Vec<Axis>,
    seed_fn: SeedFn,
    finish: Option<Applier>,
}

impl fmt::Debug for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sweep")
            .field("label", &self.label)
            .field("axes", &self.axes)
            .field("len", &self.len())
            .finish()
    }
}

impl Sweep {
    /// A sweep over a base configuration with an empty scenario, no
    /// axes (one case: the base itself) and case index as the seed.
    pub fn new(label: impl Into<String>, config: SimConfig) -> Self {
        Self {
            label: label.into(),
            base_config: config,
            base_scenario: Scenario::new(),
            axes: Vec::new(),
            seed_fn: Arc::new(|index| index),
            finish: None,
        }
    }

    /// Sets the base scenario every case starts from.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.base_scenario = scenario;
        self
    }

    /// Derives each case's seed as [`child_seed`]`(root, index)`.
    pub fn seed(self, root: u64) -> Self {
        self.seed_fn(move |index| child_seed(root, index))
    }

    /// Replaces the seed derivation entirely (`case index → seed`).
    pub fn seed_fn(mut self, f: impl Fn(u64) -> u64 + Send + Sync + 'static) -> Self {
        self.seed_fn = Arc::new(f);
        self
    }

    /// Appends a grid dimension.
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// The grid's axes, in declaration order (outermost first).
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// The sweep's label (the prefix of every case label).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Installs a hook running after all axis values have been applied
    /// to a draft — the place to turn accumulated
    /// [parameters](CaseDraft::param) into one joint scenario/config
    /// edit.
    pub fn finish(mut self, f: impl Fn(&mut CaseDraft) + Send + Sync + 'static) -> Self {
        self.finish = Some(Arc::new(f));
        self
    }

    /// Grid size: the product of the axis lengths (1 with no axes; 0 if
    /// any axis is empty).
    pub fn len(&self) -> usize {
        self.axes.iter().map(Axis::len).product()
    }

    /// Whether the grid has no cases.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The per-axis value indices of case `index` (row-major decode) —
    /// the key for bucketing streamed results per grid point, and what
    /// [`GroupedStats`](crate::stats::GroupedStats) uses to route a case
    /// to its group.
    ///
    /// # Panics
    /// Panics when `index` is outside the grid (`index >= self.len()`).
    pub fn axis_indices(&self, index: usize) -> Vec<usize> {
        assert!(index < self.len(), "case {index} out of range ({} cases)", self.len());
        let mut rest = index;
        let mut out = vec![0; self.axes.len()];
        for (slot, axis) in out.iter_mut().zip(&self.axes).rev() {
            *slot = rest % axis.len();
            rest /= axis.len();
        }
        out
    }

    /// Builds case `index` of the grid.
    ///
    /// # Panics
    /// Panics when `index` is outside the grid (`index >= self.len()`),
    /// the same contract as [`axis_indices`](Self::axis_indices); use
    /// [`cases`](Self::cases) to iterate without index bookkeeping.
    pub fn case(&self, index: usize) -> Case {
        let mut draft = CaseDraft {
            config: self.base_config.clone(),
            scenario: self.base_scenario.clone(),
            seed: (self.seed_fn)(index as u64),
            params: BTreeMap::new(),
        };
        let mut label = self.label.clone();
        for (axis, value_index) in self.axes.iter().zip(self.axis_indices(index)) {
            let value = &axis.values[value_index];
            label.push_str(&format!("/{}={}", axis.name, value.label));
            (value.apply)(&mut draft);
        }
        if let Some(finish) = &self.finish {
            finish(&mut draft);
        }
        Case::new(label, draft.config, draft.scenario, draft.seed)
    }

    /// Lazily yields every case of the grid, in case-index order.
    pub fn cases(&self) -> impl Iterator<Item = Case> + '_ {
        (0..self.len()).map(|index| self.case(index))
    }

    /// Lazily yields the grid's cases starting at case `start` — the
    /// resume path. Because every case is a pure function of its index
    /// (seeds come from the sweep's seed derivation, labels and
    /// scenarios from the axis decode), `skip(k)` re-derives exactly
    /// the cases an interrupted run had left: same labels, same
    /// `child_seed`s, same scenarios. A `start` at or beyond the grid
    /// yields nothing.
    ///
    /// ```
    /// use zen2_sim::{Axis, SimConfig, Sweep};
    ///
    /// let sweep = Sweep::new("grid", SimConfig::epyc_7502_2s())
    ///     .seed(7)
    ///     .axis(Axis::param("x", [0.0, 1.0, 2.0]))
    ///     .axis(Axis::param("y", [0.0, 1.0]));
    /// // Resuming at case 4 re-derives the identical tail of the grid.
    /// let tail: Vec<_> = sweep.skip(4).map(|c| (c.label, c.seed)).collect();
    /// let full: Vec<_> = sweep.cases().map(|c| (c.label, c.seed)).collect();
    /// assert_eq!(tail, full[4..]);
    /// assert_eq!(sweep.skip(99).count(), 0);
    /// ```
    pub fn skip(&self, start: usize) -> impl Iterator<Item = Case> + '_ {
        (start.min(self.len())..self.len()).map(|index| self.case(index))
    }

    /// Lazily yields exactly the cases `start..start + len` (clamped to
    /// the grid) — the shard path. [`skip`](Self::skip) bounds only the
    /// *front* of the iterator; a shard handed `skip(start)` would let
    /// the session pull — and execute — cases past its range's end,
    /// because the engine fetches a full `workers × shard_size` group
    /// at a time before it looks at what arrived. `take_range` bounds
    /// the tail too, so a shard never derives a case outside its slice
    /// no matter the worker/shard-size split.
    ///
    /// ```
    /// use zen2_sim::{Axis, SimConfig, Sweep};
    ///
    /// let sweep = Sweep::new("grid", SimConfig::epyc_7502_2s())
    ///     .seed(7)
    ///     .axis(Axis::param("x", [0.0, 1.0, 2.0]))
    ///     .axis(Axis::param("y", [0.0, 1.0]));
    /// let slice: Vec<_> = sweep.take_range(2, 3).map(|c| c.label).collect();
    /// let full: Vec<_> = sweep.cases().map(|c| c.label).collect();
    /// assert_eq!(slice, full[2..5]);
    /// // Both ends clamp to the grid.
    /// assert_eq!(sweep.take_range(4, 99).count(), 2);
    /// assert_eq!(sweep.take_range(99, 1).count(), 0);
    /// ```
    pub fn take_range(&self, start: usize, len: usize) -> impl Iterator<Item = Case> + '_ {
        let start = start.min(self.len());
        let end = start.saturating_add(len).min(self.len());
        (start..end).map(|index| self.case(index))
    }

    /// Streams the grid from case `start` through a session with the
    /// checkpoint hook: `on_event` observes every delivery (with its
    /// *global* case index) and every shard boundary, exactly as
    /// [`Session::run_streaming_checkpointed`] describes. Pass the
    /// `done` count of a loaded checkpoint as `start` to resume, or 0
    /// to run the whole grid; either way, interrupt-at-a-boundary plus
    /// resume is byte-identical to one uninterrupted run. Returns the
    /// number of runs delivered by this call.
    pub fn stream_checkpointed(
        &self,
        session: &Session,
        start: usize,
        on_event: impl FnMut(StreamEvent) -> Result<StreamControl, String>,
    ) -> Result<usize, SessionError> {
        self.announce(session, start);
        session.run_streaming_checkpointed(start, self.skip(start), on_event)
    }

    /// Streams the whole grid through a session: each completed
    /// [`Run`] is handed to `sink` with its case index, in case order,
    /// while at most `workers × shard_size` cases are resident. Returns
    /// the number of runs delivered.
    pub fn stream(
        &self,
        session: &Session,
        sink: impl FnMut(usize, Run),
    ) -> Result<usize, SessionError> {
        self.announce(session, 0);
        session.run_streaming(self.cases(), sink)
    }

    /// Emits the [`EVT_SWEEP_TOTAL`] progress event for a run of this
    /// grid starting at case `start` — what a progress sink needs for
    /// percentages and ETA. ([`run_resumable`](crate::checkpoint::run_resumable)
    /// announces its grid-plus-riders total itself.)
    fn announce(&self, session: &Session, start: usize) {
        session.obs().event(
            EVT_SWEEP_TOTAL,
            &[
                ("sweep", AttrValue::Str(self.label())),
                ("total", AttrValue::U64(self.len() as u64)),
                ("start", AttrValue::U64(start as u64)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{Probe, Window};

    fn instant_sweep() -> Sweep {
        let mut base = Scenario::new();
        base.probe("ac", Probe::AcPowerW, Window::at(0));
        Sweep::new("grid", SimConfig::epyc_7502_2s()).scenario(base).seed(7)
    }

    #[test]
    fn child_seed_is_deterministic_and_distinct() {
        let a: Vec<u64> = (0..64).map(|i| child_seed(42, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| child_seed(42, i)).collect();
        assert_eq!(a, b);
        // zen2-lint: allow(no-unordered-iteration) — cardinality-only uniqueness check; never iterated
        let unique: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(unique.len(), 64);
        assert_ne!(child_seed(1, 0), child_seed(2, 0));
    }

    #[test]
    fn grid_is_row_major_with_first_axis_outermost() {
        let sweep = instant_sweep()
            .axis(Axis::param("outer", [0.0, 1.0, 2.0]))
            .axis(Axis::param("inner", [0.0, 1.0]));
        assert_eq!(sweep.len(), 6);
        assert_eq!(sweep.axis_indices(0), [0, 0]);
        assert_eq!(sweep.axis_indices(1), [0, 1]);
        assert_eq!(sweep.axis_indices(2), [1, 0]);
        assert_eq!(sweep.axis_indices(5), [2, 1]);
        assert_eq!(sweep.case(3).label, "grid/outer=1/inner=1");
    }

    #[test]
    fn axes_apply_in_order_and_finish_sees_all_params() {
        let sweep = instant_sweep()
            .axis(Axis::param("a", [2.0]))
            .axis(Axis::param("b", [3.0]))
            .finish(|draft| {
                let product = draft.param("a") * draft.param("b");
                draft.seed = product as u64;
            });
        assert_eq!(sweep.case(0).seed, 6);
    }

    #[test]
    fn seeds_default_to_child_derivation_and_axes_can_override() {
        let sweep = instant_sweep().axis(Axis::param("x", [0.0, 1.0, 2.0]));
        for i in 0..3 {
            assert_eq!(sweep.case(i).seed, child_seed(7, i as u64));
        }
        let fixed = instant_sweep().axis(Axis::seeds("seed", [100, 200]));
        assert_eq!(fixed.case(0).seed, 100);
        assert_eq!(fixed.case(1).seed, 200);
    }

    #[test]
    fn config_axis_swaps_the_machine() {
        let sweep = instant_sweep().axis(Axis::configs(
            "sku",
            [
                ("2s".to_string(), SimConfig::epyc_7502_2s()),
                ("1s".to_string(), SimConfig::epyc_7502_1s()),
            ],
        ));
        assert_eq!(sweep.case(0).config, SimConfig::epyc_7502_2s());
        assert_eq!(sweep.case(1).config, SimConfig::epyc_7502_1s());
        assert_eq!(sweep.case(1).label, "grid/sku=1s");
    }

    #[test]
    fn value_label_is_none_out_of_range() {
        let axis = Axis::param("x", [1.0, 2.0]);
        assert_eq!(axis.value_label(0), Some("1"));
        assert_eq!(axis.value_label(1), Some("2"));
        assert_eq!(axis.value_label(2), None);
        assert_eq!(axis.value_labels().collect::<Vec<_>>(), ["1", "2"]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn case_panics_out_of_range_as_documented() {
        let sweep = instant_sweep().axis(Axis::param("x", [1.0, 2.0]));
        let _ = sweep.case(2);
    }

    #[test]
    fn empty_axis_empties_the_grid_and_no_axes_mean_one_case() {
        assert_eq!(instant_sweep().len(), 1);
        let empty = instant_sweep().axis(Axis::new("none"));
        assert!(empty.is_empty());
        assert_eq!(empty.cases().count(), 0);
    }
}
