//! Exact JSON snapshots of streaming state: the durable half of
//! checkpoint/resume.
//!
//! A paper-scale sweep reduces to a handful of on-line accumulators
//! (see [`stats`](crate::stats)); persisting those accumulators at a
//! shard boundary is enough to resume the sweep later — *if* the
//! round-trip is exact. This module provides that round-trip:
//!
//! * [`Json`] — a small JSON document tree with a hand-rolled renderer
//!   and parser (the vendored serde shim has no serializer, following
//!   the `Table::to_json` approach in the experiments crate). Numbers
//!   are kept as their literal text, so a `u64` or an `f64` written by
//!   the renderer parses back to the identical bits.
//! * [`Snapshot`] — the trait every accumulator implements: dump the
//!   exact state as a [`Json`] tree, rebuild the identical state from
//!   one. "Identical" is literal: feeding a restored accumulator the
//!   remaining observations must produce bit-for-bit the same summary
//!   as an uninterrupted run.
//!
//! Floating-point values are rendered with Rust's shortest-round-trip
//! formatting (guaranteed to parse back to the same bits); the
//! non-finite values JSON cannot express are encoded as the strings
//! `"NaN"`, `"inf"` and `"-inf"`.
//!
//! ```
//! use zen2_sim::{Json, OnlineStats, Snapshot};
//!
//! let mut stats = OnlineStats::new();
//! for i in 0..100 {
//!     stats.push(i as f64 * 0.1);
//! }
//! // Snapshot → JSON text → parse → restore is exact…
//! let restored = OnlineStats::restore(&Json::parse(&stats.snapshot().render()).unwrap()).unwrap();
//! assert_eq!(restored, stats);
//! // …so continuing the stream gives bit-identical results.
//! let (mut a, mut b) = (stats, restored);
//! a.push(123.456);
//! b.push(123.456);
//! assert_eq!(a.mean().to_bits(), b.mean().to_bits());
//! ```

use std::fmt;

/// A restore failure: the JSON was malformed, or well-formed but not a
/// valid snapshot of the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(String);

impl SnapshotError {
    /// Builds an error with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

/// A JSON document tree.
///
/// Numbers are stored as their literal text ([`Json::Num`] holds the
/// token, not a parsed value), so integers above 2⁵³ and every `f64`
/// bit pattern survive a render→parse round-trip unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal token text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An `f64` as a JSON value: shortest-round-trip decimal for finite
    /// values, the strings `"NaN"` / `"inf"` / `"-inf"` otherwise.
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            // Rust's float Debug prints the shortest decimal that
            // parses back to the identical bits.
            Json::Num(format!("{v:?}"))
        } else if v.is_nan() {
            Json::Str("NaN".into())
        } else if v > 0.0 {
            Json::Str("inf".into())
        } else {
            Json::Str("-inf".into())
        }
    }

    /// A `u64` as a JSON number.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A `usize` as a JSON number.
    pub fn usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// An object from `(key, value)` pairs, preserving their order.
    pub fn obj<'k>(fields: impl IntoIterator<Item = (&'k str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array of `f64`s (each encoded as [`Json::f64`]).
    pub fn f64s(values: impl IntoIterator<Item = f64>) -> Json {
        Json::Arr(values.into_iter().map(Json::f64).collect())
    }

    /// An array of `usize`s.
    pub fn usizes(values: impl IntoIterator<Item = usize>) -> Json {
        Json::Arr(values.into_iter().map(Json::usize).collect())
    }

    /// The value under `key`.
    ///
    /// # Errors
    /// Errors when `self` is not an object or the key is absent.
    pub fn get(&self, key: &str) -> Result<&Json, SnapshotError> {
        let Json::Obj(fields) = self else {
            return Err(SnapshotError::new(format!("expected an object with key {key:?}")));
        };
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| SnapshotError::new(format!("missing key {key:?}")))
    }

    /// The array elements.
    ///
    /// # Errors
    /// Errors when `self` is not an array.
    pub fn items(&self) -> Result<&[Json], SnapshotError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(SnapshotError::new(format!("expected an array, found {other:?}"))),
        }
    }

    /// The value as an `f64`, accepting the non-finite encodings of
    /// [`Json::f64`].
    ///
    /// # Errors
    /// Errors when `self` is neither a number nor a non-finite marker.
    pub fn as_f64(&self) -> Result<f64, SnapshotError> {
        match self {
            Json::Num(text) => text
                .parse()
                .map_err(|_| SnapshotError::new(format!("invalid f64 literal {text:?}"))),
            Json::Str(s) if s == "NaN" => Ok(f64::NAN),
            Json::Str(s) if s == "inf" => Ok(f64::INFINITY),
            Json::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
            other => Err(SnapshotError::new(format!("expected a number, found {other:?}"))),
        }
    }

    /// The value as a `u64`.
    ///
    /// # Errors
    /// Errors when `self` is not a non-negative integer number.
    pub fn as_u64(&self) -> Result<u64, SnapshotError> {
        match self {
            Json::Num(text) => text
                .parse()
                .map_err(|_| SnapshotError::new(format!("invalid u64 literal {text:?}"))),
            other => Err(SnapshotError::new(format!("expected an integer, found {other:?}"))),
        }
    }

    /// The value as an `i64`.
    ///
    /// # Errors
    /// Errors when `self` is not an integer number.
    pub fn as_i64(&self) -> Result<i64, SnapshotError> {
        match self {
            Json::Num(text) => text
                .parse()
                .map_err(|_| SnapshotError::new(format!("invalid i64 literal {text:?}"))),
            other => Err(SnapshotError::new(format!("expected an integer, found {other:?}"))),
        }
    }

    /// The value as a `usize`.
    ///
    /// # Errors
    /// Errors when `self` is not a non-negative integer number.
    pub fn as_usize(&self) -> Result<usize, SnapshotError> {
        match self {
            Json::Num(text) => text
                .parse()
                .map_err(|_| SnapshotError::new(format!("invalid usize literal {text:?}"))),
            other => Err(SnapshotError::new(format!("expected an integer, found {other:?}"))),
        }
    }

    /// The value as a `bool`.
    ///
    /// # Errors
    /// Errors when `self` is not a boolean.
    pub fn as_bool(&self) -> Result<bool, SnapshotError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(SnapshotError::new(format!("expected a boolean, found {other:?}"))),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    /// Errors when `self` is not a string.
    pub fn as_str(&self) -> Result<&str, SnapshotError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(SnapshotError::new(format!("expected a string, found {other:?}"))),
        }
    }

    /// The value as a `Vec<f64>` (an array of [`Json::f64`] encodings).
    ///
    /// # Errors
    /// Errors when `self` is not an array of numbers.
    pub fn as_f64s(&self) -> Result<Vec<f64>, SnapshotError> {
        self.items()?.iter().map(Json::as_f64).collect()
    }

    /// The value as a `Vec<usize>`.
    ///
    /// # Errors
    /// Errors when `self` is not an array of non-negative integers.
    pub fn as_usizes(&self) -> Result<Vec<usize>, SnapshotError> {
        self.items()?.iter().map(Json::as_usize).collect()
    }

    /// Renders the tree as compact JSON text (one line, no spaces).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(text) => out.push_str(text),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, anything
    /// else after the document is an error).
    ///
    /// # Errors
    /// Errors on malformed JSON, with a byte offset in the message.
    pub fn parse(text: &str) -> Result<Json, SnapshotError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

/// Renders `s` as a JSON string literal (quotes included) into `out`.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A recursive-descent JSON parser over raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> SnapshotError {
        SnapshotError::new(format!("{reason} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), SnapshotError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str) -> bool {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, SnapshotError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, SnapshotError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > from
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number token");
        Ok(Json::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else { return Err(self.err("unterminated string")) };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Snapshots never emit surrogate pairs (the
                            // renderer only \u-escapes control bytes),
                            // so a lone surrogate is simply an error.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let len = utf8_len(c).ok_or_else(|| self.err("invalid UTF-8"))?;
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, SnapshotError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, SnapshotError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// The byte length of the UTF-8 sequence starting with `first`, or
/// `None` for a continuation/invalid lead byte.
fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

/// An exact, durable dump/rebuild round-trip for streaming state.
///
/// Implementations must be *exact*: `restore(&snapshot())` rebuilds a
/// value that is indistinguishable from the original — same comparison
/// result, same future behavior bit for bit. That is what makes a
/// resumed sweep byte-identical to an uninterrupted one (see
/// [`checkpoint`](crate::checkpoint)).
///
/// Implementing the trait for an experiment-specific accumulator is a
/// handful of lines with the [`Json`] helpers:
///
/// ```
/// use zen2_sim::{Json, Snapshot, SnapshotError, Welford};
///
/// /// Two power readings folded per case.
/// #[derive(Default, PartialEq, Debug)]
/// struct AcAndRapl {
///     ac: Welford,
///     rapl: Welford,
/// }
///
/// impl Snapshot for AcAndRapl {
///     fn snapshot(&self) -> Json {
///         Json::obj([("ac", self.ac.snapshot()), ("rapl", self.rapl.snapshot())])
///     }
///     fn restore(json: &Json) -> Result<Self, SnapshotError> {
///         Ok(Self {
///             ac: Welford::restore(json.get("ac")?)?,
///             rapl: Welford::restore(json.get("rapl")?)?,
///         })
///     }
/// }
///
/// let mut acc = AcAndRapl::default();
/// acc.ac.push(99.1);
/// acc.rapl.push(84.0);
/// let round_tripped = AcAndRapl::from_json_text(&acc.to_json_text()).unwrap();
/// assert_eq!(round_tripped, acc);
/// ```
pub trait Snapshot: Sized {
    /// The exact current state as a JSON tree.
    fn snapshot(&self) -> Json;

    /// Rebuilds the exact state a [`snapshot`](Self::snapshot) captured.
    ///
    /// # Errors
    /// Errors when `json` is not a snapshot of this type.
    fn restore(json: &Json) -> Result<Self, SnapshotError>;

    /// [`snapshot`](Self::snapshot) rendered as compact JSON text.
    fn to_json_text(&self) -> String {
        self.snapshot().render()
    }

    /// Parses and [`restore`](Self::restore)s in one step.
    ///
    /// # Errors
    /// Errors on malformed JSON or a snapshot of the wrong type.
    fn from_json_text(text: &str) -> Result<Self, SnapshotError> {
        Self::restore(&Json::parse(text)?)
    }
}

/// `Option<S>` snapshots as `null` or the inner snapshot — the shape
/// [`GroupedStats`](crate::stats::GroupedStats) accumulators that hold
/// one reduced result per cell use.
impl<S: Snapshot> Snapshot for Option<S> {
    fn snapshot(&self) -> Json {
        match self {
            None => Json::Null,
            Some(inner) => inner.snapshot(),
        }
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        match json {
            Json::Null => Ok(None),
            other => Ok(Some(S::restore(other)?)),
        }
    }
}

impl Snapshot for f64 {
    fn snapshot(&self) -> Json {
        Json::f64(*self)
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        json.as_f64()
    }
}

impl Snapshot for u64 {
    fn snapshot(&self) -> Json {
        Json::u64(*self)
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        json.as_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_every_value_kind() {
        let doc = Json::obj([
            ("null", Json::Null),
            ("flag", Json::Bool(true)),
            ("int", Json::u64(u64::MAX)),
            ("float", Json::f64(0.1)),
            ("text", Json::str("a \"quoted\"\nline\t\u{1}")),
            ("arr", Json::Arr(vec![Json::Bool(false), Json::Null])),
            ("nested", Json::obj([("k", Json::usize(7))])),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn u64_round_trips_above_2_to_the_53() {
        let v = (1u64 << 53) + 1;
        let json = Json::parse(&Json::u64(v).render()).unwrap();
        assert_eq!(json.as_u64().unwrap(), v);
    }

    #[test]
    fn f64_round_trips_exactly() {
        for v in [
            0.1,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN_POSITIVE / 2.0, // subnormal
            99.1,
        ] {
            let json = Json::parse(&Json::f64(v).render()).unwrap();
            assert_eq!(json.as_f64().unwrap().to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn non_finite_floats_use_string_markers() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let json = Json::parse(&Json::f64(v).render()).unwrap();
            let back = json.as_f64().unwrap();
            if v.is_nan() {
                assert!(back.is_nan());
            } else {
                assert_eq!(back.to_bits(), v.to_bits());
            }
        }
        assert_eq!(Json::f64(f64::INFINITY).render(), "\"inf\"");
    }

    #[test]
    fn parser_reports_malformed_documents() {
        for text in ["", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"unterminated", "1 2"] {
            assert!(Json::parse(text).is_err(), "{text:?} must not parse");
        }
    }

    #[test]
    fn parser_accepts_standard_escapes_and_unicode() {
        let json = Json::parse("\"a\\u0041\\n\\t\\\\ μ\"").unwrap();
        assert_eq!(json.as_str().unwrap(), "aA\n\t\\ μ");
    }

    #[test]
    fn accessors_name_their_failures() {
        let obj = Json::obj([("a", Json::Null)]);
        assert!(obj.get("b").unwrap_err().to_string().contains("missing key \"b\""));
        assert!(Json::Null.get("a").is_err());
        assert!(Json::Null.as_f64().is_err());
        assert!(Json::Str("x".into()).as_u64().is_err());
        assert!(Json::Null.items().is_err());
    }

    #[test]
    fn option_snapshot_is_null_or_inner() {
        let none: Option<f64> = None;
        assert_eq!(none.snapshot(), Json::Null);
        let some = Some(1.5f64);
        assert_eq!(Option::<f64>::restore(&some.snapshot()).unwrap(), some);
        assert_eq!(Option::<f64>::restore(&Json::Null).unwrap(), None);
    }

    #[test]
    fn negative_zero_survives() {
        let json = Json::parse(&Json::f64(-0.0).render()).unwrap();
        assert_eq!(json.as_f64().unwrap().to_bits(), (-0.0f64).to_bits());
    }
}
