//! The simulated machine: a deterministic, event-driven EPYC 7502 system.

use crate::ccx;
use crate::config::SimConfig;
use crate::controller::PptController;
use crate::cstate::ThreadState;
use crate::os::IdleConfig;
use crate::perf::ThreadCounters;
use crate::power::{self, MachineState, PowerBreakdown};
use crate::smu::{PendingTransition, Smu};
use crate::time::{next_boundary, to_secs, Ns, MILLISECOND};
use crate::trace::{Event, Tracer};
use crate::wakeup;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use zen2_isa::{KernelClass, OperandWeight, SmtMode, WorkloadSet};
use zen2_mem::ClockPlan;
use zen2_msr::{address, MsrFile};
use zen2_power::MeterSample;
use zen2_rapl::RaplAccounting;
use zen2_topology::{CoreId, CpuNumbering, SocketId, ThreadId};

/// Maximum segment length, bounding thermal-integration error.
const MAX_SEGMENT_NS: Ns = 100 * MILLISECOND;

/// The simulated system.
#[derive(Clone)]
pub struct System {
    cfg: SimConfig,
    kernels: WorkloadSet,
    numbering: CpuNumbering,
    now: Ns,
    seed: u64,
    rng: ChaCha8Rng,
    msrs: MsrFile,

    // Per-thread state.
    thread_states: Vec<ThreadState>,
    workloads: Vec<Option<(KernelClass, OperandWeight)>>,
    pstate_req_mhz: Vec<u32>,
    idle_cfg: Vec<IdleConfig>,

    // Per-core state.
    smu: Smu,
    core_eff_ghz: Vec<f64>,
    core_voltage: Vec<f64>,
    est_noise_w: Vec<f64>,

    // Per-package state.
    controllers: Vec<PptController>,
    die_temp_c: Vec<f64>,

    // Accounting.
    counters: Vec<ThreadCounters>,
    rapl: RaplAccounting,
    breakdown: PowerBreakdown,
    ac_energy_j: f64,
    /// Piecewise-constant AC power trace: `(segment start, watts)`.
    trace: Vec<(Ns, f64)>,
    /// Event recorder (disabled by default).
    tracer: Tracer,
}

impl System {
    /// Boots the machine: all threads idle in C2, all requests at nominal
    /// frequency, dies at their idle steady-state temperature.
    pub fn new(cfg: SimConfig, seed: u64) -> Self {
        let topo = cfg.topology.clone();
        let num_threads = topo.num_threads();
        let num_cores = topo.num_cores();
        let num_pkgs = topo.num_sockets();
        let nominal = cfg.nominal_mhz();

        let vf_points: Vec<(u32, f64)> = cfg
            .pstates
            .frequencies_mhz()
            .iter()
            .rev()
            .map(|&mhz| (mhz, cfg.voltage_for_mhz(mhz)))
            .collect();
        let smu = Smu::new(cfg.smu.clone(), num_cores, nominal, vf_points);
        let controllers = (0..num_pkgs)
            .map(|_| PptController::new(&cfg.controller, nominal, cfg.min_mhz()))
            .collect();

        let mut sys = Self {
            numbering: CpuNumbering::linux_default(&topo),
            msrs: MsrFile::with_pstate_table(&topo, &cfg.pstates),
            kernels: WorkloadSet::paper(),
            now: 0,
            seed,
            rng: ChaCha8Rng::seed_from_u64(seed),
            thread_states: vec![ThreadState::C2; num_threads],
            workloads: vec![None; num_threads],
            pstate_req_mhz: vec![nominal; num_threads],
            idle_cfg: vec![IdleConfig::default(); num_threads],
            smu,
            core_eff_ghz: vec![nominal as f64 / 1000.0; num_cores],
            core_voltage: vec![cfg.voltage_for_mhz(nominal); num_cores],
            est_noise_w: vec![0.0; num_cores],
            controllers,
            die_temp_c: vec![cfg.power.thermal.ambient_c; num_pkgs],
            counters: vec![ThreadCounters::default(); num_threads],
            rapl: RaplAccounting::new(num_cores, num_pkgs),
            breakdown: PowerBreakdown {
                core_true_w: vec![0.0; num_cores],
                core_est_w: vec![0.0; num_cores],
                pkg_true_w: vec![0.0; num_pkgs],
                pkg_est_w: vec![0.0; num_pkgs],
                pkg_awake: vec![false; num_pkgs],
                dram_traffic_gbs: 0.0,
                dram_w: 0.0,
                dc_w: 0.0,
                ac_w: 0.0,
            },
            ac_energy_j: 0.0,
            trace: Vec::new(),
            tracer: Tracer::new(),
            cfg,
        };
        sys.reevaluate_power();
        // Idle steady-state temperature.
        for pkg in 0..num_pkgs {
            sys.die_temp_c[pkg] =
                sys.cfg.power.thermal.steady_state_c(sys.breakdown.pkg_true_w[pkg]);
        }
        sys.reevaluate_power();
        sys.trace.clear();
        sys.trace.push((0, sys.breakdown.ac_w));
        sys
    }

    /// Forks a pristine booted machine into an identical one reseeded
    /// with `seed`: the result is indistinguishable from
    /// `System::new(cfg, seed)` but skips the boot cost. Used by
    /// [`Session`](crate::Session) to amortize booting across a batch.
    ///
    /// # Panics
    /// Panics if this machine is not in its boot state — time advanced,
    /// any workload scheduled (scheduling consumes the RNG, which a
    /// reseed would not reproduce), or any frequency request / C-state
    /// configuration changed from boot defaults.
    pub fn fork(&self, seed: u64) -> System {
        let nominal = self.cfg.nominal_mhz();
        assert!(
            self.now == 0
                && self.workloads.iter().all(Option::is_none)
                && self.thread_states.iter().all(|&s| s == ThreadState::C2)
                && self.pstate_req_mhz.iter().all(|&mhz| mhz == nominal)
                && self.idle_cfg.iter().all(|c| *c == IdleConfig::default())
                && !self.tracer.is_enabled()
                && self.tracer.records().is_empty(),
            "fork requires a pristine booted system"
        );
        let mut sys = self.clone();
        sys.seed = seed;
        sys.rng = ChaCha8Rng::seed_from_u64(seed);
        sys
    }

    // ---- accessors -------------------------------------------------------

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> Ns {
        self.now
    }

    /// The seed this machine was booted (or forked) with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configuration the machine was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The Linux-style CPU numbering of this machine.
    pub fn numbering(&self) -> &CpuNumbering {
        &self.numbering
    }

    /// The workload registry.
    pub fn kernels(&self) -> &WorkloadSet {
        &self.kernels
    }

    /// Instantaneous true AC (wall) power.
    pub fn ac_power_w(&self) -> f64 {
        self.breakdown.ac_w
    }

    /// The latest power evaluation.
    pub fn power_breakdown(&self) -> &PowerBreakdown {
        &self.breakdown
    }

    /// Whether a package is awake (out of PC6).
    pub fn package_awake(&self, socket: SocketId) -> bool {
        self.breakdown.pkg_awake[socket.index()]
    }

    /// Effective (post-coupling) frequency of a core in GHz.
    pub fn effective_core_ghz(&self, core: CoreId) -> f64 {
        self.core_eff_ghz[core.index()]
    }

    /// Current die temperature of a package.
    pub fn die_temp_c(&self, socket: SocketId) -> f64 {
        self.die_temp_c[socket.index()]
    }

    /// Performance-counter snapshot for a thread.
    pub fn counters(&self, thread: ThreadId) -> ThreadCounters {
        self.counters[thread.index()]
    }

    /// The scheduling state of a thread.
    pub fn thread_state(&self, thread: ThreadId) -> ThreadState {
        self.thread_states[thread.index()]
    }

    /// The live per-thread state in the scenario validator's terms, so
    /// scenarios validate against what this machine actually looks like
    /// rather than boot defaults.
    pub(crate) fn scheduling_snapshot(&self) -> Vec<crate::scenario::VThread> {
        self.thread_states
            .iter()
            .zip(&self.idle_cfg)
            .map(|(&state, idle)| crate::scenario::VThread {
                // Active covers both real workloads and the POLL loop;
                // either way there is no sleep state to wake from.
                has_work: state.is_active(),
                polling: false,
                offline: state == ThreadState::Offline,
                c1_enabled: idle.c1_enabled,
                c2_enabled: idle.c2_enabled,
            })
            .collect()
    }

    /// Mutable access to the machine's RNG (for experiment-side sampling).
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }

    /// Enables or disables event tracing (lo2s-style). Enabling records
    /// the current package sleep states as baseline events so later
    /// residency accounting starts from the right state.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer.set_enabled(enabled);
        if enabled {
            for pkg in 0..self.breakdown.pkg_awake.len() {
                self.tracer.record(
                    self.now,
                    Event::PackageSleep {
                        socket: SocketId(pkg as u32),
                        asleep: !self.breakdown.pkg_awake[pkg],
                    },
                );
            }
        }
    }

    /// The recorded event trace.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    // ---- OS-level controls ------------------------------------------------

    /// Schedules a workload on a hardware thread (pins it to C0).
    pub fn set_workload(&mut self, thread: ThreadId, class: KernelClass, weight: OperandWeight) {
        assert!(
            self.thread_states[thread.index()] != ThreadState::Offline,
            "cannot schedule on an offline thread"
        );
        self.thread_states[thread.index()] = ThreadState::Active;
        self.workloads[thread.index()] = Some((class, weight));
        self.resample_noise(thread);
        self.trace_thread_state(thread);
        self.apply_state_change();
    }

    /// Removes the workload: the thread idles into its deepest enabled
    /// C-state.
    pub fn set_idle(&mut self, thread: ThreadId) {
        if self.thread_states[thread.index()] == ThreadState::Offline {
            return;
        }
        self.workloads[thread.index()] = None;
        self.thread_states[thread.index()] = self.idle_cfg[thread.index()].deepest_idle_state();
        // POLL fallback (all idle states disabled) is an active loop.
        if self.thread_states[thread.index()] == ThreadState::Active {
            self.workloads[thread.index()] = Some((KernelClass::Poll, OperandWeight::HALF));
        }
        self.resample_noise(thread);
        self.trace_thread_state(thread);
        self.apply_state_change();
    }

    /// Enables/disables an idle state for one thread (sysfs
    /// `cpuidle/stateN/disable`). Re-settles the thread if it is idle.
    pub fn set_cstate_enabled(&mut self, thread: ThreadId, level: u8, enabled: bool) {
        match level {
            1 => self.idle_cfg[thread.index()].c1_enabled = enabled,
            2 => self.idle_cfg[thread.index()].c2_enabled = enabled,
            other => panic!("the test system has C-states 1 and 2, not {other}"),
        }
        if !self.thread_states[thread.index()].is_active()
            && self.thread_states[thread.index()] != ThreadState::Offline
        {
            self.thread_states[thread.index()] = self.idle_cfg[thread.index()].deepest_idle_state();
            if self.thread_states[thread.index()] == ThreadState::Active {
                self.workloads[thread.index()] = Some((KernelClass::Poll, OperandWeight::HALF));
            }
        }
        self.apply_state_change();
    }

    /// Hotplugs a thread (sysfs `online`). Offlining parks the thread per
    /// the configured kernel behavior (Section VI-B anomaly); onlining
    /// returns it to the idle path.
    pub fn set_online(&mut self, thread: ThreadId, online: bool) {
        if online {
            if self.thread_states[thread.index()] == ThreadState::Offline {
                self.thread_states[thread.index()] =
                    self.idle_cfg[thread.index()].deepest_idle_state();
            }
        } else {
            self.workloads[thread.index()] = None;
            self.thread_states[thread.index()] = ThreadState::Offline;
        }
        self.trace_thread_state(thread);
        self.apply_state_change();
    }

    /// Sets the userspace-governor frequency request of one hardware
    /// thread. The core's DVFS request is the maximum over both siblings
    /// — including idle and offline ones (Section V-A). Returns the SMU
    /// transition this triggered, if any.
    pub fn set_thread_pstate_mhz(
        &mut self,
        thread: ThreadId,
        mhz: u32,
    ) -> Option<PendingTransition> {
        assert!(
            self.cfg.pstates.index_of_frequency(mhz).is_some(),
            "{mhz} MHz is not a defined P-state"
        );
        self.pstate_req_mhz[thread.index()] = mhz;
        self.msrs.poke(
            thread,
            address::PSTATE_CTL,
            self.cfg.pstates.index_of_frequency(mhz).expect("checked above") as u64,
        );
        self.tracer.record(
            self.now,
            Event::FreqRequested { core: self.cfg.topology.core_of(thread), target_mhz: mhz },
        );
        let pending = self.resolve_dvfs();
        self.update_clocks_and_power();
        let core = self.cfg.topology.core_of(thread);
        pending.into_iter().find(|(c, _)| *c == core.index()).map(|(_, p)| p)
    }

    // ---- time advancement --------------------------------------------------

    /// Runs the machine forward by `dt` nanoseconds.
    pub fn run_for_ns(&mut self, dt: Ns) {
        let end = self.now + dt;
        while self.now < end {
            let mut next = end.min(self.now + MAX_SEGMENT_NS);
            if let Some(e) = self.smu.next_event() {
                next = next.min(e);
            }
            let controller_active =
                self.cfg.controller.enabled && self.thread_states.iter().any(|t| t.is_active());
            if controller_active {
                next = next.min(next_boundary(self.now, self.cfg.smu.slot_period_ns));
            }
            self.integrate_segment(next - self.now);
            self.now = next;

            let completed = self.smu.advance(self.now);
            let freq_changed = !completed.is_empty();
            if self.tracer.is_enabled() {
                for c in &completed {
                    self.tracer.record(
                        c.at,
                        Event::FreqApplied {
                            core: CoreId::from_index(c.core),
                            mhz: c.mhz,
                            fast_path: c.fast_path,
                        },
                    );
                }
            }
            let mut caps_changed = false;
            if controller_active && self.now.is_multiple_of(self.cfg.smu.slot_period_ns) {
                for pkg in 0..self.controllers.len() {
                    let cores = pkg * self.cfg.topology.cores_per_socket()
                        ..(pkg + 1) * self.cfg.topology.cores_per_socket();
                    let applied = cores
                        .map(|c| self.smu.core(c).applied_mhz())
                        .min()
                        .expect("packages have cores");
                    let moved = self.controllers[pkg].step(
                        self.breakdown.pkg_est_w[pkg],
                        self.cfg.power.package.ppt_estimated_w,
                        applied,
                    );
                    if moved {
                        self.tracer.record(
                            self.now,
                            Event::CapChanged {
                                socket: SocketId(pkg as u32),
                                cap_mhz: self.controllers[pkg].cap_mhz(),
                            },
                        );
                    }
                    caps_changed |= moved;
                }
            }
            if caps_changed {
                self.resolve_dvfs();
            }
            if freq_changed || caps_changed {
                self.update_clocks_and_power();
            } else {
                // Thermal drift still moves leakage and estimates.
                self.reevaluate_power();
            }
        }
    }

    /// Runs the machine forward by (fractional) seconds.
    pub fn run_for_secs(&mut self, secs: f64) {
        self.run_for_ns(crate::time::from_secs(secs));
    }

    /// Fast-forwards the thermal state to steady conditions (the paper's
    /// pre-heat phase) without paying for simulated seconds.
    pub fn preheat(&mut self) {
        for _ in 0..4 {
            for pkg in 0..self.die_temp_c.len() {
                self.die_temp_c[pkg] =
                    self.cfg.power.thermal.steady_state_c(self.breakdown.pkg_true_w[pkg]);
            }
            self.reevaluate_power();
        }
    }

    // ---- measurement interfaces ---------------------------------------------
    //
    // All windowed measurements share one core: `trace_mean_w` (true
    // power from the piecewise-constant trace), `metered_mean_w` (LMG670
    // samples + inner-window averaging) and `probe::RaplWindow` (MSR
    // energy-counter polling). The legacy `measure_*` methods below and
    // the declarative `Probe` layer are both thin wrappers over these.

    /// Runs for `secs` and returns the externally-measured mean AC power
    /// over the inner 80 % of the interval (the paper's 10 s / inner-8 s
    /// methodology), including LMG670 sampling and instrument noise.
    pub fn measure_ac_w(&mut self, secs: f64) -> f64 {
        let from = self.now;
        self.run_for_secs(secs);
        let to = self.now;
        self.metered_mean_w(from, to)
    }

    /// Externally-measured mean AC power over a past interval: LMG670
    /// samples averaged over the inner 80 % of the window.
    pub fn metered_mean_w(&mut self, from: Ns, to: Ns) -> f64 {
        let samples = self.meter_samples(from, to);
        zen2_power::PowerMeter::inner_window_mean(&samples, to_secs(from), to_secs(to))
    }

    /// Materializes LMG670 samples over a past interval from the power
    /// trace.
    pub fn meter_samples(&mut self, from: Ns, to: Ns) -> Vec<MeterSample> {
        assert!(to <= self.now, "cannot meter the future");
        let meter = zen2_power::PowerMeter::lmg670();
        let period = crate::time::from_secs(meter.period_s());
        let mut samples = Vec::new();
        let mut t = from;
        while t + period <= to {
            let window_mean = self.trace_mean_w(t, t + period);
            let reading = meter.read(&mut self.rng, window_mean);
            samples.push(MeterSample { t_s: to_secs(t + period), watts: reading });
            t += period;
        }
        samples
    }

    /// True mean AC power over a past interval (no instrument noise).
    pub fn trace_mean_w(&self, from: Ns, to: Ns) -> f64 {
        assert!(from < to && to <= self.now, "invalid trace window");
        let mut energy = 0.0;
        for (idx, &(seg_start, watts)) in self.trace.iter().enumerate() {
            let seg_end = self.trace.get(idx + 1).map(|&(t, _)| t).unwrap_or(self.now);
            let lo = seg_start.max(from);
            let hi = seg_end.min(to);
            if hi > lo {
                // zen2-lint: allow(float-order) — trace segments integrate in chronological order, which is fixed
                energy += watts * to_secs(hi - lo);
            }
        }
        energy / to_secs(to - from)
    }

    /// Runs for `secs` and returns mean RAPL power per domain as software
    /// would compute it: `(package sum, core sum)` in watts, read through
    /// the MSR energy counters, polled at ~100 ms to stay far from
    /// counter wrap.
    pub fn measure_rapl_w(&mut self, secs: f64) -> (f64, f64) {
        let mut window = crate::probe::RaplWindow::open(self);
        let steps = crate::probe::rapl_poll_steps(crate::time::from_secs(secs));
        for _ in 0..steps {
            self.run_for_secs(secs / steps as f64);
            window.poll(self);
        }
        window.finish(self)
    }

    /// Copies the published RAPL counters into the MSR file (the moment
    /// software performs a read).
    pub fn sync_rapl_msrs(&mut self) {
        self.rapl.maybe_publish(self.now);
        let tpc = self.cfg.topology.threads_per_core();
        for core in 0..self.cfg.topology.num_cores() {
            let raw = self.rapl.core_counter(core) as u64;
            for sib in 0..tpc {
                self.msrs.poke(ThreadId((core * tpc + sib) as u32), address::CORE_ENERGY_STAT, raw);
            }
        }
        for pkg in 0..self.cfg.topology.num_sockets() {
            let raw = self.rapl.package_counter(pkg) as u64;
            for t in 0..self.cfg.topology.cores_per_socket() * tpc {
                let thread =
                    ThreadId((pkg * self.cfg.topology.cores_per_socket() * tpc + t) as u32);
                self.msrs.poke(thread, address::PKG_ENERGY_STAT, raw);
            }
        }
    }

    /// Read-only access to the MSR file (the `/dev/cpu/N/msr` interface).
    pub fn msrs(&self) -> &MsrFile {
        &self.msrs
    }

    /// Samples one cond-var wakeup of `callee` triggered by `caller`
    /// (Fig. 8 benchmark). The callee must be idle.
    pub fn sample_wakeup_ns(&mut self, caller: ThreadId, callee: ThreadId) -> f64 {
        let state = self.thread_states[callee.index()];
        let callee_core = self.cfg.topology.core_of(callee);
        let ghz = self.core_eff_ghz[callee_core.index()];
        let remote = self.cfg.topology.socket_of_thread(caller)
            != self.cfg.topology.socket_of_thread(callee);
        wakeup::sample_latency_ns(&mut self.rng, &self.cfg.cstate, state, ghz, remote)
    }

    /// Pointer-chase L3 hit latency for a reader core under the current
    /// CCX clocks (Fig. 4 benchmark; prefetchers off, huge pages).
    pub fn l3_latency_ns(&self, core: CoreId) -> f64 {
        let ccx = self.cfg.topology.ccx_of_core(core);
        let mesh_ghz = self
            .cfg
            .topology
            .cores_of_ccx(ccx)
            .map(|c| {
                let active = self.core_has_active_thread(c);
                if active {
                    self.core_eff_ghz[c.index()]
                } else {
                    0.0
                }
            })
            .fold(0.0f64, f64::max)
            .max(ccx::L3_MIN_MHZ as f64 / 1000.0);
        self.cfg.l3_latency.latency_ns(self.core_eff_ghz[core.index()], mesh_ghz)
    }

    /// Pointer-chase DRAM latency under the configured I/O-die P-state
    /// and DRAM clock (Fig. 5b benchmark).
    pub fn dram_latency_ns(&self) -> f64 {
        self.cfg.dram_latency.latency_ns(&ClockPlan::resolve(self.cfg.iod_pstate, self.cfg.dram))
    }

    /// STREAM-triad bandwidth for `cores` streaming cores on one CCD
    /// (Fig. 5a benchmark).
    pub fn stream_triad_gbs(&self, cores: u32) -> f64 {
        self.cfg
            .bandwidth
            .bandwidth_gbs(&ClockPlan::resolve(self.cfg.iod_pstate, self.cfg.dram), cores)
    }

    // ---- internals -----------------------------------------------------------

    fn core_has_active_thread(&self, core: CoreId) -> bool {
        let tpc = self.cfg.topology.threads_per_core();
        let base = core.index() * tpc;
        self.thread_states[base..base + tpc].iter().any(|t| t.is_active())
    }

    fn resample_noise(&mut self, thread: ThreadId) {
        let core = self.cfg.topology.core_of(thread).index();
        let sigma = self.cfg.rapl.noise_sigma_w;
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.est_noise_w[core] = sigma * z;
    }

    /// Re-resolves every core's DVFS target; returns triggered transitions.
    fn resolve_dvfs(&mut self) -> Vec<(usize, PendingTransition)> {
        let tpc = self.cfg.topology.threads_per_core();
        let mut out = Vec::new();
        for core in 0..self.cfg.topology.num_cores() {
            let base = core * tpc;
            // Section V-A: the request is the max over both hardware
            // threads, whether idle, offline or active.
            let req = self.pstate_req_mhz[base..base + tpc]
                .iter()
                .copied()
                .max()
                .expect("cores have threads");
            let pkg = self.cfg.topology.socket_of_core(CoreId::from_index(core)).index();
            let target = req.min(self.controllers[pkg].cap_mhz());
            if let Some(p) = self.smu.request(self.now, core, target) {
                out.push((core, p));
            }
        }
        out
    }

    fn update_clocks_and_power(&mut self) {
        let topo = self.cfg.topology.clone();
        let tpc = topo.threads_per_core();
        for ccx in topo.all_ccxs() {
            let cores: Vec<CoreId> = topo.cores_of_ccx(ccx).collect();
            let applied: Vec<u32> =
                cores.iter().map(|c| self.smu.core(c.index()).applied_mhz()).collect();
            let active: Vec<bool> = cores.iter().map(|&c| self.core_has_active_thread(c)).collect();
            let clocks = ccx::resolve(&applied, &active, self.cfg.ccx_coupling);
            for (i, &core) in cores.iter().enumerate() {
                self.core_eff_ghz[core.index()] = clocks.effective_mhz[i] / 1000.0;
                self.core_voltage[core.index()] = self.smu.voltage(applied[i]);
                // Hardware keeps PStateStat coherent with the applied
                // frequency (on-grid frequencies only; controller caps
                // between table entries report the next-slower P-state).
                let status = self
                    .cfg
                    .pstates
                    .frequencies_mhz()
                    .iter()
                    .position(|&mhz| mhz <= applied[i])
                    .unwrap_or(self.cfg.pstates.len() - 1);
                for sib in 0..tpc {
                    self.msrs.poke(
                        ThreadId((core.index() * tpc + sib) as u32),
                        address::PSTATE_STAT,
                        status as u64,
                    );
                }
            }
        }
        self.reevaluate_power();
    }

    fn reevaluate_power(&mut self) {
        let state = MachineState {
            thread_states: &self.thread_states,
            workloads: &self.workloads,
            core_eff_ghz: &self.core_eff_ghz,
            core_voltage: &self.core_voltage,
            die_temp_c: &self.die_temp_c,
            est_noise_w: &self.est_noise_w,
        };
        let breakdown = power::evaluate(&self.cfg, &state);
        if self.tracer.is_enabled() {
            for pkg in 0..breakdown.pkg_awake.len() {
                if breakdown.pkg_awake[pkg] != self.breakdown.pkg_awake[pkg] {
                    self.tracer.record(
                        self.now,
                        Event::PackageSleep {
                            socket: SocketId(pkg as u32),
                            asleep: !breakdown.pkg_awake[pkg],
                        },
                    );
                }
            }
        }
        let changed = (breakdown.ac_w - self.breakdown.ac_w).abs() > 1e-9;
        self.breakdown = breakdown;
        if changed || self.trace.is_empty() {
            self.trace.push((self.now, self.breakdown.ac_w));
        }
    }

    fn apply_state_change(&mut self) {
        self.resolve_dvfs();
        self.update_clocks_and_power();
    }

    /// Records a thread's current scheduling state into the event trace.
    fn trace_thread_state(&mut self, thread: ThreadId) {
        if !self.tracer.is_enabled() {
            return;
        }
        let label = match self.thread_states[thread.index()] {
            ThreadState::Active => "C0",
            ThreadState::C1 => "C1",
            ThreadState::C2 => "C2",
            ThreadState::Offline => "offline",
        };
        self.tracer.record(self.now, Event::ThreadState { thread, state: label });
    }

    /// Integrates counters, energy and temperature over a constant-state
    /// segment.
    fn integrate_segment(&mut self, dt: Ns) {
        if dt == 0 {
            return;
        }
        let dt_s = to_secs(dt);
        let tpc = self.cfg.topology.threads_per_core();
        let nominal_ghz = self.cfg.nominal_mhz() as f64 / 1000.0;

        for t in 0..self.thread_states.len() {
            let core = t / tpc;
            let state = self.thread_states[t];
            let ipc = match (state, self.workloads[t]) {
                (ThreadState::Active, Some((class, _))) => {
                    let base = core * tpc;
                    let active = self.thread_states[base..base + tpc]
                        .iter()
                        .filter(|s| s.is_active())
                        .count();
                    self.kernels.kernel(class).ipc_per_thread(SmtMode::from_active(active))
                }
                _ => 0.0,
            };
            self.counters[t].advance(
                dt_s,
                state,
                self.core_eff_ghz[core],
                nominal_ghz,
                ipc,
                self.cfg.os.idle_wake_cycles_per_s,
            );
        }

        self.rapl.accumulate(dt_s, &self.breakdown.core_est_w, &self.breakdown.pkg_est_w);
        self.ac_energy_j += self.breakdown.ac_w * dt_s;
        for pkg in 0..self.die_temp_c.len() {
            self.die_temp_c[pkg] = self.cfg.power.thermal.step(
                self.die_temp_c[pkg],
                self.breakdown.pkg_true_w[pkg],
                dt_s,
            );
        }
        // RAPL counters publish on their 1 ms cadence.
        self.rapl.maybe_publish(self.now + dt);
    }

    /// Total AC energy consumed since boot, joules.
    pub fn ac_energy_j(&self) -> f64 {
        self.ac_energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MICROSECOND;

    fn boot() -> System {
        System::new(SimConfig::epyc_7502_2s(), 42)
    }

    #[test]
    fn boots_idle_at_the_fig7_floor() {
        let sys = boot();
        assert!((sys.ac_power_w() - 99.1).abs() < 1.5, "floor {:.1} W", sys.ac_power_w());
        assert!(!sys.package_awake(SocketId(0)));
    }

    #[test]
    fn scheduling_work_wakes_both_packages() {
        let mut sys = boot();
        sys.set_workload(ThreadId(0), KernelClass::Pause, OperandWeight::HALF);
        assert!(sys.package_awake(SocketId(0)));
        assert!(sys.package_awake(SocketId(1)), "global PC6 criterion");
        assert!((sys.ac_power_w() - 180.6).abs() < 2.5, "{:.1} W", sys.ac_power_w());
    }

    #[test]
    fn transition_delay_is_in_the_fig3_window() {
        let mut sys = boot();
        sys.set_workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
        sys.run_for_ns(50 * MILLISECOND);
        // Request 1.5 GHz on both siblings of core 0.
        sys.set_thread_pstate_mhz(ThreadId(1), 1500);
        let start = sys.now_ns();
        let pending = sys.set_thread_pstate_mhz(ThreadId(0), 1500).expect("transition starts");
        let delay = pending.completes_at - start;
        assert!((390 * MICROSECOND..=1390 * MICROSECOND).contains(&delay), "{delay} ns");
        sys.run_for_ns(delay + MICROSECOND);
        assert!((sys.effective_core_ghz(CoreId(0)) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn idle_sibling_request_elevates_core_frequency() {
        // Section V-A: the active thread asks for 1.5 GHz but the idle
        // sibling's 2.5 GHz request wins.
        let mut sys = boot();
        sys.set_workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
        sys.set_thread_pstate_mhz(ThreadId(0), 1500);
        sys.run_for_ns(5 * MILLISECOND);
        assert!((sys.effective_core_ghz(CoreId(0)) - 2.5).abs() < 1e-9);
        // Lowering the idle sibling's request releases the core.
        sys.set_thread_pstate_mhz(ThreadId(1), 1500);
        sys.run_for_ns(5 * MILLISECOND);
        assert!((sys.effective_core_ghz(CoreId(0)) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn offline_sibling_request_also_elevates() {
        let mut sys = boot();
        sys.set_online(ThreadId(1), false);
        sys.set_workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
        sys.set_thread_pstate_mhz(ThreadId(0), 1500);
        sys.run_for_ns(5 * MILLISECOND);
        // "Still, the frequency of the core is defined by the offline
        // thread."
        assert!((sys.effective_core_ghz(CoreId(0)) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn ccx_coupling_reduces_slower_cores() {
        let mut sys = boot();
        // Core 0 at 2.2 GHz, cores 1-3 of the CCX at 2.5 GHz, all busy.
        for t in 0..8u32 {
            sys.set_workload(ThreadId(t), KernelClass::BusyWait, OperandWeight::HALF);
            let mhz = if t < 2 { 2200 } else { 2500 };
            sys.set_thread_pstate_mhz(ThreadId(t), mhz);
        }
        sys.run_for_ns(5 * MILLISECOND);
        let eff = sys.effective_core_ghz(CoreId(0));
        assert!((eff - 2.0).abs() < 0.001, "Table I cell: {eff:.4} GHz");
    }

    #[test]
    fn firestarter_throttles_toward_fig6_equilibrium() {
        let mut sys = boot();
        for t in 0..128u32 {
            sys.set_workload(ThreadId(t), KernelClass::Firestarter, OperandWeight::HALF);
        }
        sys.preheat();
        sys.run_for_secs(0.2);
        let f = sys.effective_core_ghz(CoreId(0));
        assert!((1.95..=2.15).contains(&f), "SMT equilibrium {f:.3} GHz");
        let est: f64 = sys.power_breakdown().pkg_est_w.iter().sum::<f64>() / 2.0;
        assert!((est - 170.0).abs() < 4.0, "RAPL-visible package power {est:.1} W");
    }

    #[test]
    fn counters_report_effective_frequency() {
        let mut sys = boot();
        sys.set_workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
        sys.run_for_ns(20 * MILLISECOND);
        let before = sys.counters(ThreadId(0));
        sys.run_for_secs(0.1);
        let after = sys.counters(ThreadId(0));
        let eff = ThreadCounters::effective_ghz(&before, &after, 2.5);
        assert!((eff - 2.5).abs() < 0.01, "perf-observed {eff:.3} GHz");
    }

    #[test]
    fn rapl_measurement_through_msrs() {
        let mut sys = boot();
        for t in 0..128u32 {
            sys.set_workload(ThreadId(t), KernelClass::AddPd, OperandWeight::HALF);
        }
        sys.run_for_secs(0.05);
        let (pkg_w, core_w) = sys.measure_rapl_w(1.0);
        assert!(pkg_w > 100.0 && pkg_w < 400.0, "package sum {pkg_w:.0} W");
        assert!(core_w > 50.0 && core_w < pkg_w, "core sum {core_w:.0} W");
    }

    #[test]
    fn meter_trace_reflects_power_steps() {
        let mut sys = boot();
        sys.run_for_secs(0.3);
        let idle_mean = sys.trace_mean_w(0, sys.now_ns());
        assert!((idle_mean - 99.1).abs() < 1.5);
        let t0 = sys.now_ns();
        for t in 0..128u32 {
            sys.set_workload(ThreadId(t), KernelClass::BusyWait, OperandWeight::HALF);
        }
        sys.run_for_secs(0.3);
        let busy_mean = sys.trace_mean_w(t0, sys.now_ns());
        assert!(busy_mean > idle_mean + 50.0, "busy {busy_mean:.0} vs idle {idle_mean:.0}");
    }

    #[test]
    fn measure_ac_matches_trace_within_instrument_noise() {
        let mut sys = boot();
        for t in 0..32u32 {
            sys.set_workload(ThreadId(t), KernelClass::Compute, OperandWeight::HALF);
        }
        sys.run_for_secs(0.05);
        let from = sys.now_ns();
        let metered = sys.measure_ac_w(1.0);
        let truth = sys.trace_mean_w(from, sys.now_ns());
        assert!((metered - truth).abs() < 0.5, "metered {metered:.2} vs truth {truth:.2}");
    }

    #[test]
    fn pstate_status_register_tracks_applied_frequency() {
        let mut sys = boot();
        sys.set_workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
        sys.set_thread_pstate_mhz(ThreadId(0), 1500);
        sys.set_thread_pstate_mhz(ThreadId(1), 1500);
        sys.run_for_ns(5 * MILLISECOND);
        // P-state 2 is 1.5 GHz on this table; both siblings see it.
        let stat = sys.msrs().read(ThreadId(0), zen2_msr::address::PSTATE_STAT).unwrap();
        assert_eq!(stat, 2);
        let stat = sys.msrs().read(ThreadId(1), zen2_msr::address::PSTATE_STAT).unwrap();
        assert_eq!(stat, 2);
    }

    #[test]
    fn poll_fallback_draws_more_than_pause() {
        // Paper Fig. 7: the unrolled pause loop "exhibits a more stable
        // and slightly lower power consumption than POLL".
        let mut pause_sys = boot();
        pause_sys.set_workload(ThreadId(0), KernelClass::Pause, OperandWeight::HALF);
        pause_sys.run_for_secs(0.05);
        let mut poll_sys = boot();
        // Disabling every idle state forces the POLL loop.
        poll_sys.set_cstate_enabled(ThreadId(0), 2, false);
        poll_sys.set_cstate_enabled(ThreadId(0), 1, false);
        poll_sys.run_for_secs(0.05);
        assert!(
            poll_sys.ac_power_w() > pause_sys.ac_power_w(),
            "POLL {:.2} W vs pause {:.2} W",
            poll_sys.ac_power_w(),
            pause_sys.ac_power_w()
        );
    }

    #[test]
    fn wakeup_sampling_uses_callee_state() {
        let mut sys = boot();
        sys.set_workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
        // Callee idles in C2 on the same CCX.
        let c2 = sys.sample_wakeup_ns(ThreadId(0), ThreadId(2));
        assert!(c2 > 15_000.0, "C2 wake {c2:.0} ns");
        sys.set_cstate_enabled(ThreadId(2), 2, false);
        let c1 = sys.sample_wakeup_ns(ThreadId(0), ThreadId(2));
        assert!(c1 < 3_000.0, "C1 wake {c1:.0} ns");
    }
}
