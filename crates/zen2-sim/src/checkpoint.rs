//! Durable checkpoints for paper-scale sweeps: persist the streaming
//! accumulators at a shard boundary, resume later, produce byte-identical
//! output.
//!
//! A `--paper`-scale grid can run for hours with nothing on disk until
//! the end. The checkpoint layer closes that gap with three pieces:
//!
//! * [`Checkpoint`] — a named bundle of [`Snapshot`]s (grouped reducers
//!   and single accumulators) plus the sweep's identity (label, grid
//!   shape, total case count) and the `done` watermark. It saves
//!   atomically (write-temp-then-rename, so a kill at any instant
//!   leaves either the old or the new file, never a torn one) and
//!   validates everything on load.
//! * [`CheckpointSpec`] — what a checkpointed run was asked to do
//!   (`--checkpoint <path>`, `--resume`, and the deterministic-interrupt
//!   testing aid `--halt-after <n>`), with the shard-boundary hook body
//!   the experiment modules share.
//! * [`CheckpointError`] — every way a resume can be refused, each with
//!   a message naming the file and the disagreement (a checkpoint from
//!   a different grid is an error, never a panic or a silent misfold).
//!
//! # On-disk format
//!
//! A checkpoint is a line-oriented text file (stable across versions by
//! the leading magic):
//!
//! ```text
//! zen2-sweep-checkpoint v2
//! {"sweep":"fig09","total":73,"start":0,"done":32,"lens":[8,3,3],"fp":"91c3b2…"}
//! {"state":"grid","shape":{"axes":[…],"positions":[0,1,2],"lens":[8,3,3]}}
//! {"state":"grid","row":{"key":[0,0,0],"acc":{…}}}
//! {"state":"grid","row":{"key":[0,0,1],"acc":{…}}}
//! {"state":"idle","value":{…}}
//! ```
//!
//! Line 1 is the version header. Line 2 identifies the run: the sweep
//! label, the total case count (grid plus any rider cases), the covered
//! case-index range `start..done` (format v2 added `start` so a shard
//! of a fleet run — see [`ShardRange`] and [`Checkpoint::merge`] — can
//! declare which slice of the grid it folded; a whole-run checkpoint
//! has `start` 0), the grid's axis lengths, and a
//! fingerprint of the run's content (seeds, scale-dependent scenario
//! data, machine configuration — so two runs whose grids merely share
//! dimensions can never blend). After that, one JSON object per line:
//! a `shape` line opens a grouped state, each `row` line carries **one
//! [`GroupedStats`] row** (its group key and accumulator snapshot), and
//! a `value` line is a single stand-alone accumulator. Everything is
//! written with the exact [`Json`] encoding of
//! [`snapshot`](crate::snapshot) — floats round-trip bit-for-bit, which
//! is what makes a resumed sweep's output byte-identical.
//!
//! ```
//! use zen2_sim::{Axis, Checkpoint, GroupedStats, OnlineStats, SimConfig, Sweep};
//!
//! let sweep = Sweep::new("demo", SimConfig::epyc_7502_2s())
//!     .seed(7)
//!     .axis(Axis::param("x", [0.0, 1.0, 2.0]));
//! let mut grouped: GroupedStats<OnlineStats> = GroupedStats::new(&sweep, &["x"]);
//! grouped.entry(0).push(99.1);
//!
//! // Persist after case 1 of 3, then pick the run back up elsewhere.
//! let mut ck = Checkpoint::new(&sweep, sweep.len(), 1);
//! ck.set_grouped("grid", &grouped);
//! let path = std::env::temp_dir().join("zen2-checkpoint-doctest");
//! ck.save(&path).unwrap();
//!
//! let loaded = Checkpoint::load(&path).unwrap();
//! loaded.matches(&sweep, sweep.len()).unwrap();
//! assert_eq!(loaded.done(), 1);
//! let restored = loaded.grouped("grid", &GroupedStats::<OnlineStats>::new(&sweep, &["x"]));
//! assert_eq!(restored.unwrap(), grouped);
//! # std::fs::remove_file(&path).ok();
//! ```

use crate::obs::{AttrValue, EVT_SWEEP_TOTAL};
use crate::probe::Run;
use crate::session::{Case, Session, SessionError, SessionErrorKind, StreamControl, StreamEvent};
use crate::snapshot::{Json, Snapshot, SnapshotError};
use crate::stats::GroupedStats;
use crate::sweep::Sweep;
use std::fmt;
use std::path::{Path, PathBuf};

/// The first line of every checkpoint file. v2 added the `start` header
/// key (covered-range lower bound) for fleet shards; v1 files are
/// rejected with the version error rather than silently read as
/// whole-run checkpoints.
const MAGIC: &str = "zen2-sweep-checkpoint v2";

/// FNV-1a over `bytes`, folded into `state`.
fn fnv1a(bytes: &[u8], state: &mut u64) {
    for &b in bytes {
        *state ^= b as u64;
        *state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// A fingerprint of everything that makes a sweep *this* run beyond its
/// shape: the label, every axis value label, and the first and last
/// cases' seeds, machine configuration, and scenario. Two runs of the
/// same grid shape but a different root seed, scale (durations live in
/// the scenarios), or machine configuration fingerprint differently —
/// the guard that keeps [`Checkpoint::matches`] from silently blending
/// results across runs whose grids merely have the same dimensions.
fn sweep_fingerprint(sweep: &Sweep) -> u64 {
    let mut state = 0xCBF2_9CE4_8422_2325u64; // FNV offset basis
    fnv1a(sweep.label().as_bytes(), &mut state);
    for axis in sweep.axes() {
        fnv1a(axis.name().as_bytes(), &mut state);
        for label in axis.value_labels() {
            fnv1a(label.as_bytes(), &mut state);
        }
    }
    if !sweep.is_empty() {
        for index in [0, sweep.len() - 1] {
            let case = sweep.case(index);
            fnv1a(&case.seed.to_le_bytes(), &mut state);
            if index == 0 {
                // The Debug renderings are deterministic within one
                // build and cover the scale-dependent content (probe
                // windows, workloads) and the machine configuration.
                // They guard resume against a *mismatched* sweep, not
                // identity across builds: a Debug-output shift only
                // invalidates old checkpoint files (fingerprint
                // mismatch, explicit error), it can never alias two
                // different sweeps into one identity.
                fnv1a(format!("{:?}", case.config).as_bytes(), &mut state); // zen2-lint: allow(no-debug-keying) — rejection guard, not an identity key (see above)
                fnv1a(format!("{:?}", case.scenario).as_bytes(), &mut state); // zen2-lint: allow(no-debug-keying) — rejection guard, not an identity key (see above)
            }
        }
    }
    state
}

/// Why a checkpoint could not be written, read, or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io(String),
    /// The file exists but is not a well-formed checkpoint (or is from
    /// an incompatible format version).
    Malformed(String),
    /// The checkpoint is well-formed but belongs to a different run:
    /// another sweep label, a different grid shape, or a grouped state
    /// whose axes disagree with the reducer being restored.
    Mismatch(String),
    /// A state the resume needs is not in the file.
    MissingState(String),
    /// Two checkpoints being merged folded some case twice — their
    /// covered ranges intersect.
    RangeOverlap(String),
    /// Two checkpoints being merged are not adjacent — some case
    /// between their covered ranges was folded by neither.
    RangeGap(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(m) => write!(f, "checkpoint I/O failed: {m}"),
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            CheckpointError::MissingState(m) => write!(f, "checkpoint missing state: {m}"),
            CheckpointError::RangeOverlap(m) => write!(f, "checkpoint ranges overlap: {m}"),
            CheckpointError::RangeGap(m) => write!(f, "checkpoint ranges leave a gap: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<SnapshotError> for CheckpointError {
    fn from(error: SnapshotError) -> Self {
        CheckpointError::Malformed(error.to_string())
    }
}

impl CheckpointError {
    /// Maps a streaming failure out of a checkpointed run: a
    /// [`SessionErrorKind::CheckpointFailed`] becomes a checkpoint I/O
    /// error; anything else (scenario validation, worker panic) is an
    /// engine or authoring bug exactly as in a non-checkpointed run,
    /// and panics with the same message those paths always produced.
    pub fn from_stream(error: SessionError) -> CheckpointError {
        match error.kind {
            SessionErrorKind::CheckpointFailed(message) => CheckpointError::Io(message),
            _ => panic!("{error}"),
        }
    }
}

/// One named state inside a checkpoint.
#[derive(Debug, Clone, PartialEq)]
enum State {
    /// A stand-alone accumulator snapshot.
    Single(Json),
    /// A grouped reducer: its shape header plus one snapshot per row.
    Grouped { shape: Json, rows: Vec<Json> },
}

/// A durable cut of a streaming sweep: which run it belongs to, how far
/// it got, and every accumulator's exact state. See the
/// [module docs](self) for the on-disk format.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    sweep: String,
    total: usize,
    start: usize,
    done: usize,
    lens: Vec<usize>,
    fingerprint: u64,
    states: Vec<(String, State)>,
}

impl Checkpoint {
    /// An empty checkpoint for `sweep` at watermark `done`, covering
    /// `total` cases (the grid plus any rider cases streamed after it).
    /// The covered range starts at case 0 — a whole-run checkpoint; a
    /// fleet shard uses [`for_range`](Self::for_range).
    pub fn new(sweep: &Sweep, total: usize, done: usize) -> Self {
        Self::for_range(sweep, total, 0, done)
    }

    /// An empty checkpoint covering the case-index range
    /// `start..done` of a `total`-case run — what a `--shard-range`
    /// worker cuts at its shard boundaries.
    pub fn for_range(sweep: &Sweep, total: usize, start: usize, done: usize) -> Self {
        Self {
            sweep: sweep.label().to_string(),
            total,
            start,
            done,
            lens: sweep.axes().iter().map(crate::sweep::Axis::len).collect(),
            fingerprint: sweep_fingerprint(sweep),
            states: Vec::new(),
        }
    }

    /// The sweep label the checkpoint was written for.
    pub fn sweep(&self) -> &str {
        &self.sweep
    }

    /// Cases folded in when the checkpoint was cut — the index of the
    /// first case a resumed run must execute.
    pub fn done(&self) -> usize {
        self.done
    }

    /// The total case count of the run (grid plus riders).
    pub fn total(&self) -> usize {
        self.total
    }

    /// The covered case-index range `start..done`: which slice of the
    /// run's cases this checkpoint folded. A whole-run checkpoint
    /// starts at 0; a `--shard-range` worker's starts at its shard's
    /// lower bound.
    pub fn covered(&self) -> (usize, usize) {
        (self.start, self.done)
    }

    /// Whether every case of the run had been folded in (a resume runs
    /// nothing and just re-emits the result). A shard checkpoint —
    /// `start > 0` — is never complete on its own; merging the full
    /// partition makes it so.
    pub fn is_complete(&self) -> bool {
        self.start == 0 && self.done >= self.total
    }

    /// Adds (or replaces) a stand-alone accumulator state.
    pub fn set_single(&mut self, name: impl Into<String>, state: &impl Snapshot) {
        self.put(name.into(), State::Single(state.snapshot()));
    }

    /// Adds (or replaces) a grouped reducer's state.
    pub fn set_grouped<A: Snapshot>(&mut self, name: impl Into<String>, stats: &GroupedStats<A>) {
        let state =
            State::Grouped { shape: stats.shape_snapshot(), rows: stats.row_snapshots().collect() };
        self.put(name.into(), state);
    }

    fn put(&mut self, name: String, state: State) {
        match self.states.iter_mut().find(|(n, _)| *n == name) {
            Some((_, slot)) => *slot = state,
            None => self.states.push((name, state)),
        }
    }

    /// Restores a stand-alone accumulator by name.
    ///
    /// # Errors
    /// Errors when the state is absent, grouped, or not a snapshot of
    /// `S`.
    pub fn single<S: Snapshot>(&self, name: &str) -> Result<S, CheckpointError> {
        match self.find(name)? {
            State::Single(json) => Ok(S::restore(json)?),
            State::Grouped { .. } => Err(CheckpointError::Mismatch(format!(
                "state {name:?} is a grouped reducer, not a single accumulator"
            ))),
        }
    }

    /// Restores a grouped reducer by name, refusing a reducer whose
    /// shape (grouping axes, value labels, grid lengths) differs from
    /// `like` — the freshly built reducer of the run being resumed.
    ///
    /// # Errors
    /// Errors when the state is absent or single, the snapshot is
    /// corrupt, or the shapes disagree.
    pub fn grouped<A: Snapshot>(
        &self,
        name: &str,
        like: &GroupedStats<A>,
    ) -> Result<GroupedStats<A>, CheckpointError> {
        let State::Grouped { shape, rows } = self.find(name)? else {
            return Err(CheckpointError::Mismatch(format!(
                "state {name:?} is a single accumulator, not a grouped reducer"
            )));
        };
        let mut restored = GroupedStats::<A>::restore_shape(shape)?;
        if !restored.shape_matches(like) {
            return Err(CheckpointError::Mismatch(format!(
                "grouped state {name:?} was written for a different grid: \
                 checkpoint has {}, this run builds {}",
                restored.shape_description(),
                like.shape_description()
            )));
        }
        for row in rows {
            restored.restore_row(row)?;
        }
        Ok(restored)
    }

    fn find(&self, name: &str) -> Result<&State, CheckpointError> {
        self.states
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
            .ok_or_else(|| CheckpointError::MissingState(name.to_string()))
    }

    /// Verifies the checkpoint belongs to this run: same sweep label,
    /// same grid axis lengths, same total case count, and a watermark
    /// within range.
    ///
    /// # Errors
    /// Errors with the exact disagreement when it does not.
    pub fn matches(&self, sweep: &Sweep, total: usize) -> Result<(), CheckpointError> {
        let lens: Vec<usize> = sweep.axes().iter().map(crate::sweep::Axis::len).collect();
        if self.sweep != sweep.label() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint is for sweep {:?}, this run is {:?}",
                self.sweep,
                sweep.label()
            )));
        }
        if self.lens != lens {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint grid shape {:?} != this run's {:?} — \
                 was the scale or configuration changed between runs?",
                self.lens, lens
            )));
        }
        if self.total != total {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint covers {} cases, this run has {total}",
                self.total
            )));
        }
        if self.fingerprint != sweep_fingerprint(sweep) {
            return Err(CheckpointError::Mismatch(
                "checkpoint was written by a different run of this grid — \
                 the seed, scale, or machine configuration changed between runs"
                    .into(),
            ));
        }
        if self.done > self.total {
            return Err(CheckpointError::Malformed(format!(
                "watermark {} beyond the {} total cases",
                self.done, self.total
            )));
        }
        if self.start > self.done {
            return Err(CheckpointError::Malformed(format!(
                "covered range starts at {} but the watermark is {}",
                self.start, self.done
            )));
        }
        Ok(())
    }

    /// Merges a shard checkpoint from the *same run* into this one:
    /// identities must agree exactly (label, grid shape, total,
    /// fingerprint), the covered ranges must be adjacent (in either
    /// order — merge left-to-right or right-to-left), and the union
    /// becomes the new covered range.
    ///
    /// States merge at the file level, bit-for-bit: grouped states
    /// union their rows (sorted by group key, exactly the order a
    /// single-process run renders). Every wide-grid experiment groups
    /// by **all** sweep axes, so a contiguous case partition never
    /// splits a row and the union reproduces the single-process rows
    /// verbatim — including P² quantile state, which is why the fleet
    /// path is byte-identical rather than merely tolerance-close. A
    /// partition that *does* cut through a row (a coarser grouping) is
    /// rejected by the duplicate-row guard: restore both sides and
    /// combine the accumulators with the typed
    /// [`Merge`](crate::stats::Merge) impls instead, accepting the
    /// documented quantile tolerance. Single states are rider-range
    /// accumulators: the side whose range reached past the grid
    /// supplies them; when neither (or both) did, the snapshots must
    /// agree bit-for-bit.
    ///
    /// On error the target is left unchanged.
    ///
    /// # Errors
    /// [`RangeOverlap`](CheckpointError::RangeOverlap) /
    /// [`RangeGap`](CheckpointError::RangeGap) when the ranges are not
    /// adjacent, [`Mismatch`](CheckpointError::Mismatch) for identity,
    /// state-set, shape, duplicate-row, or rider-state disagreements.
    pub fn merge(&mut self, other: &Checkpoint) -> Result<(), CheckpointError> {
        if self.sweep != other.sweep {
            return Err(CheckpointError::Mismatch(format!(
                "cannot merge checkpoints of different sweeps {:?} and {:?}",
                self.sweep, other.sweep
            )));
        }
        if self.lens != other.lens {
            return Err(CheckpointError::Mismatch(format!(
                "cannot merge checkpoints of different grid shapes {:?} and {:?}",
                self.lens, other.lens
            )));
        }
        if self.total != other.total {
            return Err(CheckpointError::Mismatch(format!(
                "cannot merge checkpoints covering {} and {} total cases",
                self.total, other.total
            )));
        }
        if self.fingerprint != other.fingerprint {
            return Err(CheckpointError::Mismatch(
                "cannot merge checkpoints written by different runs of this grid — \
                 the seed, scale, or machine configuration differs"
                    .into(),
            ));
        }
        // Range union: empty sides are trivial, otherwise the ranges
        // must tile — adjacency in either order.
        if other.start == other.done {
            return Ok(());
        }
        if self.start == self.done {
            self.states = other.states.clone();
            (self.start, self.done) = (other.start, other.done);
            return Ok(());
        }
        let (ours, theirs) = ((self.start, self.done), (other.start, other.done));
        let range = if ours.1 == theirs.0 {
            (ours.0, theirs.1)
        } else if theirs.1 == ours.0 {
            (theirs.0, ours.1)
        } else if theirs.0 < ours.1 && ours.0 < theirs.1 {
            return Err(CheckpointError::RangeOverlap(format!(
                "cases {}..{} and {}..{} were both folded — \
                 shards must cover disjoint ranges",
                ours.0, ours.1, theirs.0, theirs.1
            )));
        } else {
            return Err(CheckpointError::RangeGap(format!(
                "cases {}..{} and {}..{} are not adjacent — \
                 every case must be folded by exactly one shard",
                ours.0, ours.1, theirs.0, theirs.1
            )));
        };
        let grid: usize = self.lens.iter().product();
        let mut merged_states = Vec::with_capacity(self.states.len());
        for (name, state) in &self.states {
            let Some((_, their_state)) = other.states.iter().find(|(n, _)| n == name) else {
                return Err(CheckpointError::Mismatch(format!(
                    "state {name:?} is in only one of the checkpoints"
                )));
            };
            merged_states.push((
                name.clone(),
                Self::merge_state(name, state, their_state, ours, theirs, grid)?,
            ));
        }
        if let Some((name, _)) =
            other.states.iter().find(|(n, _)| !self.states.iter().any(|(m, _)| m == n))
        {
            return Err(CheckpointError::Mismatch(format!(
                "state {name:?} is in only one of the checkpoints"
            )));
        }
        self.states = merged_states;
        (self.start, self.done) = range;
        Ok(())
    }

    /// One state's half of [`merge`](Self::merge): `ours`/`theirs` are
    /// the sides' covered ranges, `grid` the grid case count (indices
    /// at or past it are rider cases).
    fn merge_state(
        name: &str,
        state: &State,
        their_state: &State,
        ours: (usize, usize),
        theirs: (usize, usize),
        grid: usize,
    ) -> Result<State, CheckpointError> {
        let key_of = |row: &Json| -> Result<Vec<usize>, CheckpointError> {
            row.get("key").and_then(Json::as_usizes).map_err(|e| {
                CheckpointError::Malformed(format!("grouped row of {name:?} has no key: {e}"))
            })
        };
        match (state, their_state) {
            (
                State::Grouped { shape, rows },
                State::Grouped { shape: their_shape, rows: their_rows },
            ) => {
                if shape != their_shape {
                    return Err(CheckpointError::Mismatch(format!(
                        "grouped state {name:?} was grouped differently in the two checkpoints"
                    )));
                }
                // Keyed map so duplicate detection stays cheap on
                // paper-scale grids (10^5 rows); iterating it back out
                // yields the single-process render order — sorted by
                // group key.
                let mut union: std::collections::BTreeMap<Vec<usize>, Json> =
                    std::collections::BTreeMap::new();
                for row in rows.iter().chain(their_rows) {
                    let key = key_of(row)?;
                    if union.insert(key.clone(), row.clone()).is_some() {
                        return Err(CheckpointError::Mismatch(format!(
                            "grouped state {name:?} has row {key:?} in both checkpoints — \
                             the partition cuts through a grouped row; restore both sides \
                             and combine them with the typed GroupedStats::merge instead"
                        )));
                    }
                }
                Ok(State::Grouped { shape: shape.clone(), rows: union.into_values().collect() })
            }
            (State::Single(value), State::Single(their_value)) => {
                // Rider-range accumulators: owned by the side whose
                // covered range reached past the grid.
                match (ours.1 > grid, theirs.1 > grid) {
                    (true, false) => Ok(State::Single(value.clone())),
                    (false, true) => Ok(State::Single(their_value.clone())),
                    _ if value == their_value => Ok(State::Single(value.clone())),
                    _ => Err(CheckpointError::Mismatch(format!(
                        "single state {name:?} differs between the checkpoints and neither \
                         side alone covered the rider cases — a cross-shard single \
                         accumulator cannot be merged at the file level; restore both \
                         sides and combine them with the typed Merge impls instead"
                    ))),
                }
            }
            _ => Err(CheckpointError::Mismatch(format!(
                "state {name:?} is grouped in one checkpoint and single in the other"
            ))),
        }
    }

    /// Renders the file body (see the [module docs](self) for the
    /// line-oriented format).
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        let header = Json::obj([
            ("sweep", Json::str(self.sweep.clone())),
            ("total", Json::usize(self.total)),
            ("start", Json::usize(self.start)),
            ("done", Json::usize(self.done)),
            ("lens", Json::usizes(self.lens.iter().copied())),
            ("fp", Json::str(format!("{:016x}", self.fingerprint))),
        ]);
        out.push_str(&header.render());
        out.push('\n');
        for (name, state) in &self.states {
            match state {
                State::Single(json) => {
                    let line =
                        Json::obj([("state", Json::str(name.clone())), ("value", json.clone())]);
                    out.push_str(&line.render());
                    out.push('\n');
                }
                State::Grouped { shape, rows } => {
                    let line =
                        Json::obj([("state", Json::str(name.clone())), ("shape", shape.clone())]);
                    out.push_str(&line.render());
                    out.push('\n');
                    for row in rows {
                        let line =
                            Json::obj([("state", Json::str(name.clone())), ("row", row.clone())]);
                        out.push_str(&line.render());
                        out.push('\n');
                    }
                }
            }
        }
        out
    }

    /// Writes the checkpoint atomically: the content goes to
    /// `<path>.tmp` first and is renamed over `path`, so a kill at any
    /// instant leaves either the previous checkpoint or this one —
    /// never a torn file. Parent directories are created as needed.
    ///
    /// # Errors
    /// Errors when any filesystem step fails.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let io = |what: &str, e: std::io::Error| {
            CheckpointError::Io(format!("{what} {}: {e}", path.display()))
        };
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(|e| io("creating directory for", e))?;
        }
        // Append ".tmp" rather than replacing the extension: distinct
        // checkpoint paths sharing a stem (run.fig07 / run.fig09) must
        // not collide on one temp file.
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, self.render()).map_err(|e| io("writing", e))?;
        std::fs::rename(&tmp, path).map_err(|e| io("replacing", e))
    }

    /// Reads and validates a checkpoint file (structurally — use
    /// [`matches`](Self::matches) to tie it to a sweep).
    ///
    /// # Errors
    /// Errors when the file cannot be read or any line is not what the
    /// format promises, naming the offending line.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("reading {}: {e}", path.display())))?;
        let at = |line: usize, reason: String| {
            CheckpointError::Malformed(format!("{} line {}: {reason}", path.display(), line + 1))
        };
        let mut lines = text.lines().enumerate();
        let Some((_, magic)) = lines.next() else {
            return Err(at(0, "empty file".into()));
        };
        if magic != MAGIC {
            return Err(CheckpointError::Malformed(format!(
                "{} is not a checkpoint (or is from an unsupported version): \
                 first line {magic:?}, expected {MAGIC:?}",
                path.display()
            )));
        }
        let Some((header_no, header_text)) = lines.next() else {
            return Err(at(1, "missing header".into()));
        };
        let header = Json::parse(header_text).map_err(|e| at(header_no, e.to_string()))?;
        type Header = (String, usize, usize, usize, Vec<usize>, u64);
        let parse_header = |h: &Json| -> Result<Header, SnapshotError> {
            let fp = h.get("fp")?.as_str()?;
            let fingerprint = u64::from_str_radix(fp, 16)
                .map_err(|_| SnapshotError::new(format!("invalid fingerprint {fp:?}")))?;
            Ok((
                h.get("sweep")?.as_str()?.to_string(),
                h.get("total")?.as_usize()?,
                h.get("start")?.as_usize()?,
                h.get("done")?.as_usize()?,
                h.get("lens")?.as_usizes()?,
                fingerprint,
            ))
        };
        let (sweep, total, start, done, lens, fingerprint) =
            parse_header(&header).map_err(|e| at(header_no, e.to_string()))?;
        let mut checkpoint =
            Checkpoint { sweep, total, start, done, lens, fingerprint, states: Vec::new() };
        for (line_no, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let json = Json::parse(line).map_err(|e| at(line_no, e.to_string()))?;
            let name = json
                .get("state")
                .and_then(Json::as_str)
                .map_err(|e| at(line_no, e.to_string()))?
                .to_string();
            if let Ok(shape) = json.get("shape") {
                if checkpoint.states.iter().any(|(n, _)| *n == name) {
                    return Err(at(line_no, format!("duplicate state {name:?}")));
                }
                let state = State::Grouped { shape: shape.clone(), rows: Vec::new() };
                checkpoint.states.push((name, state));
            } else if let Ok(row) = json.get("row") {
                let Some((_, State::Grouped { rows, .. })) =
                    checkpoint.states.iter_mut().find(|(n, _)| *n == name)
                else {
                    return Err(at(line_no, format!("row for {name:?} before its shape line")));
                };
                rows.push(row.clone());
            } else if let Ok(value) = json.get("value") {
                if checkpoint.states.iter().any(|(n, _)| *n == name) {
                    return Err(at(line_no, format!("duplicate state {name:?}")));
                }
                checkpoint.states.push((name, State::Single(value.clone())));
            } else {
                return Err(at(line_no, "expected a shape, row, or value line".into()));
            }
        }
        Ok(checkpoint)
    }
}

/// One shard of an `N`-way fleet partition: the decoded
/// `--shard-range i/N` flag. The partition is row-major contiguous —
/// shard `i` covers case indices
/// `i*total/N .. (i+1)*total/N` — so every case lands in exactly one
/// shard, shard sizes differ by at most one, and concatenating the
/// shards in index order reproduces the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// Which shard this worker runs (0-based).
    pub index: usize,
    /// How many shards the partition has.
    pub of: usize,
}

impl ShardRange {
    /// Decodes `"i/N"` (e.g. `"0/3"`), requiring `N ≥ 1` and `i < N`.
    ///
    /// # Errors
    /// Errors with a usage message on any other input.
    pub fn parse(text: &str) -> Result<Self, String> {
        let usage = || format!("--shard-range wants i/N with 0 <= i < N, got {text:?}");
        let (index, of) = text.split_once('/').ok_or_else(usage)?;
        let index: usize = index.trim().parse().map_err(|_| usage())?;
        let of: usize = of.trim().parse().map_err(|_| usage())?;
        if of == 0 || index >= of {
            return Err(usage());
        }
        Ok(Self { index, of })
    }

    /// This shard's case-index range `start..end` of a `total`-case
    /// run. The `N` shards tile `0..total` exactly.
    pub fn bounds(&self, total: usize) -> (usize, usize) {
        (self.index * total / self.of, (self.index + 1) * total / self.of)
    }
}

impl fmt::Display for ShardRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.of)
    }
}

/// What a checkpointed run was asked to do — the decoded
/// `--checkpoint` / `--resume` / `--halt-after` / `--shard-range`
/// flags every wide-grid experiment binary shares.
#[derive(Debug, Clone, Default)]
pub struct CheckpointSpec {
    /// Where to persist checkpoints (and read them back from when
    /// resuming). `None` disables checkpointing entirely.
    pub path: Option<PathBuf>,
    /// Whether to pick up from an existing checkpoint at `path` (a
    /// missing file just starts fresh, so restart scripts are
    /// idempotent).
    pub resume: bool,
    /// Deterministic-interrupt testing aid: after this many checkpoint
    /// saves, halt the stream cleanly (the state on disk is exactly
    /// what a kill right after the save would leave).
    pub halt_after: Option<usize>,
    /// Run only this shard of the fleet partition; the checkpoint then
    /// covers the shard's case range and is merged with its peers by
    /// the coordinator. `None` runs the whole sweep.
    pub shard: Option<ShardRange>,
}

impl CheckpointSpec {
    /// A spec that never checkpoints — plain uninterrupted runs.
    pub fn none() -> Self {
        Self::default()
    }

    /// A spec writing checkpoints to `path` (fresh run, no resume).
    pub fn at(path: impl Into<PathBuf>) -> Self {
        Self { path: Some(path.into()), ..Self::default() }
    }

    /// A spec resuming from (and continuing to write) `path`.
    pub fn resume_from(path: impl Into<PathBuf>) -> Self {
        Self { path: Some(path.into()), resume: true, ..Self::default() }
    }

    /// Loads the checkpoint a resumed run starts from: `Some` when
    /// resuming and a file exists at the configured path (validated
    /// against `sweep` and `total`), `None` when starting fresh.
    ///
    /// # Errors
    /// Errors when the file exists but cannot be read, is malformed, or
    /// belongs to a different run.
    pub fn load(&self, sweep: &Sweep, total: usize) -> Result<Option<Checkpoint>, CheckpointError> {
        let Some(path) = self.path.as_deref().filter(|_| self.resume) else {
            return Ok(None);
        };
        if !path.exists() {
            return Ok(None);
        }
        let checkpoint = Checkpoint::load(path)?;
        checkpoint.matches(sweep, total)?;
        Ok(Some(checkpoint))
    }

    /// The shard-boundary hook body the experiment modules share: build
    /// and save a checkpoint when a path is configured, count the save,
    /// and request a clean [`StreamControl::Halt`] once
    /// [`halt_after`](Self::halt_after) saves have landed. `saves` is
    /// the caller's running save counter. The error type is the
    /// `String` the session's checkpoint hook contract uses.
    ///
    /// # Errors
    /// Errors when saving fails.
    pub fn on_boundary(
        &self,
        saves: &mut usize,
        build: impl FnOnce() -> Checkpoint,
    ) -> Result<StreamControl, String> {
        let Some(path) = &self.path else { return Ok(StreamControl::Continue) };
        build().save(path).map_err(|e| e.to_string())?;
        *saves += 1;
        if self.halt_after.is_some_and(|limit| *saves >= limit) {
            return Ok(StreamControl::Halt);
        }
        Ok(StreamControl::Continue)
    }
}

/// The accumulator bundle of a resumable sweep: how to persist it into
/// a [`Checkpoint`], rebuild it from one, and fold one delivered run.
/// Implementations pair with [`run_resumable`], which owns the
/// load → stream → save-at-boundaries skeleton every checkpointed
/// experiment shares.
pub trait CheckpointState {
    /// Writes every named state into `checkpoint` — the shard-boundary
    /// save. Names must match what [`restore_from`](Self::restore_from)
    /// reads.
    fn save_into(&self, checkpoint: &mut Checkpoint);

    /// Restores every named state from a loaded checkpoint — the
    /// resume preamble.
    ///
    /// # Errors
    /// Errors when a state is missing, corrupt, or shaped for a
    /// different grid.
    fn restore_from(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError>;

    /// Folds case `index`'s completed run into the accumulators.
    /// Indices are global: grid cases are `0..sweep.len()`, rider cases
    /// follow.
    fn fold(&mut self, index: usize, run: Run);
}

/// The resumable-sweep driver every checkpointed experiment shares:
/// load the checkpoint `spec` names (restoring `state` and skipping the
/// completed prefix), stream the remaining grid cases plus `riders`
/// (extra single cases appended after the grid, e.g. Fig. 7's all-C2
/// baseline), and persist `state` at every shard boundary. Returns
/// `true` when every case of the *whole run* was folded in, `false`
/// when the run halted early per the spec (`--halt-after`) **or** ran
/// only a [`ShardRange`] slice — either way the checkpoint then holds
/// everything a later resume (or the fleet coordinator's
/// [`Checkpoint::merge`]) needs. A shard run therefore never renders a
/// report of its own: only the merged whole does.
///
/// With `spec.shard` set, the run covers exactly the shard's case
/// range: the case iterator is bounded with
/// [`Sweep::take_range`](crate::sweep::Sweep::take_range), so the lazy
/// grid is never pulled past the shard's end, and every boundary save
/// is cut with [`Checkpoint::for_range`]. Resuming a shard requires
/// the same `--shard-range` it was started with.
///
/// Interrupt-at-any-boundary plus resume — under any worker/shard
/// split — is byte-identical to one uninterrupted run, provided
/// `state`'s [`CheckpointState`] impl snapshots exactly.
///
/// ```
/// use zen2_sim::checkpoint::{run_resumable, CheckpointState};
/// use zen2_sim::{
///     Axis, Checkpoint, CheckpointError, CheckpointSpec, GroupedStats, OnlineStats, Probe, Run,
///     Scenario, Session, SimConfig, Sweep, Window,
/// };
///
/// struct Demo(GroupedStats<OnlineStats>);
/// impl CheckpointState for Demo {
///     fn save_into(&self, checkpoint: &mut Checkpoint) {
///         checkpoint.set_grouped("grid", &self.0);
///     }
///     fn restore_from(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
///         self.0 = checkpoint.grouped("grid", &self.0)?;
///         Ok(())
///     }
///     fn fold(&mut self, index: usize, run: Run) {
///         self.0.entry(index).push(run.watts("ac"));
///     }
/// }
///
/// let mut base = Scenario::new();
/// base.probe("ac", Probe::AcPowerW, Window::at(0));
/// let sweep = Sweep::new("demo", SimConfig::epyc_7502_2s())
///     .scenario(base)
///     .seed(7)
///     .axis(Axis::param("rep", (0..3).map(f64::from)));
/// let mut state = Demo(GroupedStats::new(&sweep, &["rep"]));
/// let done = run_resumable(
///     &sweep,
///     vec![],
///     &Session::new().workers(2).shard_size(1),
///     &CheckpointSpec::none(),
///     &mut state,
/// )
/// .unwrap();
/// assert!(done);
/// assert_eq!(state.0.len(), 3);
/// ```
///
/// # Errors
/// Errors when the checkpoint cannot be read, written, or does not
/// belong to this run.
pub fn run_resumable<S: CheckpointState>(
    sweep: &Sweep,
    riders: Vec<Case>,
    session: &Session,
    spec: &CheckpointSpec,
    state: &mut S,
) -> Result<bool, CheckpointError> {
    let grid = sweep.len();
    let total = grid + riders.len();
    let (lo, hi) = spec.shard.map_or((0, total), |shard| shard.bounds(total));
    let mut start = lo;
    if let Some(checkpoint) = spec.load(sweep, total)? {
        let (covered_start, covered_done) = checkpoint.covered();
        if covered_start != lo || covered_done > hi {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint covers cases {covered_start}..{covered_done}, this run's shard \
                 is {lo}..{hi} — resume a shard with the same --shard-range it was \
                 started with"
            )));
        }
        state.restore_from(&checkpoint)?;
        start = covered_done;
    }
    // Announce the run's extent before streaming: progress sinks need
    // the total (and the resume offset) to show percentages and ETA.
    session.obs().event(
        EVT_SWEEP_TOTAL,
        &[
            ("sweep", AttrValue::Str(sweep.label())),
            ("total", AttrValue::U64(hi as u64)),
            ("start", AttrValue::U64(start as u64)),
        ],
    );
    // Bound both halves of the case stream to start..hi: the grid via
    // take_range (never over-pulling the lazy iterator past the
    // shard), the rider tail via skip + take.
    let grid_start = start.min(grid);
    let grid_cases = sweep.take_range(grid_start, hi.min(grid).saturating_sub(grid_start));
    let rider_skip = start.saturating_sub(grid);
    let rider_len = hi.saturating_sub(grid).saturating_sub(rider_skip);
    let pending_riders = riders.into_iter().skip(rider_skip).take(rider_len);
    let mut saves = 0;
    let delivered = session
        .run_streaming_checkpointed(start, grid_cases.chain(pending_riders), |event| match event {
            StreamEvent::Run { index, run } => {
                state.fold(index, run);
                Ok(StreamControl::Continue)
            }
            StreamEvent::ShardBoundary { next } => spec.on_boundary(&mut saves, || {
                let mut checkpoint = Checkpoint::for_range(sweep, total, lo, next);
                state.save_into(&mut checkpoint);
                checkpoint
            }),
        })
        .map_err(CheckpointError::from_stream)?;
    Ok(lo == 0 && start + delivered == total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::stats::OnlineStats;
    use crate::sweep::Axis;

    fn sweep_3x2() -> Sweep {
        Sweep::new("ck-test", SimConfig::epyc_7502_2s())
            .seed(1)
            .axis(Axis::param("a", [0.0, 1.0, 2.0]))
            .axis(Axis::param("b", [0.0, 1.0]))
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("zen2-ckpt-test-{name}-{}", std::process::id()))
    }

    fn populated(sweep: &Sweep) -> (GroupedStats<OnlineStats>, OnlineStats) {
        let mut grouped: GroupedStats<OnlineStats> = GroupedStats::new(sweep, &["a"]);
        let mut rider = OnlineStats::new();
        for i in 0..4 {
            grouped.entry(i).push(i as f64 * 0.7);
            rider.push(100.0 - i as f64);
        }
        (grouped, rider)
    }

    #[test]
    fn save_load_round_trip_preserves_everything() {
        let sweep = sweep_3x2();
        let (grouped, rider) = populated(&sweep);
        let mut ck = Checkpoint::new(&sweep, 7, 4);
        ck.set_grouped("grid", &grouped);
        ck.set_single("rider", &rider);

        let path = tmp("round-trip");
        ck.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        assert_eq!(loaded, ck);
        assert_eq!((loaded.sweep(), loaded.done(), loaded.total()), ("ck-test", 4, 7));
        assert!(!loaded.is_complete());
        loaded.matches(&sweep, 7).unwrap();
        let like: GroupedStats<OnlineStats> = GroupedStats::new(&sweep, &["a"]);
        assert_eq!(loaded.grouped("grid", &like).unwrap(), grouped);
        assert_eq!(loaded.single::<OnlineStats>("rider").unwrap(), rider);
    }

    #[test]
    fn file_format_is_one_object_per_row() {
        let sweep = sweep_3x2();
        let (grouped, _) = populated(&sweep);
        let mut ck = Checkpoint::new(&sweep, 6, 4);
        ck.set_grouped("grid", &grouped);
        let text = ck.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], MAGIC);
        assert!(lines[1].starts_with("{\"sweep\":\"ck-test\",\"total\":6,\"start\":0,\"done\":4"));
        assert!(lines[2].contains("\"shape\""));
        // Cases 0..4 touch groups a=0 and a=1: one object per row.
        let rows = lines.iter().filter(|l| l.contains("\"row\"")).count();
        assert_eq!(rows, 2);
        assert_eq!(lines.len(), 3 + rows);
    }

    #[test]
    fn mismatched_grids_are_rejected_with_clear_errors() {
        let sweep = sweep_3x2();
        let (grouped, _) = populated(&sweep);
        let mut ck = Checkpoint::new(&sweep, 6, 4);
        ck.set_grouped("grid", &grouped);

        // A different sweep label.
        let renamed = Sweep::new("other", SimConfig::epyc_7502_2s())
            .axis(Axis::param("a", [0.0, 1.0, 2.0]))
            .axis(Axis::param("b", [0.0, 1.0]));
        let err = ck.matches(&renamed, 6).unwrap_err();
        assert!(err.to_string().contains("\"other\""), "{err}");

        // A different grid shape (e.g. the scale changed between runs).
        let reshaped = Sweep::new("ck-test", SimConfig::epyc_7502_2s())
            .axis(Axis::param("a", [0.0, 1.0, 2.0, 3.0]))
            .axis(Axis::param("b", [0.0, 1.0]));
        let err = ck.matches(&reshaped, 8).unwrap_err();
        assert!(err.to_string().contains("grid shape"), "{err}");

        // A different rider count.
        let err = ck.matches(&sweep, 9).unwrap_err();
        assert!(err.to_string().contains("9"), "{err}");

        // The same grid shape under a different root seed: the lens all
        // match, only the fingerprint catches it.
        let reseeded = sweep_3x2().seed(2);
        let err = ck.matches(&reseeded, 6).unwrap_err();
        assert!(err.to_string().contains("different run"), "{err}");

        // The same shape with scale-dependent scenario content (e.g. a
        // quick-vs-paper duration change): also fingerprint-caught.
        let mut rescaled_base = crate::scenario::Scenario::new();
        rescaled_base.probe("ac", crate::probe::Probe::AcPowerW, crate::probe::Window::at(123_456));
        let rescaled = sweep_3x2().scenario(rescaled_base);
        let err = ck.matches(&rescaled, 6).unwrap_err();
        assert!(err.to_string().contains("different run"), "{err}");

        // A grouped state restored against a different grouping.
        let by_b: GroupedStats<OnlineStats> = GroupedStats::new(&sweep, &["b"]);
        let err = ck.grouped("grid", &by_b).unwrap_err();
        assert!(err.to_string().contains("different grid"), "{err}");
    }

    #[test]
    fn missing_and_mistyped_states_are_named() {
        let sweep = sweep_3x2();
        let (grouped, rider) = populated(&sweep);
        let mut ck = Checkpoint::new(&sweep, 6, 4);
        ck.set_grouped("grid", &grouped);
        ck.set_single("rider", &rider);

        assert_eq!(
            ck.single::<OnlineStats>("nope").unwrap_err(),
            CheckpointError::MissingState("nope".into())
        );
        assert!(ck.single::<OnlineStats>("grid").is_err());
        let like: GroupedStats<OnlineStats> = GroupedStats::new(&sweep, &["a"]);
        assert!(ck.grouped("rider", &like).is_err());
    }

    #[test]
    fn load_rejects_non_checkpoints_and_torn_lines() {
        let path = tmp("malformed");
        for (content, needle) in [
            ("not a checkpoint\n", "unsupported version"),
            (&format!("{MAGIC}\n")[..], "missing header"),
            (&format!("{MAGIC}\n{{\"sweep\":\"x\"}}\n")[..], "line 2"),
            (
                &format!(
                    "{MAGIC}\n\
                     {{\"sweep\":\"x\",\"total\":1,\"start\":0,\"done\":0,\"lens\":[],\"fp\":\"00\"}}\n\
                     {{\"state\":\"g\",\"row\":{{}}}}\n"
                )[..],
                "before its shape",
            ),
            (
                &format!(
                    "{MAGIC}\n\
                     {{\"sweep\":\"x\",\"total\":1,\"start\":0,\"done\":0,\"lens\":[],\"fp\":\"00\"}}\n\
                     {{\"state\":\"g\"}}\n"
                )[..],
                "shape, row, or value",
            ),
            // A v1 file: rejected by the magic, never half-read.
            ("zen2-sweep-checkpoint v1\n{\"sweep\":\"x\"}\n", "unsupported version"),
        ] {
            std::fs::write(&path, content).unwrap();
            let err = Checkpoint::load(&path).unwrap_err();
            assert!(err.to_string().contains(needle), "{content:?} → {err}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_temp_file_appends_rather_than_replacing_the_extension() {
        // Checkpoint paths sharing a stem (run.fig07 / run.fig09) must
        // not funnel through one temp file: saving to `<dir>/x.fig07`
        // must leave an unrelated `<dir>/x.tmp` untouched.
        let dir = tmp("tmp-name");
        std::fs::create_dir_all(&dir).unwrap();
        let bystander = dir.join("x.tmp");
        std::fs::write(&bystander, "unrelated").unwrap();
        let sweep = sweep_3x2();
        Checkpoint::new(&sweep, 6, 2).save(&dir.join("x.fig07")).unwrap();
        assert_eq!(std::fs::read_to_string(&bystander).unwrap(), "unrelated");
        assert!(Checkpoint::load(&dir.join("x.fig07")).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_resumable_halts_and_resumes_through_the_driver() {
        // The shared driver honors halt_after and resumes to the same
        // state a straight-through run produces.
        struct Sum(OnlineStats);
        impl CheckpointState for Sum {
            fn save_into(&self, checkpoint: &mut Checkpoint) {
                checkpoint.set_single("sum", &self.0);
            }
            fn restore_from(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
                self.0 = checkpoint.single("sum")?;
                Ok(())
            }
            fn fold(&mut self, index: usize, _run: Run) {
                self.0.push(index as f64);
            }
        }
        let mut base = crate::scenario::Scenario::new();
        base.probe("ac", crate::probe::Probe::AcPowerW, crate::probe::Window::at(0));
        let sweep = sweep_3x2().scenario(base);
        let session = Session::new().workers(1).shard_size(2);
        let mut clean = Sum(OnlineStats::new());
        assert!(
            run_resumable(&sweep, vec![], &session, &CheckpointSpec::none(), &mut clean).unwrap()
        );

        let path = tmp("driver");
        let mut halted = Sum(OnlineStats::new());
        let spec = CheckpointSpec { halt_after: Some(1), ..CheckpointSpec::at(&path) };
        assert!(!run_resumable(&sweep, vec![], &session, &spec, &mut halted).unwrap());
        let mut resumed = Sum(OnlineStats::new());
        let spec = CheckpointSpec::resume_from(&path);
        assert!(run_resumable(&sweep, vec![], &session, &spec, &mut resumed).unwrap());
        std::fs::remove_file(&path).unwrap();
        assert_eq!(resumed.0, clean.0);
    }

    #[test]
    fn spec_load_is_none_unless_resuming_an_existing_file() {
        let sweep = sweep_3x2();
        let path = tmp("spec");
        // No path, not resuming, resuming a missing file: all fresh.
        assert_eq!(CheckpointSpec::none().load(&sweep, 6).unwrap(), None);
        assert_eq!(CheckpointSpec::at(&path).load(&sweep, 6).unwrap(), None);
        assert_eq!(CheckpointSpec::resume_from(&path).load(&sweep, 6).unwrap(), None);
        // With a file present, resume loads and validates it.
        Checkpoint::new(&sweep, 6, 2).save(&path).unwrap();
        let loaded = CheckpointSpec::resume_from(&path).load(&sweep, 6).unwrap().unwrap();
        assert_eq!(loaded.done(), 2);
        // …and a total mismatch is surfaced, not ignored.
        assert!(CheckpointSpec::resume_from(&path).load(&sweep, 7).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn on_boundary_saves_counts_and_halts() {
        let sweep = sweep_3x2();
        let path = tmp("boundary");
        let spec = CheckpointSpec { halt_after: Some(2), ..CheckpointSpec::at(&path) };
        let mut saves = 0;
        let build = || Checkpoint::new(&sweep, 6, 2);
        assert_eq!(spec.on_boundary(&mut saves, build).unwrap(), StreamControl::Continue);
        assert_eq!(spec.on_boundary(&mut saves, build).unwrap(), StreamControl::Halt);
        assert_eq!(saves, 2);
        assert!(path.exists());
        std::fs::remove_file(&path).unwrap();
        // Without a path nothing is written and nothing halts.
        let mut saves = 0;
        let spec = CheckpointSpec { halt_after: Some(1), ..CheckpointSpec::none() };
        assert_eq!(spec.on_boundary(&mut saves, build).unwrap(), StreamControl::Continue);
        assert_eq!(saves, 0);
    }

    #[test]
    fn shard_range_parses_and_tiles_the_grid() {
        assert_eq!(ShardRange::parse("0/3").unwrap(), ShardRange { index: 0, of: 3 });
        assert_eq!(ShardRange::parse("2/3").unwrap().bounds(7), (4, 7));
        assert_eq!(ShardRange::parse("2/3").unwrap().to_string(), "2/3");
        for bad in ["", "3", "3/3", "4/3", "a/b", "1/0", "-1/2", "1/2/3"] {
            assert!(ShardRange::parse(bad).is_err(), "{bad:?} parsed");
        }
        // The N shards tile 0..total exactly: contiguous, disjoint,
        // nothing left over — for totals below, at, and above N.
        for total in [0, 1, 6, 7, 100] {
            for of in [1, 2, 3, 7, 11] {
                let mut next = 0;
                for index in 0..of {
                    let (lo, hi) = (ShardRange { index, of }).bounds(total);
                    assert_eq!(lo, next, "shard {index}/{of} of {total}");
                    assert!(hi >= lo);
                    next = hi;
                }
                assert_eq!(next, total, "{of} shards of {total}");
            }
        }
    }

    #[test]
    fn merge_unions_adjacent_shards_bit_exactly() {
        let sweep = sweep_3x2();
        let like = || GroupedStats::<OnlineStats>::new(&sweep, &["a", "b"]);
        let push = |grid: &mut GroupedStats<OnlineStats>, range: std::ops::Range<usize>| {
            for i in range {
                grid.entry(i).push(i as f64 * 1.1);
            }
        };
        let mut rider = OnlineStats::new();
        rider.push(42.5);
        // The single-process reference: all 6 grid cases plus the rider.
        let mut full_grid = like();
        push(&mut full_grid, 0..6);
        let mut full = Checkpoint::new(&sweep, 7, 7);
        full.set_grouped("grid", &full_grid);
        full.set_single("rider", &rider);
        // A shard over `range` (grid grouped by all axes, so disjoint
        // ranges touch disjoint rows); only a shard reaching past the
        // grid folded the rider.
        let empty_rider = OnlineStats::new();
        let shard = |range: std::ops::Range<usize>| {
            let mut grid = like();
            push(&mut grid, range.start..range.end.min(6));
            let mut ck = Checkpoint::for_range(&sweep, 7, range.start, range.end);
            ck.set_grouped("grid", &grid);
            ck.set_single("rider", if range.end > 6 { &rider } else { &empty_rider });
            ck
        };
        let (a, b) = (shard(0..3), shard(3..7));
        let mut merged = a.clone();
        merged.merge(&b).unwrap();
        assert_eq!(merged, full);
        assert_eq!(merged.render(), full.render());
        assert!(merged.is_complete());
        // Adjacency works in either order: same bytes.
        let mut reversed = b;
        reversed.merge(&a).unwrap();
        assert_eq!(reversed.render(), full.render());
        // Three-way, merged middle-out.
        let mut m = shard(2..5);
        m.merge(&shard(5..7)).unwrap();
        m.merge(&shard(0..2)).unwrap();
        assert_eq!(m.render(), full.render());
    }

    #[test]
    fn merge_rejects_overlap_gap_and_foreign_checkpoints() {
        let sweep = sweep_3x2();
        let ck = |start, done| Checkpoint::for_range(&sweep, 7, start, done);
        let mut m = ck(0, 3);
        let err = m.merge(&ck(2, 5)).unwrap_err();
        assert!(matches!(err, CheckpointError::RangeOverlap(_)), "{err}");
        assert!(err.to_string().contains("0..3"), "{err}");
        let err = m.merge(&ck(4, 7)).unwrap_err();
        assert!(matches!(err, CheckpointError::RangeGap(_)), "{err}");
        // A shard written by a different run of the same grid shape.
        let reseeded = sweep_3x2().seed(2);
        let err = m.merge(&Checkpoint::for_range(&reseeded, 7, 3, 7)).unwrap_err();
        assert!(err.to_string().contains("different run"), "{err}");
        // On error the target is untouched.
        assert_eq!(m.covered(), (0, 3));
        // A partition cutting through a grouped row (coarser grouping
        // than the case axes) is rejected towards the typed merge.
        let coarse = |case: usize, start: usize, done: usize| {
            let mut grid: GroupedStats<OnlineStats> = GroupedStats::new(&sweep, &["a"]);
            grid.entry(case).push(case as f64);
            let mut ck = ck(start, done);
            ck.set_grouped("grid", &grid);
            ck
        };
        // Cases 2 and 3 share the a=1 row.
        let mut left = coarse(2, 0, 3);
        let err = left.merge(&coarse(3, 3, 7)).unwrap_err();
        assert!(err.to_string().contains("GroupedStats::merge"), "{err}");
        // A state present on only one side is named.
        let mut lonely = ck(0, 3);
        lonely.set_single("extra", &OnlineStats::new());
        let err = lonely.merge(&ck(3, 7)).unwrap_err();
        assert!(err.to_string().contains("only one of"), "{err}");
    }

    #[test]
    fn run_resumable_shards_partition_and_merge_to_the_clean_run() {
        struct Grid(GroupedStats<OnlineStats>);
        impl CheckpointState for Grid {
            fn save_into(&self, checkpoint: &mut Checkpoint) {
                checkpoint.set_grouped("grid", &self.0);
            }
            fn restore_from(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
                self.0 = checkpoint.grouped("grid", &self.0)?;
                Ok(())
            }
            fn fold(&mut self, index: usize, _run: Run) {
                self.0.entry(index).push(index as f64 * 0.3);
            }
        }
        let mut base = crate::scenario::Scenario::new();
        base.probe("ac", crate::probe::Probe::AcPowerW, crate::probe::Window::at(0));
        let sweep = sweep_3x2().scenario(base);
        let session = Session::new().workers(2).shard_size(2);
        let fresh = || Grid(GroupedStats::new(&sweep, &["a", "b"]));

        // The single-process reference, checkpointed to the end.
        let clean_path = tmp("shard-clean");
        let mut clean = fresh();
        let spec = CheckpointSpec::at(&clean_path);
        assert!(run_resumable(&sweep, vec![], &session, &spec, &mut clean).unwrap());
        let clean_text = std::fs::read_to_string(&clean_path).unwrap();
        std::fs::remove_file(&clean_path).unwrap();

        // Three shard runs over the same grid, merged at the file level.
        let mut merged: Option<Checkpoint> = None;
        for index in 0..3 {
            let path = tmp(&format!("shard-{index}"));
            let range = ShardRange { index, of: 3 };
            let spec = CheckpointSpec { shard: Some(range), ..CheckpointSpec::at(&path) };
            let mut state = fresh();
            // A shard never claims the whole run completed.
            assert!(!run_resumable(&sweep, vec![], &session, &spec, &mut state).unwrap());
            let shard = Checkpoint::load(&path).unwrap();
            std::fs::remove_file(&path).unwrap();
            assert_eq!(shard.covered(), range.bounds(6));
            match merged.as_mut() {
                None => merged = Some(shard),
                Some(m) => m.merge(&shard).unwrap(),
            }
        }
        let merged = merged.unwrap();
        assert!(merged.is_complete());
        assert_eq!(merged.render(), clean_text);
    }

    #[test]
    fn resuming_a_shard_needs_its_own_range() {
        struct Nop;
        impl CheckpointState for Nop {
            fn save_into(&self, _checkpoint: &mut Checkpoint) {}
            fn restore_from(&mut self, _checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
                Ok(())
            }
            fn fold(&mut self, _index: usize, _run: Run) {}
        }
        let sweep = sweep_3x2();
        let path = tmp("shard-resume");
        Checkpoint::for_range(&sweep, 6, 2, 4).save(&path).unwrap();
        let session = Session::new();
        let spec = |index| CheckpointSpec {
            resume: true,
            shard: Some(ShardRange { index, of: 3 }),
            ..CheckpointSpec::at(&path)
        };
        let mut nop = Nop;
        let err = run_resumable(&sweep, vec![], &session, &spec(0), &mut nop).unwrap_err();
        assert!(err.to_string().contains("--shard-range"), "{err}");
        // The matching shard resumes; its range is already complete, so
        // nothing streams and the whole-run flag stays false.
        assert!(!run_resumable(&sweep, vec![], &session, &spec(1), &mut nop).unwrap());
        std::fs::remove_file(&path).unwrap();
    }
}
