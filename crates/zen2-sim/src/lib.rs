//! Deterministic simulator of the paper's dual-socket AMD EPYC 7502 system.
//!
//! The simulator is event-driven with piecewise-constant power segments:
//! machine state (thread workloads, C-states, DVFS targets) changes only at
//! explicit events, so power, performance counters and RAPL energy can be
//! integrated exactly between events. All stochastic behavior (measurement
//! noise, random waits) flows from a caller-supplied seed.
//!
//! The interesting control machinery, each in its own module:
//!
//! * [`smu`] — the SMU network's DVFS behavior: requests are granted only
//!   at 1 ms update slots, ramps take 390 µs down / 360 µs up, and an
//!   incomplete previous transition enables the 2.2↔2.5 GHz fast paths of
//!   Section V-B (down to 160 µs, or 1 µs for an instantaneous return).
//! * [`ccx`] — the CCX clock mesh: the L3 and mesh follow the fastest core
//!   in the complex, and slower cores are re-derived from the mesh through
//!   a ⅛-step frequency divider. That divider granularity reproduces the
//!   paper's Table I *exactly* (2.2 GHz set → 2.000 GHz applied when a
//!   2.5 GHz neighbor raises the mesh).
//! * [`cstate`] — idle-state machinery including the global package-C6
//!   criterion ("all threads of all packages must be in the deepest sleep
//!   state") and the offline-thread anomaly of Section VI-B.
//! * [`controller`] — the SMU telemetry loop ("an intelligent EDC manager
//!   which monitors activity and throttles execution only when necessary"):
//!   regulates the *estimated* package power (the RAPL model) against its
//!   PPT target in 25 MHz steps.
//! * [`power`] — true-power integration: cores, package base, DRAM
//!   traffic, PSU, thermal/leakage feedback, the meter trace and the RAPL
//!   energy accounting.
//! * [`perf`] — TSC/APERF/MPERF/instructions accounting, including the
//!   timer-tick cycles that make idle hardware threads report "less than
//!   60 000 cycle/s".
//! * [`os`] — the Linux-side interfaces the paper drives: the `userspace`
//!   cpufreq governor, sysfs C-state disabling, hotplug.
//! * [`system`] — the façade tying it all together.
//!
//! The declarative driving surface sits on top of the façade:
//!
//! * [`scenario`] — a [`Scenario`] records timed actions as data and
//!   validates them against the topology before anything simulates.
//! * [`probe`] — a [`Probe`] plus a [`Window`] declares *what* to observe
//!   and *when*; executing a scenario returns one typed [`Run`].
//! * [`session`] — a [`Session`] executes `(SimConfig, Scenario, seed)`
//!   batches across a worker pool with results independent of the worker
//!   count, reusing one booted prototype per distinct configuration;
//!   [`Session::run_streaming`] does the same for lazy case streams with
//!   bounded memory.
//! * [`sweep`] — a [`Sweep`] declares a parameter grid as [`Axis`] values
//!   over a base `(config, scenario)`, lazily yields its cases, and
//!   streams them through a session.
//! * [`stats`] — on-line aggregators (Welford, streaming quantiles,
//!   trace reductions) turning arbitrarily large sweeps into
//!   bounded-size summaries, including [`GroupedStats`] buckets keyed
//!   by sweep axes for per-frequency / per-config rows.
//! * [`snapshot`] / [`checkpoint`] — exact JSON snapshots of every
//!   aggregator and the durable checkpoint files built from them, so a
//!   paper-scale sweep interrupted at a shard boundary resumes with
//!   byte-identical output (see `docs/SWEEPS.md`).
//! * [`obs`] — the out-of-band telemetry facade ([`Recorder`]): session
//!   runs report spans, counters, gauges, and progress events through
//!   it; the sinks live in the `zen2-obs` crate, and results are
//!   byte-identical with or without one attached (see
//!   `docs/OBSERVABILITY.md`).
//! * [`torture`] — the seeded random-scenario fuzzer and physics-invariant
//!   checker behind the `torture` soak bin and the proptest suite (see
//!   `docs/TORTURE.md`).

pub mod ccx;
pub mod checkpoint;
pub mod config;
pub mod controller;
pub mod cstate;
pub mod methodology;
pub mod obs;
pub mod os;
pub mod perf;
pub mod power;
pub mod probe;
pub mod scenario;
pub mod session;
pub mod smu;
pub mod snapshot;
pub mod stats;
pub mod sweep;
pub mod system;
pub mod time;
pub mod torture;
pub mod trace;
pub mod wakeup;

#[cfg(test)]
mod proptests;

pub use checkpoint::{Checkpoint, CheckpointError, CheckpointSpec, ShardRange};
pub use config::SimConfig;
pub use obs::{Attr, AttrValue, Recorder, SpanId};
pub use probe::{EventFilter, Measurement, Probe, ProbeSpec, Run, Window};
pub use scenario::{Op, Scenario, ScenarioError, Step};
pub use session::{Case, Session, SessionError, SessionErrorKind, StreamControl, StreamEvent};
pub use snapshot::{Json, Snapshot, SnapshotError};
pub use stats::{
    FreqResidency, GroupedStats, Merge, MergeError, OnlineStats, P2Quantile, TransitionStats,
    Welford,
};
pub use sweep::{Axis, CaseDraft, Sweep};
pub use system::System;
pub use time::{Duration, Instant, Ns};
