//! Batch execution: many `(SimConfig, Scenario, seed)` cases across a
//! worker pool, with results identical to serial execution.
//!
//! Each case runs on its own freshly seeded machine, so results depend
//! only on the case — never on scheduling — and [`Session::run`] returns
//! them in case order regardless of the worker count. Machines are
//! forked from one booted prototype per distinct configuration
//! ([`System::fork`]), so the boot cost (MSR file construction, workload
//! registry, thermal settling) is paid once per configuration instead of
//! once per case. Configurations are compared structurally
//! (`SimConfig: PartialEq`), so two configs can never share a prototype
//! unless they are actually equal.
//!
//! A case that panics mid-simulation does not take the batch down with
//! it: the panic is caught on the worker, attributed to its case, and
//! surfaced as a [`SessionError`] while every other case still runs to
//! completion.
//!
//! ```
//! use zen2_sim::{Case, Probe, Scenario, Session, SimConfig, Window};
//!
//! let mut sc = Scenario::new();
//! sc.probe("idle", Probe::AcTrueMeanW, Window::span_secs(0.05, 0.25));
//! let cases: Vec<Case> = (0..4)
//!     .map(|i| Case::new(format!("case{i}"), SimConfig::epyc_7502_2s(), sc.clone(), i))
//!     .collect();
//! let runs = Session::new().workers(2).run(&cases).unwrap();
//! assert_eq!(runs.len(), 4);
//! assert!((runs[0].watts("idle") - 99.1).abs() < 1.5);
//! ```

use crate::config::SimConfig;
use crate::probe::Run;
use crate::scenario::{Scenario, ScenarioError};
use crate::system::System;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One unit of batch work: a machine configuration, a scenario, and the
/// boot seed.
#[derive(Debug, Clone)]
pub struct Case {
    /// Human-readable identifier, reported in errors.
    pub label: String,
    /// The machine to boot.
    pub config: SimConfig,
    /// The schedule to execute.
    pub scenario: Scenario,
    /// The seed all of the case's stochastic behavior flows from.
    pub seed: u64,
}

impl Case {
    /// Builds a case.
    pub fn new(
        label: impl Into<String>,
        config: SimConfig,
        scenario: Scenario,
        seed: u64,
    ) -> Self {
        Self { label: label.into(), config, scenario, seed }
    }
}

/// A batch runner with a fixed worker pool.
#[derive(Debug, Clone)]
pub struct Session {
    workers: usize,
    reuse_boots: bool,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// A session sized to the host's available parallelism.
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self { workers, reuse_boots: true }
    }

    /// Sets the worker count (results do not depend on it).
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n > 0, "a session needs at least one worker");
        self.workers = n;
        self
    }

    /// Disables prototype reuse: every case boots its own machine from
    /// scratch. Results are identical either way; this exists for
    /// benchmarking the reuse win.
    pub fn reuse_boots(mut self, reuse: bool) -> Self {
        self.reuse_boots = reuse;
        self
    }

    /// Validates every case, then executes the batch across the worker
    /// pool. Results come back in case order and are a pure function of
    /// each `(config, scenario, seed)` triple.
    pub fn run(&self, cases: &[Case]) -> Result<Vec<Run>, SessionError> {
        self.run_with(cases, |sys, case| sys.run_scenario_prechecked(&case.scenario))
    }

    /// [`run`](Self::run) with an injectable per-case executor, so the
    /// panic-containment machinery is testable without a scenario that
    /// slips past validation only to explode at runtime.
    fn run_with(
        &self,
        cases: &[Case],
        execute: impl Fn(&mut System, &Case) -> Run + Sync,
    ) -> Result<Vec<Run>, SessionError> {
        for case in cases {
            case.scenario.validate(&case.config).map_err(|error| SessionError {
                case: case.label.clone(),
                kind: SessionErrorKind::InvalidScenario(error),
            })?;
        }

        // One booted prototype per configuration that is actually shared
        // (booting a prototype for a config used once would cost more
        // than it saves). Identity is structural equality, never a
        // rendered key that semantically different configs could collide
        // on.
        let mut distinct: Vec<&SimConfig> = Vec::new();
        let keys: Vec<usize> = cases
            .iter()
            .map(|case| {
                distinct.iter().position(|c| **c == case.config).unwrap_or_else(|| {
                    distinct.push(&case.config);
                    distinct.len() - 1
                })
            })
            .collect();
        let mut prototypes: Vec<Option<System>> = (0..distinct.len()).map(|_| None).collect();
        if self.reuse_boots {
            let mut uses = vec![0usize; distinct.len()];
            for &k in &keys {
                uses[k] += 1;
            }
            for ((slot, &cfg), &n) in prototypes.iter_mut().zip(&distinct).zip(&uses) {
                if n > 1 {
                    *slot = Some(System::new(cfg.clone(), 0));
                }
            }
        }

        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<Run, String>>>> =
            cases.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.workers.min(cases.len()).max(1);
        let prototypes = &prototypes;
        let keys_ref = &keys;
        let results_ref = &results;
        let next_ref = &next;
        let execute_ref = &execute;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= cases.len() {
                        break;
                    }
                    let case = &cases[i];
                    // Contain a panicking case: record it against slot `i`
                    // and keep the worker alive for the remaining cases,
                    // instead of letting the unwind cross the scope and
                    // cascade into unrelated cases.
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        let mut sys = match prototypes[keys_ref[i]].as_ref() {
                            Some(proto) => proto.fork(case.seed),
                            None => System::new(case.config.clone(), case.seed),
                        };
                        execute_ref(&mut sys, case)
                    }))
                    .map_err(|payload| panic_text(payload.as_ref()));
                    // Nothing here can poison the slot (the fallible work
                    // all sits inside the catch above), but stay robust.
                    let mut slot = match results_ref[i].lock() {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    *slot = Some(outcome);
                });
            }
        });

        let mut runs = Vec::with_capacity(cases.len());
        for (case, slot) in cases.iter().zip(results) {
            let outcome = match slot.into_inner() {
                Ok(value) => value,
                Err(poisoned) => poisoned.into_inner(),
            };
            match outcome.expect("every claimed case stores its outcome") {
                Ok(run) => runs.push(run),
                Err(panic) => {
                    return Err(SessionError {
                        case: case.label.clone(),
                        kind: SessionErrorKind::WorkerPanicked(panic),
                    })
                }
            }
        }
        Ok(runs)
    }
}

/// Renders a caught panic payload (the first panicking case's, in case
/// order) for [`SessionErrorKind::WorkerPanicked`].
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A batch failure, attributed to its case.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionError {
    /// The offending case's label.
    pub case: String,
    /// What went wrong.
    pub kind: SessionErrorKind,
}

/// Why a [`Session`] batch failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionErrorKind {
    /// The case's scenario failed validation; nothing was simulated.
    InvalidScenario(ScenarioError),
    /// The case panicked mid-simulation (an engine bug, not a scenario
    /// authoring error); the other cases still ran to completion.
    WorkerPanicked(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SessionErrorKind::InvalidScenario(error) => {
                write!(f, "case {:?}: {}", self.case, error)
            }
            SessionErrorKind::WorkerPanicked(message) => {
                write!(f, "case {:?}: worker panicked: {}", self.case, message)
            }
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            SessionErrorKind::InvalidScenario(error) => Some(error),
            SessionErrorKind::WorkerPanicked(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{Probe, Window};

    /// A scenario cheap enough for the containment tests: one instant
    /// read at t = 0.
    fn instant_scenario() -> Scenario {
        let mut sc = Scenario::new();
        sc.probe("ac", Probe::AcPowerW, Window::at(0));
        sc
    }

    fn cases(labels: &[&str]) -> Vec<Case> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| Case::new(*l, SimConfig::epyc_7502_2s(), instant_scenario(), i as u64))
            .collect()
    }

    #[test]
    fn sim_config_identity_is_structural() {
        let a = SimConfig::epyc_7502_2s();
        let b = a.clone();
        assert_eq!(a, b);
        let mut c = a.clone();
        c.controller.deadband_w += 1.0;
        assert_ne!(a, c, "semantically different configs must not compare equal");
        assert_ne!(a, SimConfig::epyc_7502_1s());
    }

    #[test]
    fn worker_panic_is_attributed_not_cascaded() {
        let batch = cases(&["a", "boom", "c", "d"]);
        let err = Session::new()
            .workers(2)
            .run_with(&batch, |sys, case| {
                if case.label == "boom" {
                    panic!("kaboom in {}", case.label);
                }
                sys.run_scenario_prechecked(&case.scenario)
            })
            .unwrap_err();
        assert_eq!(err.case, "boom", "the panic must name its own case");
        match err.kind {
            SessionErrorKind::WorkerPanicked(ref message) => {
                assert!(message.contains("kaboom in boom"), "payload preserved: {message}")
            }
            ref other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn first_panicking_case_in_case_order_wins() {
        // Whichever worker panics first on the wall clock, the error is
        // attributed deterministically: the earliest case in batch order.
        let batch = cases(&["a", "boom1", "boom2", "d"]);
        for workers in [1, 3] {
            let err = Session::new()
                .workers(workers)
                .run_with(&batch, |sys, case| {
                    if case.label.starts_with("boom") {
                        panic!("{} fell over", case.label);
                    }
                    sys.run_scenario_prechecked(&case.scenario)
                })
                .unwrap_err();
            assert_eq!(err.case, "boom1");
        }
    }

    #[test]
    fn panicking_batch_still_runs_the_other_cases() {
        // Observable through the executor: every non-panicking case is
        // still executed even though one case blew up.
        let executed = Mutex::new(Vec::new());
        let batch = cases(&["a", "boom", "c", "d"]);
        let _ = Session::new().workers(2).run_with(&batch, |sys, case| {
            if case.label == "boom" {
                panic!("down");
            }
            executed.lock().unwrap().push(case.label.clone());
            sys.run_scenario_prechecked(&case.scenario)
        });
        let mut ran = executed.into_inner().unwrap();
        ran.sort();
        assert_eq!(ran, ["a", "c", "d"]);
    }
}
