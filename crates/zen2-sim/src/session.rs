//! Batch execution: many `(SimConfig, Scenario, seed)` cases across a
//! worker pool, with results identical to serial execution.
//!
//! Each case runs on its own freshly seeded machine, so results depend
//! only on the case — never on scheduling — and [`Session::run`] returns
//! them in case order regardless of the worker count. Machines are
//! forked from one booted prototype per distinct configuration
//! ([`System::fork`]), so the boot cost (MSR file construction, workload
//! registry, thermal settling) is paid once per configuration instead of
//! once per case. Configurations are compared structurally
//! (`SimConfig: PartialEq`), so two configs can never share a prototype
//! unless they are actually equal.
//!
//! A case that panics mid-simulation does not take the batch down with
//! it: the panic is caught on the worker, attributed to its case, and
//! surfaced as a [`SessionError`] while every other case still runs to
//! completion.
//!
//! For grids too large to materialize, [`Session::run_streaming`]
//! consumes a lazy case iterator (e.g. [`Sweep::cases`](crate::Sweep::cases))
//! one shard-group at a time and delivers each completed [`Run`] to a
//! sink in case order, holding at most `workers × shard_size` cases in
//! memory. [`Session::run_streaming_checkpointed`] is the same path
//! with two additions for interruptible paper-scale sweeps: the sink
//! also observes every shard boundary (a consistent cut to persist
//! accumulator snapshots at) and delivery indices can start at a resume
//! offset.
//!
//! ```
//! use zen2_sim::{Case, Probe, Scenario, Session, SimConfig, Window};
//!
//! let mut sc = Scenario::new();
//! sc.probe("idle", Probe::AcTrueMeanW, Window::span_secs(0.05, 0.25));
//! let cases: Vec<Case> = (0..4)
//!     .map(|i| Case::new(format!("case{i}"), SimConfig::epyc_7502_2s(), sc.clone(), i))
//!     .collect();
//! let runs = Session::new().workers(2).run(&cases).unwrap();
//! assert_eq!(runs.len(), 4);
//! assert!((runs[0].watts("idle") - 99.1).abs() < 1.5);
//! ```

use crate::config::SimConfig;
use crate::obs::{
    self, AttrValue, Obs, Recorder, SpanId, CTR_CACHE_EVICT, CTR_CACHE_HIT, CTR_CACHE_MISS,
    CTR_CASES_DONE, GAUGE_CACHE_LEN, OBS_SHARD_CASES,
};
use crate::probe::Run;
use crate::scenario::{Scenario, ScenarioError};
use crate::system::System;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One unit of batch work: a machine configuration, a scenario, and the
/// boot seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    /// Human-readable identifier, reported in errors.
    pub label: String,
    /// The machine to boot.
    pub config: SimConfig,
    /// The schedule to execute.
    pub scenario: Scenario,
    /// The seed all of the case's stochastic behavior flows from.
    pub seed: u64,
}

impl Case {
    /// Builds a case.
    pub fn new(label: impl Into<String>, config: SimConfig, scenario: Scenario, seed: u64) -> Self {
        Self { label: label.into(), config, scenario, seed }
    }
}

/// A batch runner with a fixed worker pool.
#[derive(Clone)]
pub struct Session {
    workers: usize,
    shard: usize,
    reuse_boots: bool,
    recorder: Option<Arc<dyn Recorder>>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("workers", &self.workers)
            .field("shard", &self.shard)
            .field("reuse_boots", &self.reuse_boots)
            .field("recorder", &self.recorder.as_ref().map(|_| "attached"))
            .finish()
    }
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

/// Booted prototypes the streaming path keeps across shards, at most
/// this many (each is a fully booted machine; an unbounded cache would
/// defeat the bounded-memory point of streaming).
const PROTOTYPE_CACHE_CAP: usize = 4;

impl Session {
    /// A session sized to the host's available parallelism.
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self { workers, shard: 16, reuse_boots: true, recorder: None }
    }

    /// Sets the worker count (results do not depend on it). Zero is
    /// clamped to one worker.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Sets the per-worker shard size of the streaming path
    /// ([`run_streaming`](Self::run_streaming) holds at most
    /// `workers × shard_size` cases in memory; results do not depend on
    /// it). Zero is clamped to one.
    pub fn shard_size(mut self, n: usize) -> Self {
        self.shard = n.max(1);
        self
    }

    /// Disables prototype reuse: every case boots its own machine from
    /// scratch. Results are identical either way; this exists for
    /// benchmarking the reuse win.
    pub fn reuse_boots(mut self, reuse: bool) -> Self {
        self.reuse_boots = reuse;
        self
    }

    /// Attaches a telemetry sink: every run reports spans, counters,
    /// gauges, and events through it (see [`obs`] for the
    /// schema). Telemetry is strictly out-of-band — results are
    /// byte-identical with or without a recorder, under any
    /// worker/shard split.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The borrowed telemetry handle of this session (disabled when no
    /// recorder is attached).
    pub(crate) fn obs(&self) -> Obs<'_> {
        Obs::new(self.recorder.as_deref())
    }

    /// Validates every case, then executes the batch across the worker
    /// pool. Results come back in case order and are a pure function of
    /// each `(config, scenario, seed)` triple. An empty batch returns an
    /// empty `Vec`.
    pub fn run(&self, cases: &[Case]) -> Result<Vec<Run>, SessionError> {
        self.run_with(cases, |sys, case| sys.run_scenario_prechecked(&case.scenario))
    }

    /// Executes a lazily produced case stream without ever materializing
    /// it: cases are pulled from the iterator one shard-group
    /// (`workers × shard_size` cases) at a time, executed across the
    /// worker pool, and delivered to `sink` as `(case index, run)` — in
    /// case-index order, regardless of the worker count or shard size,
    /// so order-sensitive on-line aggregators (see
    /// [`stats`](crate::stats)) reduce to bit-identical summaries under
    /// any parallelism. Returns the number of runs delivered.
    ///
    /// Peak case residency is bounded by `workers × shard_size`; booted
    /// prototypes are reused across shards through a small
    /// least-recently-used cache, so a homogeneous million-case grid
    /// still boots only once.
    ///
    /// On a validation failure or worker panic the error is attributed
    /// to its case and the stream stops; runs of earlier cases have
    /// already been delivered to the sink at that point.
    ///
    /// ```
    /// use zen2_sim::{Case, Probe, Scenario, Session, SimConfig, Window};
    ///
    /// let mut sc = Scenario::new();
    /// sc.probe("ac", Probe::AcPowerW, Window::at(0));
    /// // A lazy case stream: nothing is materialized up front.
    /// let cases = (0..100).map(move |i| {
    ///     Case::new(format!("case{i}"), SimConfig::epyc_7502_2s(), sc.clone(), i)
    /// });
    /// let mut sum = 0.0;
    /// let session = Session::new().workers(4).shard_size(8);
    /// let n = session.run_streaming(cases, |_, run| sum += run.watts("ac")).unwrap();
    /// assert_eq!(n, 100);
    /// assert!((sum / 100.0 - 99.1).abs() < 2.0); // the Fig. 7 idle floor
    /// ```
    pub fn run_streaming<I, F>(&self, cases: I, sink: F) -> Result<usize, SessionError>
    where
        I: IntoIterator<Item = Case>,
        F: FnMut(usize, Run),
    {
        self.run_streaming_with(cases, sink, |sys, case| {
            sys.run_scenario_prechecked(&case.scenario)
        })
    }

    /// [`run_streaming`](Self::run_streaming) with a checkpoint hook:
    /// the callback observes every delivery *and* every shard boundary,
    /// and delivered indices start at `first_index` — the two pieces a
    /// resumable sweep needs.
    ///
    /// [`StreamEvent::ShardBoundary`] fires after each shard's runs have
    /// been delivered (including the last), carrying the index of the
    /// next case the stream will execute. At that instant every case
    /// below the boundary has been folded into the caller's accumulators
    /// and nothing above it has — a consistent cut to persist (see
    /// [`Checkpoint`](crate::checkpoint::Checkpoint)). `first_index`
    /// offsets delivery indices for resumed streams: pass the index of
    /// the first case in `cases` (e.g. the `done` count of a loaded
    /// checkpoint, with `cases = sweep.skip(done)`).
    ///
    /// The callback steers the stream: [`StreamControl::Halt`] stops
    /// cleanly after the current event (the paper-scale "stop now,
    /// resume later" path — the caller sees fewer deliveries than cases
    /// and knows the stream is incomplete), and an `Err` aborts with
    /// [`SessionErrorKind::CheckpointFailed`] (e.g. the checkpoint file
    /// could not be written). Returns the number of runs delivered by
    /// *this* call.
    ///
    /// ```
    /// use zen2_sim::{Case, Probe, Scenario, Session, SimConfig, Window};
    /// use zen2_sim::{StreamControl, StreamEvent};
    ///
    /// let mut sc = Scenario::new();
    /// sc.probe("ac", Probe::AcPowerW, Window::at(0));
    /// let case = |i: usize| {
    ///     Case::new(format!("case{i}"), SimConfig::epyc_7502_2s(), sc.clone(), i as u64)
    /// };
    /// // Resume at case 4 of 10: indices continue where the first run
    /// // stopped, and every shard boundary offers a durable cut.
    /// let mut delivered = Vec::new();
    /// let mut boundaries = Vec::new();
    /// let session = Session::new().workers(2).shard_size(2);
    /// let n = session
    ///     .run_streaming_checkpointed(4, (4..10).map(case), |event| {
    ///         match event {
    ///             StreamEvent::Run { index, .. } => delivered.push(index),
    ///             StreamEvent::ShardBoundary { next } => boundaries.push(next),
    ///         }
    ///         Ok(StreamControl::Continue)
    ///     })
    ///     .unwrap();
    /// assert_eq!(n, 6);
    /// assert_eq!(delivered, [4, 5, 6, 7, 8, 9]);
    /// assert_eq!(boundaries, [8, 10]); // workers × shard_size = 4 per shard
    /// ```
    pub fn run_streaming_checkpointed<I, F>(
        &self,
        first_index: usize,
        cases: I,
        on_event: F,
    ) -> Result<usize, SessionError>
    where
        I: IntoIterator<Item = Case>,
        F: FnMut(StreamEvent) -> Result<StreamControl, String>,
    {
        self.run_streaming_events_with(first_index, cases, on_event, |sys, case| {
            sys.run_scenario_prechecked(&case.scenario)
        })
    }

    /// [`run`](Self::run) with an injectable per-case executor, so the
    /// panic-containment machinery is testable without a scenario that
    /// slips past validation only to explode at runtime.
    fn run_with(
        &self,
        cases: &[Case],
        execute: impl Fn(&mut System, &Case) -> Run + Sync,
    ) -> Result<Vec<Run>, SessionError> {
        for case in cases {
            validate_case(case)?;
        }
        let obs = self.obs();
        let batch_span =
            obs.open(None, obs::SPAN_BATCH, &[("cases", AttrValue::U64(cases.len() as u64))]);

        // One booted prototype per configuration that is actually shared
        // (booting a prototype for a config used once would cost more
        // than it saves). Identity is structural equality, never a
        // rendered key that semantically different configs could collide
        // on.
        let mut distinct: Vec<&SimConfig> = Vec::new();
        let keys: Vec<usize> = cases
            .iter()
            .map(|case| {
                distinct.iter().position(|c| **c == case.config).unwrap_or_else(|| {
                    distinct.push(&case.config);
                    distinct.len() - 1
                })
            })
            .collect();
        let mut prototypes: Vec<Option<System>> = (0..distinct.len()).map(|_| None).collect();
        if self.reuse_boots {
            let mut uses = vec![0usize; distinct.len()];
            for &k in &keys {
                uses[k] += 1;
            }
            for ((slot, &cfg), &n) in prototypes.iter_mut().zip(&distinct).zip(&uses) {
                if n > 1 {
                    let boot = obs.open(
                        batch_span,
                        obs::SPAN_BOOT,
                        &[("prototype", AttrValue::Bool(true))],
                    );
                    *slot = Some(System::new(cfg.clone(), 0));
                    obs.close(boot);
                }
            }
        }

        let protos: Vec<Option<&System>> = keys.iter().map(|&k| prototypes[k].as_ref()).collect();
        let hits = protos.iter().filter(|p| p.is_some()).count() as u64;
        obs.counter(CTR_CACHE_HIT, hits);
        obs.counter(CTR_CACHE_MISS, cases.len() as u64 - hits);
        let outcomes = pool_outcomes(cases, &protos, self.workers, &execute, obs, batch_span, 0);
        obs.counter(CTR_CASES_DONE, cases.len() as u64);
        obs.close(batch_span);

        let mut runs = Vec::with_capacity(cases.len());
        for (case, outcome) in cases.iter().zip(outcomes) {
            match outcome {
                Ok(run) => runs.push(run),
                Err(panic) => {
                    return Err(SessionError {
                        case: case.label.clone(),
                        kind: SessionErrorKind::WorkerPanicked(panic),
                    })
                }
            }
        }
        Ok(runs)
    }

    /// [`run_streaming`](Self::run_streaming) with an injectable
    /// executor (the panic-containment test hook).
    fn run_streaming_with<I, F>(
        &self,
        cases: I,
        mut sink: F,
        execute: impl Fn(&mut System, &Case) -> Run + Sync,
    ) -> Result<usize, SessionError>
    where
        I: IntoIterator<Item = Case>,
        F: FnMut(usize, Run),
    {
        self.run_streaming_events_with(
            0,
            cases,
            |event| {
                if let StreamEvent::Run { index, run } = event {
                    sink(index, run);
                }
                Ok(StreamControl::Continue)
            },
            execute,
        )
    }

    /// The streaming core every public streaming entry point reduces
    /// to: pulls `cases` one shard-group (`workers × shard_size` cases)
    /// at a time, executes each shard on the worker pool, and reports
    /// deliveries and shard boundaries through `on_event` with indices
    /// offset by `first_index`.
    fn run_streaming_events_with<I, F>(
        &self,
        first_index: usize,
        cases: I,
        mut on_event: F,
        execute: impl Fn(&mut System, &Case) -> Run + Sync,
    ) -> Result<usize, SessionError>
    where
        I: IntoIterator<Item = Case>,
        F: FnMut(StreamEvent) -> Result<StreamControl, String>,
    {
        let group = self.workers.saturating_mul(self.shard);
        let mut iter = cases.into_iter();
        let mut cache = PrototypeCache::new(PROTOTYPE_CACHE_CAP);
        let mut delivered = 0usize;
        let obs = self.obs();
        // On error paths (`?`) the open spans are deliberately left
        // unclosed: the run is aborting, and sinks tolerate it.
        let sweep_span = obs.open(
            None,
            obs::SPAN_SWEEP,
            &[
                ("first_index", AttrValue::U64(first_index as u64)),
                ("workers", AttrValue::U64(self.workers as u64)),
                ("shard_size", AttrValue::U64(self.shard as u64)),
            ],
        );
        // Forwards one event, attributing a callback failure to `at`.
        let mut notify = |event: StreamEvent, at: &str| -> Result<StreamControl, SessionError> {
            on_event(event).map_err(|message| SessionError {
                case: at.to_string(),
                kind: SessionErrorKind::CheckpointFailed(message),
            })
        };
        loop {
            let shard_cases: Vec<Case> = iter.by_ref().take(group).collect();
            if shard_cases.is_empty() {
                obs.close(sweep_span);
                return Ok(delivered);
            }
            for case in &shard_cases {
                validate_case(case)?;
            }
            let shard_span = obs.open(
                sweep_span,
                obs::SPAN_SHARD,
                &[
                    ("first", AttrValue::U64((first_index + delivered) as u64)),
                    ("cases", AttrValue::U64(shard_cases.len() as u64)),
                ],
            );
            obs.observe(OBS_SHARD_CASES, shard_cases.len() as f64);
            if self.reuse_boots {
                cache.prepare(&shard_cases, obs, shard_span);
            }
            let protos: Vec<Option<&System>> =
                shard_cases.iter().map(|case| cache.get(&case.config)).collect();
            let hits = protos.iter().filter(|p| p.is_some()).count() as u64;
            obs.counter(CTR_CACHE_HIT, hits);
            obs.counter(CTR_CACHE_MISS, shard_cases.len() as u64 - hits);
            let outcomes = pool_outcomes(
                &shard_cases,
                &protos,
                self.workers,
                &execute,
                obs,
                shard_span,
                first_index + delivered,
            );
            for (case, outcome) in shard_cases.iter().zip(outcomes) {
                match outcome {
                    Ok(run) => {
                        let index = first_index + delivered;
                        let reduce_span = obs.open(
                            shard_span,
                            obs::SPAN_REDUCE,
                            &[("index", AttrValue::U64(index as u64))],
                        );
                        let control = notify(StreamEvent::Run { index, run }, &case.label)?;
                        obs.close(reduce_span);
                        obs.counter(CTR_CASES_DONE, 1);
                        delivered += 1;
                        if matches!(control, StreamControl::Halt) {
                            obs.close(shard_span);
                            obs.close(sweep_span);
                            return Ok(delivered);
                        }
                    }
                    Err(panic) => {
                        return Err(SessionError {
                            case: case.label.clone(),
                            kind: SessionErrorKind::WorkerPanicked(panic),
                        })
                    }
                }
            }
            let next = first_index + delivered;
            let boundary = StreamEvent::ShardBoundary { next };
            let checkpoint_span = obs.open(
                shard_span,
                obs::SPAN_CHECKPOINT,
                &[("next", AttrValue::U64(next as u64))],
            );
            let control = notify(boundary, &format!("shard boundary at {next}"))?;
            obs.close(checkpoint_span);
            obs.close(shard_span);
            if let StreamControl::Halt = control {
                obs.close(sweep_span);
                return Ok(delivered);
            }
        }
    }
}

/// One notification from the checkpointed streaming path
/// ([`Session::run_streaming_checkpointed`]).
#[derive(Debug)]
pub enum StreamEvent {
    /// Case `index`'s completed run, delivered in case order.
    Run {
        /// The case's global index (`first_index` + deliveries so far).
        index: usize,
        /// The completed run.
        run: Run,
    },
    /// Every case with index < `next` has been delivered and nothing at
    /// or above `next` has — a consistent cut for persisting
    /// accumulator snapshots.
    ShardBoundary {
        /// The index of the next case the stream will execute.
        next: usize,
    },
}

/// What a checkpointed stream should do after an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamControl {
    /// Keep streaming.
    Continue,
    /// Stop cleanly after this event: remaining cases are not executed
    /// and the call returns `Ok` with the deliveries so far (the
    /// deliberate mid-run halt of a checkpointed sweep).
    Halt,
}

/// Validates one case, attributing any scenario error to its label.
fn validate_case(case: &Case) -> Result<(), SessionError> {
    case.scenario.validate(&case.config).map_err(|error| SessionError {
        case: case.label.clone(),
        kind: SessionErrorKind::InvalidScenario(error),
    })
}

/// Executes every case across a worker pool, forking from the per-case
/// prototype where one is given, and returns each case's outcome in case
/// order. Panicking cases are contained and reported as `Err` outcomes.
/// Each case reports a `case` span (with `fork`/`boot` and `sim` child
/// phases) through `obs`, indexed globally from `base_index`.
fn pool_outcomes(
    cases: &[Case],
    protos: &[Option<&System>],
    workers: usize,
    execute: &(impl Fn(&mut System, &Case) -> Run + Sync),
    obs: Obs<'_>,
    parent: Option<SpanId>,
    base_index: usize,
) -> Vec<Result<Run, String>> {
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<Run, String>>>> =
        cases.iter().map(|_| Mutex::new(None)).collect();
    let workers = workers.min(cases.len()).max(1);
    let results_ref = &results;
    let next_ref = &next;
    let pool_span = obs.open(
        parent,
        obs::SPAN_POOL,
        &[
            ("cases", AttrValue::U64(cases.len() as u64)),
            ("workers", AttrValue::U64(workers as u64)),
        ],
    );

    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= cases.len() {
                    break;
                }
                let case = &cases[i];
                let case_span = obs.open(
                    pool_span,
                    obs::SPAN_CASE,
                    &[
                        ("index", AttrValue::U64((base_index + i) as u64)),
                        ("label", AttrValue::Str(&case.label)),
                        ("worker", AttrValue::U64(w as u64)),
                        ("cached", AttrValue::Bool(protos[i].is_some())),
                    ],
                );
                // Contain a panicking case: record it against slot `i`
                // and keep the worker alive for the remaining cases,
                // instead of letting the unwind cross the scope and
                // cascade into unrelated cases.
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let phase = if protos[i].is_some() { obs::SPAN_FORK } else { obs::SPAN_BOOT };
                    let boot_span = obs.open(case_span, phase, &[]);
                    let mut sys = match protos[i] {
                        Some(proto) => proto.fork(case.seed),
                        None => System::new(case.config.clone(), case.seed),
                    };
                    obs.close(boot_span);
                    let sim_span = obs.open(case_span, obs::SPAN_SIM, &[]);
                    let run = execute(&mut sys, case);
                    obs.close(sim_span);
                    run
                }))
                .map_err(|payload| panic_text(payload.as_ref()));
                obs.close(case_span);
                // Nothing here can poison the slot (the fallible work
                // all sits inside the catch above), but stay robust.
                let mut slot = match results_ref[i].lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                *slot = Some(outcome);
            });
        }
    });
    obs.close(pool_span);

    results
        .into_iter()
        .map(|slot| {
            let outcome = match slot.into_inner() {
                Ok(value) => value,
                Err(poisoned) => poisoned.into_inner(),
            };
            outcome.expect("every claimed case stores its outcome")
        })
        .collect()
}

/// Booted prototypes kept across streaming shards: a tiny
/// least-recently-used cache keyed by structural [`SimConfig`] equality.
/// Capacity is fixed so a grid sweeping the configuration axis cannot
/// accumulate unbounded booted machines.
struct PrototypeCache {
    cap: usize,
    /// `(config, prototype, last use tick)`.
    entries: Vec<(SimConfig, System, u64)>,
    tick: u64,
}

impl PrototypeCache {
    fn new(cap: usize) -> Self {
        Self { cap, entries: Vec::new(), tick: 0 }
    }

    /// Ensures a prototype exists for every configuration this shard
    /// shares across at least two cases (or that is already cached from
    /// an earlier shard). At capacity, a stale entry (one not used by
    /// *this* shard) is evicted before the replacement boots; if every
    /// cached entry is in use by this shard, the new configuration is
    /// not booted at all — its cases fall back to per-case boots rather
    /// than thrashing the cache with prototypes that would be evicted
    /// before anything forks them. Evictions and prototype boots are
    /// reported through `obs` (`cache.evict`, `boot` spans under
    /// `parent`, and the `cache.len` occupancy gauge).
    fn prepare(&mut self, cases: &[Case], obs: Obs<'_>, parent: Option<SpanId>) {
        let mut distinct: Vec<(&SimConfig, usize)> = Vec::new();
        for case in cases {
            match distinct.iter_mut().find(|(c, _)| **c == case.config) {
                Some((_, n)) => *n += 1,
                None => distinct.push((&case.config, 1)),
            }
        }
        // Entries with a tick beyond this mark were touched this shard.
        let epoch = self.tick;
        for (config, uses) in distinct {
            self.tick += 1;
            let tick = self.tick;
            if let Some(entry) = self.entries.iter_mut().find(|(c, _, _)| c == config) {
                entry.2 = tick;
                continue;
            }
            if uses < 2 {
                continue;
            }
            if self.entries.len() >= self.cap {
                let stalest = self
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, _, t))| *t <= epoch)
                    .min_by_key(|(_, (_, _, t))| *t)
                    .map(|(i, _)| i);
                match stalest {
                    Some(i) => {
                        self.entries.swap_remove(i);
                        obs.counter(CTR_CACHE_EVICT, 1);
                    }
                    // Every slot is hot this shard: booting would only
                    // displace a prototype that is about to be forked.
                    None => continue,
                }
            }
            let boot_span =
                obs.open(parent, obs::SPAN_BOOT, &[("prototype", AttrValue::Bool(true))]);
            self.entries.push((config.clone(), System::new(config.clone(), 0), tick));
            obs.close(boot_span);
        }
        obs.gauge(GAUGE_CACHE_LEN, self.entries.len() as f64);
    }

    fn get(&self, config: &SimConfig) -> Option<&System> {
        self.entries.iter().find(|(c, _, _)| c == config).map(|(_, proto, _)| proto)
    }
}

/// Renders a caught panic payload (the first panicking case's, in case
/// order) for [`SessionErrorKind::WorkerPanicked`].
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A batch failure, attributed to its case.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionError {
    /// The offending case's label.
    pub case: String,
    /// What went wrong.
    pub kind: SessionErrorKind,
}

/// Why a [`Session`] batch failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionErrorKind {
    /// The case's scenario failed validation; nothing was simulated.
    InvalidScenario(ScenarioError),
    /// The case panicked mid-simulation (an engine bug, not a scenario
    /// authoring error); the other cases still ran to completion.
    WorkerPanicked(String),
    /// The streaming event callback failed (typically: a checkpoint
    /// file could not be written at a shard boundary); the stream
    /// stopped at the failing event. The `case` field names the
    /// delivery or boundary the callback was handling.
    CheckpointFailed(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SessionErrorKind::InvalidScenario(error) => {
                write!(f, "case {:?}: {}", self.case, error)
            }
            SessionErrorKind::WorkerPanicked(message) => {
                write!(f, "case {:?}: worker panicked: {}", self.case, message)
            }
            SessionErrorKind::CheckpointFailed(message) => {
                write!(f, "checkpoint at {:?} failed: {}", self.case, message)
            }
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            SessionErrorKind::InvalidScenario(error) => Some(error),
            SessionErrorKind::WorkerPanicked(_) | SessionErrorKind::CheckpointFailed(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{Probe, Window};

    /// A scenario cheap enough for the containment tests: one instant
    /// read at t = 0.
    fn instant_scenario() -> Scenario {
        let mut sc = Scenario::new();
        sc.probe("ac", Probe::AcPowerW, Window::at(0));
        sc
    }

    fn cases(labels: &[&str]) -> Vec<Case> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| Case::new(*l, SimConfig::epyc_7502_2s(), instant_scenario(), i as u64))
            .collect()
    }

    #[test]
    fn zero_workers_clamp_to_one() {
        // `workers(0)` must not panic or hang; it behaves as one worker.
        let batch = cases(&["only"]);
        let runs = Session::new().workers(0).run(&batch).unwrap();
        assert_eq!(runs.len(), 1);
        let mut streamed = 0;
        let n = Session::new()
            .workers(0)
            .shard_size(0)
            .run_streaming(batch.clone(), |_, _| streamed += 1)
            .unwrap();
        assert_eq!((n, streamed), (1, 1));
    }

    #[test]
    fn empty_batch_returns_empty_vec() {
        let runs = Session::new().run(&[]).unwrap();
        assert!(runs.is_empty());
        // The same holds for zero workers and for the streaming path.
        assert!(Session::new().workers(0).run(&[]).unwrap().is_empty());
        let delivered =
            Session::new().run_streaming(std::iter::empty(), |_, _| panic!("no runs")).unwrap();
        assert_eq!(delivered, 0);
    }

    #[test]
    fn streaming_delivers_in_case_order_with_global_indices() {
        let batch = cases(&["a", "b", "c", "d", "e"]);
        let expected = Session::new().workers(1).run(&batch).unwrap();
        for (workers, shard) in [(1, 1), (2, 1), (3, 2), (7, 64)] {
            let mut seen = Vec::new();
            let n = Session::new()
                .workers(workers)
                .shard_size(shard)
                .run_streaming(batch.clone(), |i, run| seen.push((i, run)))
                .unwrap();
            assert_eq!(n, 5);
            let indices: Vec<usize> = seen.iter().map(|(i, _)| *i).collect();
            assert_eq!(indices, [0, 1, 2, 3, 4]);
            let runs: Vec<Run> = seen.into_iter().map(|(_, run)| run).collect();
            assert_eq!(runs, expected, "workers {workers} shard {shard}");
        }
    }

    #[test]
    fn streaming_panic_is_attributed_and_earlier_runs_are_delivered() {
        let batch = cases(&["a", "b", "boom", "d"]);
        let mut delivered = Vec::new();
        let err = Session::new()
            .workers(1)
            .shard_size(2)
            .run_streaming_with(
                batch,
                |i, _| delivered.push(i),
                |sys, case| {
                    if case.label == "boom" {
                        panic!("stream kaboom");
                    }
                    sys.run_scenario_prechecked(&case.scenario)
                },
            )
            .unwrap_err();
        assert_eq!(err.case, "boom");
        assert!(matches!(err.kind, SessionErrorKind::WorkerPanicked(_)));
        // The first shard (cases 0-1) completed and streamed out before
        // the second shard's panic stopped the stream.
        assert_eq!(delivered, [0, 1]);
    }

    #[test]
    fn streaming_validation_failure_names_its_case() {
        let mut backwards = Scenario::new();
        backwards.probe("w", Probe::AcTrueMeanW, Window::span(100, 50));
        let bad = Case::new("inverted", SimConfig::epyc_7502_2s(), backwards, 1);
        let err =
            Session::new().run_streaming(vec![bad], |_, _| panic!("must not deliver")).unwrap_err();
        assert_eq!(err.case, "inverted");
        assert!(matches!(err.kind, SessionErrorKind::InvalidScenario(_)));
    }

    #[test]
    fn checkpointed_stream_reports_boundaries_and_offsets_indices() {
        let batch = cases(&["a", "b", "c", "d", "e"]);
        let mut indices = Vec::new();
        let mut boundaries = Vec::new();
        let n = Session::new()
            .workers(1)
            .shard_size(2)
            .run_streaming_checkpointed(10, batch, |event| {
                match event {
                    StreamEvent::Run { index, .. } => indices.push(index),
                    StreamEvent::ShardBoundary { next } => boundaries.push(next),
                }
                Ok(StreamControl::Continue)
            })
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(indices, [10, 11, 12, 13, 14]);
        // Shards of 2 cases: boundaries after 2, 4 and 5 deliveries,
        // including one after the final (short) shard.
        assert_eq!(boundaries, [12, 14, 15]);
    }

    #[test]
    fn checkpointed_stream_halts_cleanly_at_a_boundary() {
        let batch = cases(&["a", "b", "c", "d", "e"]);
        let mut delivered = 0;
        let n = Session::new()
            .workers(1)
            .shard_size(2)
            .run_streaming_checkpointed(0, batch, |event| {
                Ok(match event {
                    StreamEvent::Run { .. } => {
                        delivered += 1;
                        StreamControl::Continue
                    }
                    // Stop at the first boundary: cases 2.. never run.
                    StreamEvent::ShardBoundary { .. } => StreamControl::Halt,
                })
            })
            .unwrap();
        assert_eq!((n, delivered), (2, 2));
    }

    #[test]
    fn checkpoint_callback_failure_aborts_with_its_own_kind() {
        let batch = cases(&["a", "b", "c"]);
        let err = Session::new()
            .workers(1)
            .shard_size(2)
            .run_streaming_checkpointed(0, batch, |event| match event {
                StreamEvent::Run { .. } => Ok(StreamControl::Continue),
                StreamEvent::ShardBoundary { .. } => Err("disk full".into()),
            })
            .unwrap_err();
        assert!(matches!(err.kind, SessionErrorKind::CheckpointFailed(ref m) if m == "disk full"));
        assert!(err.to_string().contains("disk full"));
    }

    #[test]
    fn prototype_cache_reuses_across_shards_and_stays_bounded() {
        let mut cache = PrototypeCache::new(2);
        let a = SimConfig::epyc_7502_2s();
        let mut b = a.clone();
        b.controller.deadband_w += 1.0;
        let mut c = a.clone();
        c.controller.deadband_w += 2.0;
        let shard = |cfg: &SimConfig| vec![case_with(cfg, "x"), case_with(cfg, "y")];
        cache.prepare(&shard(&a), Obs::off(), None);
        assert!(cache.get(&a).is_some());
        // A config used once is not worth booting a prototype for...
        cache.prepare(&[case_with(&b, "solo")], Obs::off(), None);
        assert!(cache.get(&b).is_none());
        // ...but shared configs are cached, and capacity evicts the LRU.
        cache.prepare(&shard(&b), Obs::off(), None);
        cache.prepare(&shard(&c), Obs::off(), None);
        assert!(cache.get(&a).is_none(), "stale entry evicted at capacity");
        assert!(cache.get(&b).is_some());
        assert!(cache.get(&c).is_some());
    }

    #[test]
    fn prototype_cache_does_not_thrash_when_a_shard_overflows_it() {
        // More shared configs in one shard than the cache holds: the
        // overflow configs must not boot prototypes that are evicted
        // before any case forks them (their cases boot fresh instead),
        // and the already-hot entries must survive.
        let mut cache = PrototypeCache::new(2);
        let base = SimConfig::epyc_7502_2s();
        let mut configs = Vec::new();
        for i in 0..4 {
            let mut c = base.clone();
            c.controller.deadband_w += i as f64;
            configs.push(c);
        }
        let shard: Vec<Case> =
            configs.iter().flat_map(|c| [case_with(c, "x"), case_with(c, "y")]).collect();
        cache.prepare(&shard, Obs::off(), None);
        assert!(cache.get(&configs[0]).is_some());
        assert!(cache.get(&configs[1]).is_some());
        assert!(cache.get(&configs[2]).is_none(), "overflow config must not thrash the cache");
        assert!(cache.get(&configs[3]).is_none());
        assert_eq!(cache.entries.len(), 2);
    }

    fn case_with(cfg: &SimConfig, label: &str) -> Case {
        Case::new(label, cfg.clone(), instant_scenario(), 1)
    }

    #[test]
    fn sim_config_identity_is_structural() {
        let a = SimConfig::epyc_7502_2s();
        let b = a.clone();
        assert_eq!(a, b);
        let mut c = a.clone();
        c.controller.deadband_w += 1.0;
        assert_ne!(a, c, "semantically different configs must not compare equal");
        assert_ne!(a, SimConfig::epyc_7502_1s());
    }

    #[test]
    fn worker_panic_is_attributed_not_cascaded() {
        let batch = cases(&["a", "boom", "c", "d"]);
        let err = Session::new()
            .workers(2)
            .run_with(&batch, |sys, case| {
                if case.label == "boom" {
                    panic!("kaboom in {}", case.label);
                }
                sys.run_scenario_prechecked(&case.scenario)
            })
            .unwrap_err();
        assert_eq!(err.case, "boom", "the panic must name its own case");
        match err.kind {
            SessionErrorKind::WorkerPanicked(ref message) => {
                assert!(message.contains("kaboom in boom"), "payload preserved: {message}")
            }
            ref other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn first_panicking_case_in_case_order_wins() {
        // Whichever worker panics first on the wall clock, the error is
        // attributed deterministically: the earliest case in batch order.
        let batch = cases(&["a", "boom1", "boom2", "d"]);
        for workers in [1, 3] {
            let err = Session::new()
                .workers(workers)
                .run_with(&batch, |sys, case| {
                    if case.label.starts_with("boom") {
                        panic!("{} fell over", case.label);
                    }
                    sys.run_scenario_prechecked(&case.scenario)
                })
                .unwrap_err();
            assert_eq!(err.case, "boom1");
        }
    }

    #[test]
    fn panicking_batch_still_runs_the_other_cases() {
        // Observable through the executor: every non-panicking case is
        // still executed even though one case blew up.
        let executed = Mutex::new(Vec::new());
        let batch = cases(&["a", "boom", "c", "d"]);
        let _ = Session::new().workers(2).run_with(&batch, |sys, case| {
            if case.label == "boom" {
                panic!("down");
            }
            executed.lock().unwrap().push(case.label.clone());
            sys.run_scenario_prechecked(&case.scenario)
        });
        let mut ran = executed.into_inner().unwrap();
        ran.sort();
        assert_eq!(ran, ["a", "c", "d"]);
    }
}
