//! Batch execution: many `(SimConfig, Scenario, seed)` cases across a
//! worker pool, with results identical to serial execution.
//!
//! Each case runs on its own freshly seeded machine, so results depend
//! only on the case — never on scheduling — and [`Session::run`] returns
//! them in case order regardless of the worker count. Machines are
//! forked from one booted prototype per distinct configuration
//! ([`System::fork`]), so the boot cost (MSR file construction, workload
//! registry, thermal settling) is paid once per configuration instead of
//! once per case.
//!
//! ```
//! use zen2_sim::{Case, Probe, Scenario, Session, SimConfig, Window};
//!
//! let mut sc = Scenario::new();
//! sc.probe("idle", Probe::AcTrueMeanW, Window::span_secs(0.05, 0.25));
//! let cases: Vec<Case> = (0..4)
//!     .map(|i| Case::new(format!("case{i}"), SimConfig::epyc_7502_2s(), sc.clone(), i))
//!     .collect();
//! let runs = Session::new().workers(2).run(&cases).unwrap();
//! assert_eq!(runs.len(), 4);
//! assert!((runs[0].watts("idle") - 99.1).abs() < 1.5);
//! ```

use crate::config::SimConfig;
use crate::probe::Run;
use crate::scenario::{Scenario, ScenarioError};
use crate::system::System;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One unit of batch work: a machine configuration, a scenario, and the
/// boot seed.
#[derive(Debug, Clone)]
pub struct Case {
    /// Human-readable identifier, reported in errors.
    pub label: String,
    /// The machine to boot.
    pub config: SimConfig,
    /// The schedule to execute.
    pub scenario: Scenario,
    /// The seed all of the case's stochastic behavior flows from.
    pub seed: u64,
}

impl Case {
    /// Builds a case.
    pub fn new(
        label: impl Into<String>,
        config: SimConfig,
        scenario: Scenario,
        seed: u64,
    ) -> Self {
        Self { label: label.into(), config, scenario, seed }
    }
}

/// A batch runner with a fixed worker pool.
#[derive(Debug, Clone)]
pub struct Session {
    workers: usize,
    reuse_boots: bool,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// A session sized to the host's available parallelism.
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self { workers, reuse_boots: true }
    }

    /// Sets the worker count (results do not depend on it).
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n > 0, "a session needs at least one worker");
        self.workers = n;
        self
    }

    /// Disables prototype reuse: every case boots its own machine from
    /// scratch. Results are identical either way; this exists for
    /// benchmarking the reuse win.
    pub fn reuse_boots(mut self, reuse: bool) -> Self {
        self.reuse_boots = reuse;
        self
    }

    /// Validates every case, then executes the batch across the worker
    /// pool. Results come back in case order and are a pure function of
    /// each `(config, scenario, seed)` triple.
    pub fn run(&self, cases: &[Case]) -> Result<Vec<Run>, SessionError> {
        for case in cases {
            case.scenario.validate(&case.config).map_err(|error| SessionError {
                case: case.label.clone(),
                error,
            })?;
        }

        // One booted prototype per configuration that is actually shared
        // (booting a prototype for a config used once would cost more
        // than it saves). `SimConfig` carries only plain data, so its
        // Debug rendering is a faithful identity key; render it once per
        // case, not per dispatch.
        let mut prototypes: HashMap<String, System> = HashMap::new();
        let mut keys: Vec<String> = Vec::new();
        if self.reuse_boots {
            keys = cases.iter().map(|case| format!("{:?}", case.config)).collect();
            let mut occurrences: HashMap<&str, usize> = HashMap::new();
            for key in &keys {
                *occurrences.entry(key).or_insert(0) += 1;
            }
            for (case, key) in cases.iter().zip(&keys) {
                if occurrences[key.as_str()] > 1 && !prototypes.contains_key(key) {
                    prototypes.insert(key.clone(), System::new(case.config.clone(), 0));
                }
            }
        }

        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Run>>> =
            cases.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.workers.min(cases.len()).max(1);
        let prototypes = &prototypes;
        let keys_ref = &keys;
        let results_ref = &results;
        let next_ref = &next;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= cases.len() {
                        break;
                    }
                    let case = &cases[i];
                    let mut sys = match keys_ref.get(i).and_then(|k| prototypes.get(k)) {
                        Some(proto) => proto.fork(case.seed),
                        None => System::new(case.config.clone(), case.seed),
                    };
                    // The batch was validated up front; skip the re-check.
                    let run = sys.run_scenario_prechecked(&case.scenario);
                    *results_ref[i].lock().expect("result slot poisoned") = Some(run);
                });
            }
        });

        Ok(results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every claimed case stores its run")
            })
            .collect())
    }
}

/// A validation failure, attributed to its case.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionError {
    /// The offending case's label.
    pub case: String,
    /// The underlying scenario error.
    pub error: ScenarioError,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "case {:?}: {}", self.case, self.error)
    }
}

impl std::error::Error for SessionError {}
