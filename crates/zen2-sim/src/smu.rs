//! The SMU network's DVFS behavior (Section V-B).
//!
//! Frequency-change requests are not serviced immediately: the master SMU
//! grants them only at fixed 1 ms update slots ("AMD introduced update
//! intervals for core frequencies that define times when frequency
//! transitions can be initiated"), after which the actual transition takes
//! another ~390 µs (down) or ~360 µs (up) — likely SMU-to-SMU
//! communication, much slower than Intel's centralized PCU. A request
//! landing at a random time therefore completes after a delay uniformly
//! distributed in [ramp, ramp + 1 ms] (Fig. 3).
//!
//! A transition's electrical state stays latched for ~5 ms after it
//! completes. Returning toward the previous operating point within that
//! window — *and* within a small voltage distance — takes a fast path:
//! an increase applies quasi-instantaneously (1 µs, no slot wait, because
//! the voltage is still high enough), a decrease still waits for its slot
//! but ramps in only 160 µs. On the paper's system only the 2.2/2.5 GHz
//! pair is close enough in voltage to qualify, and "the effect disappears
//! with random wait times of at least 5 ms".

use crate::config::SmuParams;
use crate::time::{next_boundary, Ns};
use serde::{Deserialize, Serialize};

/// One applied frequency transition, as reported by [`Smu::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedTransition {
    /// The core whose frequency changed.
    pub core: usize,
    /// The now-active frequency in MHz.
    pub mhz: u32,
    /// Completion time.
    pub at: Ns,
    /// Whether the fast path was used.
    pub fast_path: bool,
}

/// A pending, granted-or-waiting frequency transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PendingTransition {
    /// Requested target frequency.
    pub target_mhz: u32,
    /// When the request was made.
    pub requested_at: Ns,
    /// When the transition will complete and the new frequency applies.
    pub completes_at: Ns,
    /// Whether the fast path was used.
    pub fast_path: bool,
}

/// Per-core DVFS state machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreDvfs {
    applied_mhz: u32,
    pending: Option<PendingTransition>,
    /// The latest request that arrived while a transition was in flight;
    /// issued once the in-flight ramp completes (a ramp is never aborted).
    queued_mhz: Option<u32>,
    /// Completion time of the most recent transition.
    last_complete_at: Ns,
    /// The frequency before the most recent transition (the fast path
    /// returns *toward* this point).
    previous_mhz: u32,
}

impl CoreDvfs {
    fn new(initial_mhz: u32) -> Self {
        Self {
            applied_mhz: initial_mhz,
            pending: None,
            queued_mhz: None,
            // A fresh machine has no latched transition state.
            last_complete_at: 0,
            previous_mhz: initial_mhz,
        }
    }

    /// The frequency currently delivered to the core's DFS.
    pub fn applied_mhz(&self) -> u32 {
        self.applied_mhz
    }

    /// The in-flight transition, if any.
    pub fn pending(&self) -> Option<&PendingTransition> {
        self.pending.as_ref()
    }

    /// The effective target: queued request, pending target, or applied
    /// frequency.
    pub fn target_mhz(&self) -> u32 {
        self.queued_mhz.or(self.pending.map(|p| p.target_mhz)).unwrap_or(self.applied_mhz)
    }
}

/// The SMU's DVFS service for all cores.
#[derive(Debug, Clone)]
pub struct Smu {
    params: SmuParams,
    cores: Vec<CoreDvfs>,
    voltage_of: fn(&Smu, u32) -> f64,
    vf_points: Vec<(u32, f64)>,
}

impl Smu {
    /// Creates the service with every core at `initial_mhz`. `vf_points`
    /// maps frequency (MHz) to voltage for fast-path eligibility.
    pub fn new(
        params: SmuParams,
        num_cores: usize,
        initial_mhz: u32,
        vf_points: Vec<(u32, f64)>,
    ) -> Self {
        assert!(!vf_points.is_empty(), "the SMU needs V/f points");
        Self {
            params,
            cores: vec![CoreDvfs::new(initial_mhz); num_cores],
            voltage_of: Self::interp_voltage,
            vf_points,
        }
    }

    fn interp_voltage(&self, mhz: u32) -> f64 {
        let pts = &self.vf_points;
        if mhz <= pts[0].0 {
            return pts[0].1;
        }
        if let Some(last) = pts.last() {
            if mhz >= last.0 {
                return last.1;
            }
        }
        for w in pts.windows(2) {
            if mhz <= w[1].0 {
                let t = (mhz - w[0].0) as f64 / (w[1].0 - w[0].0) as f64;
                return w[0].1 + t * (w[1].1 - w[0].1);
            }
        }
        unreachable!("covered by clamps")
    }

    /// Voltage the regulator supplies for a frequency.
    pub fn voltage(&self, mhz: u32) -> f64 {
        (self.voltage_of)(self, mhz)
    }

    /// Per-core state access.
    pub fn core(&self, core: usize) -> &CoreDvfs {
        &self.cores[core]
    }

    /// Number of cores under management.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The earliest pending completion across all cores, if any — the
    /// simulator's next SMU event.
    pub fn next_event(&self) -> Option<Ns> {
        self.cores.iter().filter_map(|c| c.pending.map(|p| p.completes_at)).min()
    }

    /// Submits a frequency request for a core at time `now`. Returns the
    /// transition descriptor, or `None` if the core is already at (or
    /// heading to) the target, or if the request was queued behind an
    /// in-flight ramp (a ramp is never aborted; the latest queued request
    /// wins once it completes).
    pub fn request(&mut self, now: Ns, core: usize, target_mhz: u32) -> Option<PendingTransition> {
        assert!(target_mhz > 0, "target frequency must be positive");
        let slot_period = self.params.slot_period_ns;
        let state = &mut self.cores[core];
        if state.target_mhz() == target_mhz {
            return None;
        }
        if state.pending.is_some() {
            state.queued_mhz = if state.pending.map(|p| p.target_mhz) == Some(target_mhz) {
                None
            } else {
                Some(target_mhz)
            };
            return None;
        }
        state.queued_mhz = None;
        let applied = state.applied_mhz;
        if applied == target_mhz {
            return None;
        }
        let state = &self.cores[core];

        // Fast-path eligibility: a recent transition's state is still
        // latched, the request returns toward the previous operating
        // point, and the voltage distance is small.
        let fast = self.params.fast_path_enabled
            && state.pending.is_none()
            && now < state.last_complete_at.saturating_add(self.params.settle_window_ns)
            && state.last_complete_at > 0
            && target_mhz == state.previous_mhz
            && (self.voltage(target_mhz) - self.voltage(applied)).abs()
                <= self.params.fast_path_max_dv;

        let up = target_mhz > applied;
        let completes_at = if fast && up {
            // Voltage still high enough: apply without a slot grant.
            now + self.params.fast_up_ns
        } else {
            let grant = next_boundary(now, slot_period);
            let ramp = match (up, fast) {
                (true, _) => self.params.ramp_up_ns,
                (false, true) => self.params.fast_ramp_down_ns,
                (false, false) => self.params.ramp_down_ns,
            };
            grant + ramp
        };
        let pending =
            PendingTransition { target_mhz, requested_at: now, completes_at, fast_path: fast };
        self.cores[core].pending = Some(pending);
        Some(pending)
    }

    /// Completes every transition due at or before `now`, issuing queued
    /// follow-up requests as ramps finish; returns one record per applied
    /// transition in completion order per core.
    pub fn advance(&mut self, now: Ns) -> Vec<CompletedTransition> {
        let mut completed = Vec::new();
        for idx in 0..self.cores.len() {
            while let Some(p) = self.cores[idx].pending {
                if p.completes_at > now {
                    break;
                }
                {
                    let core = &mut self.cores[idx];
                    core.previous_mhz = core.applied_mhz;
                    core.applied_mhz = p.target_mhz;
                    core.last_complete_at = p.completes_at;
                    core.pending = None;
                }
                completed.push(CompletedTransition {
                    core: idx,
                    mhz: p.target_mhz,
                    at: p.completes_at,
                    fast_path: p.fast_path,
                });
                // Issue the queued follow-up from the completion instant.
                if let Some(next_target) = self.cores[idx].queued_mhz.take() {
                    if next_target != self.cores[idx].applied_mhz {
                        self.request(p.completes_at, idx, next_target);
                    }
                } else {
                    break;
                }
            }
        }
        completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MICROSECOND, MILLISECOND};

    fn smu() -> Smu {
        Smu::new(SmuParams::default(), 4, 2500, vec![(1500, 0.85), (2200, 0.95), (2500, 1.00)])
    }

    fn settle(s: &mut Smu, now: &mut Ns) {
        // Run past the settle window so no latched state remains.
        *now += 20 * MILLISECOND;
        s.advance(*now);
    }

    #[test]
    fn transition_waits_for_slot_then_ramps() {
        let mut s = smu();
        let mut now = 0;
        settle(&mut s, &mut now);
        // Request 2.2 GHz at 300 us past a slot boundary.
        let t0 = now + 300 * MICROSECOND;
        let p = s.request(t0, 0, 2200).unwrap();
        assert!(!p.fast_path);
        // Grant at the next 1 ms boundary, plus the 390 us down-ramp.
        let expected = next_boundary(t0, MILLISECOND) + 390 * MICROSECOND;
        assert_eq!(p.completes_at, expected);
        let delay = p.completes_at - t0;
        assert!((390 * MICROSECOND..=1390 * MICROSECOND).contains(&delay));
        // Nothing applies early.
        assert!(s.advance(p.completes_at - 1).is_empty());
        assert_eq!(s.core(0).applied_mhz(), 2500);
        let done = s.advance(p.completes_at);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].core, 0);
        assert_eq!(done[0].mhz, 2200);
        assert!(!done[0].fast_path);
        assert_eq!(s.core(0).applied_mhz(), 2200);
    }

    #[test]
    fn delay_distribution_bounds_match_fig3() {
        // Request times swept across the slot: delays must cover
        // (390, 1390] us and nothing outside.
        let mut lo = u64::MAX;
        let mut hi = 0;
        for offset in (0..1000).map(|i| i * MICROSECOND) {
            let mut s = smu();
            let mut now = 0;
            settle(&mut s, &mut now);
            let t0 = now + offset;
            let p = s.request(t0, 0, 1500).unwrap();
            let d = p.completes_at - t0;
            lo = lo.min(d);
            hi = hi.max(d);
        }
        // The grant falls strictly after the request, so the observable
        // window is (390, 1390] µs with 1 µs-grid request times.
        assert!((390 * MICROSECOND..=392 * MICROSECOND).contains(&lo), "lo {lo}");
        assert_eq!(hi, 1390 * MICROSECOND);
    }

    #[test]
    fn up_ramp_is_shorter_than_down_ramp() {
        let mut s = smu();
        let mut now = 0;
        settle(&mut s, &mut now);
        let p = s.request(now, 0, 1500).unwrap();
        s.advance(p.completes_at);
        let mut now = p.completes_at + 20 * MILLISECOND;
        s.advance(now);
        now += 100 * MICROSECOND;
        let up = s.request(now, 0, 2500).unwrap();
        assert!(!up.fast_path, "after settling, no fast path");
        let delay = up.completes_at - now;
        assert!((360 * MICROSECOND..=1360 * MICROSECOND).contains(&delay));
    }

    #[test]
    fn fast_up_path_is_instantaneous_within_settle_window() {
        // 2.5 -> 2.2, then back to 2.5 quickly: voltage still latched.
        let mut s = smu();
        let mut now = 0;
        settle(&mut s, &mut now);
        let down = s.request(now + 100, 0, 2200).unwrap();
        s.advance(down.completes_at);
        let back_at = down.completes_at + MILLISECOND; // well inside 5 ms
        let up = s.request(back_at, 0, 2500).unwrap();
        assert!(up.fast_path);
        assert_eq!(up.completes_at - back_at, MICROSECOND);
    }

    #[test]
    fn fast_down_path_skips_most_of_the_ramp() {
        // 2.2 -> 2.5, then back down to 2.2 quickly: 160 us ramp, but the
        // slot wait still applies (min observed 160 us, max 1160 us).
        let mut s = smu();
        let mut now = 0;
        settle(&mut s, &mut now);
        let d = s.request(now + 100, 0, 2200).unwrap();
        s.advance(d.completes_at);
        let mut now2 = d.completes_at + 20 * MILLISECOND;
        s.advance(now2);
        now2 += 10;
        let u = s.request(now2, 0, 2500).unwrap();
        s.advance(u.completes_at);
        // Return down within the settle window, right before a slot.
        let back_at = next_boundary(u.completes_at, MILLISECOND) - 10;
        let down = s.request(back_at, 0, 2200).unwrap();
        assert!(down.fast_path);
        let delay = down.completes_at - back_at;
        assert!(delay < 390 * MICROSECOND, "fast down {delay} ns");
        assert!(delay >= 160 * MICROSECOND);
    }

    #[test]
    fn fast_path_needs_small_voltage_distance() {
        // 2.2 -> 1.5 and back: dV = 0.1 V exceeds the window, so the
        // anomaly never appears for this pair (as in the paper).
        let mut s = smu();
        let mut now = 0;
        settle(&mut s, &mut now);
        let a = s.request(now + 5, 0, 2200).unwrap();
        s.advance(a.completes_at);
        let b = s.request(a.completes_at + 100, 0, 1500).unwrap();
        assert!(!b.fast_path);
        s.advance(b.completes_at);
        let c = s.request(b.completes_at + 100, 0, 2200).unwrap();
        assert!(!c.fast_path, "2.2<->1.5 must never take the fast path");
    }

    #[test]
    fn fast_path_expires_after_settle_window() {
        let mut s = smu();
        let mut now = 0;
        settle(&mut s, &mut now);
        let down = s.request(now + 100, 0, 2200).unwrap();
        s.advance(down.completes_at);
        // 6 ms later: the state has unlatched.
        let back_at = down.completes_at + 6 * MILLISECOND;
        let up = s.request(back_at, 0, 2500).unwrap();
        assert!(!up.fast_path);
    }

    #[test]
    fn fast_path_requires_returning_to_previous_point() {
        let mut s = smu();
        let mut now = 0;
        settle(&mut s, &mut now);
        let down = s.request(now + 100, 0, 2200).unwrap();
        s.advance(down.completes_at);
        // Heading to 1.5 GHz (not back to 2.5) is a normal transition.
        let other = s.request(down.completes_at + 500, 0, 1500).unwrap();
        assert!(!other.fast_path);
    }

    #[test]
    fn redundant_requests_are_ignored() {
        let mut s = smu();
        let mut now = 0;
        settle(&mut s, &mut now);
        assert!(s.request(now, 0, 2500).is_none(), "already applied");
        let p = s.request(now + 5, 0, 2200).unwrap();
        assert!(s.request(now + 10, 0, 2200).is_none(), "already pending");
        s.advance(p.completes_at);
        assert!(s.request(p.completes_at + 1, 0, 2200).is_none());
    }

    #[test]
    fn cores_are_independent() {
        let mut s = smu();
        let mut now = 0;
        settle(&mut s, &mut now);
        let a = s.request(now + 5, 0, 1500).unwrap();
        let b = s.request(now + 5, 3, 2200).unwrap();
        s.advance(a.completes_at.max(b.completes_at));
        assert_eq!(s.core(0).applied_mhz(), 1500);
        assert_eq!(s.core(3).applied_mhz(), 2200);
        assert_eq!(s.core(1).applied_mhz(), 2500);
    }

    #[test]
    fn ablation_disables_fast_path() {
        let params = SmuParams { fast_path_enabled: false, ..SmuParams::default() };
        let mut s = Smu::new(params, 1, 2500, vec![(1500, 0.85), (2200, 0.95), (2500, 1.00)]);
        let down = s.request(100, 0, 2200).unwrap();
        s.advance(down.completes_at);
        let up = s.request(down.completes_at + 100, 0, 2500).unwrap();
        assert!(!up.fast_path);
    }
}
