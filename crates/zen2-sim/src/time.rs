//! Simulation time: integer nanoseconds from boot.

/// Nanoseconds since simulation start.
pub type Ns = u64;

/// A point in simulated time.
pub type Instant = Ns;

/// A span of simulated time.
pub type Duration = Ns;

/// One microsecond in [`Ns`].
pub const MICROSECOND: Ns = 1_000;
/// One millisecond in [`Ns`].
pub const MILLISECOND: Ns = 1_000_000;
/// One second in [`Ns`].
pub const SECOND: Ns = 1_000_000_000;

/// Converts a span to floating-point seconds.
#[inline]
pub fn to_secs(ns: Ns) -> f64 {
    ns as f64 / SECOND as f64
}

/// Converts floating-point seconds to a span, rounding to the nearest
/// nanosecond (truncation would make e.g. `0.6 s` end 1 ns early, which
/// silently drops the last sample of an exact probe sampling plan).
///
/// # Panics
/// Panics on negative or non-finite input.
#[inline]
pub fn from_secs(s: f64) -> Ns {
    assert!(s.is_finite() && s >= 0.0, "durations must be non-negative, got {s}");
    (s * SECOND as f64).round() as Ns
}

/// The greatest multiple of `period` that is `<= t`.
#[inline]
pub fn floor_to(t: Ns, period: Ns) -> Ns {
    assert!(period > 0, "period must be positive");
    t - t % period
}

/// The smallest multiple of `period` that is `> t` (the next boundary a
/// periodic process fires at, given it already fired at or before `t`).
#[inline]
pub fn next_boundary(t: Ns, period: Ns) -> Ns {
    floor_to(t, period) + period
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(from_secs(1.5), 1_500_000_000);
        assert!((to_secs(2_500_000) - 0.0025).abs() < 1e-15);
        assert_eq!(from_secs(to_secs(123_456_789)), 123_456_789);
    }

    #[test]
    fn boundaries() {
        assert_eq!(floor_to(1_234_567, MILLISECOND), 1_000_000);
        assert_eq!(next_boundary(1_234_567, MILLISECOND), 2_000_000);
        assert_eq!(next_boundary(2_000_000, MILLISECOND), 3_000_000);
        assert_eq!(next_boundary(0, MILLISECOND), MILLISECOND);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        let _ = from_secs(-1.0);
    }
}
