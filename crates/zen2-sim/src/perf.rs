//! Hardware performance counters (TSC, APERF, MPERF, instructions).
//!
//! The paper observes effective frequencies through `perf stat` — i.e.
//! through the APERF/MPERF ratio and cycle counts. Two Zen 2 behaviors
//! matter for the experiments:
//!
//! * counters *halt* in C1 and C2 ("the hardware counters for cycles,
//!   aperf, and mperf do not advance on cores that are in C1"), while the
//!   TSC is invariant and always runs at the nominal rate;
//! * an "idle" hardware thread still executes timer interrupts and
//!   reports "less than 60 000 cycle/s" (Section V-A).

use crate::cstate::ThreadState;
use serde::{Deserialize, Serialize};

/// Accumulated counters of one hardware thread (fractional internally;
/// exposed to software as integers through the MSR file).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadCounters {
    /// Invariant time-stamp counter (nominal rate, always running).
    pub tsc: f64,
    /// Actual-performance counter (effective rate, C0 only).
    pub aperf: f64,
    /// Max-performance counter (nominal rate, C0 only).
    pub mperf: f64,
    /// Unhalted core cycles attributed to this thread.
    pub cycles: f64,
    /// Retired instructions attributed to this thread.
    pub instructions: f64,
}

impl ThreadCounters {
    /// Advances the counters over `dt_s` seconds.
    ///
    /// * `state` — the thread's scheduling state during the interval,
    /// * `eff_ghz` — the core's delivered frequency,
    /// * `nominal_ghz` — the P0 reference frequency,
    /// * `thread_ipc` — instructions per cycle attributed to this thread,
    /// * `idle_wake_cycles_per_s` — timer-tick cycles for idle threads.
    #[allow(clippy::too_many_arguments)]
    pub fn advance(
        &mut self,
        dt_s: f64,
        state: ThreadState,
        eff_ghz: f64,
        nominal_ghz: f64,
        thread_ipc: f64,
        idle_wake_cycles_per_s: f64,
    ) {
        assert!(dt_s >= 0.0, "time cannot run backwards");
        self.tsc += nominal_ghz * 1e9 * dt_s;
        match state {
            ThreadState::Active => {
                let cycles = eff_ghz * 1e9 * dt_s;
                self.aperf += cycles;
                self.mperf += nominal_ghz * 1e9 * dt_s;
                self.cycles += cycles;
                self.instructions += thread_ipc * cycles;
            }
            ThreadState::C1 | ThreadState::C2 => {
                // Timer interrupts briefly pop the thread into C0.
                let wake_cycles = idle_wake_cycles_per_s * dt_s;
                let c0_time_s = if eff_ghz > 0.0 { wake_cycles / (eff_ghz * 1e9) } else { 0.0 };
                self.aperf += wake_cycles;
                self.mperf += nominal_ghz * 1e9 * c0_time_s;
                self.cycles += wake_cycles;
                // Interrupt handlers retire roughly one instruction per
                // cycle on this short path.
                self.instructions += wake_cycles;
            }
            ThreadState::Offline => {}
        }
    }

    /// Effective frequency over a counter delta, the `perf`/cpufreq way.
    pub fn effective_ghz(before: &Self, after: &Self, nominal_ghz: f64) -> f64 {
        let da = after.aperf - before.aperf;
        let dm = after.mperf - before.mperf;
        if dm <= 0.0 {
            return 0.0;
        }
        nominal_ghz * da / dm
    }

    /// Instructions per cycle over a counter delta.
    pub fn ipc(before: &Self, after: &Self) -> f64 {
        let dc = after.cycles - before.cycles;
        if dc <= 0.0 {
            return 0.0;
        }
        (after.instructions - before.instructions) / dc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_thread_accumulates_at_effective_rate() {
        let mut c = ThreadCounters::default();
        c.advance(1.0, ThreadState::Active, 2.0, 2.5, 3.0, 50_000.0);
        assert!((c.aperf - 2.0e9).abs() < 1.0);
        assert!((c.mperf - 2.5e9).abs() < 1.0);
        assert!((c.tsc - 2.5e9).abs() < 1.0);
        assert!((c.instructions - 6.0e9).abs() < 1.0);
    }

    #[test]
    fn aperf_mperf_ratio_recovers_effective_frequency() {
        let mut before = ThreadCounters::default();
        let mut after = before;
        after.advance(2.0, ThreadState::Active, 2.0, 2.5, 1.0, 0.0);
        let eff = ThreadCounters::effective_ghz(&before, &after, 2.5);
        assert!((eff - 2.0).abs() < 1e-9);
        before.advance(1.0, ThreadState::Active, 1.4667, 2.5, 1.0, 0.0);
        let eff = ThreadCounters::effective_ghz(&ThreadCounters::default(), &before, 2.5);
        assert!((eff - 1.4667).abs() < 1e-9);
    }

    #[test]
    fn idle_thread_reports_under_60k_cycles_per_second() {
        // The Section V-A observation that motivated the paper's check.
        let mut c = ThreadCounters::default();
        c.advance(1.0, ThreadState::C2, 2.5, 2.5, 0.0, 50_000.0);
        assert!(c.cycles > 0.0 && c.cycles < 60_000.0, "idle cycles {}", c.cycles);
        // The TSC keeps running regardless.
        assert!((c.tsc - 2.5e9).abs() < 1.0);
    }

    #[test]
    fn offline_thread_counts_nothing_but_tsc() {
        let mut c = ThreadCounters::default();
        c.advance(1.0, ThreadState::Offline, 2.5, 2.5, 1.0, 50_000.0);
        assert_eq!(c.cycles, 0.0);
        assert_eq!(c.aperf, 0.0);
        assert!(c.tsc > 0.0);
    }

    #[test]
    fn ipc_over_delta() {
        let before = ThreadCounters::default();
        let mut after = before;
        after.advance(1.0, ThreadState::Active, 2.0, 2.5, 3.56, 0.0);
        assert!((ThreadCounters::ipc(&before, &after) - 3.56).abs() < 1e-9);
    }

    #[test]
    fn zero_deltas_do_not_divide_by_zero() {
        let c = ThreadCounters::default();
        assert_eq!(ThreadCounters::effective_ghz(&c, &c, 2.5), 0.0);
        assert_eq!(ThreadCounters::ipc(&c, &c), 0.0);
    }
}
