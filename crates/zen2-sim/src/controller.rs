//! The SMU's telemetry throttle loop (Section V-E).
//!
//! Zen 2 replaced Intel's static AVX-frequency tables with "an intelligent
//! EDC manager which monitors activity ... and throttles execution only
//! when necessary". In this reproduction the loop regulates the SMU's own
//! *estimated* package power (the same model that feeds the RAPL counters)
//! against its PPT target: each update slot it lowers the package-wide
//! frequency cap by one 25 MHz step while the estimate exceeds the target,
//! and raises the cap when there is headroom beyond a deadband. Because
//! the estimate — not the wall truth — is regulated, the counters read a
//! flat 170 W under FIRESTARTER while the external meter shows 489/509 W
//! (Fig. 6).

use crate::config::ControllerParams;
use serde::{Deserialize, Serialize};

/// Per-package frequency-cap controller state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PptController {
    params_enabled: bool,
    step_mhz: u32,
    deadband_w: f64,
    /// Current cap in MHz.
    cap_mhz: u32,
    /// Ceiling the cap may return to (nominal, or boost maximum).
    max_mhz: u32,
    /// Floor (lowest P-state; the controller never stalls cores).
    min_mhz: u32,
}

impl PptController {
    /// Creates a controller capped at `max_mhz` (nominal or boost).
    pub fn new(params: &ControllerParams, max_mhz: u32, min_mhz: u32) -> Self {
        assert!(min_mhz <= max_mhz, "cap range inverted");
        let ceiling = params.boost_max_mhz.map_or(max_mhz, |b| b.max(max_mhz));
        Self {
            params_enabled: params.enabled,
            step_mhz: params.step_mhz,
            deadband_w: params.deadband_w,
            cap_mhz: ceiling,
            max_mhz: ceiling,
            min_mhz,
        }
    }

    /// The current package-wide frequency cap in MHz.
    pub fn cap_mhz(&self) -> u32 {
        self.cap_mhz
    }

    /// One control step, called at each SMU slot with the package's
    /// estimated power and the lowest frequency currently *applied* on the
    /// package. Stepping relative to the applied frequency (not the
    /// previous cap) is the loop's anti-windup: DVFS transitions lag the
    /// telemetry by up to 1.4 ms, and without it the cap would wind far
    /// past the equilibrium and oscillate. Returns `true` if the cap
    /// changed.
    pub fn step(&mut self, estimated_w: f64, ppt_target_w: f64, applied_mhz: u32) -> bool {
        if !self.params_enabled {
            return false;
        }
        let before = self.cap_mhz;
        if estimated_w > ppt_target_w && self.cap_mhz > self.min_mhz {
            // One step below what is actually applied.
            self.cap_mhz =
                self.cap_mhz.min(applied_mhz).saturating_sub(self.step_mhz).max(self.min_mhz);
        } else if estimated_w < ppt_target_w - self.deadband_w && self.cap_mhz < self.max_mhz {
            // One step above what is actually applied.
            self.cap_mhz = (applied_mhz + self.step_mhz).min(self.max_mhz).max(self.min_mhz);
        }
        self.cap_mhz != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> PptController {
        PptController::new(&ControllerParams::default(), 2500, 1500)
    }

    /// A toy estimate: proportional to frequency, calibrated so the
    /// equilibrium sits strictly between two 25 MHz steps.
    fn estimate(cap_mhz: u32, w_per_mhz: f64) -> f64 {
        cap_mhz as f64 * w_per_mhz
    }

    #[test]
    fn converges_to_equilibrium_and_holds() {
        let mut c = controller();
        // 0.0833 W/MHz: 170 W at ~2041 MHz. Applied tracks the cap with no
        // lag in this unit test.
        let mut changes = 0;
        for _ in 0..1000 {
            if c.step(estimate(c.cap_mhz(), 0.0833), 170.0, c.cap_mhz()) {
                changes += 1;
            }
        }
        let eq = c.cap_mhz();
        assert!((2025..=2050).contains(&eq), "equilibrium {eq} MHz");
        // After convergence the cap must be stable (deadband).
        let before = c.cap_mhz();
        for _ in 0..100 {
            c.step(estimate(c.cap_mhz(), 0.0833), 170.0, c.cap_mhz());
        }
        assert_eq!(c.cap_mhz(), before, "controller must not dither");
        assert!(changes < 30, "convergence should take ~19 steps, took {changes}");
    }

    #[test]
    fn converges_despite_transition_lag() {
        // The applied frequency follows the cap only every third step
        // (modeling the ~1.4 ms ramp): anti-windup must prevent a limit
        // cycle.
        let mut c = controller();
        let mut applied = 2500u32;
        for i in 0..2000 {
            if i % 3 == 0 {
                applied = c.cap_mhz();
            }
            c.step(estimate(applied, 0.0833), 170.0, applied);
        }
        assert!((2000..=2075).contains(&applied), "lagged equilibrium {applied} MHz");
    }

    #[test]
    fn light_load_never_throttles() {
        let mut c = controller();
        for _ in 0..100 {
            c.step(90.0, 170.0, c.cap_mhz());
        }
        assert_eq!(c.cap_mhz(), 2500);
    }

    #[test]
    fn cap_recovers_when_load_drops() {
        let mut c = controller();
        let mut applied;
        for _ in 0..100 {
            applied = c.cap_mhz();
            c.step(estimate(applied, 0.0833), 170.0, applied);
        }
        assert!(c.cap_mhz() < 2100);
        for _ in 0..100 {
            applied = c.cap_mhz();
            c.step(50.0, 170.0, applied);
        }
        assert_eq!(c.cap_mhz(), 2500);
    }

    #[test]
    fn cap_never_leaves_the_pstate_range() {
        let mut c = controller();
        for _ in 0..200 {
            c.step(1_000.0, 170.0, c.cap_mhz());
        }
        assert_eq!(c.cap_mhz(), 1500, "floor at the lowest P-state");
    }

    #[test]
    fn disabled_controller_is_inert() {
        let params = ControllerParams { enabled: false, ..ControllerParams::default() };
        let mut c = PptController::new(&params, 2500, 1500);
        assert!(!c.step(1_000.0, 170.0, 2500));
        assert_eq!(c.cap_mhz(), 2500);
    }

    #[test]
    fn boost_raises_the_ceiling() {
        let params = ControllerParams { boost_max_mhz: Some(3350), ..ControllerParams::default() };
        let mut c = PptController::new(&params, 2500, 1500);
        assert_eq!(c.cap_mhz(), 3350);
        // Heavy load still pulls it down into the normal range.
        for _ in 0..200 {
            c.step(estimate(c.cap_mhz(), 0.0833), 170.0, c.cap_mhz());
        }
        assert!((2025..=2050).contains(&c.cap_mhz()));
    }
}
