//! The telemetry facade the execution paths report through: a
//! [`Recorder`] receives hierarchical spans, counters, gauges, and
//! events from [`Session`](crate::Session) runs, and sink
//! implementations (the `zen2-obs` crate) turn them into JSONL traces,
//! summary tables, or live progress lines.
//!
//! # Out-of-band by construction
//!
//! Telemetry must never be able to change a result, so the facade is
//! shaped to make that structurally true rather than merely intended:
//!
//! * Every [`Recorder`] method takes `&self` and returns `()` — nothing
//!   an implementation does can flow back into the engine.
//! * This module contains **no clock reads**. `zen2-sim` reports *what*
//!   happened ("case 17's sim phase opened/closed"); a sink stamps
//!   *when* with its own clock (`zen2_obs::clock`, the one file the
//!   `no-wallclock` lint allowlists). Simulated time stays the only
//!   time the engine itself ever touches.
//! * The engine emits the same calls in the same per-thread order
//!   regardless of worker count or shard size; only the interleaving
//!   *across* worker threads (and every timestamp a sink attaches) is
//!   scheduling-dependent. Results are byte-identical with a recorder
//!   attached or not — `tests/observability.rs` asserts it across
//!   worker/shard splits.
//!
//! # Span hierarchy
//!
//! ```text
//! sweep                         one streaming run
//! └── shard                     one workers × shard_size case group
//!     ├── boot                  prototype boot into the LRU cache
//!     ├── pool                  the worker-pool execution of the shard
//!     │   └── case              one case, on its worker thread
//!     │       ├── fork | boot   prototype fork, or a from-scratch boot
//!     │       └── sim           scenario execution (the hot kernel)
//!     ├── reduce                one delivery folded by the caller
//!     └── checkpoint            the shard-boundary callback
//! ```
//!
//! Materialized batches ([`Session::run`](crate::Session::run)) emit the
//! same shape under a single `batch` span instead of `sweep`/`shard`.
//! A failed run aborts mid-span, so sinks must tolerate spans that
//! never close (the bundled sinks all do).
//!
//! Span ids come from one process-wide counter, so they are unique
//! across concurrent sessions sharing a sink but are **not** stable
//! between runs — telemetry identity, never result identity.

use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one span between its open and close calls. Unique within
/// the process; never reused while open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// One attribute value on a span or event. Borrowed, so emitting
/// telemetry never clones engine state; sinks that outlive the call
/// copy what they keep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue<'a> {
    /// An unsigned integer (indices, counts, worker numbers).
    U64(u64),
    /// A float.
    F64(f64),
    /// A string slice (labels).
    Str(&'a str),
    /// A flag.
    Bool(bool),
}

/// One `(key, value)` attribute.
pub type Attr<'a> = (&'static str, AttrValue<'a>);

/// A telemetry sink. All methods are fire-and-forget (`&self` → `()`),
/// and implementations must be `Send + Sync`: `case`-phase calls arrive
/// concurrently from the session's worker threads.
pub trait Recorder: Send + Sync {
    /// A span opened. `parent` is `None` only for root spans
    /// (`sweep`/`batch`); `attrs` are valid for this call only.
    fn span_open(&self, id: SpanId, parent: Option<SpanId>, name: &'static str, attrs: &[Attr<'_>]);

    /// The span closed. Every close matches an earlier open, but an
    /// aborted run may leave opens with no close.
    fn span_close(&self, id: SpanId);

    /// A monotonically accumulating count increased by `delta`
    /// (never called with zero).
    fn counter(&self, name: &'static str, delta: u64);

    /// A point-in-time level (e.g. prototype-cache occupancy).
    fn gauge(&self, name: &'static str, value: f64);

    /// One observation of a distribution (histogram primitive; sinks
    /// aggregate with [`Welford`](crate::stats::Welford) /
    /// [`P2Quantile`](crate::stats::P2Quantile)).
    fn observe(&self, name: &'static str, value: f64);

    /// A structured point event (e.g. [`EVT_SWEEP_TOTAL`]).
    fn event(&self, name: &'static str, attrs: &[Attr<'_>]);
}

/// Root span of one streaming run. Attrs: `first_index`, `workers`,
/// `shard_size`.
pub const SPAN_SWEEP: &str = "sweep";
/// Root span of one materialized batch. Attrs: `cases`.
pub const SPAN_BATCH: &str = "batch";
/// One shard-group of a streaming run. Attrs: `first`, `cases`.
pub const SPAN_SHARD: &str = "shard";
/// The worker-pool execution of one shard/batch. Attrs: `cases`,
/// `workers`.
pub const SPAN_POOL: &str = "pool";
/// One case on its worker thread. Attrs: `index`, `label`, `worker`,
/// `cached`.
pub const SPAN_CASE: &str = "case";
/// A machine boot: either a prototype boot into the cache (attr
/// `prototype: true`, under a `shard`/`batch` span) or a per-case
/// from-scratch boot (under its `case` span).
pub const SPAN_BOOT: &str = "boot";
/// A fork from a cached prototype, under its `case` span.
pub const SPAN_FORK: &str = "fork";
/// Scenario execution — the simulator hot path, under its `case` span.
pub const SPAN_SIM: &str = "sim";
/// One delivery folded by the caller's sink/accumulators. Attrs:
/// `index`.
pub const SPAN_REDUCE: &str = "reduce";
/// The shard-boundary callback (typically a checkpoint save). Attrs:
/// `next`.
pub const SPAN_CHECKPOINT: &str = "checkpoint";

/// Cases that forked a cached prototype.
pub const CTR_CACHE_HIT: &str = "cache.hit";
/// Cases that booted from scratch (no prototype for their config).
pub const CTR_CACHE_MISS: &str = "cache.miss";
/// Prototypes evicted from the LRU cache.
pub const CTR_CACHE_EVICT: &str = "cache.evict";
/// Cases delivered (streaming) or completed (materialized).
pub const CTR_CASES_DONE: &str = "cases.done";

/// Prototype-cache occupancy after each shard's prepare step.
pub const GAUGE_CACHE_LEN: &str = "cache.len";

/// Shard sizes actually pulled (the tail shard is usually short).
pub const OBS_SHARD_CASES: &str = "shard.cases";

/// Announces a run's extent before streaming starts — what a progress
/// sink needs for percentages and ETA. Attrs: `sweep` (label), `total`
/// (full case count), `start` (resume offset; 0 for a fresh run).
pub const EVT_SWEEP_TOTAL: &str = "sweep.total";

/// Process-wide span id allocator (see the module docs on stability).
fn next_span_id() -> SpanId {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    SpanId(NEXT.fetch_add(1, Ordering::Relaxed))
}

/// The borrowed handle the execution paths thread through themselves:
/// a no-op when no recorder is attached, so the instrumented hot paths
/// pay one branch per call site.
#[derive(Clone, Copy)]
pub(crate) struct Obs<'a> {
    rec: Option<&'a dyn Recorder>,
}

impl<'a> Obs<'a> {
    pub(crate) fn new(rec: Option<&'a dyn Recorder>) -> Self {
        Self { rec }
    }

    /// A disabled handle, for exercising instrumented internals in
    /// tests without a recorder.
    #[cfg(test)]
    pub(crate) fn off() -> Self {
        Self { rec: None }
    }

    pub(crate) fn open(
        self,
        parent: Option<SpanId>,
        name: &'static str,
        attrs: &[Attr<'_>],
    ) -> Option<SpanId> {
        let rec = self.rec?;
        let id = next_span_id();
        rec.span_open(id, parent, name, attrs);
        Some(id)
    }

    pub(crate) fn close(self, span: Option<SpanId>) {
        if let (Some(rec), Some(id)) = (self.rec, span) {
            rec.span_close(id);
        }
    }

    pub(crate) fn counter(self, name: &'static str, delta: u64) {
        if let Some(rec) = self.rec.filter(|_| delta > 0) {
            rec.counter(name, delta);
        }
    }

    pub(crate) fn gauge(self, name: &'static str, value: f64) {
        if let Some(rec) = self.rec {
            rec.gauge(name, value);
        }
    }

    pub(crate) fn observe(self, name: &'static str, value: f64) {
        if let Some(rec) = self.rec {
            rec.observe(name, value);
        }
    }

    pub(crate) fn event(self, name: &'static str, attrs: &[Attr<'_>]) {
        if let Some(rec) = self.rec {
            rec.event(name, attrs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_unique_and_monotonic() {
        let a = next_span_id();
        let b = next_span_id();
        assert!(b.0 > a.0);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::off();
        let span = obs.open(None, SPAN_SWEEP, &[("workers", AttrValue::U64(4))]);
        assert_eq!(span, None);
        obs.close(span);
        obs.counter(CTR_CASES_DONE, 1);
        obs.gauge(GAUGE_CACHE_LEN, 2.0);
        obs.observe(OBS_SHARD_CASES, 64.0);
        obs.event(EVT_SWEEP_TOTAL, &[("total", AttrValue::U64(10))]);
    }
}
