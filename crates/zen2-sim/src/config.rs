//! Simulation configuration: the machine preset plus ablation switches.

use crate::time::{Ns, MICROSECOND, MILLISECOND};
use zen2_mem::{DramFreq, DramLatencyModel, IodPstate, L3LatencyModel, StreamBandwidthModel};
use zen2_msr::PstateTable;
use zen2_power::SystemPowerParams;
use zen2_rapl::RaplModel;
use zen2_topology::Topology;

/// SMU timing behavior (Section V-B calibration).
#[derive(Debug, Clone, PartialEq)]
pub struct SmuParams {
    /// Period of the frequency-update slots (1 ms on Rome vs 500 µs on the
    /// Intel parts the paper compares against).
    pub slot_period_ns: Ns,
    /// Ramp duration for a granted frequency increase.
    pub ramp_up_ns: Ns,
    /// Ramp duration for a granted frequency decrease.
    pub ramp_down_ns: Ns,
    /// Ramp duration for a fast-path decrease (previous transition not yet
    /// settled; Section V-B's "down to 160 µs").
    pub fast_ramp_down_ns: Ns,
    /// Latency of an instantaneous fast-path increase ("some transitions
    /// are executed instantaneously (1 µs delay)").
    pub fast_up_ns: Ns,
    /// How long a completed transition keeps its state latched; returning
    /// within this window enables the fast paths ("the effect disappears
    /// with random wait times of at least 5 ms").
    pub settle_window_ns: Ns,
    /// Maximum voltage difference for which the fast path is electrically
    /// possible — V(2.5)−V(2.2) qualifies, V(2.2)−V(1.5) does not, which
    /// is why the paper saw the anomaly only between 2.2 and 2.5 GHz.
    pub fast_path_max_dv: f64,
    /// Enables the lazy-settle fast path at all (ablation switch).
    pub fast_path_enabled: bool,
}

impl Default for SmuParams {
    fn default() -> Self {
        Self {
            slot_period_ns: MILLISECOND,
            ramp_up_ns: 360 * MICROSECOND,
            ramp_down_ns: 390 * MICROSECOND,
            fast_ramp_down_ns: 160 * MICROSECOND,
            fast_up_ns: MICROSECOND,
            settle_window_ns: 5 * MILLISECOND,
            fast_path_max_dv: 0.06,
            fast_path_enabled: true,
        }
    }
}

/// C-state timing behavior (Fig. 8 calibration).
#[derive(Debug, Clone, PartialEq)]
pub struct CstateParams {
    /// Core cycles to return from C1 (clock ungating + pipeline restart):
    /// ~1 µs at 2.5 GHz, ~1.5 µs at 1.5 GHz.
    pub c1_exit_cycles: f64,
    /// Fixed time to power-ungate a core leaving C2.
    pub c2_ungate_ns: Ns,
    /// Core cycles of state restore after the C2 ungate.
    pub c2_exit_cycles: f64,
    /// Extra latency when caller and callee sit on different sockets
    /// ("transition times for remote configurations only add a small
    /// overhead (~1 µs)").
    pub remote_extra_ns: Ns,
    /// Latency the ACPI tables report to the OS for C1 (1 µs on the test
    /// system).
    pub acpi_reported_c1_ns: Ns,
    /// Latency the ACPI tables report for C2 (400 µs — far above the
    /// 20-25 µs the paper measures).
    pub acpi_reported_c2_ns: Ns,
    /// Probability that a wakeup sample is perturbed by the measurement
    /// itself (the outliers visible in Fig. 8).
    pub outlier_probability: f64,
    /// Scale of outlier perturbation in nanoseconds.
    pub outlier_scale_ns: f64,
}

impl Default for CstateParams {
    fn default() -> Self {
        Self {
            c1_exit_cycles: 2_500.0,
            c2_ungate_ns: 12 * MICROSECOND,
            c2_exit_cycles: 20_000.0,
            remote_extra_ns: MICROSECOND,
            acpi_reported_c1_ns: MICROSECOND,
            acpi_reported_c2_ns: 400 * MICROSECOND,
            outlier_probability: 0.015,
            outlier_scale_ns: 4_000.0,
        }
    }
}

/// OS-side behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct OsParams {
    /// Cycles per second an "idle" hardware thread still burns on timer
    /// interrupts — the paper observes "less than 60 000 cycle/s".
    pub idle_wake_cycles_per_s: f64,
    /// Offlined threads park in C1 rather than the deepest state (the
    /// Section VI-B anomaly; ablation switch).
    pub offline_parks_in_c1: bool,
}

impl Default for OsParams {
    fn default() -> Self {
        Self { idle_wake_cycles_per_s: 50_000.0, offline_parks_in_c1: true }
    }
}

/// Controller (PPT/EDC) behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerParams {
    /// Whether the telemetry throttle loop runs at all (ablation switch).
    pub enabled: bool,
    /// Frequency step per slot, in MHz (Precision-Boost granularity).
    pub step_mhz: u32,
    /// Hysteresis band below the PPT target within which the cap holds.
    pub deadband_w: f64,
    /// Maximum boost frequency with Core Performance Boost enabled (MHz);
    /// `None` disables boost (the paper's default configuration).
    pub boost_max_mhz: Option<u32>,
}

impl Default for ControllerParams {
    fn default() -> Self {
        // The deadband must cover the estimate change of one 25 MHz step
        // (~2.5 W under full load) or the loop dithers around the target.
        Self { enabled: true, step_mhz: 25, deadband_w: 3.0, boost_max_mhz: None }
    }
}

/// Complete simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Machine shape.
    pub topology: Topology,
    /// Core P-state table.
    pub pstates: PstateTable,
    /// BIOS I/O-die P-state selection.
    pub iod_pstate: IodPstate,
    /// BIOS DRAM clock selection.
    pub dram: DramFreq,
    /// True-power models.
    pub power: SystemPowerParams,
    /// The SMU's internal power model (also the RAPL counters' source).
    pub rapl: RaplModel,
    /// Memory latency model.
    pub dram_latency: DramLatencyModel,
    /// L3 latency model.
    pub l3_latency: L3LatencyModel,
    /// STREAM bandwidth model.
    pub bandwidth: StreamBandwidthModel,
    /// SMU timing.
    pub smu: SmuParams,
    /// C-state timing.
    pub cstate: CstateParams,
    /// OS behavior.
    pub os: OsParams,
    /// Throttle-controller behavior.
    pub controller: ControllerParams,
    /// CCX clock coupling on/off (ablation switch; off = every core gets
    /// exactly its requested frequency).
    pub ccx_coupling: bool,
    /// Package-C6 criterion is global across sockets (the paper's
    /// observation) vs per-package (ablation switch).
    pub global_package_c6: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::epyc_7502_2s()
    }
}

impl SimConfig {
    /// The paper's test system.
    pub fn epyc_7502_2s() -> Self {
        Self {
            topology: Topology::epyc_7502_2s(),
            pstates: PstateTable::epyc_7502(),
            iod_pstate: IodPstate::Auto,
            dram: DramFreq::Mhz1467,
            power: SystemPowerParams::epyc_7502_2s(),
            rapl: RaplModel::zen2(),
            dram_latency: DramLatencyModel::zen2(),
            l3_latency: L3LatencyModel::default(),
            bandwidth: StreamBandwidthModel::zen2(),
            smu: SmuParams::default(),
            cstate: CstateParams::default(),
            os: OsParams::default(),
            controller: ControllerParams::default(),
            ccx_coupling: true,
            global_package_c6: true,
        }
    }

    /// A single-socket variant for cheaper sweeps.
    pub fn epyc_7502_1s() -> Self {
        Self { topology: Topology::epyc_7502_1s(), ..Self::epyc_7502_2s() }
    }

    /// A single-socket 64-core EPYC 7742 for the paper's future-work
    /// prediction: "we expect a more severe impact, since the ratio of
    /// compute to I/O resources is higher".
    pub fn epyc_7742_1s() -> Self {
        Self {
            topology: Topology::epyc_7742_1s(),
            pstates: zen2_msr::PstateTable::epyc_7742(),
            power: SystemPowerParams::epyc_7742_1s(),
            ..Self::epyc_7502_2s()
        }
    }

    /// Nominal (P0) frequency in MHz.
    pub fn nominal_mhz(&self) -> u32 {
        self.pstates.frequencies_mhz()[0]
    }

    /// Minimum defined frequency in MHz.
    pub fn min_mhz(&self) -> u32 {
        *self.pstates.frequencies_mhz().last().expect("table is non-empty")
    }

    /// Voltage for a frequency in MHz.
    pub fn voltage_for_mhz(&self, mhz: u32) -> f64 {
        self.power.vf.voltage(mhz as f64 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_shape() {
        let c = SimConfig::epyc_7502_2s();
        assert_eq!(c.topology.num_threads(), 128);
        assert_eq!(c.nominal_mhz(), 2500);
        assert_eq!(c.min_mhz(), 1500);
        assert!(c.ccx_coupling && c.global_package_c6);
        assert!(c.controller.boost_max_mhz.is_none(), "paper runs with boost disabled");
    }

    #[test]
    fn fast_path_voltage_window_separates_pairs() {
        let c = SimConfig::epyc_7502_2s();
        let dv_25_22 = (c.voltage_for_mhz(2500) - c.voltage_for_mhz(2200)).abs();
        let dv_22_15 = (c.voltage_for_mhz(2200) - c.voltage_for_mhz(1500)).abs();
        assert!(dv_25_22 <= c.smu.fast_path_max_dv, "2.5<->2.2 GHz must be fast-path capable");
        assert!(dv_22_15 > c.smu.fast_path_max_dv, "2.2<->1.5 GHz must not be");
    }

    #[test]
    fn smu_defaults_match_paper_numbers() {
        let s = SmuParams::default();
        assert_eq!(s.slot_period_ns, 1_000_000);
        assert_eq!(s.ramp_down_ns, 390_000);
        assert_eq!(s.ramp_up_ns, 360_000);
        assert_eq!(s.settle_window_ns, 5_000_000);
    }

    #[test]
    fn cstate_defaults_match_fig8() {
        let c = CstateParams::default();
        // C1 at 2.5 GHz: 2500 cycles = 1 us.
        assert!((c.c1_exit_cycles / 2.5e9 - 1.0e-6).abs() < 1e-8);
        // C2 at 2.5 GHz: 12 us + 8 us = 20 us; at 1.5 GHz: ~25.3 us.
        let c2_25 = c.c2_ungate_ns as f64 + c.c2_exit_cycles / 2.5;
        assert!((c2_25 - 20_000.0).abs() < 100.0);
        let c2_15 = c.c2_ungate_ns as f64 + c.c2_exit_cycles / 1.5;
        assert!(c2_15 > 24_000.0 && c2_15 < 26_000.0);
    }
}
