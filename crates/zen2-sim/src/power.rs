//! Whole-system power evaluation for one machine state.
//!
//! Given a snapshot of thread states, workloads and clocks, computes the
//! true DC/AC power (what the LMG670 sees) and the SMU's estimated powers
//! (what RAPL reports and the PPT loop regulates), plus DRAM traffic.
//! The simulator calls this at every state change; power is constant
//! between changes, so energy integration is exact.

use crate::config::SimConfig;
use crate::cstate::{classify_core, CoreIdleClass, ThreadState};
use zen2_isa::{KernelClass, OperandWeight, SmtMode};
use zen2_mem::ClockPlan;

/// A full power evaluation of one machine state.
#[derive(Debug, Clone)]
pub struct PowerBreakdown {
    /// True DC power per core (active, clock-gate residual, or 0).
    pub core_true_w: Vec<f64>,
    /// SMU-estimated power per core.
    pub core_est_w: Vec<f64>,
    /// True package power (base + cores, with leakage feedback).
    pub pkg_true_w: Vec<f64>,
    /// SMU-estimated package power.
    pub pkg_est_w: Vec<f64>,
    /// Whether each package is awake (out of PC6).
    pub pkg_awake: Vec<bool>,
    /// Total DRAM traffic in GB/s after per-CCD capping.
    pub dram_traffic_gbs: f64,
    /// DIMM power.
    pub dram_w: f64,
    /// Total DC power (packages + DRAM + platform).
    pub dc_w: f64,
    /// Wall (AC) power.
    pub ac_w: f64,
}

/// Inputs that vary at runtime (everything else comes from [`SimConfig`]).
pub struct MachineState<'a> {
    /// Scheduling state per hardware thread.
    pub thread_states: &'a [ThreadState],
    /// Workload per thread (`None` while idle).
    pub workloads: &'a [Option<(KernelClass, OperandWeight)>],
    /// Effective (post-coupling) frequency per core, GHz.
    pub core_eff_ghz: &'a [f64],
    /// Supply voltage per core.
    pub core_voltage: &'a [f64],
    /// Die temperature per package, °C.
    pub die_temp_c: &'a [f64],
    /// Slow estimate-noise per core (resampled on workload changes).
    pub est_noise_w: &'a [f64],
}

/// Evaluates the power of a machine state.
pub fn evaluate(cfg: &SimConfig, state: &MachineState<'_>) -> PowerBreakdown {
    let topo = &cfg.topology;
    let kernels = zen2_isa::WorkloadSet::paper();
    let num_cores = topo.num_cores();
    let num_pkgs = topo.num_sockets();
    let tpc = topo.threads_per_core();

    // Global package-C6 criterion (or per-package ablation).
    let offline_c1 = cfg.os.offline_parks_in_c1;
    let mut pkg_awake = vec![false; num_pkgs];
    if cfg.global_package_c6 {
        let any_blocker = state.thread_states.iter().any(|t| !t.allows_package_c6(offline_c1));
        for awake in pkg_awake.iter_mut() {
            *awake = any_blocker;
        }
    } else {
        for (pkg, awake) in pkg_awake.iter_mut().enumerate() {
            let base = pkg * topo.cores_per_socket() * tpc;
            let end = base + topo.cores_per_socket() * tpc;
            *awake =
                state.thread_states[base..end].iter().any(|t| !t.allows_package_c6(offline_c1));
        }
    }

    let mut core_true_w = vec![0.0; num_cores];
    let mut core_est_w = vec![0.0; num_cores];
    let mut ccd_demand_gbs = vec![0.0; topo.num_ccds()];

    for core_idx in 0..num_cores {
        let core = zen2_topology::CoreId::from_index(core_idx);
        let pkg = topo.socket_of_core(core).index();
        if !pkg_awake[pkg] {
            continue;
        }
        let t0 = core_idx * tpc;
        let threads = &state.thread_states[t0..t0 + tpc];
        let die_c = state.die_temp_c[pkg];
        match classify_core(threads, offline_c1) {
            CoreIdleClass::Active { active_threads } => {
                let f = state.core_eff_ghz[core_idx];
                let v = state.core_voltage[core_idx];
                let smt = SmtMode::from_active(active_threads);
                // The kernel/weight of the first active thread drives the
                // core model; mixed-kernel cores take the busier kernel
                // (experiments never mix kernels within a core).
                let (class, weight) = (0..tpc)
                    .filter(|&i| threads[i].is_active())
                    .filter_map(|i| state.workloads[t0 + i])
                    .next()
                    .unwrap_or((KernelClass::Idle, OperandWeight::HALF));
                let kernel = kernels.kernel(class);
                core_true_w[core_idx] = cfg.power.core.active_power_w(kernel, smt, f, v, weight);
                core_est_w[core_idx] = cfg.rapl.core_estimate_w(kernel, smt, f, v, die_c)
                    + state.est_noise_w[core_idx];
                let ccd = topo.ccd_of_core(core).index();
                // zen2-lint: allow(float-order) — accumulates in ascending core-index order, fixed by the topology
                ccd_demand_gbs[ccd] += kernel.dram_demand_bytes_per_s(smt, f * 1e9) / 1e9;
            }
            CoreIdleClass::ClockGated => {
                core_true_w[core_idx] = cfg.power.core.c1_power_w();
                core_est_w[core_idx] = cfg.rapl.idle_core_estimate_w(die_c);
            }
            CoreIdleClass::PowerGated => {
                core_true_w[core_idx] = cfg.power.core.c2_power_w();
                core_est_w[core_idx] = cfg.rapl.idle_core_estimate_w(die_c);
            }
        }
    }

    // Cap per-CCD DRAM demand at the fabric/DRAM capacity.
    let plan = ClockPlan::resolve(cfg.iod_pstate, cfg.dram);
    let ccd_cap = cfg.bandwidth.link_cap_gbs(&plan).min(cfg.bandwidth.dram_cap_gbs(&plan));
    // zen2-lint: allow(float-order) — one pass in ascending CCD-index order, fixed by the topology
    let dram_traffic_gbs: f64 = ccd_demand_gbs.iter().map(|&d| d.min(ccd_cap)).sum();

    let any_awake = pkg_awake.iter().any(|&a| a);
    let dram_w = if any_awake {
        cfg.power.dram.power_w(dram_traffic_gbs)
    } else {
        cfg.power.dram.self_refresh_w()
    };

    let mut pkg_true_w = vec![0.0; num_pkgs];
    let mut pkg_est_w = vec![0.0; num_pkgs];
    for pkg in 0..num_pkgs {
        let cores = pkg * topo.cores_per_socket()..(pkg + 1) * topo.cores_per_socket();
        // zen2-lint: allow(float-order) — one pass in ascending core-index order, fixed by the topology
        let cores_true: f64 = core_true_w[cores.clone()].iter().sum();
        // zen2-lint: allow(float-order) — one pass in ascending core-index order, fixed by the topology
        let cores_est: f64 = core_est_w[cores].iter().sum();
        if pkg_awake[pkg] {
            let base = cfg.power.package.awake_base_w(cfg.iod_pstate, cfg.dram);
            let leak = cfg.power.leakage.multiplier(state.die_temp_c[pkg]);
            pkg_true_w[pkg] = (base + cores_true) * leak;
        } else {
            pkg_true_w[pkg] = cfg.power.package.sleeping_w();
        }
        pkg_est_w[pkg] = cfg.rapl.package_estimate_w(cores_est, pkg_awake[pkg]);
    }

    // zen2-lint: allow(float-order) — one pass in ascending package-index order, fixed by the topology
    let dc_w = pkg_true_w.iter().sum::<f64>() + dram_w + cfg.power.platform_dc_w;
    let ac_w = cfg.power.psu.ac_from_dc(dc_w);

    PowerBreakdown {
        core_true_w,
        core_est_w,
        pkg_true_w,
        pkg_est_w,
        pkg_awake,
        dram_traffic_gbs,
        dram_w,
        dc_w,
        ac_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_state(
        cfg: &SimConfig,
    ) -> (Vec<ThreadState>, Vec<Option<(KernelClass, OperandWeight)>>) {
        let n = cfg.topology.num_threads();
        (vec![ThreadState::C2; n], vec![None; n])
    }

    fn eval_with(
        cfg: &SimConfig,
        threads: &[ThreadState],
        workloads: &[Option<(KernelClass, OperandWeight)>],
    ) -> PowerBreakdown {
        let cores = cfg.topology.num_cores();
        let pkgs = cfg.topology.num_sockets();
        let state = MachineState {
            thread_states: threads,
            workloads,
            core_eff_ghz: &vec![2.5; cores],
            core_voltage: &vec![1.0; cores],
            die_temp_c: &vec![68.0; pkgs],
            est_noise_w: &vec![0.0; cores],
        };
        evaluate(cfg, &state)
    }

    #[test]
    fn all_c2_idles_at_fig7_floor() {
        let cfg = SimConfig::epyc_7502_2s();
        let (threads, workloads) = idle_state(&cfg);
        let b = eval_with(&cfg, &threads, &workloads);
        assert!(!b.pkg_awake[0] && !b.pkg_awake[1]);
        assert!((b.ac_w - 99.1).abs() < 1.5, "all-C2 floor {:.1} W", b.ac_w);
    }

    #[test]
    fn one_c1_thread_costs_the_package_wake_adder() {
        let cfg = SimConfig::epyc_7502_2s();
        let (mut threads, workloads) = idle_state(&cfg);
        threads[0] = ThreadState::C1;
        let b = eval_with(&cfg, &threads, &workloads);
        assert!(b.pkg_awake[0] && b.pkg_awake[1], "global criterion wakes both");
        assert!((b.ac_w - 180.3).abs() < 2.0, "one-C1 level {:.1} W", b.ac_w);
    }

    #[test]
    fn additional_c1_cores_cost_90_milliwatts() {
        let cfg = SimConfig::epyc_7502_2s();
        let (mut threads, workloads) = idle_state(&cfg);
        threads[0] = ThreadState::C1;
        let one = eval_with(&cfg, &threads, &workloads);
        threads[2] = ThreadState::C1; // second core's first thread
        let two = eval_with(&cfg, &threads, &workloads);
        let delta = two.ac_w - one.ac_w;
        assert!((delta - 0.09).abs() < 0.01, "per-C1-core delta {delta:.3} W");
        // The sibling thread of an already-C1 core adds nothing.
        threads[1] = ThreadState::C1;
        let sib = eval_with(&cfg, &threads, &workloads);
        assert!((sib.ac_w - two.ac_w).abs() < 1e-9);
    }

    #[test]
    fn offline_anomaly_holds_power_at_c1_level() {
        let cfg = SimConfig::epyc_7502_2s();
        let (mut threads, workloads) = idle_state(&cfg);
        threads[64] = ThreadState::Offline;
        let b = eval_with(&cfg, &threads, &workloads);
        assert!(b.pkg_awake[0], "offline thread blocks PC6");
        assert!((b.ac_w - 180.3).abs() < 2.0, "anomaly level {:.1} W", b.ac_w);

        // Ablation: a kernel that parks offline threads cleanly.
        let mut cfg2 = SimConfig::epyc_7502_2s();
        cfg2.os.offline_parks_in_c1 = false;
        let b2 = eval_with(&cfg2, &threads, &workloads);
        assert!((b2.ac_w - 99.1).abs() < 1.5, "clean parking restores the floor");
    }

    #[test]
    fn active_pause_core_costs_a_third_of_a_watt() {
        let cfg = SimConfig::epyc_7502_2s();
        let (mut threads, mut workloads) = idle_state(&cfg);
        threads[0] = ThreadState::Active;
        workloads[0] = Some((KernelClass::Pause, OperandWeight::HALF));
        let one = eval_with(&cfg, &threads, &workloads);
        threads[2] = ThreadState::Active;
        workloads[2] = Some((KernelClass::Pause, OperandWeight::HALF));
        let two = eval_with(&cfg, &threads, &workloads);
        let delta = two.ac_w - one.ac_w;
        assert!((delta - 0.33).abs() < 0.03, "per-active-core delta {delta:.3} W");
    }

    #[test]
    fn memory_workload_power_is_invisible_to_rapl() {
        let cfg = SimConfig::epyc_7502_2s();
        let (mut threads, mut workloads) = idle_state(&cfg);
        for t in 0..64 {
            threads[t * 2] = ThreadState::Active;
            workloads[t * 2] = Some((KernelClass::MemoryRead, OperandWeight::HALF));
        }
        let b = eval_with(&cfg, &threads, &workloads);
        assert!(b.dram_traffic_gbs > 50.0, "traffic {:.0} GB/s", b.dram_traffic_gbs);
        assert!(b.dram_w > cfg.power.dram.standby_w());
        // The estimate has no DRAM term: package estimate stays core-side.
        let est: f64 = b.pkg_est_w.iter().sum();
        let truth: f64 = b.pkg_true_w.iter().sum::<f64>() + b.dram_w;
        assert!(est < truth * 0.8, "est {est:.0} W vs true-with-dram {truth:.0} W");
    }

    #[test]
    fn dram_demand_is_capped_per_ccd() {
        let cfg = SimConfig::epyc_7502_2s();
        let (mut threads, mut workloads) = idle_state(&cfg);
        for t in 0..128 {
            threads[t] = ThreadState::Active;
            workloads[t] = Some((KernelClass::MemoryRead, OperandWeight::HALF));
        }
        let b = eval_with(&cfg, &threads, &workloads);
        let plan = ClockPlan::resolve(cfg.iod_pstate, cfg.dram);
        let cap = cfg.bandwidth.link_cap_gbs(&plan).min(cfg.bandwidth.dram_cap_gbs(&plan));
        assert!(b.dram_traffic_gbs <= cap * cfg.topology.num_ccds() as f64 + 1e-9);
    }
}
