//! C-state wakeup latency (Section VI-C, Fig. 8).
//!
//! The measured transition time from a `pthread_cond_signal` to the callee
//! running again decomposes into a frequency-dependent part (IPI delivery
//! and pipeline restart, in callee-core cycles) and, for C2, a fixed
//! power-ungate time. Remote (cross-socket) wakeups add ~1 µs. The
//! measurement itself occasionally perturbs a sample — the outliers
//! visible in the paper's box plots.

use crate::config::CstateParams;
use crate::cstate::ThreadState;
use rand::Rng;

/// The deterministic part of a wakeup latency in nanoseconds.
///
/// # Panics
/// Panics when asked for the wakeup latency of a thread that is not
/// sleeping (Active/Offline).
pub fn base_latency_ns(
    params: &CstateParams,
    state: ThreadState,
    callee_ghz: f64,
    remote: bool,
) -> f64 {
    assert!(callee_ghz > 0.0, "callee frequency must be positive");
    let core = match state {
        ThreadState::C1 => params.c1_exit_cycles / callee_ghz,
        ThreadState::C2 => params.c2_ungate_ns as f64 + params.c2_exit_cycles / callee_ghz,
        other => panic!("{other:?} has no wakeup latency"),
    };
    core + if remote { params.remote_extra_ns as f64 } else { 0.0 }
}

/// One measured sample: the deterministic latency plus occasional
/// measurement-induced outliers.
pub fn sample_latency_ns<R: Rng + ?Sized>(
    rng: &mut R,
    params: &CstateParams,
    state: ThreadState,
    callee_ghz: f64,
    remote: bool,
) -> f64 {
    let base = base_latency_ns(params, state, callee_ghz, remote);
    // Sub-cycle alignment jitter of the IPI.
    let jitter = rng.gen_range(0.0..0.05) * base;
    let outlier = if rng.gen_bool(params.outlier_probability) {
        // Exponentially distributed perturbation from the measurement
        // running on the same resources.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -params.outlier_scale_ns * u.ln()
    } else {
        0.0
    };
    base + jitter + outlier
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn params() -> CstateParams {
        CstateParams::default()
    }

    #[test]
    fn c1_latencies_match_fig8a() {
        // ~1 us at 2.2/2.5 GHz, ~1.5 us at 1.5 GHz.
        let p = params();
        let at = |f| base_latency_ns(&p, ThreadState::C1, f, false) / 1000.0;
        assert!((at(2.5) - 1.0).abs() < 0.1, "{} us", at(2.5));
        assert!((at(2.2) - 1.14).abs() < 0.15);
        assert!((at(1.5) - 1.67).abs() < 0.25);
    }

    #[test]
    fn c2_latencies_match_fig8b() {
        // Between 20 and 25 us depending on frequency — far below the
        // 400 us the ACPI tables report.
        let p = params();
        for f in [1.5, 2.2, 2.5] {
            let us = base_latency_ns(&p, ThreadState::C2, f, false) / 1000.0;
            assert!((19.0..=26.0).contains(&us), "{us} us at {f} GHz");
        }
        assert!(
            base_latency_ns(&p, ThreadState::C2, 2.5, false) < p.acpi_reported_c2_ns as f64 / 10.0,
            "measured C2 exit must be far below the ACPI-reported 400 us"
        );
    }

    #[test]
    fn remote_adds_about_a_microsecond() {
        let p = params();
        let local = base_latency_ns(&p, ThreadState::C2, 2.5, false);
        let remote = base_latency_ns(&p, ThreadState::C2, 2.5, true);
        assert!((remote - local - 1000.0).abs() < 1.0);
    }

    #[test]
    fn samples_cluster_near_base_with_rare_outliers() {
        let p = params();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let base = base_latency_ns(&p, ThreadState::C2, 2.5, false);
        let samples: Vec<f64> = (0..400)
            .map(|_| sample_latency_ns(&mut rng, &p, ThreadState::C2, 2.5, false))
            .collect();
        let near = samples.iter().filter(|&&s| s < base * 1.06).count();
        assert!(near > 360, "most samples near base: {near}/400");
        assert!(samples.iter().all(|&s| s >= base));
    }

    #[test]
    #[should_panic(expected = "no wakeup latency")]
    fn active_thread_has_no_wakeup() {
        let _ = base_latency_ns(&params(), ThreadState::Active, 2.5, false);
    }
}
