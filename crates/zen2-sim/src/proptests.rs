//! Property-based tests of the simulator's control machinery and of the
//! exact snapshot round-trips behind checkpoint/resume.

use crate::ccx;
use crate::config::{SimConfig, SmuParams};
use crate::controller::PptController;
use crate::smu::Smu;
use crate::snapshot::Snapshot;
use crate::stats::{
    FreqResidency, GroupedStats, OnlineStats, P2Quantile, TransitionStats, Welford,
};
use crate::time::MILLISECOND;
use crate::trace::{Event, Record};
use proptest::prelude::*;
use zen2_topology::CoreId;

/// Finite `f64`s spanning the whole bit space (exponent extremes,
/// subnormals, awkward fractions — the values a decimal round-trip is
/// most likely to get wrong).
pub(crate) fn arb_finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let v = f64::from_bits(bits);
        // Non-finite values cannot enter accumulators through `push`;
        // fold them back into the finite range deterministically.
        if v.is_finite() {
            v
        } else {
            (bits % 1_000_003) as f64 / 997.0
        }
    })
}

/// Asserts one accumulator's snapshot round-trip is exact: the restored
/// value compares equal, re-snapshots identically, and continues
/// bit-identically on further input.
fn assert_exact_round_trip<S>(original: &S, mut feed: impl FnMut(&mut S))
where
    S: Snapshot + PartialEq + std::fmt::Debug,
{
    let text = original.to_json_text();
    let restored = S::from_json_text(&text).expect("snapshot restores");
    assert_eq!(&restored, original);
    assert_eq!(restored.to_json_text(), text, "re-snapshot must be identical");
    let mut a = S::from_json_text(&text).unwrap();
    let mut b = S::from_json_text(&text).unwrap();
    feed(&mut a);
    feed(&mut b);
    assert_eq!(a, b);
    assert_eq!(a.to_json_text(), b.to_json_text(), "continuation must be bit-identical");
}

fn vf_points() -> Vec<(u32, f64)> {
    vec![(1500, 0.85), (2200, 0.95), (2500, 1.00)]
}

fn arb_freq() -> impl Strategy<Value = u32> {
    prop::sample::select(vec![1500u32, 2200, 2500])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// Whatever request sequence arrives, the SMU eventually applies the
    /// *last* request and leaves nothing pending.
    #[test]
    fn smu_converges_to_last_request(
        requests in prop::collection::vec((arb_freq(), 0u64..3_000_000), 1..20)
    ) {
        let mut smu = Smu::new(SmuParams::default(), 1, 2500, vf_points());
        let mut now = 0u64;
        let mut last = 2500;
        for (freq, gap) in requests {
            now += gap;
            smu.advance(now);
            smu.request(now, 0, freq);
            last = freq;
        }
        // Two slot periods plus the longest ramp always suffice per queued
        // hop; give it generous time.
        now += 50 * MILLISECOND;
        smu.advance(now);
        prop_assert_eq!(smu.core(0).applied_mhz(), last);
        prop_assert!(smu.core(0).pending().is_none());
    }

    /// Transition delays never exceed slot + ramp, and fast-path delays
    /// only occur within the settle window.
    #[test]
    fn smu_delay_bounds(offset in 0u64..1_000_000, freq in arb_freq()) {
        let mut smu = Smu::new(SmuParams::default(), 1, 2500, vf_points());
        // Settle fully first.
        smu.advance(20 * MILLISECOND);
        let t0 = 20 * MILLISECOND + offset;
        if freq == 2500 {
            return Ok(());
        }
        let p = smu.request(t0, 0, freq).expect("transition starts");
        let delay = p.completes_at - t0;
        prop_assert!(delay >= 390_000, "down delay {delay}");
        prop_assert!(delay <= 1_390_000, "down delay {delay}");
        prop_assert!(!p.fast_path, "no latched state after settling");
    }

    /// The CCX divider never raises a core above its request and never
    /// drops it below half the request.
    #[test]
    fn ccx_divider_bounds(requests in prop::collection::vec(800u32..3_000, 4),
                          active in prop::collection::vec(any::<bool>(), 4)) {
        let clocks = ccx::resolve(&requests, &active, true);
        for (i, &req) in requests.iter().enumerate() {
            let eff = clocks.effective_mhz[i];
            prop_assert!(eff <= req as f64 + 1e-9, "core {i}: {eff} > {req}");
            prop_assert!(eff >= req as f64 * 0.5, "core {i}: {eff} far below {req}");
        }
        // The mesh is at least as fast as every active core's effective
        // frequency.
        for (i, &a) in active.iter().enumerate() {
            if a {
                prop_assert!(clocks.mesh_mhz as f64 >= clocks.effective_mhz[i] - 1e-9);
            }
        }
    }

    /// The PPT controller never leaves its [min, max] range and always
    /// converges for any monotone power curve.
    #[test]
    fn controller_stays_in_range(w_per_mhz in 0.01f64..0.2, target in 100.0f64..250.0) {
        let cfg = SimConfig::epyc_7502_2s();
        let mut c = PptController::new(&cfg.controller, 2500, 1500);
        for _ in 0..500 {
            let est = c.cap_mhz() as f64 * w_per_mhz;
            c.step(est, target, c.cap_mhz());
            prop_assert!((1500..=2500).contains(&c.cap_mhz()));
        }
        // At the fixed point the estimate is within one step of the target
        // band, unless pinned at a range end.
        let est = c.cap_mhz() as f64 * w_per_mhz;
        let step_w = 25.0 * w_per_mhz;
        if c.cap_mhz() > 1500 && c.cap_mhz() < 2500 {
            prop_assert!(est <= target + step_w + 1e-9);
            prop_assert!(est >= target - cfg.controller.deadband_w - step_w - 1e-9);
        }
    }

    /// Every scalar-stream accumulator's snapshot restores the exact
    /// state: equal, re-snapshots identically, continues bit-identically.
    #[test]
    fn scalar_snapshots_round_trip(
        xs in prop::collection::vec(arb_finite_f64(), 0..60),
        extra in arb_finite_f64(),
    ) {
        let mut welford = Welford::new();
        let mut online = OnlineStats::new();
        let mut p2 = P2Quantile::new(0.37);
        for &x in &xs {
            welford.push(x);
            online.push(x);
            p2.push(x);
        }
        assert_exact_round_trip(&welford, |w| w.push(extra));
        assert_exact_round_trip(&online, |o| o.push(extra));
        assert_exact_round_trip(&p2, |q| q.push(extra));
    }

    /// Trace-reduction accumulators round-trip exactly for arbitrary
    /// request/apply record streams.
    #[test]
    fn trace_snapshots_round_trip(
        events in prop::collection::vec(
            (any::<bool>(), 0u64..5_000_000, prop::sample::select(vec![1500u32, 2200, 2500])),
            0..40,
        ),
    ) {
        let mut at = 0;
        let records: Vec<Record> = events
            .into_iter()
            .map(|(apply, gap, mhz)| {
                at += gap;
                let event = if apply {
                    Event::FreqApplied { core: CoreId(0), mhz, fast_path: false }
                } else {
                    Event::FreqRequested { core: CoreId(0), target_mhz: mhz }
                };
                Record { at_ns: at, event }
            })
            .collect();
        let window = (records.first().map_or(0, |r| r.at_ns), at + 1);

        let mut residency = FreqResidency::new();
        residency.observe(&records, window.0, window.1);
        let mut transitions = TransitionStats::new();
        transitions.observe(&records);

        assert_exact_round_trip(&residency, |r| r.observe(&records, window.0, window.1));
        assert_exact_round_trip(&transitions, |t| t.observe(&records));
    }

    /// Grouped reducers round-trip exactly for any subset of touched
    /// cells, and restored reducers keep routing case indices the same.
    #[test]
    fn grouped_snapshots_round_trip(
        touches in prop::collection::vec((0usize..12, arb_finite_f64()), 0..40),
        extra in 0usize..12,
    ) {
        let sweep = crate::sweep::Sweep::new("prop", SimConfig::epyc_7502_2s())
            .axis(crate::sweep::Axis::param("a", [0.0, 1.0, 2.0]))
            .axis(crate::sweep::Axis::param("b", [0.0, 1.0, 2.0, 3.0]));
        let mut grouped: GroupedStats<OnlineStats> = GroupedStats::new(&sweep, &["a"]);
        for &(case, x) in &touches {
            grouped.entry(case).push(x);
        }
        assert_exact_round_trip(&grouped, |g| g.entry(extra).push(0.5));
    }
}
