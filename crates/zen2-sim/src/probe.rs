//! Declarative observation: probes, windows, and typed measurements.
//!
//! A [`Probe`] names a physical quantity; a [`Window`] names when to look.
//! The scenario engine evaluates every probe while it advances the
//! machine, so one pass over simulated time yields every observation a
//! [`Run`] needs — replacing the imperative
//! `run_for_secs` / `measure_*` call sequences the experiment modules
//! used to hand-roll.
//!
//! All windows are *scenario-relative*: time 0 is the instant the
//! scenario starts executing, which for [`Session`](crate::Session) runs
//! is a freshly booted machine.

use crate::perf::ThreadCounters;
use crate::system::System;
use crate::time::{to_secs, Ns, SECOND};
use crate::trace::{Event, Record};
use serde::Serialize;
use zen2_power::MeterSample;
use zen2_rapl::RaplReader;
use zen2_topology::{CoreId, SocketId, ThreadId};

/// When a probe observes: a `[from, to]` span, or an instant (`from ==
/// to`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Window {
    /// Window start, ns from scenario start.
    pub from: Ns,
    /// Window end, ns from scenario start.
    pub to: Ns,
}

impl Window {
    /// A span window over `[from, to]` nanoseconds.
    pub fn span(from: Ns, to: Ns) -> Self {
        Self { from, to }
    }

    /// A span window over `[from, to]` seconds.
    pub fn span_secs(from: f64, to: f64) -> Self {
        Self { from: crate::time::from_secs(from), to: crate::time::from_secs(to) }
    }

    /// An instantaneous window at `t` nanoseconds.
    pub fn at(t: Ns) -> Self {
        Self { from: t, to: t }
    }

    /// An instantaneous window at `t` seconds.
    pub fn at_secs(t: f64) -> Self {
        let t = crate::time::from_secs(t);
        Self { from: t, to: t }
    }

    /// Whether this is an instantaneous window.
    pub fn is_instant(&self) -> bool {
        self.from == self.to
    }

    /// Window length in seconds.
    pub fn secs(&self) -> f64 {
        to_secs(self.to - self.from)
    }
}

/// An observable quantity of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Probe {
    /// True mean AC (wall) power over the window, from the power trace —
    /// no instrument noise. Span probe.
    AcTrueMeanW,
    /// Externally measured mean AC power: LMG670 samples over the window,
    /// averaged over the inner 80 % (the paper's 10 s / inner-8 s
    /// methodology). Span probe.
    AcMeteredW,
    /// The raw LMG670 sample stream over the window. Span probe.
    MeterSamples,
    /// Mean RAPL power as software computes it: the MSR energy counters
    /// polled at 100 ms over the window, reported as `(package sum, core
    /// sum)` watts. Span probe.
    RaplW,
    /// Performance-counter delta of one hardware thread over the window.
    /// Span probe.
    CounterDelta(ThreadId),
    /// Performance-counter snapshots of one hardware thread at `every`
    /// intervals across the window (first snapshot at the window start).
    /// Span probe.
    CounterSeries {
        /// Observed hardware thread.
        thread: ThreadId,
        /// Sampling period, ns.
        every: Ns,
    },
    /// Repeated cond-var wakeup latency samples: every `gap` ns the
    /// `caller` signals the idle `callee` once. Span probe.
    WakeupSamples {
        /// Signalling thread (must be active).
        caller: ThreadId,
        /// Woken thread (must be idle).
        callee: ThreadId,
        /// Number of samples.
        count: usize,
        /// Time between samples, ns.
        gap: Ns,
    },
    /// AC energy consumed over the window, joules. Span probe.
    AcEnergyJ,
    /// Mean RAPL power of one core's domain over the window (the MSR
    /// energy counter polled at 100 ms, like [`Probe::RaplW`] but for a
    /// single core). Span probe.
    RaplCoreW(CoreId),
    /// Tracer events recorded within `[from, to)`, filtered. When a
    /// scenario carries one of these, the engine enables the lo2s-style
    /// tracer for the duration of the run (and disables it again
    /// afterwards), so no explicit `tracing(true)` step is needed. Span
    /// probe.
    TraceEvents(EventFilter),
    /// Effective (post-coupling) frequency of a core, GHz. Instant probe.
    EffectiveGhz(CoreId),
    /// Instantaneous true AC power, W. Instant probe.
    AcPowerW,
    /// Instantaneous true package power of one socket, W. Instant probe.
    PkgTrueW(SocketId),
    /// Pointer-chase L3 hit latency of a reader core under the current
    /// CCX clocks, ns (Fig. 4 benchmark). Instant probe.
    L3LatencyNs(CoreId),
    /// Pointer-chase DRAM latency under the configured I/O-die P-state
    /// and DRAM clock, ns (Fig. 5b benchmark). Instant probe.
    DramLatencyNs,
    /// STREAM-triad bandwidth for this many streaming cores on one CCD,
    /// GB/s (Fig. 5a benchmark). The count must be between 1 and the
    /// machine's core count. Instant probe.
    StreamTriadGbs(u32),
}

impl Probe {
    /// Whether this probe observes an instant rather than a span.
    pub fn is_instant(&self) -> bool {
        matches!(
            self,
            Probe::EffectiveGhz(_)
                | Probe::AcPowerW
                | Probe::PkgTrueW(_)
                | Probe::L3LatencyNs(_)
                | Probe::DramLatencyNs
                | Probe::StreamTriadGbs(_)
        )
    }
}

/// Which recorded tracer events a [`Probe::TraceEvents`] collects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum EventFilter {
    /// Every recorded event.
    All,
    /// DVFS requests and applications of one core.
    Freq(CoreId),
    /// Scheduling-state changes of one thread.
    ThreadState(ThreadId),
    /// PC6 entries/exits of one socket.
    PackageSleep(SocketId),
    /// Throttle-cap movements of one socket.
    CapChanged(SocketId),
}

impl EventFilter {
    /// Whether a recorded event passes this filter.
    pub fn matches(&self, event: &Event) -> bool {
        match (*self, event) {
            (Self::All, _) => true,
            (
                Self::Freq(core),
                Event::FreqRequested { core: c, .. } | Event::FreqApplied { core: c, .. },
            ) => *c == core,
            (Self::ThreadState(thread), Event::ThreadState { thread: t, .. }) => *t == thread,
            (Self::PackageSleep(socket), Event::PackageSleep { socket: s, .. }) => *s == socket,
            (Self::CapChanged(socket), Event::CapChanged { socket: s, .. }) => *s == socket,
            _ => false,
        }
    }
}

/// A labelled probe bound to its observation window.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProbeSpec {
    /// Name the measurement is retrieved by.
    pub label: String,
    /// What to observe.
    pub probe: Probe,
    /// When to observe.
    pub window: Window,
}

impl ProbeSpec {
    /// Scenario-relative times (beyond the window bounds) at which the
    /// engine must pause for this probe.
    pub(crate) fn mid_times(&self) -> Vec<Ns> {
        match self.probe {
            Probe::CounterSeries { every, .. } => {
                // u128: `from + every` can overflow u64 for huge intervals.
                let mut t = self.window.from as u128 + every as u128;
                let mut out = Vec::new();
                while t <= self.window.to as u128 {
                    out.push(t as Ns);
                    t += every as u128;
                }
                out
            }
            Probe::WakeupSamples { count, gap, .. } => {
                (1..=count as u64).map(|k| self.window.from + k * gap).collect()
            }
            Probe::RaplW | Probe::RaplCoreW(_) => {
                let len = self.window.to - self.window.from;
                let steps = rapl_poll_steps(len);
                // u128: `len * k` can exceed u64 for very long windows.
                (1..=steps)
                    .map(|k| self.window.from + (len as u128 * k as u128 / steps as u128) as Ns)
                    .collect()
            }
            _ => Vec::new(),
        }
    }
}

/// RAPL polling cadence shared by the probe engine and the legacy
/// [`System::measure_rapl_w`]: ~100 ms steps, staying far from counter
/// wrap.
pub(crate) fn rapl_poll_steps(len: Ns) -> u64 {
    (to_secs(len) / 0.1).ceil().max(1.0) as u64
}

/// One typed observation result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Measurement {
    /// A power, W.
    Watts(f64),
    /// RAPL package and core rails, W.
    WattsPair {
        /// Package-domain sum over all sockets.
        pkg_w: f64,
        /// Core-domain sum over all cores.
        core_w: f64,
    },
    /// A meter sample stream.
    Samples(Vec<MeterSample>),
    /// Counter snapshots at a window's ends.
    CounterDelta {
        /// Snapshot at the window start.
        begin: ThreadCounters,
        /// Snapshot at the window end.
        end: ThreadCounters,
        /// Window length, s.
        wall_s: f64,
    },
    /// Counter snapshots at regular intervals (first at window start).
    CounterSeries(Vec<ThreadCounters>),
    /// Latency samples, ns.
    DurationsNs(Vec<f64>),
    /// A frequency, GHz.
    Ghz(f64),
    /// An energy, J.
    Joules(f64),
    /// A latency, ns.
    Nanos(f64),
    /// A bandwidth, GB/s.
    GigabytesPerSec(f64),
    /// Recorded tracer events (machine-absolute timestamps).
    Events(Vec<Record>),
}

/// The complete result of executing one `(SimConfig, Scenario, seed)`
/// case: every probe's measurement plus closing machine state.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Run {
    /// The seed the machine was booted with.
    pub seed: u64,
    /// Machine time when the scenario finished, ns.
    pub end_ns: Ns,
    /// Instantaneous true AC power at the end, W.
    pub final_ac_w: f64,
    /// `(label, measurement)` in probe declaration order.
    pub measurements: Vec<(String, Measurement)>,
}

impl Run {
    /// Looks a measurement up by label.
    pub fn get(&self, label: &str) -> &Measurement {
        self.measurements
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, m)| m)
            .unwrap_or_else(|| panic!("no measurement labelled {label:?}"))
    }

    /// A `Watts` measurement by label.
    pub fn watts(&self, label: &str) -> f64 {
        match self.get(label) {
            Measurement::Watts(w) => *w,
            other => panic!("{label:?} is {other:?}, not Watts"),
        }
    }

    /// A `WattsPair` measurement by label.
    pub fn watts_pair(&self, label: &str) -> (f64, f64) {
        match self.get(label) {
            Measurement::WattsPair { pkg_w, core_w } => (*pkg_w, *core_w),
            other => panic!("{label:?} is {other:?}, not WattsPair"),
        }
    }

    /// A `CounterDelta` measurement by label.
    pub fn counter_delta(&self, label: &str) -> (ThreadCounters, ThreadCounters, f64) {
        match self.get(label) {
            Measurement::CounterDelta { begin, end, wall_s } => (*begin, *end, *wall_s),
            other => panic!("{label:?} is {other:?}, not CounterDelta"),
        }
    }

    /// A `CounterSeries` measurement by label.
    pub fn counter_series(&self, label: &str) -> &[ThreadCounters] {
        match self.get(label) {
            Measurement::CounterSeries(s) => s,
            other => panic!("{label:?} is {other:?}, not CounterSeries"),
        }
    }

    /// A `DurationsNs` measurement by label.
    pub fn durations_ns(&self, label: &str) -> &[f64] {
        match self.get(label) {
            Measurement::DurationsNs(d) => d,
            other => panic!("{label:?} is {other:?}, not DurationsNs"),
        }
    }

    /// A `Ghz` measurement by label.
    pub fn ghz(&self, label: &str) -> f64 {
        match self.get(label) {
            Measurement::Ghz(g) => *g,
            other => panic!("{label:?} is {other:?}, not Ghz"),
        }
    }

    /// A `Joules` measurement by label.
    pub fn joules(&self, label: &str) -> f64 {
        match self.get(label) {
            Measurement::Joules(j) => *j,
            other => panic!("{label:?} is {other:?}, not Joules"),
        }
    }

    /// A `Samples` measurement by label.
    pub fn samples(&self, label: &str) -> &[MeterSample] {
        match self.get(label) {
            Measurement::Samples(s) => s,
            other => panic!("{label:?} is {other:?}, not Samples"),
        }
    }

    /// A `Nanos` measurement by label.
    pub fn nanos(&self, label: &str) -> f64 {
        match self.get(label) {
            Measurement::Nanos(n) => *n,
            other => panic!("{label:?} is {other:?}, not Nanos"),
        }
    }

    /// A `GigabytesPerSec` measurement by label.
    pub fn gbs(&self, label: &str) -> f64 {
        match self.get(label) {
            Measurement::GigabytesPerSec(b) => *b,
            other => panic!("{label:?} is {other:?}, not GigabytesPerSec"),
        }
    }

    /// An `Events` measurement by label.
    pub fn events(&self, label: &str) -> &[Record] {
        match self.get(label) {
            Measurement::Events(e) => e,
            other => panic!("{label:?} is {other:?}, not Events"),
        }
    }
}

/// An open RAPL measurement window: reader plus bookkeeping, shared by
/// the probe engine and the legacy `measure_rapl_w` wrapper so both
/// observe counters through the identical MSR path.
pub(crate) struct RaplWindow {
    reader: RaplReader,
    from: Ns,
}

impl RaplWindow {
    /// Opens the window at the machine's current time.
    pub(crate) fn open(sys: &mut System) -> Self {
        sys.sync_rapl_msrs();
        let reader = RaplReader::new(&sys.config().topology, sys.msrs())
            .expect("simulator MSR file is always well-formed");
        Self { reader, from: sys.now_ns() }
    }

    /// Polls the counters at the machine's current time.
    pub(crate) fn poll(&mut self, sys: &mut System) {
        sys.sync_rapl_msrs();
        self.reader.poll(sys.msrs()).expect("simulator MSR file is always well-formed");
    }

    /// Closes the window, returning `(package sum, core sum)` watts.
    pub(crate) fn finish(self, sys: &System) -> (f64, f64) {
        let dt = to_secs(sys.now_ns() - self.from);
        assert!(dt > 0.0, "RAPL window must have positive length");
        (self.reader.package_sum_joules() / dt, self.reader.core_sum_joules() / dt)
    }

    /// Closes the window, returning one core domain's mean power in watts.
    pub(crate) fn finish_core(self, sys: &System, core: CoreId) -> f64 {
        let dt = to_secs(sys.now_ns() - self.from);
        assert!(dt > 0.0, "RAPL window must have positive length");
        self.reader.core_joules(core.index()) / dt
    }
}

/// Sanity: probe windows cannot exceed this many simulated seconds (guards
/// against accidentally huge scenarios; the paper's longest run is 120 s).
pub(crate) const MAX_WINDOW_NS: Ns = 100_000 * SECOND;
