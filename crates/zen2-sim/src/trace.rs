//! Machine event tracing (the `lo2s` role).
//!
//! The paper's group builds its measurements on low-overhead tracing of
//! scheduling and power events (Ilsche et al., "System Monitoring with
//! lo2s"). This module records the simulator's state transitions on a
//! timeline so experiments and debugging sessions can reconstruct *why*
//! a power trace looks the way it does: who requested which frequency
//! when, when the SMU granted it, when packages fell into or out of deep
//! sleep, and when the throttle controller moved its cap.

use crate::time::Ns;
use serde::Serialize;
use zen2_topology::{CoreId, SocketId, ThreadId};

/// One recorded machine event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Event {
    /// A DVFS request was submitted for a core.
    FreqRequested {
        /// The affected core.
        core: CoreId,
        /// Requested frequency in MHz.
        target_mhz: u32,
    },
    /// A DVFS transition completed and the new frequency applies.
    FreqApplied {
        /// The affected core.
        core: CoreId,
        /// The now-active frequency in MHz.
        mhz: u32,
        /// Whether the §V-B fast path was used.
        fast_path: bool,
    },
    /// A thread changed scheduling state (C0/C1/C2/offline).
    ThreadState {
        /// The affected thread.
        thread: ThreadId,
        /// Human-readable state label.
        state: &'static str,
    },
    /// A package entered or left deep sleep (PC6).
    PackageSleep {
        /// The affected socket.
        socket: SocketId,
        /// `true` when entering PC6.
        asleep: bool,
    },
    /// The PPT controller moved a package's frequency cap.
    CapChanged {
        /// The affected socket.
        socket: SocketId,
        /// New cap in MHz.
        cap_mhz: u32,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Record {
    /// Simulation time of the event.
    pub at_ns: Ns,
    /// The event.
    pub event: Event,
}

/// An append-only event recorder with query helpers.
#[derive(Debug, Default, Clone)]
pub struct Tracer {
    enabled: bool,
    records: Vec<Record>,
}

impl Tracer {
    /// Creates a disabled tracer (zero overhead until enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables recording. Disabling keeps existing records.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op while disabled).
    pub fn record(&mut self, at_ns: Ns, event: Event) {
        if self.enabled {
            self.records.push(Record { at_ns, event });
        }
    }

    /// All records in chronological order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Clears the recording buffer.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Records within a time window.
    pub fn in_window(&self, from_ns: Ns, to_ns: Ns) -> impl Iterator<Item = &Record> {
        self.records.iter().filter(move |r| r.at_ns >= from_ns && r.at_ns < to_ns)
    }

    /// The applied-frequency timeline of one core: `(time, MHz)` pairs.
    pub fn frequency_timeline(&self, core: CoreId) -> Vec<(Ns, u32)> {
        self.records
            .iter()
            .filter_map(|r| match r.event {
                Event::FreqApplied { core: c, mhz, .. } if c == core => Some((r.at_ns, mhz)),
                _ => None,
            })
            .collect()
    }

    /// Time spent asleep by a socket within `[from, to)`, assuming the
    /// socket was awake at `from` unless a sleep record says otherwise.
    pub fn asleep_ns(&self, socket: SocketId, from_ns: Ns, to_ns: Ns) -> Ns {
        let mut asleep_since: Option<Ns> = None;
        // Establish the state at the window start.
        for r in &self.records {
            if r.at_ns >= from_ns {
                break;
            }
            if let Event::PackageSleep { socket: s, asleep } = r.event {
                if s == socket {
                    asleep_since = if asleep { Some(from_ns) } else { None };
                }
            }
        }
        let mut total = 0;
        for r in self.in_window(from_ns, to_ns) {
            if let Event::PackageSleep { socket: s, asleep } = r.event {
                if s != socket {
                    continue;
                }
                match (asleep, asleep_since) {
                    (true, None) => asleep_since = Some(r.at_ns),
                    (false, Some(since)) => {
                        total += r.at_ns - since;
                        asleep_since = None;
                    }
                    _ => {}
                }
            }
        }
        if let Some(since) = asleep_since {
            total += to_ns - since;
        }
        total
    }

    /// Renders the trace as one line per record (lo2s-style text dump).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "{:>12} ns  {:?}", r.at_ns, r.event);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tracer {
        let mut t = Tracer::new();
        t.set_enabled(true);
        t.record(100, Event::FreqRequested { core: CoreId(0), target_mhz: 1500 });
        t.record(1_390_000, Event::FreqApplied { core: CoreId(0), mhz: 1500, fast_path: false });
        t.record(2_000_000, Event::PackageSleep { socket: SocketId(0), asleep: true });
        t.record(5_000_000, Event::PackageSleep { socket: SocketId(0), asleep: false });
        t.record(6_000_000, Event::FreqApplied { core: CoreId(1), mhz: 2200, fast_path: true });
        t
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new();
        t.record(1, Event::CapChanged { socket: SocketId(0), cap_mhz: 2475 });
        assert!(t.records().is_empty());
        t.set_enabled(true);
        t.record(2, Event::CapChanged { socket: SocketId(0), cap_mhz: 2450 });
        assert_eq!(t.records().len(), 1);
    }

    #[test]
    fn frequency_timeline_filters_by_core() {
        let t = sample();
        assert_eq!(t.frequency_timeline(CoreId(0)), vec![(1_390_000, 1500)]);
        assert_eq!(t.frequency_timeline(CoreId(1)), vec![(6_000_000, 2200)]);
        assert!(t.frequency_timeline(CoreId(2)).is_empty());
    }

    #[test]
    fn asleep_accounting() {
        let t = sample();
        // Asleep from 2 ms to 5 ms within [0, 10 ms).
        assert_eq!(t.asleep_ns(SocketId(0), 0, 10_000_000), 3_000_000);
        // Window entirely inside the sleep interval.
        assert_eq!(t.asleep_ns(SocketId(0), 3_000_000, 4_000_000), 1_000_000);
        // Open-ended sleep extends to the window edge.
        let mut t2 = Tracer::new();
        t2.set_enabled(true);
        t2.record(1_000, Event::PackageSleep { socket: SocketId(1), asleep: true });
        assert_eq!(t2.asleep_ns(SocketId(1), 0, 10_000), 9_000);
    }

    #[test]
    fn window_queries_and_render() {
        let t = sample();
        assert_eq!(t.in_window(0, 2_000_000).count(), 2);
        let dump = t.render();
        assert!(dump.contains("FreqApplied"));
        assert!(dump.lines().count() == 5);
    }

    #[test]
    fn clear_empties_the_buffer() {
        let mut t = sample();
        t.clear();
        assert!(t.records().is_empty());
        assert!(t.is_enabled());
    }
}
