//! Statistical helpers implementing the paper's measurement methodology.

/// Sample mean.
pub fn mean(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "mean of an empty sample set");
    // zen2-lint: allow(float-order) — left-to-right pass in the caller's slice order, which is fixed
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Sample standard deviation (n−1 denominator).
pub fn std_dev(samples: &[f64]) -> f64 {
    assert!(samples.len() >= 2, "standard deviation needs at least two samples");
    let m = mean(samples);
    // zen2-lint: allow(float-order) — left-to-right pass in the caller's slice order, which is fixed
    let var = samples.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / (samples.len() - 1) as f64;
    var.sqrt()
}

/// Half-width of the 95 % confidence interval of the mean (normal
/// approximation — the paper validates performance levels "with a
/// confidence interval of 95 %").
pub fn ci95_half_width(samples: &[f64]) -> f64 {
    1.96 * std_dev(samples) / (samples.len() as f64).sqrt()
}

/// Whether a sample set's mean is within the 95 % CI of an expected value.
pub fn validates_against(samples: &[f64], expected: f64) -> bool {
    (mean(samples) - expected).abs() <= ci95_half_width(samples).max(expected * 1e-3)
}

/// A histogram with fixed-width bins, as in Fig. 3 (25 µs bins).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    /// Samples below the range.
    pub underflow: u64,
    /// Samples above the range.
    pub overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "invalid histogram range");
        Self {
            lo,
            width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, v: f64) {
        if v < self.lo {
            self.underflow += 1;
            return;
        }
        let bin = ((v - self.lo) / self.width) as usize;
        if bin >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[bin] += 1;
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Coefficient of variation of the in-range bin counts over a sub-range
    /// of bins — a uniformity check for the Fig. 3 plateau.
    pub fn plateau_cv(&self, from_bin: usize, to_bin: usize) -> f64 {
        let slice: Vec<f64> = self.counts[from_bin..to_bin].iter().map(|&c| c as f64).collect();
        std_dev(&slice) / mean(&slice)
    }
}

/// Empirical cumulative distribution function points (Fig. 10 rendering).
pub fn ecdf(samples: &[f64]) -> Vec<(f64, f64)> {
    assert!(!samples.is_empty(), "ECDF of an empty sample set");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let n = sorted.len() as f64;
    sorted.into_iter().enumerate().map(|(i, v)| (v, (i + 1) as f64 / n)).collect()
}

/// Quantile of a sample set (linear interpolation).
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty() && (0.0..=1.0).contains(&q), "invalid quantile request");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (pos - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&s), 2.5);
        assert!((std_dev(&s) - 1.2909944).abs() < 1e-6);
        assert!(ci95_half_width(&s) > 0.0);
    }

    #[test]
    fn validation_accepts_matching_and_rejects_shifted() {
        let near: Vec<f64> = (0..100).map(|i| 10.0 + 0.01 * ((i % 7) as f64 - 3.0)).collect();
        assert!(validates_against(&near, 10.0));
        assert!(!validates_against(&near, 10.5));
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 100.0, 4);
        for v in [5.0, 30.0, 55.0, 80.0, 99.9] {
            h.add(v);
        }
        assert_eq!(h.counts(), &[1, 1, 1, 2]);
        h.add(-1.0);
        h.add(100.0);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 5);
        assert!((h.bin_center(0) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_plateau_has_low_cv() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10_000 {
            h.add((i % 1000) as f64 / 100.0);
        }
        assert!(h.plateau_cv(0, 10) < 0.01);
    }

    #[test]
    fn ecdf_is_monotone_and_normalized() {
        let points = ecdf(&[3.0, 1.0, 2.0]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0], (1.0, 1.0 / 3.0));
        assert_eq!(points.last().unwrap().1, 1.0);
        for w in points.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn quantiles() {
        let s = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&s, 0.0), 10.0);
        assert_eq!(quantile(&s, 0.5), 30.0);
        assert_eq!(quantile(&s, 1.0), 50.0);
        assert_eq!(quantile(&s, 0.25), 20.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_mean_panics() {
        let _ = mean(&[]);
    }
}
