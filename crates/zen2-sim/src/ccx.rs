//! CCX clock-mesh coupling (Section V-C, Table I, Fig. 4).
//!
//! Within one CCX, the L3 and the clock mesh run at the frequency of the
//! *fastest* core. Cores configured slower are re-derived from the mesh
//! clock through a frequency divider with ⅛-step granularity — the same
//! granularity as the `CpuDfsId` field in the P-state MSRs. Because the
//! divider must round *up* (a core may never exceed its configured
//! frequency), slow cores lose frequency whenever the mesh does not divide
//! evenly:
//!
//! ```text
//! set 2.2 GHz, mesh 2.5 GHz: 2.5/2.2 = 1.136 → divider 1.25 → 2.000 GHz
//! set 1.5 GHz, mesh 2.5 GHz: 2.5/1.5 = 1.667 → divider 1.75 → 1.4286 GHz
//! set 1.5 GHz, mesh 2.2 GHz: 2.2/1.5 = 1.467 → divider 1.50 → 1.4667 GHz
//! ```
//!
//! These are exactly the paper's Table I cells (1.466 / 1.428 / 2.000).

use serde::{Deserialize, Serialize};

/// Divider granularity: eighths, as in the `CpuDfsId` encoding.
pub const DIVIDER_STEPS_PER_UNIT: u32 = 8;

/// Minimum supported L3/mesh frequency in MHz ("L3 frequencies below
/// 400 MHz are not supported by the architecture").
pub const L3_MIN_MHZ: u32 = 400;

/// The resolved clocks of one CCX.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CcxClocks {
    /// The mesh / L3 frequency in MHz.
    pub mesh_mhz: u32,
    /// The effective frequency of each core in the CCX, in MHz, in the
    /// same order as the input requests.
    pub effective_mhz: Vec<f64>,
}

/// Resolves the mesh and effective core frequencies for one CCX.
///
/// `requested_mhz` holds each core's granted DVFS frequency; `active[i]`
/// says whether the core has at least one thread in C0 (only active cores
/// drive the mesh, but every core's effective frequency is reported).
///
/// With `coupling` disabled (ablation), every core simply runs its request.
///
/// # Panics
/// Panics if the slices disagree in length or a request is zero.
pub fn resolve(requested_mhz: &[u32], active: &[bool], coupling: bool) -> CcxClocks {
    assert_eq!(requested_mhz.len(), active.len(), "one activity flag per core");
    assert!(requested_mhz.iter().all(|&f| f > 0), "requests must be positive");

    let mesh_driver =
        requested_mhz.iter().zip(active).filter(|&(_, &a)| a).map(|(&f, _)| f).max().unwrap_or(0);
    let mesh_mhz = mesh_driver.max(L3_MIN_MHZ);

    let effective_mhz = requested_mhz
        .iter()
        .map(|&req| {
            if !coupling || req >= mesh_mhz {
                return req as f64;
            }
            (req as f64).min(divided_frequency(mesh_mhz, req))
        })
        .collect();

    CcxClocks { mesh_mhz, effective_mhz }
}

/// The frequency a core obtains from the mesh clock through the ⅛-step
/// divider, never exceeding its request.
pub fn divided_frequency(mesh_mhz: u32, requested_mhz: u32) -> f64 {
    assert!(requested_mhz > 0 && mesh_mhz > 0);
    if requested_mhz >= mesh_mhz {
        return requested_mhz as f64;
    }
    let steps = DIVIDER_STEPS_PER_UNIT as f64;
    // Smallest divider (in eighths) that brings the mesh clock down to at
    // most the requested frequency.
    let divider_eighths = (mesh_mhz as f64 * steps / requested_mhz as f64).ceil();
    mesh_mhz as f64 * steps / divider_eighths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_cells_are_exact() {
        // (set, others, expected effective GHz from Table I)
        let cases = [
            (1500u32, 2200u32, 1.4667),
            (1500, 2500, 1.4286),
            (2200, 2500, 2.0),
            (1500, 1500, 1.5),
            (2200, 2200, 2.2),
            (2500, 2500, 2.5),
            (2200, 1500, 2.2),
            (2500, 1500, 2.5),
            (2500, 2200, 2.5),
        ];
        for (set, others, expect_ghz) in cases {
            let clocks = resolve(&[set, others, others, others], &[true; 4], true);
            let got = clocks.effective_mhz[0] / 1000.0;
            assert!(
                (got - expect_ghz).abs() < 0.001,
                "set {set} others {others}: {got:.4} GHz vs {expect_ghz}"
            );
        }
    }

    #[test]
    fn mesh_follows_fastest_active_core() {
        let clocks = resolve(&[1500, 2200, 2500, 1500], &[true; 4], true);
        assert_eq!(clocks.mesh_mhz, 2500);
        // An idle 2.5 GHz core does not drive the mesh.
        let clocks = resolve(&[1500, 2200, 2500, 1500], &[true, true, false, true], true);
        assert_eq!(clocks.mesh_mhz, 2200);
    }

    #[test]
    fn all_idle_ccx_floors_at_400mhz() {
        let clocks = resolve(&[1500; 4], &[false; 4], true);
        assert_eq!(clocks.mesh_mhz, L3_MIN_MHZ);
    }

    #[test]
    fn divider_never_exceeds_request() {
        for mesh in [1500u32, 2200, 2500, 3200] {
            for req in [800u32, 1500, 1800, 2200, 2500] {
                let eff = divided_frequency(mesh, req);
                assert!(eff <= req as f64 + 1e-9, "mesh {mesh} req {req} -> {eff}");
                // And never loses more than one divider step.
                if req < mesh {
                    let steps = DIVIDER_STEPS_PER_UNIT as f64;
                    let d = (mesh as f64 * steps / req as f64).ceil();
                    let floor = mesh as f64 * steps / (d + 1.0);
                    assert!(eff > floor, "divider should be tight");
                }
            }
        }
    }

    #[test]
    fn coupling_ablation_gives_exact_requests() {
        let clocks = resolve(&[1500, 2500, 2200, 1500], &[true; 4], false);
        assert_eq!(clocks.effective_mhz, vec![1500.0, 2500.0, 2200.0, 1500.0]);
    }

    #[test]
    fn matched_frequencies_are_untouched() {
        let clocks = resolve(&[2200; 4], &[true; 4], true);
        for eff in clocks.effective_mhz {
            assert_eq!(eff, 2200.0);
        }
    }

    #[test]
    #[should_panic(expected = "one activity flag per core")]
    fn mismatched_slices_are_a_bug() {
        let _ = resolve(&[2500; 4], &[true; 3], true);
    }
}
