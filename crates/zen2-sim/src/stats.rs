//! On-line statistics for streaming sweeps: bounded-size aggregators
//! that reduce arbitrarily many [`Run`](crate::Run)s to summaries.
//!
//! A million-case sweep cannot keep its runs around; these aggregators
//! consume one observation (or one run's trace records) at a time and
//! hold O(1) state:
//!
//! * [`Welford`] — numerically stable mean/standard deviation plus
//!   min/max, via Welford's on-line algorithm.
//! * [`P2Quantile`] — a streaming quantile estimate (Jain & Chlamtac's
//!   P² algorithm, five markers, exact until the sixth observation).
//! * [`OnlineStats`] — the bundle the sweep engine hands out: Welford
//!   plus p50/p95 estimators behind one `push`.
//! * [`FreqResidency`] — time-at-frequency histogram reduced from
//!   [`Probe::TraceEvents`](crate::Probe::TraceEvents) records.
//! * [`TransitionStats`] — DVFS transition counts and request→apply
//!   latency statistics from the same records.
//! * [`GroupedStats`] — any of the above (or any `Default` accumulator),
//!   bucketed by one or more [`Sweep`] axes, so a sink folds a wide grid
//!   into per-frequency / per-config rows.
//!
//! Every aggregator is deterministic in its input order. The streaming
//! session delivers runs in case order regardless of worker count or
//! shard size, so feeding these from a
//! [`Session::run_streaming`](crate::Session::run_streaming) sink gives
//! bit-identical summaries for any parallelism.
//!
//! Every aggregator also implements [`Snapshot`]: its exact state dumps
//! to a JSON tree and restores bit-for-bit, which is what lets a
//! [`Checkpoint`](crate::checkpoint::Checkpoint) persist a half-finished
//! sweep at a shard boundary and resume it later with byte-identical
//! output. `GroupedStats<A>` is snapshottable whenever its accumulator
//! `A` is — including experiment-specific accumulators that implement
//! [`Snapshot`] themselves.

use crate::snapshot::{Json, Snapshot, SnapshotError};
use crate::sweep::Sweep;
use crate::time::Ns;
use crate::trace::{Event, Record};
use std::collections::BTreeMap;

/// Welford's on-line mean and variance, with min/max tracking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one observation.
    pub fn push(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Observations consumed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean.
    ///
    /// # Panics
    /// Panics on an empty accumulator.
    pub fn mean(&self) -> f64 {
        assert!(self.count > 0, "mean of an empty accumulator");
        self.mean
    }

    /// Sample standard deviation (n−1 denominator).
    ///
    /// # Panics
    /// Panics with fewer than two observations.
    pub fn std_dev(&self) -> f64 {
        assert!(self.count >= 2, "standard deviation needs at least two observations");
        (self.m2 / (self.count - 1) as f64).sqrt()
    }

    /// Smallest observation.
    ///
    /// # Panics
    /// Panics on an empty accumulator.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of an empty accumulator");
        self.min
    }

    /// Largest observation.
    ///
    /// # Panics
    /// Panics on an empty accumulator.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of an empty accumulator");
        self.max
    }
}

/// A streaming quantile estimator: the P² algorithm (Jain & Chlamtac,
/// CACM 1985). Five markers, O(1) state, exact for the first five
/// observations and a parabolic-interpolation estimate afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based observation ranks).
    n: [i64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired-position increments per observation.
    dn: [f64; 5],
    /// Initial buffer until five observations have arrived.
    initial: Vec<f64>,
    count: u64,
}

impl P2Quantile {
    /// An estimator for the `p`-quantile, `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
        Self {
            p,
            q: [0.0; 5],
            n: [1, 2, 3, 4, 5],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            initial: Vec::with_capacity(5),
            count: 0,
        }
    }

    /// Consumes one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.initial.push(x);
            if self.count == 5 {
                self.initial.sort_by(f64::total_cmp);
                for (slot, &v) in self.q.iter_mut().zip(&self.initial) {
                    *slot = v;
                }
            }
            return;
        }

        // Locate the cell, extending the extreme markers if needed.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            (0..4).find(|&i| self.q[i] <= x && x < self.q[i + 1]).expect("x within marker span")
        };

        for i in (k + 1)..5 {
            self.n[i] += 1;
        }
        for (np, dn) in self.np.iter_mut().zip(&self.dn) {
            *np += dn;
        }

        // Nudge the three middle markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i] as f64;
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1)
            {
                let d = d.signum() as i64;
                let parabolic = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: i64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        let d = d as f64;
        let above = ((n[i] - n[i - 1]) as f64 + d) * (q[i + 1] - q[i]) / ((n[i + 1] - n[i]) as f64);
        let below = ((n[i + 1] - n[i]) as f64 - d) * (q[i] - q[i - 1]) / ((n[i] - n[i - 1]) as f64);
        q[i] + d / ((n[i + 1] - n[i - 1]) as f64) * (above + below)
    }

    fn linear(&self, i: usize, d: i64) -> f64 {
        let j = (i as i64 + d) as usize;
        self.q[i] + d as f64 * (self.q[j] - self.q[i]) / ((self.n[j] - self.n[i]) as f64)
    }

    /// Observations consumed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The current quantile estimate (exact for ≤ 5 observations).
    ///
    /// # Panics
    /// Panics on an empty estimator.
    pub fn estimate(&self) -> f64 {
        assert!(self.count > 0, "quantile of an empty estimator");
        if self.count <= 5 {
            // Exact: linear interpolation on the sorted buffer.
            let mut sorted = self.initial.clone();
            sorted.sort_by(f64::total_cmp);
            let rank = self.p * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
        }
        self.q[2]
    }
}

/// One observable's complete streaming summary: count, mean, standard
/// deviation, min/max, and p50/p95 estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineStats {
    welford: Welford,
    p50: P2Quantile,
    p95: P2Quantile,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty summary.
    pub fn new() -> Self {
        Self { welford: Welford::new(), p50: P2Quantile::new(0.5), p95: P2Quantile::new(0.95) }
    }

    /// Consumes one observation.
    pub fn push(&mut self, x: f64) {
        self.welford.push(x);
        self.p50.push(x);
        self.p95.push(x);
    }

    /// Observations consumed so far.
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.welford.mean()
    }

    /// Sample standard deviation (n−1 denominator).
    pub fn std_dev(&self) -> f64 {
        self.welford.std_dev()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.welford.min()
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.welford.max()
    }

    /// Streaming median estimate.
    pub fn p50(&self) -> f64 {
        self.p50.estimate()
    }

    /// Streaming 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.p95.estimate()
    }
}

/// A frequency-residency histogram: how long a core spent at each
/// applied frequency, reduced from
/// [`Probe::TraceEvents`](crate::Probe::TraceEvents) records (pair it
/// with [`EventFilter::Freq`](crate::EventFilter::Freq) so the records
/// describe one core). Time before the first `FreqApplied` record in a
/// window has no known frequency and lands in
/// [`unknown_ns`](Self::unknown_ns); calling
/// [`observe`](Self::observe) repeatedly accumulates across runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FreqResidency {
    by_mhz: BTreeMap<u32, Ns>,
    unknown_ns: Ns,
}

impl FreqResidency {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one run's records over the machine-absolute window
    /// `[from_ns, to_ns)`. Records outside the window still establish
    /// the frequency that is current when the window opens.
    pub fn observe(&mut self, records: &[Record], from_ns: Ns, to_ns: Ns) {
        assert!(from_ns <= to_ns, "residency window runs backwards");
        let mut current: Option<u32> = None;
        let mut cursor = from_ns;
        for record in records {
            let Event::FreqApplied { mhz, .. } = record.event else { continue };
            if record.at_ns <= from_ns {
                current = Some(mhz);
                continue;
            }
            let end = record.at_ns.min(to_ns);
            if end > cursor {
                self.credit(current, end - cursor);
                cursor = end;
            }
            if record.at_ns >= to_ns {
                current = Some(mhz);
                break;
            }
            current = Some(mhz);
        }
        if to_ns > cursor {
            self.credit(current, to_ns - cursor);
        }
    }

    fn credit(&mut self, mhz: Option<u32>, ns: Ns) {
        match mhz {
            Some(mhz) => *self.by_mhz.entry(mhz).or_insert(0) += ns,
            None => self.unknown_ns += ns,
        }
    }

    /// Residency per applied frequency, ns, ascending by MHz.
    pub fn residency(&self) -> &BTreeMap<u32, Ns> {
        &self.by_mhz
    }

    /// Time with no applied frequency on record yet, ns.
    pub fn unknown_ns(&self) -> Ns {
        self.unknown_ns
    }

    /// Total accumulated window time, ns (known + unknown).
    pub fn total_ns(&self) -> Ns {
        self.by_mhz.values().sum::<Ns>() + self.unknown_ns
    }

    /// Fraction of the *known* time spent at `mhz` (0 when nothing is
    /// known yet).
    pub fn share(&self, mhz: u32) -> f64 {
        let known = self.total_ns() - self.unknown_ns;
        if known == 0 {
            return 0.0;
        }
        self.by_mhz.get(&mhz).copied().unwrap_or(0) as f64 / known as f64
    }
}

/// DVFS transition statistics reduced from
/// [`Probe::TraceEvents`](crate::Probe::TraceEvents) records: completed
/// request→apply transitions, fast-path count, and streaming latency
/// statistics (ns).
///
/// Pairing generalizes the Fig. 3 recovery: per core, requests queue in
/// order (a repeated request for an already-queued target does not
/// restart its clock — the SMU coalesces it), and an apply matches the
/// earliest queued request for its target, retiring every older request
/// with it. Requests that overlap an in-flight transition (the SMU
/// queues them) therefore still pair with their own later application.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransitionStats {
    completed: u64,
    fast_path: u64,
    latency_ns: OnlineStats,
}

impl TransitionStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one run's records. Requests left pending when the
    /// record stream ends are dropped (the run ended mid-transition).
    pub fn observe(&mut self, records: &[Record]) {
        // Per-core queue of pending requests: (time, target MHz).
        let mut pending: BTreeMap<u32, Vec<(Ns, u32)>> = BTreeMap::new();
        for record in records {
            match record.event {
                Event::FreqRequested { core, target_mhz } => {
                    let queue = pending.entry(core.0).or_default();
                    if queue.iter().all(|&(_, mhz)| mhz != target_mhz) {
                        queue.push((record.at_ns, target_mhz));
                    }
                }
                Event::FreqApplied { core, mhz, fast_path } => {
                    let Some(queue) = pending.get_mut(&core.0) else { continue };
                    // An apply with no matching request (e.g. a settle
                    // transition recorded before the window) pairs with
                    // nothing and leaves the queue untouched.
                    let Some(at) = queue.iter().position(|&(_, target)| target == mhz) else {
                        continue;
                    };
                    let (requested_at, _) = queue[at];
                    queue.drain(..=at);
                    self.completed += 1;
                    if fast_path {
                        self.fast_path += 1;
                    }
                    self.latency_ns.push((record.at_ns - requested_at) as f64);
                }
                _ => {}
            }
        }
    }

    /// Completed request→apply transitions.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Transitions that took a §V-B fast path.
    pub fn fast_path(&self) -> u64 {
        self.fast_path
    }

    /// Streaming latency statistics over completed transitions, ns.
    pub fn latency_ns(&self) -> &OnlineStats {
        &self.latency_ns
    }
}

/// A streaming reducer bucketed by [`Sweep`] axes: one accumulator per
/// combination of the chosen axes' values, so a sink folds a wide grid
/// into per-frequency / per-config rows without ever materializing its
/// runs.
///
/// Construction captures only the grid's *shape* (axis lengths and value
/// labels) from the sweep — no closures, no cases — and
/// [`entry`](Self::entry) routes a streamed case index to its group by
/// the same row-major decode as [`Sweep::axis_indices`]. The accumulator
/// is any `Default` type: one of this module's aggregators, or an
/// experiment-specific struct bundling several of them.
///
/// Rows come back in grid order (the first grouping axis outermost),
/// independent of the order groups were first touched. Because
/// [`Session::run_streaming`](crate::Session::run_streaming) delivers
/// runs in case order for any worker count or shard size, every group's
/// accumulator sees its observations in case order too — grouped
/// summaries are bit-identical for any worker/shard split.
///
/// ```
/// use zen2_sim::stats::{GroupedStats, OnlineStats};
/// use zen2_sim::{Axis, Probe, Scenario, Session, SimConfig, Sweep, Window};
/// use zen2_isa::{KernelClass, OperandWeight};
/// use zen2_topology::ThreadId;
///
/// // 2 load levels × 3 seeds; group the 6 cases by load level.
/// let mut base = Scenario::new();
/// base.probe("ac", Probe::AcPowerW, Window::at(20_000)); // 20 µs: load has landed
/// let mut load = Axis::new("busy_threads");
/// for n in [1u32, 8] {
///     load = load.with(format!("{n}"), move |draft| {
///         let mut at = draft.scenario.at(0);
///         for t in 0..n {
///             at = at.workload(ThreadId(t), KernelClass::BusyWait, OperandWeight::HALF);
///         }
///     });
/// }
/// let sweep = Sweep::new("demo", SimConfig::epyc_7502_2s())
///     .scenario(base)
///     .seed(7)
///     .axis(load)
///     .axis(Axis::param("rep", (0..3).map(f64::from)));
///
/// let mut by_load: GroupedStats<OnlineStats> = GroupedStats::new(&sweep, &["busy_threads"]);
/// let session = Session::new().workers(2).shard_size(2);
/// sweep.stream(&session, |i, run| by_load.entry(i).push(run.watts("ac"))).unwrap();
///
/// assert_eq!(by_load.len(), 2);
/// let rows: Vec<_> = by_load.rows().collect();
/// assert_eq!(rows[0].0, ["1"]);
/// assert_eq!(rows[1].0, ["8"]);
/// assert_eq!(rows[0].1.count(), 3);
/// assert!(rows[0].1.mean() < rows[1].1.mean());
/// assert_eq!(by_load.get(&["8"]).unwrap().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedStats<A> {
    /// Per grouping axis: its name and value labels, in grouping order.
    axes: Vec<(String, Vec<String>)>,
    /// Position of each grouping axis among the sweep's axes.
    positions: Vec<usize>,
    /// Every sweep axis length, for the row-major case-index decode.
    lens: Vec<usize>,
    /// Accumulators keyed by grouping-axis value indices (grid order).
    groups: BTreeMap<Vec<usize>, A>,
}

impl<A> GroupedStats<A> {
    /// A reducer over `sweep`'s grid, grouping by the named axes (in the
    /// order given, which sets the row order: first name outermost).
    ///
    /// # Panics
    /// Panics when `by` is empty, names an axis the sweep does not have,
    /// or names the same axis twice.
    pub fn new(sweep: &Sweep, by: &[&str]) -> Self {
        assert!(!by.is_empty(), "grouping needs at least one axis");
        let mut axes = Vec::with_capacity(by.len());
        let mut positions = Vec::with_capacity(by.len());
        for name in by {
            let position = sweep
                .axes()
                .iter()
                .position(|axis| axis.name() == *name)
                .unwrap_or_else(|| panic!("sweep has no axis named {name:?}"));
            assert!(!positions.contains(&position), "axis {name:?} listed twice");
            positions.push(position);
            let axis = &sweep.axes()[position];
            axes.push((axis.name().to_string(), axis.value_labels().map(String::from).collect()));
        }
        Self {
            axes,
            positions,
            lens: sweep.axes().iter().map(crate::sweep::Axis::len).collect(),
            groups: BTreeMap::new(),
        }
    }

    /// The names of the grouping axes, in row order.
    pub fn group_axes(&self) -> impl Iterator<Item = &str> {
        self.axes.iter().map(|(name, _)| name.as_str())
    }

    /// Decodes a case index into this reducer's group key.
    fn key_of(&self, case_index: usize) -> Vec<usize> {
        let total: usize = self.lens.iter().product();
        assert!(case_index < total, "case {case_index} out of range ({total} cases)");
        let mut rest = case_index;
        let mut all = vec![0; self.lens.len()];
        for (slot, len) in all.iter_mut().zip(&self.lens).rev() {
            *slot = rest % len;
            rest /= len;
        }
        self.positions.iter().map(|&p| all[p]).collect()
    }

    /// The accumulator for case `case_index`'s group, created on first
    /// touch — the call a [`Sweep::stream`] sink makes per delivery.
    ///
    /// # Panics
    /// Panics when `case_index` is outside the grid the reducer was
    /// built over.
    pub fn entry(&mut self, case_index: usize) -> &mut A
    where
        A: Default,
    {
        let key = self.key_of(case_index);
        self.groups.entry(key).or_default()
    }

    /// The number of groups touched so far (at most the product of the
    /// grouping axes' lengths).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no case has been routed yet (e.g. the grid was empty).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The accumulator for the group with the given value labels (one
    /// per grouping axis, in row order), or `None` when the labels name
    /// no group or the group was never touched.
    pub fn get(&self, labels: &[&str]) -> Option<&A> {
        if labels.len() != self.axes.len() {
            return None;
        }
        let key: Option<Vec<usize>> = self
            .axes
            .iter()
            .zip(labels)
            .map(|((_, values), label)| values.iter().position(|v| v == label))
            .collect();
        self.groups.get(&key?)
    }

    /// All touched groups in grid order (first grouping axis outermost),
    /// each as its value labels plus the accumulator.
    pub fn rows(&self) -> impl Iterator<Item = (Vec<&str>, &A)> {
        self.groups.iter().map(|(key, stats)| {
            let labels =
                self.axes.iter().zip(key).map(|((_, values), &v)| values[v].as_str()).collect();
            (labels, stats)
        })
    }

    /// Like [`rows`](Self::rows), but consuming the reducer and handing
    /// out owned accumulators (for building result structs).
    pub fn into_rows(self) -> impl Iterator<Item = (Vec<String>, A)> {
        let axes = self.axes;
        self.groups.into_iter().map(move |(key, stats)| {
            let labels = axes.iter().zip(&key).map(|((_, values), &v)| values[v].clone()).collect();
            (labels, stats)
        })
    }
}

// ---------------------------------------------------------------------
// Snapshot impls: exact JSON round-trips for checkpoint/resume. Every
// field is persisted verbatim — nothing is re-derived on restore, so a
// restored accumulator continues bit-identically to the original.
// ---------------------------------------------------------------------

impl Snapshot for Welford {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("count", Json::u64(self.count)),
            ("mean", Json::f64(self.mean)),
            ("m2", Json::f64(self.m2)),
            ("min", Json::f64(self.min)),
            ("max", Json::f64(self.max)),
        ])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        Ok(Self {
            count: json.get("count")?.as_u64()?,
            mean: json.get("mean")?.as_f64()?,
            m2: json.get("m2")?.as_f64()?,
            min: json.get("min")?.as_f64()?,
            max: json.get("max")?.as_f64()?,
        })
    }
}

/// Reads a fixed-length `f64` array field.
fn f64_array<const N: usize>(json: &Json) -> Result<[f64; N], SnapshotError> {
    let values = json.as_f64s()?;
    values.try_into().map_err(|_| SnapshotError::new(format!("expected an array of {N} numbers")))
}

impl Snapshot for P2Quantile {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("p", Json::f64(self.p)),
            ("q", Json::f64s(self.q)),
            ("n", Json::Arr(self.n.iter().map(|&v| Json::Num(v.to_string())).collect())),
            ("np", Json::f64s(self.np)),
            ("dn", Json::f64s(self.dn)),
            ("initial", Json::f64s(self.initial.iter().copied())),
            ("count", Json::u64(self.count)),
        ])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        let n_values: Vec<i64> =
            json.get("n")?.items()?.iter().map(Json::as_i64).collect::<Result<_, _>>()?;
        let n: [i64; 5] = n_values
            .try_into()
            .map_err(|_| SnapshotError::new("expected an array of 5 marker positions"))?;
        let p = json.get("p")?.as_f64()?;
        if !(p > 0.0 && p < 1.0) {
            return Err(SnapshotError::new(format!("quantile {p} outside (0, 1)")));
        }
        Ok(Self {
            p,
            q: f64_array(json.get("q")?)?,
            n,
            np: f64_array(json.get("np")?)?,
            dn: f64_array(json.get("dn")?)?,
            initial: json.get("initial")?.as_f64s()?,
            count: json.get("count")?.as_u64()?,
        })
    }
}

impl Snapshot for OnlineStats {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("welford", self.welford.snapshot()),
            ("p50", self.p50.snapshot()),
            ("p95", self.p95.snapshot()),
        ])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        Ok(Self {
            welford: Welford::restore(json.get("welford")?)?,
            p50: P2Quantile::restore(json.get("p50")?)?,
            p95: P2Quantile::restore(json.get("p95")?)?,
        })
    }
}

impl Snapshot for FreqResidency {
    fn snapshot(&self) -> Json {
        let rows = self
            .by_mhz
            .iter()
            .map(|(&mhz, &ns)| Json::Arr(vec![Json::u64(mhz as u64), Json::u64(ns)]))
            .collect();
        Json::obj([("unknown_ns", Json::u64(self.unknown_ns)), ("residency", Json::Arr(rows))])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        let mut by_mhz = BTreeMap::new();
        for row in json.get("residency")?.items()? {
            let [mhz, ns] = row.items()? else {
                return Err(SnapshotError::new("expected [mhz, ns] residency pairs"));
            };
            let mhz = u32::try_from(mhz.as_u64()?)
                .map_err(|_| SnapshotError::new("frequency exceeds u32"))?;
            if by_mhz.insert(mhz, ns.as_u64()?).is_some() {
                return Err(SnapshotError::new(format!("duplicate residency row for {mhz} MHz")));
            }
        }
        Ok(Self { by_mhz, unknown_ns: json.get("unknown_ns")?.as_u64()? })
    }
}

impl Snapshot for TransitionStats {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("completed", Json::u64(self.completed)),
            ("fast_path", Json::u64(self.fast_path)),
            ("latency_ns", self.latency_ns.snapshot()),
        ])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        Ok(Self {
            completed: json.get("completed")?.as_u64()?,
            fast_path: json.get("fast_path")?.as_u64()?,
            latency_ns: OnlineStats::restore(json.get("latency_ns")?)?,
        })
    }
}

impl<A> GroupedStats<A> {
    /// Whether `other` reduces the same grid the same way: same grouping
    /// axes (names and value labels), same axis positions, same sweep
    /// axis lengths. Accumulator contents are not compared — this is the
    /// resume-time guard that a checkpoint belongs to the sweep being
    /// resumed.
    pub fn shape_matches(&self, other: &Self) -> bool {
        self.axes == other.axes && self.positions == other.positions && self.lens == other.lens
    }

    /// A one-line rendering of the shape, for mismatch errors.
    pub fn shape_description(&self) -> String {
        let axes: Vec<String> =
            self.axes.iter().map(|(name, values)| format!("{name}({})", values.len())).collect();
        format!("grouped by [{}] over grid {:?}", axes.join(", "), self.lens)
    }

    /// The shape alone (axes, positions, lens) as JSON — the grouped
    /// header line of a checkpoint file.
    pub(crate) fn shape_snapshot(&self) -> Json {
        let axes = self
            .axes
            .iter()
            .map(|(name, values)| {
                Json::obj([
                    ("name", Json::str(name.clone())),
                    ("values", Json::Arr(values.iter().map(|v| Json::str(v.clone())).collect())),
                ])
            })
            .collect();
        Json::obj([
            ("axes", Json::Arr(axes)),
            ("positions", Json::usizes(self.positions.iter().copied())),
            ("lens", Json::usizes(self.lens.iter().copied())),
        ])
    }

    /// Rebuilds an empty reducer from a [`shape_snapshot`](Self::shape_snapshot).
    pub(crate) fn restore_shape(json: &Json) -> Result<Self, SnapshotError> {
        let mut axes = Vec::new();
        for axis in json.get("axes")?.items()? {
            let name = axis.get("name")?.as_str()?.to_string();
            let values = axis
                .get("values")?
                .items()?
                .iter()
                .map(|v| Ok(v.as_str()?.to_string()))
                .collect::<Result<Vec<_>, SnapshotError>>()?;
            axes.push((name, values));
        }
        let positions = json.get("positions")?.as_usizes()?;
        let lens = json.get("lens")?.as_usizes()?;
        if positions.len() != axes.len() {
            return Err(SnapshotError::new("positions and axes disagree in length"));
        }
        if positions.iter().any(|&p| p >= lens.len()) {
            return Err(SnapshotError::new("grouping position outside the sweep's axes"));
        }
        Ok(Self { axes, positions, lens, groups: BTreeMap::new() })
    }
}

impl<A: Snapshot> GroupedStats<A> {
    /// One `{"key": …, "acc": …}` object per touched group, in grid
    /// order — the row lines of a checkpoint file.
    pub(crate) fn row_snapshots(&self) -> impl Iterator<Item = Json> + '_ {
        self.groups.iter().map(|(key, acc)| {
            Json::obj([("key", Json::usizes(key.iter().copied())), ("acc", acc.snapshot())])
        })
    }

    /// Inserts one [`row_snapshots`](Self::row_snapshots) row back.
    pub(crate) fn restore_row(&mut self, json: &Json) -> Result<(), SnapshotError> {
        let key = json.get("key")?.as_usizes()?;
        if key.len() != self.axes.len() {
            return Err(SnapshotError::new(format!(
                "group key {key:?} has {} indices, the shape groups by {} axes",
                key.len(),
                self.axes.len()
            )));
        }
        for (i, (&v, (name, values))) in key.iter().zip(&self.axes).enumerate() {
            if v >= values.len() {
                return Err(SnapshotError::new(format!(
                    "group key index {v} out of range for axis {name:?} (position {i}, {} values)",
                    values.len()
                )));
            }
        }
        let acc = A::restore(json.get("acc")?)?;
        if self.groups.insert(key.clone(), acc).is_some() {
            return Err(SnapshotError::new(format!("duplicate group key {key:?}")));
        }
        Ok(())
    }
}

/// The whole reducer — shape plus every touched group's accumulator —
/// as one self-contained snapshot. Checkpoint files split the same data
/// across lines (shape first, then one object per row) via the
/// `pub(crate)` halves; this impl is the single-document form used by
/// round-trip tests and ad-hoc persistence.
impl<A: Snapshot> Snapshot for GroupedStats<A> {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("shape", self.shape_snapshot()),
            ("rows", Json::Arr(self.row_snapshots().collect())),
        ])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        let mut grouped = Self::restore_shape(json.get("shape")?)?;
        for row in json.get("rows")?.items()? {
            grouped.restore_row(row)?;
        }
        Ok(grouped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen2_topology::CoreId;

    fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
        let rank = p * (sorted.len() - 1) as f64;
        let (lo, hi) = (rank.floor() as usize, rank.ceil() as usize);
        sorted[lo] + (rank - lo as f64) * (sorted[hi] - sorted[lo])
    }

    #[test]
    fn welford_matches_batch_formulas() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 1000);
        assert!((w.mean() - crate::methodology::mean(&xs)).abs() < 1e-9);
        assert!((w.std_dev() - crate::methodology::std_dev(&xs)).abs() < 1e-9);
        assert_eq!(w.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(w.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn p2_is_exact_for_small_samples() {
        let mut q = P2Quantile::new(0.5);
        for x in [5.0, 1.0, 3.0] {
            q.push(x);
        }
        assert_eq!(q.estimate(), 3.0);
        q.push(2.0);
        q.push(4.0);
        assert_eq!(q.estimate(), 3.0);
    }

    #[test]
    fn p2_tracks_known_quantiles_of_a_large_stream() {
        // A deterministic, well-shuffled stream over [0, 1).
        let xs: Vec<f64> = (0..10_000u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64)
            .collect();
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        for p in [0.5, 0.95] {
            let mut est = P2Quantile::new(p);
            for &x in &xs {
                est.push(x);
            }
            let exact = exact_quantile(&sorted, p);
            assert!(
                (est.estimate() - exact).abs() < 0.02,
                "p{p}: estimate {} vs exact {exact}",
                est.estimate()
            );
        }
    }

    #[test]
    fn online_stats_bundle() {
        let mut s = OnlineStats::new();
        for i in 1..=100 {
            s.push(i as f64);
        }
        assert_eq!(s.count(), 100);
        assert!((s.mean() - 50.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.p50() - 50.5).abs() < 2.0);
        assert!((s.p95() - 95.0).abs() < 2.5);
    }

    fn applied(at_ns: Ns, mhz: u32) -> Record {
        Record { at_ns, event: Event::FreqApplied { core: CoreId(0), mhz, fast_path: false } }
    }

    fn requested(at_ns: Ns, target_mhz: u32) -> Record {
        Record { at_ns, event: Event::FreqRequested { core: CoreId(0), target_mhz } }
    }

    #[test]
    fn residency_attributes_segments_and_unknown_lead_in() {
        let records = [applied(100, 2200), applied(300, 1500), applied(900, 2200)];
        let mut r = FreqResidency::new();
        r.observe(&records, 0, 1000);
        assert_eq!(r.unknown_ns(), 100);
        assert_eq!(r.residency()[&2200], 200 + 100);
        assert_eq!(r.residency()[&1500], 600);
        assert_eq!(r.total_ns(), 1000);
        // A second observation accumulates, and pre-window records
        // establish the frequency at the window start.
        r.observe(&records, 400, 800);
        assert_eq!(r.residency()[&1500], 600 + 400);
    }

    #[test]
    fn residency_share_ignores_unknown_time() {
        let mut r = FreqResidency::new();
        r.observe(&[applied(500, 1500)], 0, 1000);
        assert_eq!(r.unknown_ns(), 500);
        assert!((r.share(1500) - 1.0).abs() < 1e-12);
        assert_eq!(r.share(2200), 0.0);
    }

    #[test]
    fn transitions_pair_requests_with_applies() {
        let records = [
            requested(100, 1500),
            // A repeat of the pending target must not restart the clock.
            requested(200, 1500),
            applied(500, 1500),
            requested(1000, 2200),
            applied(1400, 2200),
            // An apply with no pending request is ignored.
            applied(2000, 2500),
        ];
        let mut t = TransitionStats::new();
        t.observe(&records);
        assert_eq!(t.completed(), 2);
        assert_eq!(t.fast_path(), 0);
        assert_eq!(t.latency_ns().count(), 2);
        assert_eq!(t.latency_ns().min(), 400.0);
        assert_eq!(t.latency_ns().max(), 400.0);
    }

    #[test]
    fn transitions_survive_overlapping_requests() {
        // The SMU queues a request that arrives mid-transition; both
        // transitions complete and both must be counted with their own
        // request times.
        let records =
            [requested(0, 1500), requested(10, 2200), applied(500, 1500), applied(900, 2200)];
        let mut t = TransitionStats::new();
        t.observe(&records);
        assert_eq!(t.completed(), 2);
        assert_eq!(t.latency_ns().min(), 500.0);
        assert_eq!(t.latency_ns().max(), 890.0);
    }

    /// A 3×2 grid shape for grouped-routing tests (never simulated).
    fn shape_sweep() -> Sweep {
        Sweep::new("shape", crate::SimConfig::epyc_7502_2s())
            .axis(crate::sweep::Axis::param("outer", [10.0, 20.0, 30.0]))
            .axis(crate::sweep::Axis::param("inner", [1.0, 2.0]))
    }

    #[test]
    fn grouped_routes_case_indices_like_axis_indices() {
        let sweep = shape_sweep();
        let mut by_outer: GroupedStats<Welford> = GroupedStats::new(&sweep, &["outer"]);
        let mut by_inner: GroupedStats<Welford> = GroupedStats::new(&sweep, &["inner"]);
        for i in 0..sweep.len() {
            by_outer.entry(i).push(i as f64);
            by_inner.entry(i).push(i as f64);
        }
        // Row-major: outer varies every 2 cases, inner alternates.
        assert_eq!(by_outer.len(), 3);
        let outer: Vec<_> = by_outer.rows().collect();
        assert_eq!(outer[0].0, ["10"]);
        assert_eq!(outer[0].1.min(), 0.0);
        assert_eq!(outer[0].1.max(), 1.0);
        assert_eq!(outer[2].0, ["30"]);
        assert_eq!(outer[2].1.min(), 4.0);
        assert_eq!(by_inner.len(), 2);
        assert_eq!(by_inner.get(&["1"]).unwrap().count(), 3);
        assert_eq!(by_inner.get(&["2"]).unwrap().mean(), (1.0 + 3.0 + 5.0) / 3.0);
    }

    #[test]
    fn grouped_by_both_axes_gives_one_group_per_case() {
        let sweep = shape_sweep();
        let mut g: GroupedStats<Welford> = GroupedStats::new(&sweep, &["outer", "inner"]);
        for i in 0..sweep.len() {
            g.entry(i).push(i as f64);
        }
        assert_eq!(g.len(), 6);
        let labels: Vec<Vec<&str>> = g.rows().map(|(labels, _)| labels).collect();
        assert_eq!(labels[0], ["10", "1"]);
        assert_eq!(labels[1], ["10", "2"]);
        assert_eq!(labels[5], ["30", "2"]);
        assert_eq!(g.group_axes().collect::<Vec<_>>(), ["outer", "inner"]);
        // Owned extraction preserves grid order.
        let owned: Vec<(Vec<String>, Welford)> = g.into_rows().collect();
        assert_eq!(owned[5].0, ["30", "2"]);
        assert_eq!(owned[5].1.mean(), 5.0);
    }

    #[test]
    fn grouped_get_rejects_unknown_labels_and_wrong_arity() {
        let sweep = shape_sweep();
        let mut g: GroupedStats<Welford> = GroupedStats::new(&sweep, &["outer"]);
        g.entry(0).push(1.0);
        assert!(g.get(&["10"]).is_some());
        assert!(g.get(&["20"]).is_none(), "valid label, untouched group");
        assert!(g.get(&["nope"]).is_none());
        assert!(g.get(&["10", "1"]).is_none(), "arity mismatch");
        assert!(g.get(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "no axis named")]
    fn grouped_rejects_unknown_axis() {
        let _: GroupedStats<Welford> = GroupedStats::new(&shape_sweep(), &["nope"]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn grouped_rejects_out_of_range_case() {
        let sweep = shape_sweep();
        let mut g: GroupedStats<Welford> = GroupedStats::new(&sweep, &["outer"]);
        g.entry(6);
    }

    #[test]
    fn snapshots_round_trip_exactly() {
        let mut online = OnlineStats::new();
        let mut welford = Welford::new();
        let mut freq = FreqResidency::new();
        let mut trans = TransitionStats::new();
        for i in 0..100 {
            let x = ((i * 37) % 101) as f64 / 7.0 - 5.0;
            online.push(x);
            welford.push(x);
        }
        freq.observe(&[applied(100, 2200), applied(300, 1500)], 0, 1000);
        trans.observe(&[requested(100, 1500), applied(500, 1500)]);

        assert_eq!(OnlineStats::from_json_text(&online.to_json_text()).unwrap(), online);
        assert_eq!(Welford::from_json_text(&welford.to_json_text()).unwrap(), welford);
        assert_eq!(FreqResidency::from_json_text(&freq.to_json_text()).unwrap(), freq);
        assert_eq!(TransitionStats::from_json_text(&trans.to_json_text()).unwrap(), trans);

        // A restored accumulator continues bit-identically.
        let mut restored = OnlineStats::from_json_text(&online.to_json_text()).unwrap();
        online.push(0.123456789);
        restored.push(0.123456789);
        assert_eq!(online, restored);
        assert_eq!(online.p95().to_bits(), restored.p95().to_bits());
    }

    #[test]
    fn grouped_snapshot_round_trips_and_guards_shape() {
        let sweep = shape_sweep();
        let mut g: GroupedStats<Welford> = GroupedStats::new(&sweep, &["outer"]);
        for i in 0..4 {
            g.entry(i).push(i as f64);
        }
        let restored = GroupedStats::<Welford>::from_json_text(&g.to_json_text()).unwrap();
        assert_eq!(restored, g);
        assert!(restored.shape_matches(&g));
        // A reducer over different axes does not match.
        let other: GroupedStats<Welford> = GroupedStats::new(&sweep, &["inner"]);
        assert!(!other.shape_matches(&g));
        assert!(g.shape_description().contains("outer(3)"));
        // Restored reducers keep routing cases identically.
        let mut a = g.clone();
        let mut b = restored;
        a.entry(5).push(9.0);
        b.entry(5).push(9.0);
        assert_eq!(a, b);
    }

    #[test]
    fn grouped_restore_rejects_corrupt_rows() {
        let sweep = shape_sweep();
        let mut g: GroupedStats<Welford> = GroupedStats::new(&sweep, &["outer"]);
        g.entry(0).push(1.0);
        let shape = g.shape_snapshot();
        let mut fresh = GroupedStats::<Welford>::restore_shape(&shape).unwrap();
        // Key arity mismatch.
        let bad = Json::obj([("key", Json::usizes([0, 1])), ("acc", Welford::new().snapshot())]);
        assert!(fresh.restore_row(&bad).is_err());
        // Key index out of range for the axis.
        let bad = Json::obj([("key", Json::usizes([9])), ("acc", Welford::new().snapshot())]);
        assert!(fresh.restore_row(&bad).unwrap_err().to_string().contains("out of range"));
        // Duplicate rows are rejected.
        let row = g.row_snapshots().next().unwrap();
        fresh.restore_row(&row).unwrap();
        assert!(fresh.restore_row(&row).unwrap_err().to_string().contains("duplicate"));
    }

    #[test]
    fn transitions_track_fast_path_and_pending_drops() {
        let mut t = TransitionStats::new();
        t.observe(&[
            requested(0, 2500),
            Record {
                at_ns: 10,
                event: Event::FreqApplied { core: CoreId(0), mhz: 2500, fast_path: true },
            },
            // Left pending at end of stream: dropped.
            requested(100, 1500),
        ]);
        assert_eq!(t.completed(), 1);
        assert_eq!(t.fast_path(), 1);
    }
}
