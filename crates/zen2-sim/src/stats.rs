//! On-line statistics for streaming sweeps: bounded-size aggregators
//! that reduce arbitrarily many [`Run`](crate::Run)s to summaries.
//!
//! A million-case sweep cannot keep its runs around; these aggregators
//! consume one observation (or one run's trace records) at a time and
//! hold O(1) state:
//!
//! * [`Welford`] — numerically stable mean/standard deviation plus
//!   min/max, via Welford's on-line algorithm.
//! * [`P2Quantile`] — a streaming quantile estimate (Jain & Chlamtac's
//!   P² algorithm, five markers, exact until the sixth observation).
//! * [`OnlineStats`] — the bundle the sweep engine hands out: Welford
//!   plus p50/p95 estimators behind one `push`.
//! * [`FreqResidency`] — time-at-frequency histogram reduced from
//!   [`Probe::TraceEvents`](crate::Probe::TraceEvents) records.
//! * [`TransitionStats`] — DVFS transition counts and request→apply
//!   latency statistics from the same records.
//! * [`GroupedStats`] — any of the above (or any `Default` accumulator),
//!   bucketed by one or more [`Sweep`] axes, so a sink folds a wide grid
//!   into per-frequency / per-config rows.
//!
//! Every aggregator is deterministic in its input order. The streaming
//! session delivers runs in case order regardless of worker count or
//! shard size, so feeding these from a
//! [`Session::run_streaming`](crate::Session::run_streaming) sink gives
//! bit-identical summaries for any parallelism.
//!
//! Every aggregator also implements [`Snapshot`]: its exact state dumps
//! to a JSON tree and restores bit-for-bit, which is what lets a
//! [`Checkpoint`](crate::checkpoint::Checkpoint) persist a half-finished
//! sweep at a shard boundary and resume it later with byte-identical
//! output. `GroupedStats<A>` is snapshottable whenever its accumulator
//! `A` is — including experiment-specific accumulators that implement
//! [`Snapshot`] themselves.

use crate::snapshot::{Json, Snapshot, SnapshotError};
use crate::sweep::Sweep;
use crate::time::Ns;
use crate::trace::{Event, Record};
use std::collections::BTreeMap;

/// Welford's on-line mean and variance, with min/max tracking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one observation.
    pub fn push(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Observations consumed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean.
    ///
    /// # Panics
    /// Panics on an empty accumulator.
    pub fn mean(&self) -> f64 {
        assert!(self.count > 0, "mean of an empty accumulator");
        self.mean
    }

    /// Sample standard deviation (n−1 denominator).
    ///
    /// # Panics
    /// Panics with fewer than two observations.
    pub fn std_dev(&self) -> f64 {
        assert!(self.count >= 2, "standard deviation needs at least two observations");
        (self.m2 / (self.count - 1) as f64).sqrt()
    }

    /// Smallest observation.
    ///
    /// # Panics
    /// Panics on an empty accumulator.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of an empty accumulator");
        self.min
    }

    /// Largest observation.
    ///
    /// # Panics
    /// Panics on an empty accumulator.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of an empty accumulator");
        self.max
    }
}

/// A streaming quantile estimator: the P² algorithm (Jain & Chlamtac,
/// CACM 1985). Five markers, O(1) state, exact for the first five
/// observations and a parabolic-interpolation estimate afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based observation ranks).
    n: [i64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired-position increments per observation.
    dn: [f64; 5],
    /// Initial buffer until five observations have arrived.
    initial: Vec<f64>,
    count: u64,
}

impl P2Quantile {
    /// An estimator for the `p`-quantile, `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
        Self {
            p,
            q: [0.0; 5],
            n: [1, 2, 3, 4, 5],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            initial: Vec::with_capacity(5),
            count: 0,
        }
    }

    /// Consumes one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.initial.push(x);
            if self.count == 5 {
                self.initial.sort_by(f64::total_cmp);
                for (slot, &v) in self.q.iter_mut().zip(&self.initial) {
                    *slot = v;
                }
            }
            return;
        }

        // Locate the cell, extending the extreme markers if needed.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            (0..4).find(|&i| self.q[i] <= x && x < self.q[i + 1]).expect("x within marker span")
        };

        for i in (k + 1)..5 {
            self.n[i] += 1;
        }
        for (np, dn) in self.np.iter_mut().zip(&self.dn) {
            *np += dn;
        }

        // Nudge the three middle markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i] as f64;
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1)
            {
                let d = d.signum() as i64;
                let parabolic = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: i64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        let d = d as f64;
        let above = ((n[i] - n[i - 1]) as f64 + d) * (q[i + 1] - q[i]) / ((n[i + 1] - n[i]) as f64);
        let below = ((n[i + 1] - n[i]) as f64 - d) * (q[i] - q[i - 1]) / ((n[i] - n[i - 1]) as f64);
        q[i] + d / ((n[i + 1] - n[i - 1]) as f64) * (above + below)
    }

    fn linear(&self, i: usize, d: i64) -> f64 {
        let j = (i as i64 + d) as usize;
        self.q[i] + d as f64 * (self.q[j] - self.q[i]) / ((self.n[j] - self.n[i]) as f64)
    }

    /// Observations consumed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The current quantile estimate (exact for ≤ 5 observations).
    ///
    /// # Panics
    /// Panics on an empty estimator.
    pub fn estimate(&self) -> f64 {
        assert!(self.count > 0, "quantile of an empty estimator");
        if self.count <= 5 {
            // Exact: linear interpolation on the sorted buffer.
            let mut sorted = self.initial.clone();
            sorted.sort_by(f64::total_cmp);
            let rank = self.p * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
        }
        self.q[2]
    }
}

/// One observable's complete streaming summary: count, mean, standard
/// deviation, min/max, and p50/p95 estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineStats {
    welford: Welford,
    p50: P2Quantile,
    p95: P2Quantile,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty summary.
    pub fn new() -> Self {
        Self { welford: Welford::new(), p50: P2Quantile::new(0.5), p95: P2Quantile::new(0.95) }
    }

    /// Consumes one observation.
    pub fn push(&mut self, x: f64) {
        self.welford.push(x);
        self.p50.push(x);
        self.p95.push(x);
    }

    /// Observations consumed so far.
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.welford.mean()
    }

    /// Sample standard deviation (n−1 denominator).
    pub fn std_dev(&self) -> f64 {
        self.welford.std_dev()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.welford.min()
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.welford.max()
    }

    /// Streaming median estimate.
    pub fn p50(&self) -> f64 {
        self.p50.estimate()
    }

    /// Streaming 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.p95.estimate()
    }
}

/// A frequency-residency histogram: how long a core spent at each
/// applied frequency, reduced from
/// [`Probe::TraceEvents`](crate::Probe::TraceEvents) records (pair it
/// with [`EventFilter::Freq`](crate::EventFilter::Freq) so the records
/// describe one core). Time before the first `FreqApplied` record in a
/// window has no known frequency and lands in
/// [`unknown_ns`](Self::unknown_ns); calling
/// [`observe`](Self::observe) repeatedly accumulates across runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FreqResidency {
    by_mhz: BTreeMap<u32, Ns>,
    unknown_ns: Ns,
}

impl FreqResidency {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one run's records over the machine-absolute window
    /// `[from_ns, to_ns)`. Records outside the window still establish
    /// the frequency that is current when the window opens.
    pub fn observe(&mut self, records: &[Record], from_ns: Ns, to_ns: Ns) {
        assert!(from_ns <= to_ns, "residency window runs backwards");
        let mut current: Option<u32> = None;
        let mut cursor = from_ns;
        for record in records {
            let Event::FreqApplied { mhz, .. } = record.event else { continue };
            if record.at_ns <= from_ns {
                current = Some(mhz);
                continue;
            }
            let end = record.at_ns.min(to_ns);
            if end > cursor {
                self.credit(current, end - cursor);
                cursor = end;
            }
            if record.at_ns >= to_ns {
                current = Some(mhz);
                break;
            }
            current = Some(mhz);
        }
        if to_ns > cursor {
            self.credit(current, to_ns - cursor);
        }
    }

    fn credit(&mut self, mhz: Option<u32>, ns: Ns) {
        match mhz {
            Some(mhz) => *self.by_mhz.entry(mhz).or_insert(0) += ns,
            None => self.unknown_ns += ns,
        }
    }

    /// Residency per applied frequency, ns, ascending by MHz.
    pub fn residency(&self) -> &BTreeMap<u32, Ns> {
        &self.by_mhz
    }

    /// Time with no applied frequency on record yet, ns.
    pub fn unknown_ns(&self) -> Ns {
        self.unknown_ns
    }

    /// Total accumulated window time, ns (known + unknown).
    pub fn total_ns(&self) -> Ns {
        self.by_mhz.values().sum::<Ns>() + self.unknown_ns
    }

    /// Fraction of the *known* time spent at `mhz` (0 when nothing is
    /// known yet).
    pub fn share(&self, mhz: u32) -> f64 {
        let known = self.total_ns() - self.unknown_ns;
        if known == 0 {
            return 0.0;
        }
        self.by_mhz.get(&mhz).copied().unwrap_or(0) as f64 / known as f64
    }
}

/// DVFS transition statistics reduced from
/// [`Probe::TraceEvents`](crate::Probe::TraceEvents) records: completed
/// request→apply transitions, fast-path count, and streaming latency
/// statistics (ns).
///
/// Pairing generalizes the Fig. 3 recovery: per core, requests queue in
/// order (a repeated request for an already-queued target does not
/// restart its clock — the SMU coalesces it), and an apply matches the
/// earliest queued request for its target, retiring every older request
/// with it. Requests that overlap an in-flight transition (the SMU
/// queues them) therefore still pair with their own later application.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransitionStats {
    completed: u64,
    fast_path: u64,
    latency_ns: OnlineStats,
}

impl TransitionStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one run's records. Requests left pending when the
    /// record stream ends are dropped (the run ended mid-transition).
    pub fn observe(&mut self, records: &[Record]) {
        // Per-core queue of pending requests: (time, target MHz).
        let mut pending: BTreeMap<u32, Vec<(Ns, u32)>> = BTreeMap::new();
        for record in records {
            match record.event {
                Event::FreqRequested { core, target_mhz } => {
                    let queue = pending.entry(core.0).or_default();
                    if queue.iter().all(|&(_, mhz)| mhz != target_mhz) {
                        queue.push((record.at_ns, target_mhz));
                    }
                }
                Event::FreqApplied { core, mhz, fast_path } => {
                    let Some(queue) = pending.get_mut(&core.0) else { continue };
                    // An apply with no matching request (e.g. a settle
                    // transition recorded before the window) pairs with
                    // nothing and leaves the queue untouched.
                    let Some(at) = queue.iter().position(|&(_, target)| target == mhz) else {
                        continue;
                    };
                    let (requested_at, _) = queue[at];
                    queue.drain(..=at);
                    self.completed += 1;
                    if fast_path {
                        self.fast_path += 1;
                    }
                    self.latency_ns.push((record.at_ns - requested_at) as f64);
                }
                _ => {}
            }
        }
    }

    /// Completed request→apply transitions.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Transitions that took a §V-B fast path.
    pub fn fast_path(&self) -> u64 {
        self.fast_path
    }

    /// Streaming latency statistics over completed transitions, ns.
    pub fn latency_ns(&self) -> &OnlineStats {
        &self.latency_ns
    }
}

/// A streaming reducer bucketed by [`Sweep`] axes: one accumulator per
/// combination of the chosen axes' values, so a sink folds a wide grid
/// into per-frequency / per-config rows without ever materializing its
/// runs.
///
/// Construction captures only the grid's *shape* (axis lengths and value
/// labels) from the sweep — no closures, no cases — and
/// [`entry`](Self::entry) routes a streamed case index to its group by
/// the same row-major decode as [`Sweep::axis_indices`]. The accumulator
/// is any `Default` type: one of this module's aggregators, or an
/// experiment-specific struct bundling several of them.
///
/// Rows come back in grid order (the first grouping axis outermost),
/// independent of the order groups were first touched. Because
/// [`Session::run_streaming`](crate::Session::run_streaming) delivers
/// runs in case order for any worker count or shard size, every group's
/// accumulator sees its observations in case order too — grouped
/// summaries are bit-identical for any worker/shard split.
///
/// ```
/// use zen2_sim::stats::{GroupedStats, OnlineStats};
/// use zen2_sim::{Axis, Probe, Scenario, Session, SimConfig, Sweep, Window};
/// use zen2_isa::{KernelClass, OperandWeight};
/// use zen2_topology::ThreadId;
///
/// // 2 load levels × 3 seeds; group the 6 cases by load level.
/// let mut base = Scenario::new();
/// base.probe("ac", Probe::AcPowerW, Window::at(20_000)); // 20 µs: load has landed
/// let mut load = Axis::new("busy_threads");
/// for n in [1u32, 8] {
///     load = load.with(format!("{n}"), move |draft| {
///         let mut at = draft.scenario.at(0);
///         for t in 0..n {
///             at = at.workload(ThreadId(t), KernelClass::BusyWait, OperandWeight::HALF);
///         }
///     });
/// }
/// let sweep = Sweep::new("demo", SimConfig::epyc_7502_2s())
///     .scenario(base)
///     .seed(7)
///     .axis(load)
///     .axis(Axis::param("rep", (0..3).map(f64::from)));
///
/// let mut by_load: GroupedStats<OnlineStats> = GroupedStats::new(&sweep, &["busy_threads"]);
/// let session = Session::new().workers(2).shard_size(2);
/// sweep.stream(&session, |i, run| by_load.entry(i).push(run.watts("ac"))).unwrap();
///
/// assert_eq!(by_load.len(), 2);
/// let rows: Vec<_> = by_load.rows().collect();
/// assert_eq!(rows[0].0, ["1"]);
/// assert_eq!(rows[1].0, ["8"]);
/// assert_eq!(rows[0].1.count(), 3);
/// assert!(rows[0].1.mean() < rows[1].1.mean());
/// assert_eq!(by_load.get(&["8"]).unwrap().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedStats<A> {
    /// Per grouping axis: its name and value labels, in grouping order.
    axes: Vec<(String, Vec<String>)>,
    /// Position of each grouping axis among the sweep's axes.
    positions: Vec<usize>,
    /// Every sweep axis length, for the row-major case-index decode.
    lens: Vec<usize>,
    /// Accumulators keyed by grouping-axis value indices (grid order).
    groups: BTreeMap<Vec<usize>, A>,
}

impl<A> GroupedStats<A> {
    /// A reducer over `sweep`'s grid, grouping by the named axes (in the
    /// order given, which sets the row order: first name outermost).
    ///
    /// # Panics
    /// Panics when `by` is empty, names an axis the sweep does not have,
    /// or names the same axis twice.
    pub fn new(sweep: &Sweep, by: &[&str]) -> Self {
        assert!(!by.is_empty(), "grouping needs at least one axis");
        let mut axes = Vec::with_capacity(by.len());
        let mut positions = Vec::with_capacity(by.len());
        for name in by {
            let position = sweep
                .axes()
                .iter()
                .position(|axis| axis.name() == *name)
                .unwrap_or_else(|| panic!("sweep has no axis named {name:?}"));
            assert!(!positions.contains(&position), "axis {name:?} listed twice");
            positions.push(position);
            let axis = &sweep.axes()[position];
            axes.push((axis.name().to_string(), axis.value_labels().map(String::from).collect()));
        }
        Self {
            axes,
            positions,
            lens: sweep.axes().iter().map(crate::sweep::Axis::len).collect(),
            groups: BTreeMap::new(),
        }
    }

    /// The names of the grouping axes, in row order.
    pub fn group_axes(&self) -> impl Iterator<Item = &str> {
        self.axes.iter().map(|(name, _)| name.as_str())
    }

    /// Decodes a case index into this reducer's group key.
    fn key_of(&self, case_index: usize) -> Vec<usize> {
        let total: usize = self.lens.iter().product();
        assert!(case_index < total, "case {case_index} out of range ({total} cases)");
        let mut rest = case_index;
        let mut all = vec![0; self.lens.len()];
        for (slot, len) in all.iter_mut().zip(&self.lens).rev() {
            *slot = rest % len;
            rest /= len;
        }
        self.positions.iter().map(|&p| all[p]).collect()
    }

    /// The accumulator for case `case_index`'s group, created on first
    /// touch — the call a [`Sweep::stream`] sink makes per delivery.
    ///
    /// # Panics
    /// Panics when `case_index` is outside the grid the reducer was
    /// built over.
    pub fn entry(&mut self, case_index: usize) -> &mut A
    where
        A: Default,
    {
        let key = self.key_of(case_index);
        self.groups.entry(key).or_default()
    }

    /// The number of groups touched so far (at most the product of the
    /// grouping axes' lengths).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no case has been routed yet (e.g. the grid was empty).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The accumulator for the group with the given value labels (one
    /// per grouping axis, in row order), or `None` when the labels name
    /// no group or the group was never touched.
    pub fn get(&self, labels: &[&str]) -> Option<&A> {
        if labels.len() != self.axes.len() {
            return None;
        }
        let key: Option<Vec<usize>> = self
            .axes
            .iter()
            .zip(labels)
            .map(|((_, values), label)| values.iter().position(|v| v == label))
            .collect();
        self.groups.get(&key?)
    }

    /// All touched groups in grid order (first grouping axis outermost),
    /// each as its value labels plus the accumulator.
    pub fn rows(&self) -> impl Iterator<Item = (Vec<&str>, &A)> {
        self.groups.iter().map(|(key, stats)| {
            let labels =
                self.axes.iter().zip(key).map(|((_, values), &v)| values[v].as_str()).collect();
            (labels, stats)
        })
    }

    /// Like [`rows`](Self::rows), but consuming the reducer and handing
    /// out owned accumulators (for building result structs).
    pub fn into_rows(self) -> impl Iterator<Item = (Vec<String>, A)> {
        let axes = self.axes;
        self.groups.into_iter().map(move |(key, stats)| {
            let labels = axes.iter().zip(&key).map(|((_, values), &v)| values[v].clone()).collect();
            (labels, stats)
        })
    }
}

// ---------------------------------------------------------------------
// Merge: pairwise combination of independently accumulated halves of a
// split stream — the reduction a fleet run performs when disjoint
// case-index ranges come back from separate processes (see
// [`Checkpoint::merge`](crate::checkpoint::Checkpoint::merge)).
// ---------------------------------------------------------------------

/// A merge failure: the two sides do not describe the same reduction
/// (e.g. two [`GroupedStats`] reducers with different shapes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeError(String);

impl MergeError {
    /// Builds an error with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for MergeError {}

/// Pairwise combination of two independently accumulated summaries:
/// after `a.merge(&b)`, `a` summarizes the concatenation of the two
/// input streams (`a`'s stream first).
///
/// Exactness varies by accumulator and is documented per impl:
/// [`FreqResidency`] and the counts of [`TransitionStats`] are integer
/// sums (exact, associative, commutative); [`Welford`] uses Chan et
/// al.'s pairwise combination (exact in real arithmetic, agrees with
/// one-pass accumulation up to floating-point rounding, and count /
/// min / max are always exact); [`P2Quantile`] is an approximation with
/// a stated bound plus a re-reduce escape hatch
/// ([`P2Quantile::from_samples`]). Merging with an empty side is always
/// bit-exact.
pub trait Merge {
    /// Folds `other` — the summary of the *later* half of a split
    /// stream — into `self`.
    fn merge(&mut self, other: &Self);
}

impl Merge for Welford {
    /// Chan et al.'s pairwise combination (updating formulae for the
    /// two-set case): with `nₐ`, `n_b` the counts, `δ = mean_b − meanₐ`,
    ///
    /// ```text
    /// n = nₐ + n_b
    /// mean = meanₐ + δ·n_b/n
    /// M2 = M2ₐ + M2_b + δ²·nₐ·n_b/n
    /// ```
    ///
    /// Exact in real arithmetic; in `f64` the result agrees with
    /// one-pass accumulation over the concatenated stream up to
    /// floating-point rounding (Chan et al. bound the pairwise error
    /// *tighter* than one-pass). `count`, `min`, and `max` are exact
    /// for any split, and merging with an empty side is bit-exact.
    fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.count as f64, other.count as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        self.mean += delta * (nb / n);
        self.m2 += other.m2 + delta * delta * (na * nb / n);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }
}

/// Piecewise-linear inverse of a non-decreasing `(probability, height)`
/// polyline, clamped at the ends.
fn inverse_cdf(points: &[(f64, f64)], pr: f64) -> f64 {
    let first = points[0];
    let last = points[points.len() - 1];
    if pr <= first.0 {
        return first.1;
    }
    if pr >= last.0 {
        return last.1;
    }
    let mut i = 0;
    while i + 2 < points.len() && points[i + 1].0 < pr {
        i += 1;
    }
    let (p0, h0) = points[i];
    let (p1, h1) = points[i + 1];
    if p1 <= p0 {
        return h1;
    }
    h0 + (pr - p0) / (p1 - p0) * (h1 - h0)
}

impl P2Quantile {
    /// The re-reduce escape hatch: rebuilds an estimator by replaying
    /// `samples` in order — what a caller that retained (or can
    /// re-derive) the raw observations uses instead of
    /// [`merge`](Merge::merge) when it needs the exact one-pass result
    /// rather than the marker-weighted approximation.
    pub fn from_samples(p: f64, samples: impl IntoIterator<Item = f64>) -> Self {
        let mut est = Self::new(p);
        for x in samples {
            est.push(x);
        }
        est
    }

    /// This estimator's piecewise-linear empirical-CDF estimate at
    /// height `h`, read off the five markers. Only meaningful once the
    /// markers are live (`count > 5`).
    fn cdf_at(&self, h: f64) -> f64 {
        debug_assert!(self.count > 5, "marker CDF before the markers are live");
        if h <= self.q[0] {
            return 0.0;
        }
        if h >= self.q[4] {
            return 1.0;
        }
        let denom = (self.count - 1) as f64;
        for i in 0..4 {
            if h < self.q[i + 1] {
                let p0 = (self.n[i] - 1) as f64 / denom;
                let p1 = (self.n[i + 1] - 1) as f64 / denom;
                if self.q[i + 1] <= self.q[i] {
                    return p1;
                }
                return p0 + (h - self.q[i]) / (self.q[i + 1] - self.q[i]) * (p1 - p0);
            }
        }
        1.0
    }
}

impl Merge for P2Quantile {
    /// Marker-weighted combine. When either side still holds its raw
    /// observations (count ≤ 5, the `initial` buffer), they are simply
    /// replayed — exact one-pass accumulation. Otherwise each side's
    /// five markers define a piecewise-linear empirical CDF; the merged
    /// markers are read off the count-weighted mixture of the two CDFs
    /// at the five desired quantile positions (0, p/2, p, (1+p)/2, 1),
    /// with the extreme markers set to the exact global min/max.
    ///
    /// **Error bound.** Every P² marker height lies within the observed
    /// `[min, max]` (parabolic adjustments are clamped between their
    /// neighbours), and the mixture interpolation stays within the
    /// union of the marker heights — so a merged estimate and a
    /// re-reduced one ([`P2Quantile::from_samples`] over the
    /// concatenated stream) are both hard-bounded by the combined
    /// stream's `max − min`. Empirically the two agree far tighter: a
    /// few percent of that range on smooth 10⁴-sample streams (see the
    /// merge-law tests). Callers needing the exact one-pass value must
    /// re-reduce.
    ///
    /// # Panics
    /// Panics when the two sides estimate different quantiles.
    fn merge(&mut self, other: &Self) {
        assert!(
            self.p.to_bits() == other.p.to_bits(),
            "cannot merge a p={} estimator into a p={} estimator",
            other.p,
            self.p
        );
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        if other.count <= 5 {
            // The later side still holds its raw observations: replay
            // them — exactly one-pass accumulation over the
            // concatenated stream.
            let theirs = other.initial.clone();
            for x in theirs {
                self.push(x);
            }
            return;
        }
        if self.count <= 5 {
            // Mirror image: replay our raw observations into a copy of
            // the other side. P² is order-sensitive, so this is the
            // replay order that keeps one side exact.
            let mine = std::mem::take(&mut self.initial);
            *self = other.clone();
            for x in mine {
                self.push(x);
            }
            return;
        }
        // Both sides are past their initial buffers: combine the two
        // marker sets through the count-weighted mixture CDF.
        let (na, nb) = (self.count as f64, other.count as f64);
        let mut heights: Vec<f64> = self.q.iter().chain(other.q.iter()).copied().collect();
        heights.sort_by(f64::total_cmp);
        let mixture: Vec<(f64, f64)> = heights
            .iter()
            .map(|&h| ((na * self.cdf_at(h) + nb * other.cdf_at(h)) / (na + nb), h))
            .collect();
        let probs = [0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0];
        let mut q = [0.0; 5];
        for (slot, &pr) in q.iter_mut().zip(&probs) {
            *slot = inverse_cdf(&mixture, pr);
        }
        q[0] = self.q[0].min(other.q[0]);
        q[4] = self.q[4].max(other.q[4]);
        for i in 1..4 {
            q[i] = q[i].max(q[i - 1]).min(q[4]);
        }
        let count = self.count + other.count;
        // Desired positions as if `count` observations had streamed
        // through one estimator: the initial positions grown by dn per
        // observation past the fifth.
        let base = [1.0, 1.0 + 2.0 * self.p, 1.0 + 4.0 * self.p, 3.0 + 2.0 * self.p, 5.0];
        let grown = (count - 5) as f64;
        let mut np = [0.0; 5];
        for ((slot, b), dn) in np.iter_mut().zip(&base).zip(&self.dn) {
            *slot = b + grown * dn;
        }
        // Actual positions: strictly increasing integers pinned at the
        // extremes, the middle three rounded from the desired positions.
        let mut n = [0i64; 5];
        n[0] = 1;
        n[4] = count as i64;
        for i in 1..4 {
            let hi = count as i64 - (4 - i as i64);
            n[i] = (np[i].round() as i64).clamp(n[i - 1] + 1, hi);
        }
        self.q = q;
        self.n = n;
        self.np = np;
        self.count = count;
        // `initial` keeps the earlier side's first five observations;
        // it is only ever read while count ≤ 5.
    }
}

impl Merge for OnlineStats {
    /// The Welford half merges exactly (Chan et al., see
    /// [`Welford`]'s impl); `p50`/`p95` carry the [`P2Quantile`] merge
    /// semantics and its documented tolerance.
    fn merge(&mut self, other: &Self) {
        self.welford.merge(&other.welford);
        self.p50.merge(&other.p50);
        self.p95.merge(&other.p95);
    }
}

impl Merge for FreqResidency {
    /// Integer addition per frequency bucket — exact, associative, and
    /// commutative.
    fn merge(&mut self, other: &Self) {
        for (&mhz, &ns) in &other.by_mhz {
            *self.by_mhz.entry(mhz).or_insert(0) += ns;
        }
        self.unknown_ns += other.unknown_ns;
    }
}

impl Merge for TransitionStats {
    /// Counts add exactly; the latency summary carries the
    /// [`OnlineStats`] merge semantics. Request→apply pairing is
    /// per-[`observe`](TransitionStats::observe) call (pending queues
    /// never span calls), so merging two accumulators equals observing
    /// both sides' record batches through one.
    fn merge(&mut self, other: &Self) {
        self.completed += other.completed;
        self.fast_path += other.fast_path;
        self.latency_ns.merge(&other.latency_ns);
    }
}

impl<A: Merge + Clone> GroupedStats<A> {
    /// Folds `other`'s rows into this reducer, row-wise: a row both
    /// sides touched merges its accumulators ([`Merge`]); a row only
    /// one side touched lands verbatim — bit-exact, which is the
    /// partition case a fleet run produces when a contiguous case-range
    /// split never cuts through a row (every wide grid in this tree
    /// groups by all of its axes, so this always holds there).
    ///
    /// # Errors
    /// Errors when the shapes disagree ([`shape_matches`](Self::shape_matches)
    /// is the guard; checkpoint-level merges additionally compare sweep
    /// fingerprints before getting here).
    pub fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if !self.shape_matches(other) {
            return Err(MergeError::new(format!(
                "cannot merge grouped reducers with different shapes: \
                 this side is {}, the other is {}",
                self.shape_description(),
                other.shape_description()
            )));
        }
        for (key, acc) in &other.groups {
            match self.groups.entry(key.clone()) {
                std::collections::btree_map::Entry::Occupied(mut slot) => slot.get_mut().merge(acc),
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(acc.clone());
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Snapshot impls: exact JSON round-trips for checkpoint/resume. Every
// field is persisted verbatim — nothing is re-derived on restore, so a
// restored accumulator continues bit-identically to the original.
// ---------------------------------------------------------------------

impl Snapshot for Welford {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("count", Json::u64(self.count)),
            ("mean", Json::f64(self.mean)),
            ("m2", Json::f64(self.m2)),
            ("min", Json::f64(self.min)),
            ("max", Json::f64(self.max)),
        ])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        Ok(Self {
            count: json.get("count")?.as_u64()?,
            mean: json.get("mean")?.as_f64()?,
            m2: json.get("m2")?.as_f64()?,
            min: json.get("min")?.as_f64()?,
            max: json.get("max")?.as_f64()?,
        })
    }
}

/// Reads a fixed-length `f64` array field.
fn f64_array<const N: usize>(json: &Json) -> Result<[f64; N], SnapshotError> {
    let values = json.as_f64s()?;
    values.try_into().map_err(|_| SnapshotError::new(format!("expected an array of {N} numbers")))
}

impl Snapshot for P2Quantile {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("p", Json::f64(self.p)),
            ("q", Json::f64s(self.q)),
            ("n", Json::Arr(self.n.iter().map(|&v| Json::Num(v.to_string())).collect())),
            ("np", Json::f64s(self.np)),
            ("dn", Json::f64s(self.dn)),
            ("initial", Json::f64s(self.initial.iter().copied())),
            ("count", Json::u64(self.count)),
        ])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        let n_values: Vec<i64> =
            json.get("n")?.items()?.iter().map(Json::as_i64).collect::<Result<_, _>>()?;
        let n: [i64; 5] = n_values
            .try_into()
            .map_err(|_| SnapshotError::new("expected an array of 5 marker positions"))?;
        let p = json.get("p")?.as_f64()?;
        if !(p > 0.0 && p < 1.0) {
            return Err(SnapshotError::new(format!("quantile {p} outside (0, 1)")));
        }
        Ok(Self {
            p,
            q: f64_array(json.get("q")?)?,
            n,
            np: f64_array(json.get("np")?)?,
            dn: f64_array(json.get("dn")?)?,
            initial: json.get("initial")?.as_f64s()?,
            count: json.get("count")?.as_u64()?,
        })
    }
}

impl Snapshot for OnlineStats {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("welford", self.welford.snapshot()),
            ("p50", self.p50.snapshot()),
            ("p95", self.p95.snapshot()),
        ])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        Ok(Self {
            welford: Welford::restore(json.get("welford")?)?,
            p50: P2Quantile::restore(json.get("p50")?)?,
            p95: P2Quantile::restore(json.get("p95")?)?,
        })
    }
}

impl Snapshot for FreqResidency {
    fn snapshot(&self) -> Json {
        let rows = self
            .by_mhz
            .iter()
            .map(|(&mhz, &ns)| Json::Arr(vec![Json::u64(mhz as u64), Json::u64(ns)]))
            .collect();
        Json::obj([("unknown_ns", Json::u64(self.unknown_ns)), ("residency", Json::Arr(rows))])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        let mut by_mhz = BTreeMap::new();
        for row in json.get("residency")?.items()? {
            let [mhz, ns] = row.items()? else {
                return Err(SnapshotError::new("expected [mhz, ns] residency pairs"));
            };
            let mhz = u32::try_from(mhz.as_u64()?)
                .map_err(|_| SnapshotError::new("frequency exceeds u32"))?;
            if by_mhz.insert(mhz, ns.as_u64()?).is_some() {
                return Err(SnapshotError::new(format!("duplicate residency row for {mhz} MHz")));
            }
        }
        Ok(Self { by_mhz, unknown_ns: json.get("unknown_ns")?.as_u64()? })
    }
}

impl Snapshot for TransitionStats {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("completed", Json::u64(self.completed)),
            ("fast_path", Json::u64(self.fast_path)),
            ("latency_ns", self.latency_ns.snapshot()),
        ])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        Ok(Self {
            completed: json.get("completed")?.as_u64()?,
            fast_path: json.get("fast_path")?.as_u64()?,
            latency_ns: OnlineStats::restore(json.get("latency_ns")?)?,
        })
    }
}

impl<A> GroupedStats<A> {
    /// Whether `other` reduces the same grid the same way: same grouping
    /// axes (names and value labels), same axis positions, same sweep
    /// axis lengths. Accumulator contents are not compared — this is the
    /// resume-time guard that a checkpoint belongs to the sweep being
    /// resumed.
    pub fn shape_matches(&self, other: &Self) -> bool {
        self.axes == other.axes && self.positions == other.positions && self.lens == other.lens
    }

    /// A one-line rendering of the shape, for mismatch errors.
    pub fn shape_description(&self) -> String {
        let axes: Vec<String> =
            self.axes.iter().map(|(name, values)| format!("{name}({})", values.len())).collect();
        format!("grouped by [{}] over grid {:?}", axes.join(", "), self.lens)
    }

    /// The shape alone (axes, positions, lens) as JSON — the grouped
    /// header line of a checkpoint file.
    pub(crate) fn shape_snapshot(&self) -> Json {
        let axes = self
            .axes
            .iter()
            .map(|(name, values)| {
                Json::obj([
                    ("name", Json::str(name.clone())),
                    ("values", Json::Arr(values.iter().map(|v| Json::str(v.clone())).collect())),
                ])
            })
            .collect();
        Json::obj([
            ("axes", Json::Arr(axes)),
            ("positions", Json::usizes(self.positions.iter().copied())),
            ("lens", Json::usizes(self.lens.iter().copied())),
        ])
    }

    /// Rebuilds an empty reducer from a [`shape_snapshot`](Self::shape_snapshot).
    pub(crate) fn restore_shape(json: &Json) -> Result<Self, SnapshotError> {
        let mut axes = Vec::new();
        for axis in json.get("axes")?.items()? {
            let name = axis.get("name")?.as_str()?.to_string();
            let values = axis
                .get("values")?
                .items()?
                .iter()
                .map(|v| Ok(v.as_str()?.to_string()))
                .collect::<Result<Vec<_>, SnapshotError>>()?;
            axes.push((name, values));
        }
        let positions = json.get("positions")?.as_usizes()?;
        let lens = json.get("lens")?.as_usizes()?;
        if positions.len() != axes.len() {
            return Err(SnapshotError::new("positions and axes disagree in length"));
        }
        if positions.iter().any(|&p| p >= lens.len()) {
            return Err(SnapshotError::new("grouping position outside the sweep's axes"));
        }
        Ok(Self { axes, positions, lens, groups: BTreeMap::new() })
    }
}

impl<A: Snapshot> GroupedStats<A> {
    /// One `{"key": …, "acc": …}` object per touched group, in grid
    /// order — the row lines of a checkpoint file.
    pub(crate) fn row_snapshots(&self) -> impl Iterator<Item = Json> + '_ {
        self.groups.iter().map(|(key, acc)| {
            Json::obj([("key", Json::usizes(key.iter().copied())), ("acc", acc.snapshot())])
        })
    }

    /// Inserts one [`row_snapshots`](Self::row_snapshots) row back.
    pub(crate) fn restore_row(&mut self, json: &Json) -> Result<(), SnapshotError> {
        let key = json.get("key")?.as_usizes()?;
        if key.len() != self.axes.len() {
            return Err(SnapshotError::new(format!(
                "group key {key:?} has {} indices, the shape groups by {} axes",
                key.len(),
                self.axes.len()
            )));
        }
        for (i, (&v, (name, values))) in key.iter().zip(&self.axes).enumerate() {
            if v >= values.len() {
                return Err(SnapshotError::new(format!(
                    "group key index {v} out of range for axis {name:?} (position {i}, {} values)",
                    values.len()
                )));
            }
        }
        let acc = A::restore(json.get("acc")?)?;
        if self.groups.insert(key.clone(), acc).is_some() {
            return Err(SnapshotError::new(format!("duplicate group key {key:?}")));
        }
        Ok(())
    }
}

/// The whole reducer — shape plus every touched group's accumulator —
/// as one self-contained snapshot. Checkpoint files split the same data
/// across lines (shape first, then one object per row) via the
/// `pub(crate)` halves; this impl is the single-document form used by
/// round-trip tests and ad-hoc persistence.
impl<A: Snapshot> Snapshot for GroupedStats<A> {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("shape", self.shape_snapshot()),
            ("rows", Json::Arr(self.row_snapshots().collect())),
        ])
    }

    fn restore(json: &Json) -> Result<Self, SnapshotError> {
        let mut grouped = Self::restore_shape(json.get("shape")?)?;
        for row in json.get("rows")?.items()? {
            grouped.restore_row(row)?;
        }
        Ok(grouped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen2_topology::CoreId;

    fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
        let rank = p * (sorted.len() - 1) as f64;
        let (lo, hi) = (rank.floor() as usize, rank.ceil() as usize);
        sorted[lo] + (rank - lo as f64) * (sorted[hi] - sorted[lo])
    }

    #[test]
    fn welford_matches_batch_formulas() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 1000);
        assert!((w.mean() - crate::methodology::mean(&xs)).abs() < 1e-9);
        assert!((w.std_dev() - crate::methodology::std_dev(&xs)).abs() < 1e-9);
        assert_eq!(w.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(w.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn p2_is_exact_for_small_samples() {
        let mut q = P2Quantile::new(0.5);
        for x in [5.0, 1.0, 3.0] {
            q.push(x);
        }
        assert_eq!(q.estimate(), 3.0);
        q.push(2.0);
        q.push(4.0);
        assert_eq!(q.estimate(), 3.0);
    }

    #[test]
    fn p2_tracks_known_quantiles_of_a_large_stream() {
        // A deterministic, well-shuffled stream over [0, 1).
        let xs: Vec<f64> = (0..10_000u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64)
            .collect();
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        for p in [0.5, 0.95] {
            let mut est = P2Quantile::new(p);
            for &x in &xs {
                est.push(x);
            }
            let exact = exact_quantile(&sorted, p);
            assert!(
                (est.estimate() - exact).abs() < 0.02,
                "p{p}: estimate {} vs exact {exact}",
                est.estimate()
            );
        }
    }

    #[test]
    fn online_stats_bundle() {
        let mut s = OnlineStats::new();
        for i in 1..=100 {
            s.push(i as f64);
        }
        assert_eq!(s.count(), 100);
        assert!((s.mean() - 50.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.p50() - 50.5).abs() < 2.0);
        assert!((s.p95() - 95.0).abs() < 2.5);
    }

    fn applied(at_ns: Ns, mhz: u32) -> Record {
        Record { at_ns, event: Event::FreqApplied { core: CoreId(0), mhz, fast_path: false } }
    }

    fn requested(at_ns: Ns, target_mhz: u32) -> Record {
        Record { at_ns, event: Event::FreqRequested { core: CoreId(0), target_mhz } }
    }

    #[test]
    fn residency_attributes_segments_and_unknown_lead_in() {
        let records = [applied(100, 2200), applied(300, 1500), applied(900, 2200)];
        let mut r = FreqResidency::new();
        r.observe(&records, 0, 1000);
        assert_eq!(r.unknown_ns(), 100);
        assert_eq!(r.residency()[&2200], 200 + 100);
        assert_eq!(r.residency()[&1500], 600);
        assert_eq!(r.total_ns(), 1000);
        // A second observation accumulates, and pre-window records
        // establish the frequency at the window start.
        r.observe(&records, 400, 800);
        assert_eq!(r.residency()[&1500], 600 + 400);
    }

    #[test]
    fn residency_share_ignores_unknown_time() {
        let mut r = FreqResidency::new();
        r.observe(&[applied(500, 1500)], 0, 1000);
        assert_eq!(r.unknown_ns(), 500);
        assert!((r.share(1500) - 1.0).abs() < 1e-12);
        assert_eq!(r.share(2200), 0.0);
    }

    #[test]
    fn transitions_pair_requests_with_applies() {
        let records = [
            requested(100, 1500),
            // A repeat of the pending target must not restart the clock.
            requested(200, 1500),
            applied(500, 1500),
            requested(1000, 2200),
            applied(1400, 2200),
            // An apply with no pending request is ignored.
            applied(2000, 2500),
        ];
        let mut t = TransitionStats::new();
        t.observe(&records);
        assert_eq!(t.completed(), 2);
        assert_eq!(t.fast_path(), 0);
        assert_eq!(t.latency_ns().count(), 2);
        assert_eq!(t.latency_ns().min(), 400.0);
        assert_eq!(t.latency_ns().max(), 400.0);
    }

    #[test]
    fn transitions_survive_overlapping_requests() {
        // The SMU queues a request that arrives mid-transition; both
        // transitions complete and both must be counted with their own
        // request times.
        let records =
            [requested(0, 1500), requested(10, 2200), applied(500, 1500), applied(900, 2200)];
        let mut t = TransitionStats::new();
        t.observe(&records);
        assert_eq!(t.completed(), 2);
        assert_eq!(t.latency_ns().min(), 500.0);
        assert_eq!(t.latency_ns().max(), 890.0);
    }

    /// A 3×2 grid shape for grouped-routing tests (never simulated).
    fn shape_sweep() -> Sweep {
        Sweep::new("shape", crate::SimConfig::epyc_7502_2s())
            .axis(crate::sweep::Axis::param("outer", [10.0, 20.0, 30.0]))
            .axis(crate::sweep::Axis::param("inner", [1.0, 2.0]))
    }

    #[test]
    fn grouped_routes_case_indices_like_axis_indices() {
        let sweep = shape_sweep();
        let mut by_outer: GroupedStats<Welford> = GroupedStats::new(&sweep, &["outer"]);
        let mut by_inner: GroupedStats<Welford> = GroupedStats::new(&sweep, &["inner"]);
        for i in 0..sweep.len() {
            by_outer.entry(i).push(i as f64);
            by_inner.entry(i).push(i as f64);
        }
        // Row-major: outer varies every 2 cases, inner alternates.
        assert_eq!(by_outer.len(), 3);
        let outer: Vec<_> = by_outer.rows().collect();
        assert_eq!(outer[0].0, ["10"]);
        assert_eq!(outer[0].1.min(), 0.0);
        assert_eq!(outer[0].1.max(), 1.0);
        assert_eq!(outer[2].0, ["30"]);
        assert_eq!(outer[2].1.min(), 4.0);
        assert_eq!(by_inner.len(), 2);
        assert_eq!(by_inner.get(&["1"]).unwrap().count(), 3);
        assert_eq!(by_inner.get(&["2"]).unwrap().mean(), (1.0 + 3.0 + 5.0) / 3.0);
    }

    #[test]
    fn grouped_by_both_axes_gives_one_group_per_case() {
        let sweep = shape_sweep();
        let mut g: GroupedStats<Welford> = GroupedStats::new(&sweep, &["outer", "inner"]);
        for i in 0..sweep.len() {
            g.entry(i).push(i as f64);
        }
        assert_eq!(g.len(), 6);
        let labels: Vec<Vec<&str>> = g.rows().map(|(labels, _)| labels).collect();
        assert_eq!(labels[0], ["10", "1"]);
        assert_eq!(labels[1], ["10", "2"]);
        assert_eq!(labels[5], ["30", "2"]);
        assert_eq!(g.group_axes().collect::<Vec<_>>(), ["outer", "inner"]);
        // Owned extraction preserves grid order.
        let owned: Vec<(Vec<String>, Welford)> = g.into_rows().collect();
        assert_eq!(owned[5].0, ["30", "2"]);
        assert_eq!(owned[5].1.mean(), 5.0);
    }

    #[test]
    fn grouped_get_rejects_unknown_labels_and_wrong_arity() {
        let sweep = shape_sweep();
        let mut g: GroupedStats<Welford> = GroupedStats::new(&sweep, &["outer"]);
        g.entry(0).push(1.0);
        assert!(g.get(&["10"]).is_some());
        assert!(g.get(&["20"]).is_none(), "valid label, untouched group");
        assert!(g.get(&["nope"]).is_none());
        assert!(g.get(&["10", "1"]).is_none(), "arity mismatch");
        assert!(g.get(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "no axis named")]
    fn grouped_rejects_unknown_axis() {
        let _: GroupedStats<Welford> = GroupedStats::new(&shape_sweep(), &["nope"]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn grouped_rejects_out_of_range_case() {
        let sweep = shape_sweep();
        let mut g: GroupedStats<Welford> = GroupedStats::new(&sweep, &["outer"]);
        g.entry(6);
    }

    #[test]
    fn snapshots_round_trip_exactly() {
        let mut online = OnlineStats::new();
        let mut welford = Welford::new();
        let mut freq = FreqResidency::new();
        let mut trans = TransitionStats::new();
        for i in 0..100 {
            let x = ((i * 37) % 101) as f64 / 7.0 - 5.0;
            online.push(x);
            welford.push(x);
        }
        freq.observe(&[applied(100, 2200), applied(300, 1500)], 0, 1000);
        trans.observe(&[requested(100, 1500), applied(500, 1500)]);

        assert_eq!(OnlineStats::from_json_text(&online.to_json_text()).unwrap(), online);
        assert_eq!(Welford::from_json_text(&welford.to_json_text()).unwrap(), welford);
        assert_eq!(FreqResidency::from_json_text(&freq.to_json_text()).unwrap(), freq);
        assert_eq!(TransitionStats::from_json_text(&trans.to_json_text()).unwrap(), trans);

        // A restored accumulator continues bit-identically.
        let mut restored = OnlineStats::from_json_text(&online.to_json_text()).unwrap();
        online.push(0.123456789);
        restored.push(0.123456789);
        assert_eq!(online, restored);
        assert_eq!(online.p95().to_bits(), restored.p95().to_bits());
    }

    #[test]
    fn grouped_snapshot_round_trips_and_guards_shape() {
        let sweep = shape_sweep();
        let mut g: GroupedStats<Welford> = GroupedStats::new(&sweep, &["outer"]);
        for i in 0..4 {
            g.entry(i).push(i as f64);
        }
        let restored = GroupedStats::<Welford>::from_json_text(&g.to_json_text()).unwrap();
        assert_eq!(restored, g);
        assert!(restored.shape_matches(&g));
        // A reducer over different axes does not match.
        let other: GroupedStats<Welford> = GroupedStats::new(&sweep, &["inner"]);
        assert!(!other.shape_matches(&g));
        assert!(g.shape_description().contains("outer(3)"));
        // Restored reducers keep routing cases identically.
        let mut a = g.clone();
        let mut b = restored;
        a.entry(5).push(9.0);
        b.entry(5).push(9.0);
        assert_eq!(a, b);
    }

    #[test]
    fn grouped_restore_rejects_corrupt_rows() {
        let sweep = shape_sweep();
        let mut g: GroupedStats<Welford> = GroupedStats::new(&sweep, &["outer"]);
        g.entry(0).push(1.0);
        let shape = g.shape_snapshot();
        let mut fresh = GroupedStats::<Welford>::restore_shape(&shape).unwrap();
        // Key arity mismatch.
        let bad = Json::obj([("key", Json::usizes([0, 1])), ("acc", Welford::new().snapshot())]);
        assert!(fresh.restore_row(&bad).is_err());
        // Key index out of range for the axis.
        let bad = Json::obj([("key", Json::usizes([9])), ("acc", Welford::new().snapshot())]);
        assert!(fresh.restore_row(&bad).unwrap_err().to_string().contains("out of range"));
        // Duplicate rows are rejected.
        let row = g.row_snapshots().next().unwrap();
        fresh.restore_row(&row).unwrap();
        assert!(fresh.restore_row(&row).unwrap_err().to_string().contains("duplicate"));
    }

    #[test]
    fn transitions_track_fast_path_and_pending_drops() {
        let mut t = TransitionStats::new();
        t.observe(&[
            requested(0, 2500),
            Record {
                at_ns: 10,
                event: Event::FreqApplied { core: CoreId(0), mhz: 2500, fast_path: true },
            },
            // Left pending at end of stream: dropped.
            requested(100, 1500),
        ]);
        assert_eq!(t.completed(), 1);
        assert_eq!(t.fast_path(), 1);
    }

    #[test]
    fn welford_merge_is_chan_combination() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let mut one = Welford::new();
        for &x in &xs {
            one.push(x);
        }
        for cut in [0, 1, 499, 999, 1000] {
            let mut a = Welford::new();
            for &x in &xs[..cut] {
                a.push(x);
            }
            let mut b = Welford::new();
            for &x in &xs[cut..] {
                b.push(x);
            }
            a.merge(&b);
            assert_eq!(a.count(), one.count());
            assert_eq!(a.min(), one.min());
            assert_eq!(a.max(), one.max());
            assert!((a.mean() - one.mean()).abs() < 1e-9, "cut {cut}");
            assert!((a.std_dev() - one.std_dev()).abs() < 1e-9, "cut {cut}");
        }
        // Merging with an empty side is bit-exact in both directions.
        let mut left = one.clone();
        left.merge(&Welford::new());
        assert_eq!(left, one);
        let mut empty = Welford::new();
        empty.merge(&one);
        assert_eq!(empty, one);
    }

    #[test]
    fn p2_merge_replays_a_small_side_exactly() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 53) % 97) as f64 / 9.0).collect();
        let mut one = P2Quantile::new(0.5);
        for &x in &xs {
            one.push(x);
        }
        // Right side holds ≤ 5 observations: its raw samples are still
        // in the initial buffer, so the merge is exact one-pass replay.
        let mut a = P2Quantile::new(0.5);
        for &x in &xs[..96] {
            a.push(x);
        }
        let mut b = P2Quantile::new(0.5);
        for &x in &xs[96..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a, one);
    }

    #[test]
    fn p2_merge_tracks_re_reduce_on_a_large_stream() {
        // The documented empirical bound: merged vs re-reduced within a
        // few percent of the observed range on smooth 10⁴-sample
        // streams (the hard bound — the full range — is proptested).
        let xs: Vec<f64> = (0..10_000u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64)
            .collect();
        for p in [0.5, 0.95] {
            let re_reduced = P2Quantile::from_samples(p, xs.iter().copied());
            for cut in [50, 2_500, 5_000, 9_950] {
                let mut a = P2Quantile::from_samples(p, xs[..cut].iter().copied());
                let b = P2Quantile::from_samples(p, xs[cut..].iter().copied());
                a.merge(&b);
                assert_eq!(a.count(), 10_000);
                let diff = (a.estimate() - re_reduced.estimate()).abs();
                assert!(
                    diff < 0.05,
                    "p{p} cut {cut}: merged {} vs re-reduced {}",
                    a.estimate(),
                    re_reduced.estimate()
                );
            }
        }
    }

    #[test]
    fn residency_and_transition_merges_are_exact() {
        let batch_a = [applied(100, 2200), applied(300, 1500)];
        let batch_b = [applied(50, 2500), applied(700, 2200)];
        let mut one = FreqResidency::new();
        one.observe(&batch_a, 0, 1000);
        one.observe(&batch_b, 0, 1000);
        let mut a = FreqResidency::new();
        a.observe(&batch_a, 0, 1000);
        let mut b = FreqResidency::new();
        b.observe(&batch_b, 0, 1000);
        a.merge(&b);
        assert_eq!(a, one);

        let records_a = [requested(100, 1500), applied(500, 1500)];
        let records_b = [requested(0, 2200), applied(900, 2200)];
        let mut one = TransitionStats::new();
        one.observe(&records_a);
        one.observe(&records_b);
        let mut ta = TransitionStats::new();
        ta.observe(&records_a);
        let mut tb = TransitionStats::new();
        tb.observe(&records_b);
        ta.merge(&tb);
        assert_eq!(ta.completed(), one.completed());
        assert_eq!(ta.fast_path(), one.fast_path());
        assert_eq!(ta.latency_ns().count(), one.latency_ns().count());
        assert_eq!(ta.latency_ns().min(), one.latency_ns().min());
        assert_eq!(ta.latency_ns().max(), one.latency_ns().max());
        assert!((ta.latency_ns().mean() - one.latency_ns().mean()).abs() < 1e-9);
    }

    #[test]
    fn grouped_merge_unions_rows_and_guards_shape() {
        let sweep = shape_sweep();
        // Disjoint case ranges over an all-axes grouping: one case per
        // row, so the union is verbatim — bit-exact vs one pass.
        let mut left: GroupedStats<Welford> = GroupedStats::new(&sweep, &["outer", "inner"]);
        let mut right = left.clone();
        let mut one = left.clone();
        for i in 0..6 {
            one.entry(i).push(i as f64);
            if i < 3 {
                left.entry(i).push(i as f64);
            } else {
                right.entry(i).push(i as f64);
            }
        }
        left.merge(&right).unwrap();
        assert_eq!(left, one);
        // Rows both sides touched merge their accumulators.
        let mut a: GroupedStats<Welford> = GroupedStats::new(&sweep, &["outer"]);
        let mut b = a.clone();
        a.entry(0).push(1.0);
        b.entry(0).push(3.0);
        b.entry(4).push(9.0);
        a.merge(&b).unwrap();
        assert_eq!(a.get(&["10"]).unwrap().count(), 2);
        assert_eq!(a.get(&["10"]).unwrap().mean(), 2.0);
        assert_eq!(a.get(&["30"]).unwrap().count(), 1);
        // The shape guard names both shapes.
        let mut by_inner: GroupedStats<Welford> = GroupedStats::new(&sweep, &["inner"]);
        let err = by_inner.merge(&a).unwrap_err();
        assert!(err.to_string().contains("different shapes"), "{err}");
        assert!(err.to_string().contains("outer(3)"), "{err}");
    }

    #[test]
    fn online_stats_merge_bundles_all_three() {
        let xs: Vec<f64> = (0..200).map(|i| ((i * 31) % 83) as f64).collect();
        let mut one = OnlineStats::new();
        for &x in &xs {
            one.push(x);
        }
        let mut a = OnlineStats::new();
        for &x in &xs[..120] {
            a.push(x);
        }
        let mut b = OnlineStats::new();
        for &x in &xs[120..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), one.min());
        assert_eq!(a.max(), one.max());
        assert!((a.mean() - one.mean()).abs() < 1e-9);
        // Quantiles carry the P² merge tolerance: close on this smooth
        // stream, hard-bounded by the observed range in general.
        assert!((a.p50() - one.p50()).abs() < 5.0);
        assert!((a.p95() - one.p95()).abs() < 5.0);
    }
}

/// Merge laws (see the satellite battery in `tests/fleet_merge.rs` for
/// the checkpoint-level partition equivalence): merging any split of a
/// stream agrees with one-pass accumulation over the whole stream, and
/// merge is associative — exactly for integer state, up to
/// magnitude-scaled floating-point rounding for Welford means and
/// variances, and within the documented bounds for P² quantiles.
#[cfg(test)]
mod merge_props {
    use super::*;
    use crate::proptests::arb_finite_f64;
    use proptest::prelude::*;
    use zen2_topology::CoreId;

    /// A deterministic well-shuffled stream over [0, 1) from a seed.
    fn uniform_stream(seed: u64, len: usize) -> Vec<f64> {
        (0..len as u64)
            .map(|i| {
                let x = (seed ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let x = (x ^ (x >> 31)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                ((x ^ (x >> 27)) >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn folded<'a>(xs: impl IntoIterator<Item = &'a f64>) -> Welford {
        let mut w = Welford::new();
        for &x in xs {
            w.push(x);
        }
        w
    }

    /// Merged-vs-one-pass agreement for floating-point state: the two
    /// evaluation orders round differently, so agreement holds up to a
    /// tolerance scaled by the data's magnitude. Where the scale itself
    /// leaves the representable range (differences or squares overflow
    /// `f64`), either order may overflow and the comparison is vacuous.
    fn agrees(a: f64, b: f64, tol: f64) -> bool {
        if tol.is_infinite() {
            return true;
        }
        a.to_bits() == b.to_bits() || (a - b).abs() <= tol
    }

    fn mean_tol(n: usize, scale: f64) -> f64 {
        if scale > 8.0e307 {
            // mean differences up to 2·scale are not representable.
            return f64::INFINITY;
        }
        1e-9 * scale.max(1.0) * n.max(1) as f64
    }

    fn var_tol(n: usize, scale: f64) -> f64 {
        let s = scale.max(1.0) * n.max(1) as f64;
        1e-8 * s * s // overflows to +inf exactly when squares can
    }

    fn magnitude(xs: &[f64]) -> f64 {
        xs.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    fn variance(w: &Welford) -> f64 {
        let sd = w.std_dev();
        sd * sd
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64 })]

        /// Welford: merging any split agrees with one-pass accumulation
        /// over the concatenated stream — count/min/max exactly,
        /// mean/variance up to magnitude-scaled rounding.
        #[test]
        fn welford_merge_agrees_with_one_pass(
            xs in prop::collection::vec(arb_finite_f64(), 0..200),
            raw_cut in any::<usize>(),
        ) {
            let cut = raw_cut % (xs.len() + 1);
            let one = folded(&xs);
            let mut merged = folded(&xs[..cut]);
            merged.merge(&folded(&xs[cut..]));
            prop_assert_eq!(merged.count(), one.count());
            if xs.is_empty() {
                return Ok(());
            }
            let scale = magnitude(&xs);
            prop_assert!(merged.min() == one.min() && merged.max() == one.max());
            prop_assert!(
                agrees(merged.mean(), one.mean(), mean_tol(xs.len(), scale)),
                "mean {} vs {}", merged.mean(), one.mean()
            );
            if xs.len() >= 2 {
                prop_assert!(
                    agrees(variance(&merged), variance(&one), var_tol(xs.len(), scale)),
                    "variance {} vs {}", variance(&merged), variance(&one)
                );
            }
        }

        /// Welford: merge is associative — (a⊕b)⊕c vs a⊕(b⊕c), same
        /// exact/tolerance split as above.
        #[test]
        fn welford_merge_is_associative(
            xs in prop::collection::vec(arb_finite_f64(), 0..200),
            raw_i in any::<usize>(),
            raw_j in any::<usize>(),
        ) {
            let i = raw_i % (xs.len() + 1);
            let j = i + raw_j % (xs.len() - i + 1);
            let (a, b, c) = (folded(&xs[..i]), folded(&xs[i..j]), folded(&xs[j..]));
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut right_tail = b;
            right_tail.merge(&c);
            let mut right = a;
            right.merge(&right_tail);
            prop_assert_eq!(left.count(), right.count());
            if xs.is_empty() {
                return Ok(());
            }
            let scale = magnitude(&xs);
            prop_assert!(left.min() == right.min() && left.max() == right.max());
            prop_assert!(agrees(left.mean(), right.mean(), mean_tol(xs.len(), scale)));
            if xs.len() >= 2 {
                prop_assert!(agrees(variance(&left), variance(&right), var_tol(xs.len(), scale)));
            }
        }

        /// OnlineStats: the Welford half follows the Welford laws; the
        /// quantile halves stay within the hard bound (both estimates
        /// are marker heights, confined to the observed range).
        #[test]
        fn online_stats_merge_agrees_with_one_pass(
            xs in prop::collection::vec(arb_finite_f64(), 1..200),
            raw_cut in any::<usize>(),
        ) {
            let cut = raw_cut % (xs.len() + 1);
            let mut one = OnlineStats::new();
            for &x in &xs {
                one.push(x);
            }
            let mut merged = OnlineStats::new();
            for &x in &xs[..cut] {
                merged.push(x);
            }
            let mut later = OnlineStats::new();
            for &x in &xs[cut..] {
                later.push(x);
            }
            merged.merge(&later);
            prop_assert_eq!(merged.count(), one.count());
            let scale = magnitude(&xs);
            prop_assert!(merged.min() == one.min() && merged.max() == one.max());
            prop_assert!(agrees(merged.mean(), one.mean(), mean_tol(xs.len(), scale)));
            // Hard quantile bound: estimates never leave [min, max].
            let span = one.max() - one.min();
            prop_assert!(agrees(merged.p50(), one.p50(), span.abs()));
            prop_assert!(agrees(merged.p95(), one.p95(), span.abs()));
        }

        /// FreqResidency: integer state — merge equals observing every
        /// batch through one accumulator, bit-for-bit, and is
        /// associative.
        #[test]
        fn freq_residency_merge_is_exact(
            batches in prop::collection::vec(
                prop::collection::vec((prop::sample::select(vec![1500u32, 2200, 2500]), 1u64..500), 0..8),
                3,
            ),
        ) {
            let records: Vec<Vec<Record>> = batches
                .iter()
                .map(|batch| {
                    let mut at = 0;
                    batch
                        .iter()
                        .map(|&(mhz, gap)| {
                            at += gap;
                            Record {
                                at_ns: at,
                                event: Event::FreqApplied { core: CoreId(0), mhz, fast_path: false },
                            }
                        })
                        .collect()
                })
                .collect();
            let mut one = FreqResidency::new();
            let parts: Vec<FreqResidency> = records
                .iter()
                .map(|records| {
                    one.observe(records, 0, 5000);
                    let mut part = FreqResidency::new();
                    part.observe(records, 0, 5000);
                    part
                })
                .collect();
            let mut left = parts[0].clone();
            left.merge(&parts[1]);
            left.merge(&parts[2]);
            let mut tail = parts[1].clone();
            tail.merge(&parts[2]);
            let mut right = parts[0].clone();
            right.merge(&tail);
            prop_assert_eq!(&left, &one);
            prop_assert_eq!(&right, &one);
        }

        /// TransitionStats: counts merge bit-exactly; the latency
        /// summary follows the OnlineStats laws.
        #[test]
        fn transition_merge_agrees_with_one_pass(
            batches in prop::collection::vec(
                prop::collection::vec((1u64..1_000_000, 1u64..2_000_000), 0..6),
                3,
            ),
        ) {
            // Sequential request→apply pairs, alternating targets so
            // every request pairs with its own apply.
            let records: Vec<Vec<Record>> = batches
                .iter()
                .map(|batch| {
                    let mut at = 0;
                    let mut out = Vec::new();
                    for (k, &(gap, delay)) in batch.iter().enumerate() {
                        let target = if k % 2 == 0 { 1500 } else { 2200 };
                        at += gap;
                        out.push(Record {
                            at_ns: at,
                            event: Event::FreqRequested { core: CoreId(0), target_mhz: target },
                        });
                        at += delay;
                        out.push(Record {
                            at_ns: at,
                            event: Event::FreqApplied {
                                core: CoreId(0),
                                mhz: target,
                                fast_path: false,
                            },
                        });
                    }
                    out
                })
                .collect();
            let mut one = TransitionStats::new();
            let parts: Vec<TransitionStats> = records
                .iter()
                .map(|records| {
                    one.observe(records);
                    let mut part = TransitionStats::new();
                    part.observe(records);
                    part
                })
                .collect();
            let mut merged = parts[0].clone();
            merged.merge(&parts[1]);
            merged.merge(&parts[2]);
            prop_assert_eq!(merged.completed(), one.completed());
            prop_assert_eq!(merged.fast_path(), one.fast_path());
            prop_assert_eq!(merged.latency_ns().count(), one.latency_ns().count());
            if one.latency_ns().count() > 0 {
                prop_assert!(merged.latency_ns().min() == one.latency_ns().min());
                prop_assert!(merged.latency_ns().max() == one.latency_ns().max());
                let n = one.latency_ns().count() as usize;
                prop_assert!(agrees(
                    merged.latency_ns().mean(),
                    one.latency_ns().mean(),
                    mean_tol(n, 2e6)
                ));
            }
        }

        /// P²: the merge error versus a re-reduce over the concatenated
        /// 10⁴-sample stream is small on smooth streams (≤ 5% of the
        /// range here) — the documented empirical bound.
        #[test]
        fn p2_merge_error_bounded_vs_re_reduce(
            seed in any::<u64>(),
            raw_cut in any::<usize>(),
        ) {
            let xs = uniform_stream(seed, 10_000);
            // Keep both sides past the initial buffer so the
            // marker-weighted path (not the exact replay) is exercised.
            let cut = 6 + raw_cut % (xs.len() - 12);
            for p in [0.5, 0.95] {
                let re_reduced = P2Quantile::from_samples(p, xs.iter().copied());
                let mut merged = P2Quantile::from_samples(p, xs[..cut].iter().copied());
                merged.merge(&P2Quantile::from_samples(p, xs[cut..].iter().copied()));
                prop_assert_eq!(merged.count(), 10_000);
                let diff = (merged.estimate() - re_reduced.estimate()).abs();
                prop_assert!(diff < 0.05, "p{} cut {}: diff {}", p, cut, diff);
            }
        }

        /// P² hard bound on arbitrary finite streams: merged and
        /// re-reduced estimates are both marker heights, so they can
        /// never differ by more than the observed range.
        #[test]
        fn p2_merge_respects_the_hard_range_bound(
            xs in prop::collection::vec(arb_finite_f64(), 12..300),
            raw_cut in any::<usize>(),
        ) {
            let cut = 6 + raw_cut % (xs.len() - 11);
            let re_reduced = P2Quantile::from_samples(0.5, xs.iter().copied());
            let mut merged = P2Quantile::from_samples(0.5, xs[..cut].iter().copied());
            merged.merge(&P2Quantile::from_samples(0.5, xs[cut..].iter().copied()));
            let lo = xs.iter().fold(f64::INFINITY, |m, &x| m.min(x));
            let hi = xs.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
            let span = hi - lo; // +inf when not representable: vacuous
            prop_assert!(agrees(merged.estimate(), re_reduced.estimate(), span));
        }
    }
}
