//! Idle-state machinery (Section VI).
//!
//! Three C-states exist on the test system (OS numbering): C0 (active),
//! C1 (entered via `monitor`/`mwait`, clock-gates the core) and C2
//! (entered via an I/O-port read, power-gates the core). Deep *package*
//! sleep (PC6) has a single, global criterion on the paper's system: every
//! hardware thread of every package must sit in the deepest state. One
//! thread in C1 — or an *offlined* thread parked in C1 by the kernel's
//! play-dead path (the Section VI-B anomaly) — keeps both packages out of
//! PC6 and costs +81 W at the wall.

use serde::{Deserialize, Serialize};

/// Scheduling state of one hardware thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadState {
    /// Executing instructions.
    Active,
    /// Idle in C1 (clock gated; APERF/MPERF/cycle counters halt).
    C1,
    /// Idle in C2 (power gated).
    C2,
    /// Offlined through sysfs. Whether this blocks package sleep depends
    /// on [`crate::config::OsParams::offline_parks_in_c1`].
    Offline,
}

impl ThreadState {
    /// Whether this thread state permits deep package sleep, given the
    /// offline-parking behavior of the kernel.
    pub fn allows_package_c6(self, offline_parks_in_c1: bool) -> bool {
        match self {
            ThreadState::Active | ThreadState::C1 => false,
            ThreadState::C2 => true,
            ThreadState::Offline => !offline_parks_in_c1,
        }
    }

    /// Whether the thread is consuming its core's execution resources.
    pub fn is_active(self) -> bool {
        matches!(self, ThreadState::Active)
    }
}

/// Power-relevant classification of one *core* from its two thread states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreIdleClass {
    /// At least one thread executes.
    Active {
        /// Number of threads in C0 on this core (1 or 2).
        active_threads: usize,
    },
    /// No thread executes; the shallowest idle thread is in C1 (or parked
    /// offline in C1): the core is clock-gated but not power-gated.
    ClockGated,
    /// Every thread is in C2 (or cleanly offline): the core is power-gated.
    PowerGated,
}

/// Classifies a core from its thread states.
pub fn classify_core(threads: &[ThreadState], offline_parks_in_c1: bool) -> CoreIdleClass {
    assert!(!threads.is_empty() && threads.len() <= 2, "Zen 2 cores have 1 or 2 threads");
    let active = threads.iter().filter(|t| t.is_active()).count();
    if active > 0 {
        return CoreIdleClass::Active { active_threads: active };
    }
    let any_c1 = threads.iter().any(|t| match t {
        ThreadState::C1 => true,
        ThreadState::Offline => offline_parks_in_c1,
        _ => false,
    });
    if any_c1 {
        CoreIdleClass::ClockGated
    } else {
        CoreIdleClass::PowerGated
    }
}

/// Whether the whole system may enter deep package sleep. With
/// `global_criterion` (the paper's observed behavior) every thread of
/// every package must allow it; the ablation checks only one package's own
/// threads.
pub fn package_c6_allowed(
    all_threads: &[ThreadState],
    package_threads: &[ThreadState],
    offline_parks_in_c1: bool,
    global_criterion: bool,
) -> bool {
    let pool = if global_criterion { all_threads } else { package_threads };
    pool.iter().all(|t| t.allows_package_c6(offline_parks_in_c1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ThreadState::*;

    #[test]
    fn c2_everywhere_allows_package_sleep() {
        let all = vec![C2; 128];
        assert!(package_c6_allowed(&all, &all[..64], true, true));
    }

    #[test]
    fn single_c1_thread_blocks_both_packages() {
        // The Fig. 7 step: one thread in C1 costs +81 W because PC6 is
        // lost globally.
        let mut all = vec![C2; 128];
        all[5] = C1;
        assert!(!package_c6_allowed(&all, &all[..64], true, true));
        // Even threads of the *other* package block it under the global
        // criterion...
        let mut all = vec![C2; 128];
        all[100] = C1;
        assert!(!package_c6_allowed(&all, &all[..64], true, true));
        // ...but not under the per-package ablation.
        assert!(package_c6_allowed(&all, &all[..64], true, false));
    }

    #[test]
    fn active_thread_blocks_package_sleep() {
        let mut all = vec![C2; 128];
        all[0] = Active;
        assert!(!package_c6_allowed(&all, &all[..64], true, true));
    }

    #[test]
    fn offline_parking_blocks_package_sleep() {
        // Section VI-B: "even though C2 states are active and used by the
        // active hardware threads, system power consumption is increased
        // to the C1 level as long as the disabled hardware threads are
        // offline".
        let mut all = vec![C2; 128];
        all[64] = Offline;
        assert!(!package_c6_allowed(&all, &all[..64], true, true));
        // With a kernel that parks offline threads cleanly, they would not
        // block (the paper could not observe such a kernel; ablation).
        assert!(package_c6_allowed(&all, &all[..64], false, true));
    }

    #[test]
    fn core_classification() {
        assert_eq!(classify_core(&[Active, C2], true), CoreIdleClass::Active { active_threads: 1 });
        assert_eq!(
            classify_core(&[Active, Active], true),
            CoreIdleClass::Active { active_threads: 2 }
        );
        assert_eq!(classify_core(&[C1, C2], true), CoreIdleClass::ClockGated);
        assert_eq!(classify_core(&[C2, C2], true), CoreIdleClass::PowerGated);
        // The anomaly: an offline sibling holds the core at C1 level.
        assert_eq!(classify_core(&[C2, Offline], true), CoreIdleClass::ClockGated);
        assert_eq!(classify_core(&[C2, Offline], false), CoreIdleClass::PowerGated);
    }

    #[test]
    fn single_thread_cores_classify() {
        assert_eq!(classify_core(&[C1], true), CoreIdleClass::ClockGated);
        assert_eq!(classify_core(&[C2], true), CoreIdleClass::PowerGated);
    }

    #[test]
    #[should_panic(expected = "1 or 2 threads")]
    fn oversized_core_is_a_bug() {
        let _ = classify_core(&[C1, C1, C1], true);
    }
}
