//! Declarative scenarios: timed machine actions recorded as data,
//! validated against the topology before any simulation runs.
//!
//! A [`Scenario`] is a schedule of [`Op`]s plus a set of
//! [`ProbeSpec`] observation windows. Building one does
//! not touch a machine; [`System::run_scenario`] (or a
//! [`Session`](crate::Session) batch) executes it:
//!
//! ```
//! use zen2_sim::{Probe, Scenario, SimConfig, System, Window};
//! use zen2_isa::{KernelClass, OperandWeight};
//! use zen2_topology::ThreadId;
//!
//! let mut sc = Scenario::new();
//! sc.at_secs(0.0).workload(ThreadId(0), KernelClass::BusyWait, OperandWeight::HALF);
//! sc.probe("busy", Probe::AcTrueMeanW, Window::span_secs(0.05, 0.25));
//! let run = System::new(SimConfig::epyc_7502_2s(), 7).run_scenario(&sc).unwrap();
//! assert!(run.watts("busy") > 150.0);
//! ```

use crate::config::SimConfig;
use crate::perf::ThreadCounters;
use crate::probe::{
    EventFilter, Measurement, Probe, ProbeSpec, RaplWindow, Run, Window, MAX_WINDOW_NS,
};
use crate::system::System;
use crate::time::{from_secs, to_secs, Ns, MILLISECOND};
use serde::Serialize;
use std::collections::BTreeSet;
use std::fmt;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_topology::ThreadId;

/// One machine action, recorded as data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Op {
    /// Schedule a workload on a hardware thread.
    Workload {
        /// Target thread.
        thread: ThreadId,
        /// Kernel class.
        class: KernelClass,
        /// Operand Hamming weight.
        weight: OperandWeight,
    },
    /// Remove the workload; the thread idles into its deepest C-state.
    Idle {
        /// Target thread.
        thread: ThreadId,
    },
    /// Set the userspace-governor frequency request of a thread.
    PstateMhz {
        /// Target thread.
        thread: ThreadId,
        /// Requested frequency; must be a defined P-state.
        mhz: u32,
    },
    /// Enable/disable an idle state (sysfs `cpuidle/stateN/disable`).
    CstateEnabled {
        /// Target thread.
        thread: ThreadId,
        /// C-state level (1 or 2 on this machine).
        level: u8,
        /// New enablement.
        enabled: bool,
    },
    /// Hotplug a thread (sysfs `online`).
    Online {
        /// Target thread.
        thread: ThreadId,
        /// New hotplug state.
        online: bool,
    },
    /// Fast-forward thermals to steady state (the paper's pre-heat).
    Preheat,
    /// Enable or disable the lo2s-style event tracer.
    Tracing(bool),
}

impl Op {
    /// The hardware thread this action targets, if any.
    pub fn target(&self) -> Option<ThreadId> {
        match *self {
            Op::Workload { thread, .. }
            | Op::Idle { thread }
            | Op::PstateMhz { thread, .. }
            | Op::CstateEnabled { thread, .. }
            | Op::Online { thread, .. } => Some(thread),
            Op::Preheat | Op::Tracing(_) => None,
        }
    }
}

/// A thread's scheduling state as the validator replays the schedule
/// (boot state: online, idle, every C-state enabled). Mirrors the
/// runtime transitions in [`System`], including the POLL latch: an idle
/// thread with every C-state disabled spins in an active POLL loop, and
/// re-enabling a C-state does *not* re-settle it (only a fresh idle
/// transition does — `set_cstate_enabled` leaves active threads alone).
#[derive(Debug, Clone, Copy)]
pub(crate) struct VThread {
    pub(crate) has_work: bool,
    pub(crate) polling: bool,
    pub(crate) offline: bool,
    pub(crate) c1_enabled: bool,
    pub(crate) c2_enabled: bool,
}

impl Default for VThread {
    fn default() -> Self {
        Self { has_work: false, polling: false, offline: false, c1_enabled: true, c2_enabled: true }
    }
}

impl VThread {
    fn all_cstates_disabled(&self) -> bool {
        !self.c1_enabled && !self.c2_enabled
    }

    /// Applies one action targeting this thread.
    fn apply(&mut self, op: &Op) {
        match *op {
            Op::Workload { .. } => {
                self.has_work = true;
                self.polling = false;
            }
            Op::Idle { .. } => {
                if !self.offline {
                    self.has_work = false;
                    self.polling = self.all_cstates_disabled();
                }
            }
            Op::Online { online, .. } => {
                if !online {
                    self.offline = true;
                    self.has_work = false;
                    self.polling = false;
                } else if self.offline {
                    self.offline = false;
                    self.polling = self.all_cstates_disabled();
                }
            }
            Op::CstateEnabled { level, enabled, .. } => {
                match level {
                    1 => self.c1_enabled = enabled,
                    _ => self.c2_enabled = enabled,
                }
                // The runtime re-settles only threads that are not
                // active; a polling thread *is* active and keeps polling.
                if !self.offline && !self.has_work && !self.polling {
                    self.polling = self.all_cstates_disabled();
                }
            }
            Op::PstateMhz { .. } | Op::Preheat | Op::Tracing(_) => {}
        }
    }

    /// Whether the thread is asleep in some C-state.
    fn is_sleeping(&self) -> bool {
        !self.offline && !self.has_work && !self.polling
    }
}

/// A scheduled action.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Step {
    /// Scenario-relative time, ns.
    pub at: Ns,
    /// The action.
    pub op: Op,
}

/// A declarative machine schedule plus its observation plan.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Scenario {
    steps: Vec<Step>,
    probes: Vec<ProbeSpec>,
    /// Minimum run length, ns (the scenario runs to at least here even if
    /// no step or window reaches that far).
    run_until: Ns,
}

impl Scenario {
    /// An empty scenario.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a cursor scheduling actions at `t` nanoseconds.
    pub fn at(&mut self, t: Ns) -> At<'_> {
        At { scenario: self, t }
    }

    /// Opens a cursor scheduling actions at `t` seconds.
    pub fn at_secs(&mut self, t: f64) -> At<'_> {
        self.at(from_secs(t))
    }

    /// Registers an observation.
    pub fn probe(&mut self, label: impl Into<String>, probe: Probe, window: Window) -> &mut Self {
        self.probes.push(ProbeSpec { label: label.into(), probe, window });
        self
    }

    /// Extends the scenario to run at least until `t` nanoseconds.
    pub fn run_until(&mut self, t: Ns) -> &mut Self {
        self.run_until = self.run_until.max(t);
        self
    }

    /// Extends the scenario to run at least until `t` seconds.
    pub fn run_until_secs(&mut self, t: f64) -> &mut Self {
        self.run_until(from_secs(t))
    }

    /// The scheduled steps, in insertion order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The registered observations, in insertion order.
    pub fn probes(&self) -> &[ProbeSpec] {
        &self.probes
    }

    /// The explicit minimum run length set through
    /// [`run_until`](Self::run_until), ns (0 when never set). The
    /// scenario may still run longer — see [`end`](Self::end).
    pub fn run_until_ns(&self) -> Ns {
        self.run_until
    }

    /// Total scenario length: the furthest step, window edge, or
    /// [`run_until`](Self::run_until) point.
    pub fn end(&self) -> Ns {
        let step_end = self.steps.iter().map(|s| s.at).max().unwrap_or(0);
        let probe_end = self.probes.iter().map(|p| p.window.to).max().unwrap_or(0);
        self.run_until.max(step_end).max(probe_end)
    }

    /// Validates the schedule against a machine configuration without
    /// running anything: thread/core/socket bounds, P-state table
    /// membership, C-state levels, window shapes, unique probe labels,
    /// that no workload or idle transition targets a thread that is
    /// offline at that point of the schedule, and that wakeup probes
    /// only ever sample a sleeping callee. Threads are assumed online
    /// and idle at scenario start, as on a freshly booted machine;
    /// [`System::run_scenario`] validates against the machine's *actual*
    /// state instead.
    pub fn validate(&self, cfg: &SimConfig) -> Result<(), ScenarioError> {
        self.validate_with(cfg, vec![VThread::default(); cfg.topology.num_threads()])
    }

    /// [`validate`](Self::validate) from an explicit initial per-thread
    /// state (the live machine's, when running on a machine that has
    /// already executed something).
    pub(crate) fn validate_with(
        &self,
        cfg: &SimConfig,
        initial: Vec<VThread>,
    ) -> Result<(), ScenarioError> {
        let num_threads = cfg.topology.num_threads() as u32;
        let num_cores = cfg.topology.num_cores() as u32;
        let num_sockets = cfg.topology.num_sockets() as u32;
        let check_thread = |thread: ThreadId| {
            if thread.0 >= num_threads {
                Err(ScenarioError::ThreadOutOfRange { thread, num_threads })
            } else {
                Ok(())
            }
        };

        for step in &self.steps {
            match step.op {
                Op::Workload { thread, .. } | Op::Idle { thread } => check_thread(thread)?,
                Op::PstateMhz { thread, mhz } => {
                    check_thread(thread)?;
                    if cfg.pstates.index_of_frequency(mhz).is_none() {
                        return Err(ScenarioError::UndefinedPstate { mhz });
                    }
                }
                Op::CstateEnabled { thread, level, .. } => {
                    check_thread(thread)?;
                    if !(1..=2).contains(&level) {
                        return Err(ScenarioError::UndefinedCstate { level });
                    }
                }
                Op::Online { thread, .. } => check_thread(thread)?,
                Op::Preheat | Op::Tracing(_) => {}
            }
        }

        // Schedule consistency: replay the steps in time order, tracking
        // each thread's scheduling state, and reject transitions the
        // runtime would panic on (or silently ignore) mid-simulation.
        let mut ordered: Vec<&Step> = self.steps.iter().collect();
        ordered.sort_by_key(|s| s.at);
        assert_eq!(initial.len(), num_threads as usize, "initial state per thread");
        let mut threads = initial.clone();
        for step in &ordered {
            match step.op {
                Op::Workload { thread, .. } | Op::Idle { thread }
                    if threads[thread.index()].offline =>
                {
                    return Err(ScenarioError::ActionOnOfflineThread { thread, at: step.at });
                }
                _ => {}
            }
            if let Some(thread) = step.op.target() {
                threads[thread.index()].apply(&step.op);
            }
        }

        // The same cap that bounds windows bounds the whole scenario —
        // a stray ns/secs mix-up must not demand eons of simulated time.
        if self.end() > MAX_WINDOW_NS {
            return Err(ScenarioError::ScenarioTooLong { end: self.end() });
        }

        // zen2-lint: allow(no-unordered-iteration) — membership-only duplicate-label probe; never iterated
        let mut labels = std::collections::HashSet::new();
        for spec in &self.probes {
            if !labels.insert(spec.label.as_str()) {
                return Err(ScenarioError::DuplicateLabel { label: spec.label.clone() });
            }
            let w = spec.window;
            if w.from > w.to {
                return Err(ScenarioError::NegativeWindow { label: spec.label.clone() });
            }
            if w.to - w.from > MAX_WINDOW_NS {
                return Err(ScenarioError::WindowOutOfRange { label: spec.label.clone() });
            }
            if spec.probe.is_instant() != w.is_instant() {
                return Err(ScenarioError::WindowShapeMismatch {
                    label: spec.label.clone(),
                    instant_probe: spec.probe.is_instant(),
                });
            }
            match spec.probe {
                Probe::CounterDelta(thread) => check_thread(thread)?,
                Probe::CounterSeries { thread, every } => {
                    check_thread(thread)?;
                    if every == 0 {
                        return Err(ScenarioError::ZeroInterval { label: spec.label.clone() });
                    }
                    if (w.to - w.from) / every > MAX_PROBE_SAMPLES {
                        return Err(ScenarioError::SamplingPlanTooLarge {
                            label: spec.label.clone(),
                        });
                    }
                }
                Probe::WakeupSamples { caller, callee, count, gap } => {
                    check_thread(caller)?;
                    check_thread(callee)?;
                    if count == 0 || gap == 0 {
                        return Err(ScenarioError::ZeroInterval { label: spec.label.clone() });
                    }
                    if count as u64 > MAX_PROBE_SAMPLES {
                        return Err(ScenarioError::SamplingPlanTooLarge {
                            label: spec.label.clone(),
                        });
                    }
                    if w.from as u128 + count as u128 * gap as u128 > w.to as u128 {
                        return Err(ScenarioError::WindowOutOfRange { label: spec.label.clone() });
                    }
                    // The runtime panics when sampling a non-sleeping
                    // callee; one forward sweep replays the callee's
                    // state across the sample times (samples observe the
                    // state *before* actions scheduled at the same
                    // instant).
                    let mut state = initial[callee.index()];
                    let mut steps =
                        ordered.iter().filter(|s| s.op.target() == Some(callee)).peekable();
                    for k in 1..=count as u64 {
                        let t = w.from + k * gap;
                        while steps.peek().is_some_and(|s| s.at < t) {
                            state.apply(&steps.next().expect("peeked").op);
                        }
                        if !state.is_sleeping() {
                            return Err(ScenarioError::WakeupCalleeNotSleeping {
                                label: spec.label.clone(),
                                at: t,
                            });
                        }
                    }
                }
                Probe::EffectiveGhz(core) | Probe::RaplCoreW(core) | Probe::L3LatencyNs(core)
                    if core.0 >= num_cores =>
                {
                    return Err(ScenarioError::CoreOutOfRange { core: core.0, num_cores });
                }
                Probe::PkgTrueW(socket) if socket.0 >= num_sockets => {
                    return Err(ScenarioError::SocketOutOfRange { socket: socket.0, num_sockets });
                }
                Probe::StreamTriadGbs(0) => {
                    return Err(ScenarioError::ZeroInterval { label: spec.label.clone() });
                }
                Probe::StreamTriadGbs(cores) if cores > num_cores => {
                    return Err(ScenarioError::CoreOutOfRange { core: cores, num_cores });
                }
                Probe::AcMeteredW => {
                    // `metered_mean_w` averages LMG670 samples over the
                    // inner 80 % of the window and panics when none land
                    // there; samples arrive at `from + k*period`. Require
                    // a sample at least 1 ms inside the trimmed region so
                    // float rounding in the seconds-domain comparison can
                    // never starve the mean at runtime.
                    let len = w.to - w.from;
                    let period = from_secs(zen2_power::PowerMeter::lmg670().period_s());
                    let k = ((len + 10 * MILLISECOND).div_ceil(10 * period)).max(1);
                    let t = k * period;
                    if t > len || 10 * t + 10 * MILLISECOND > 9 * len {
                        return Err(ScenarioError::MeterWindowTooShort {
                            label: spec.label.clone(),
                        });
                    }
                }
                Probe::TraceEvents(filter) => match filter {
                    EventFilter::Freq(core) => {
                        if core.0 >= num_cores {
                            return Err(ScenarioError::CoreOutOfRange { core: core.0, num_cores });
                        }
                    }
                    EventFilter::ThreadState(thread) => check_thread(thread)?,
                    EventFilter::PackageSleep(socket) | EventFilter::CapChanged(socket) => {
                        if socket.0 >= num_sockets {
                            return Err(ScenarioError::SocketOutOfRange {
                                socket: socket.0,
                                num_sockets,
                            });
                        }
                    }
                    EventFilter::All => {}
                },
                _ => {}
            }
        }
        Ok(())
    }
}

/// A cursor scheduling actions at one point in time; every method chains.
pub struct At<'a> {
    scenario: &'a mut Scenario,
    t: Ns,
}

impl At<'_> {
    fn push(self, op: Op) -> Self {
        self.scenario.steps.push(Step { at: self.t, op });
        self
    }

    /// Schedules a workload on a hardware thread.
    pub fn workload(self, thread: ThreadId, class: KernelClass, weight: OperandWeight) -> Self {
        self.push(Op::Workload { thread, class, weight })
    }

    /// Schedules the removal of a thread's workload.
    pub fn idle(self, thread: ThreadId) -> Self {
        self.push(Op::Idle { thread })
    }

    /// Schedules a frequency request.
    pub fn pstate(self, thread: ThreadId, mhz: u32) -> Self {
        self.push(Op::PstateMhz { thread, mhz })
    }

    /// Schedules a C-state enable/disable.
    pub fn cstate(self, thread: ThreadId, level: u8, enabled: bool) -> Self {
        self.push(Op::CstateEnabled { thread, level, enabled })
    }

    /// Schedules a hotplug transition.
    pub fn online(self, thread: ThreadId, online: bool) -> Self {
        self.push(Op::Online { thread, online })
    }

    /// Schedules a thermal pre-heat (steady-state fast-forward).
    pub fn preheat(self) -> Self {
        self.push(Op::Preheat)
    }

    /// Schedules enabling/disabling the event tracer.
    pub fn tracing(self, enabled: bool) -> Self {
        self.push(Op::Tracing(enabled))
    }
}

/// Why a scenario failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A step or probe names a thread the topology does not have.
    ThreadOutOfRange {
        /// The offending thread.
        thread: ThreadId,
        /// Threads on this machine.
        num_threads: u32,
    },
    /// A probe names a core the topology does not have.
    CoreOutOfRange {
        /// The offending core index.
        core: u32,
        /// Cores on this machine.
        num_cores: u32,
    },
    /// A probe names a socket the topology does not have.
    SocketOutOfRange {
        /// The offending socket index.
        socket: u32,
        /// Sockets on this machine.
        num_sockets: u32,
    },
    /// A frequency request is not in the P-state table.
    UndefinedPstate {
        /// The offending frequency.
        mhz: u32,
    },
    /// A C-state level this machine does not expose.
    UndefinedCstate {
        /// The offending level.
        level: u8,
    },
    /// A workload or idle transition targets a thread that is offline at
    /// that point of the schedule.
    ActionOnOfflineThread {
        /// The offending thread.
        thread: ThreadId,
        /// When the action was scheduled, ns.
        at: Ns,
    },
    /// Two probes share a label; [`Run::get`](crate::Run::get) could only
    /// ever see the first.
    DuplicateLabel {
        /// The repeated label.
        label: String,
    },
    /// A wakeup probe would sample a callee that is active or offline at
    /// a sample time (there is no wakeup latency to measure).
    WakeupCalleeNotSleeping {
        /// The offending probe's label.
        label: String,
        /// The first sample time the callee is not sleeping, ns.
        at: Ns,
    },
    /// A window with `from > to`.
    NegativeWindow {
        /// The offending probe's label.
        label: String,
    },
    /// A window beyond the scenario end, absurdly long, or too short for
    /// its probe's sampling plan.
    WindowOutOfRange {
        /// The offending probe's label.
        label: String,
    },
    /// A span probe with an instant window or vice versa.
    WindowShapeMismatch {
        /// The offending probe's label.
        label: String,
        /// Whether the probe side is instantaneous.
        instant_probe: bool,
    },
    /// A series/sampling probe with a zero interval or count.
    ZeroInterval {
        /// The offending probe's label.
        label: String,
    },
    /// A series/sampling probe that would take more than
    /// [`MAX_PROBE_SAMPLES`] samples (guards the engine against
    /// accidental memory blow-ups from a tiny interval).
    SamplingPlanTooLarge {
        /// The offending probe's label.
        label: String,
    },
    /// The scenario's furthest step or window exceeds the simulated-time
    /// cap (usually a nanoseconds/seconds mix-up).
    ScenarioTooLong {
        /// The scenario end, ns.
        end: Ns,
    },
    /// An [`AcMeteredW`](Probe::AcMeteredW) window too short for the
    /// LMG670's 50 ms sample period to land a sample inside the inner
    /// 80 % of the window (the mean would have nothing to average).
    MeterWindowTooShort {
        /// The offending probe's label.
        label: String,
    },
}

/// Most samples any single probe may take across its window.
pub const MAX_PROBE_SAMPLES: u64 = 1_000_000;

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ThreadOutOfRange { thread, num_threads } => {
                write!(f, "thread {} out of range (machine has {num_threads})", thread.0)
            }
            Self::CoreOutOfRange { core, num_cores } => {
                write!(f, "core {core} out of range (machine has {num_cores})")
            }
            Self::SocketOutOfRange { socket, num_sockets } => {
                write!(f, "socket {socket} out of range (machine has {num_sockets})")
            }
            Self::UndefinedPstate { mhz } => write!(f, "{mhz} MHz is not a defined P-state"),
            Self::UndefinedCstate { level } => {
                write!(f, "the machine has C-states 1 and 2, not {level}")
            }
            Self::ActionOnOfflineThread { thread, at } => {
                write!(f, "workload/idle on offline thread {} at {at} ns", thread.0)
            }
            Self::DuplicateLabel { label } => {
                write!(f, "probe label {label:?} is used more than once")
            }
            Self::WakeupCalleeNotSleeping { label, at } => {
                write!(f, "probe {label:?}: wakeup callee is not sleeping at {at} ns")
            }
            Self::NegativeWindow { label } => write!(f, "probe {label:?}: window runs backwards"),
            Self::WindowOutOfRange { label } => {
                write!(f, "probe {label:?}: window too long or too short for its sampling plan")
            }
            Self::WindowShapeMismatch { label, instant_probe } => write!(
                f,
                "probe {label:?}: {} probe needs {} window",
                if *instant_probe { "an instant" } else { "a span" },
                if *instant_probe { "an instant (from == to)" } else { "a span (from < to)" },
            ),
            Self::ZeroInterval { label } => {
                write!(f, "probe {label:?}: sampling interval/count must be positive")
            }
            Self::SamplingPlanTooLarge { label } => {
                write!(f, "probe {label:?}: more than {MAX_PROBE_SAMPLES} samples in one window")
            }
            Self::ScenarioTooLong { end } => {
                write!(
                    f,
                    "scenario runs to {end} ns, beyond the {MAX_WINDOW_NS} ns cap \
                     (nanoseconds/seconds mix-up?)"
                )
            }
            Self::MeterWindowTooShort { label } => {
                write!(
                    f,
                    "probe {label:?}: window too short for a 50 ms meter sample to land \
                     in its inner 80 % (needs roughly 57 ms or more)"
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Per-probe engine state while a scenario executes.
enum ProbeState {
    Idle,
    SpanOpen,
    CounterOpen { begin: ThreadCounters },
    SeriesOpen { snaps: Vec<ThreadCounters> },
    RaplOpen { window: RaplWindow },
    WakeupOpen { samples: Vec<f64> },
    EnergyOpen { start_j: f64 },
    Done(Measurement),
}

impl System {
    /// Executes a scenario on this machine and returns its [`Run`].
    ///
    /// Validates first — against the machine's *live* thread states, not
    /// boot defaults — so nothing is simulated if validation fails.
    /// Times in the scenario are relative to the machine's current time,
    /// so a scenario can also be replayed on a machine that has already
    /// run.
    ///
    /// Ordering within one timestamp is deterministic: probe sampling
    /// obligations and window *ends* first (measurements close before the
    /// machine changes), then scheduled actions, then window *starts*
    /// (measurements open on the post-action state).
    pub fn run_scenario(&mut self, scenario: &Scenario) -> Result<Run, ScenarioError> {
        scenario.validate_with(self.config(), self.scheduling_snapshot())?;
        Ok(self.run_scenario_prechecked(scenario))
    }

    /// Executes an already-validated scenario ([`Session`](crate::Session)
    /// validates whole batches up front and skips the per-case re-check).
    pub(crate) fn run_scenario_prechecked(&mut self, scenario: &Scenario) -> Run {
        let offset = self.now_ns();

        // A trace probe needs the tracer running for the whole scenario;
        // enable it up front so authors don't have to schedule an explicit
        // `tracing(true)` step (which remains available for finer control).
        // The implicit enable is undone at the end of the run, so a reused
        // machine does not keep recording (and growing) forever.
        let auto_tracing = !self.tracer().is_enabled()
            && scenario.probes().iter().any(|s| matches!(s.probe, Probe::TraceEvents(_)));
        if auto_tracing {
            self.set_tracing(true);
        }

        // Every scenario-relative instant the engine must stop at.
        let mut breakpoints: BTreeSet<Ns> = BTreeSet::new();
        for step in scenario.steps() {
            breakpoints.insert(step.at);
        }
        for spec in scenario.probes() {
            breakpoints.insert(spec.window.from);
            breakpoints.insert(spec.window.to);
            for t in spec.mid_times() {
                breakpoints.insert(t);
            }
        }
        breakpoints.insert(scenario.end());

        let mut states: Vec<ProbeState> =
            scenario.probes().iter().map(|_| ProbeState::Idle).collect();
        let mid_times: Vec<Vec<Ns>> =
            scenario.probes().iter().map(|spec| spec.mid_times()).collect();
        // `mid_times` are ascending and breakpoints iterate ascending, so
        // one cursor per probe matches each obligation in O(1); the same
        // holds for the time-sorted steps (stable sort keeps insertion
        // order within one tick).
        let mut mid_cursor = vec![0usize; mid_times.len()];
        let mut ordered_steps: Vec<&Step> = scenario.steps().iter().collect();
        ordered_steps.sort_by_key(|s| s.at);
        let mut step_cursor = 0usize;

        for &t in &breakpoints {
            let target = offset + t;
            if target > self.now_ns() {
                self.run_for_ns(target - self.now_ns());
            }

            // 1. Mid-window sampling obligations due now.
            for (i, (spec, state)) in scenario.probes().iter().zip(states.iter_mut()).enumerate() {
                if mid_times[i].get(mid_cursor[i]) != Some(&t) {
                    continue;
                }
                mid_cursor[i] += 1;
                match (&spec.probe, state) {
                    (Probe::CounterSeries { thread, .. }, ProbeState::SeriesOpen { snaps }) => {
                        snaps.push(self.counters(*thread));
                    }
                    (Probe::RaplW | Probe::RaplCoreW(_), ProbeState::RaplOpen { window }) => {
                        window.poll(self);
                    }
                    (
                        Probe::WakeupSamples { caller, callee, .. },
                        ProbeState::WakeupOpen { samples },
                    ) => {
                        samples.push(self.sample_wakeup_ns(*caller, *callee));
                    }
                    _ => {}
                }
            }

            // 2. Window ends (and instant reads) due now.
            for (spec, state) in scenario.probes().iter().zip(states.iter_mut()) {
                if spec.window.to != t {
                    continue;
                }
                let from = offset + spec.window.from;
                let to = offset + spec.window.to;
                let done = match (&spec.probe, std::mem::replace(state, ProbeState::Idle)) {
                    (Probe::AcTrueMeanW, ProbeState::SpanOpen) => {
                        Measurement::Watts(self.trace_mean_w(from, to))
                    }
                    (Probe::AcMeteredW, ProbeState::SpanOpen) => {
                        Measurement::Watts(self.metered_mean_w(from, to))
                    }
                    (Probe::MeterSamples, ProbeState::SpanOpen) => {
                        Measurement::Samples(self.meter_samples(from, to))
                    }
                    (Probe::RaplW, ProbeState::RaplOpen { window }) => {
                        let (pkg_w, core_w) = window.finish(self);
                        Measurement::WattsPair { pkg_w, core_w }
                    }
                    (Probe::RaplCoreW(core), ProbeState::RaplOpen { window }) => {
                        Measurement::Watts(window.finish_core(self, *core))
                    }
                    (Probe::TraceEvents(filter), ProbeState::SpanOpen) => Measurement::Events(
                        self.tracer()
                            .in_window(from, to)
                            .filter(|r| filter.matches(&r.event))
                            .cloned()
                            .collect(),
                    ),
                    (Probe::CounterDelta(thread), ProbeState::CounterOpen { begin }) => {
                        Measurement::CounterDelta {
                            begin,
                            end: self.counters(*thread),
                            wall_s: to_secs(to - from),
                        }
                    }
                    (Probe::CounterSeries { .. }, ProbeState::SeriesOpen { snaps }) => {
                        Measurement::CounterSeries(snaps)
                    }
                    (Probe::WakeupSamples { .. }, ProbeState::WakeupOpen { samples }) => {
                        Measurement::DurationsNs(samples)
                    }
                    (Probe::AcEnergyJ, ProbeState::EnergyOpen { start_j }) => {
                        Measurement::Joules(self.ac_energy_j() - start_j)
                    }
                    (Probe::EffectiveGhz(core), ProbeState::Idle) => {
                        Measurement::Ghz(self.effective_core_ghz(*core))
                    }
                    (Probe::AcPowerW, ProbeState::Idle) => Measurement::Watts(self.ac_power_w()),
                    (Probe::PkgTrueW(socket), ProbeState::Idle) => {
                        Measurement::Watts(self.power_breakdown().pkg_true_w[socket.index()])
                    }
                    (Probe::L3LatencyNs(core), ProbeState::Idle) => {
                        Measurement::Nanos(self.l3_latency_ns(*core))
                    }
                    (Probe::DramLatencyNs, ProbeState::Idle) => {
                        Measurement::Nanos(self.dram_latency_ns())
                    }
                    (Probe::StreamTriadGbs(cores), ProbeState::Idle) => {
                        Measurement::GigabytesPerSec(self.stream_triad_gbs(*cores))
                    }
                    (probe, _) => {
                        unreachable!(
                            "probe {probe:?} ({:?}) closed from a foreign state",
                            spec.label
                        )
                    }
                };
                *state = ProbeState::Done(done);
            }

            // 3. Scheduled actions due now (insertion order within the tick).
            while let Some(step) = ordered_steps.get(step_cursor).filter(|s| s.at == t) {
                step_cursor += 1;
                match step.op {
                    Op::Workload { thread, class, weight } => {
                        self.set_workload(thread, class, weight)
                    }
                    Op::Idle { thread } => self.set_idle(thread),
                    Op::PstateMhz { thread, mhz } => {
                        let _ = self.set_thread_pstate_mhz(thread, mhz);
                    }
                    Op::CstateEnabled { thread, level, enabled } => {
                        self.set_cstate_enabled(thread, level, enabled)
                    }
                    Op::Online { thread, online } => self.set_online(thread, online),
                    Op::Preheat => self.preheat(),
                    Op::Tracing(enabled) => self.set_tracing(enabled),
                }
            }

            // 4. Window starts due now open on the post-action state.
            for (spec, state) in scenario.probes().iter().zip(states.iter_mut()) {
                if spec.window.from != t || spec.window.is_instant() {
                    continue;
                }
                *state = match spec.probe {
                    Probe::CounterDelta(thread) => {
                        ProbeState::CounterOpen { begin: self.counters(thread) }
                    }
                    Probe::CounterSeries { thread, .. } => {
                        ProbeState::SeriesOpen { snaps: vec![self.counters(thread)] }
                    }
                    Probe::RaplW | Probe::RaplCoreW(_) => {
                        ProbeState::RaplOpen { window: RaplWindow::open(self) }
                    }
                    Probe::WakeupSamples { .. } => ProbeState::WakeupOpen { samples: Vec::new() },
                    Probe::AcEnergyJ => ProbeState::EnergyOpen { start_j: self.ac_energy_j() },
                    _ => ProbeState::SpanOpen,
                };
            }
        }

        let measurements = scenario
            .probes()
            .iter()
            .zip(states)
            .map(|(spec, state)| match state {
                ProbeState::Done(m) => (spec.label.clone(), m),
                _ => unreachable!("probe {:?} never closed", spec.label),
            })
            .collect();

        if auto_tracing {
            self.set_tracing(false);
        }

        Run {
            seed: self.seed(),
            end_ns: self.now_ns(),
            final_ac_w: self.ac_power_w(),
            measurements,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::MAX_WINDOW_NS;
    use crate::time::SECOND;
    use zen2_topology::{CoreId, SocketId};

    fn cfg() -> SimConfig {
        SimConfig::epyc_7502_2s()
    }

    // One test per ScenarioError variant: every rejection path the
    // torture generator's invalid-proposal catalog relies on is pinned
    // here in its most direct form.

    #[test]
    fn rejects_thread_out_of_range() {
        let mut sc = Scenario::new();
        sc.at(0).idle(ThreadId(128));
        assert!(matches!(
            sc.validate(&cfg()),
            Err(ScenarioError::ThreadOutOfRange { thread: ThreadId(128), num_threads: 128 })
        ));
    }

    #[test]
    fn rejects_core_out_of_range() {
        let mut sc = Scenario::new();
        sc.probe("g", Probe::EffectiveGhz(CoreId(64)), Window::at(0));
        assert!(matches!(
            sc.validate(&cfg()),
            Err(ScenarioError::CoreOutOfRange { core: 64, num_cores: 64 })
        ));
    }

    #[test]
    fn rejects_socket_out_of_range() {
        let mut sc = Scenario::new();
        sc.probe("p", Probe::PkgTrueW(SocketId(2)), Window::at(0));
        assert!(matches!(
            sc.validate(&cfg()),
            Err(ScenarioError::SocketOutOfRange { socket: 2, num_sockets: 2 })
        ));
    }

    #[test]
    fn rejects_undefined_pstate() {
        let mut sc = Scenario::new();
        sc.at(0).pstate(ThreadId(0), 1234);
        assert!(matches!(sc.validate(&cfg()), Err(ScenarioError::UndefinedPstate { mhz: 1234 })));
    }

    #[test]
    fn rejects_undefined_cstate() {
        let mut sc = Scenario::new();
        sc.at(0).cstate(ThreadId(0), 3, true);
        assert!(matches!(sc.validate(&cfg()), Err(ScenarioError::UndefinedCstate { level: 3 })));
    }

    #[test]
    fn rejects_workload_on_offline_thread_even_when_scheduled_out_of_order() {
        let mut sc = Scenario::new();
        // Inserted before the offlining step but scheduled after it: the
        // validator replays in *time* order.
        sc.at(2 * MILLISECOND).workload(ThreadId(5), KernelClass::BusyWait, OperandWeight::HALF);
        sc.at(MILLISECOND).online(ThreadId(5), false);
        assert!(matches!(
            sc.validate(&cfg()),
            Err(ScenarioError::ActionOnOfflineThread { thread: ThreadId(5), .. })
        ));
    }

    #[test]
    fn rejects_duplicate_probe_labels() {
        let mut sc = Scenario::new();
        sc.probe("x", Probe::AcPowerW, Window::at(0));
        sc.probe("x", Probe::DramLatencyNs, Window::at(1));
        assert!(matches!(
            sc.validate(&cfg()),
            Err(ScenarioError::DuplicateLabel { label }) if label == "x"
        ));
    }

    #[test]
    fn rejects_wakeup_probe_on_busy_callee() {
        let mut sc = Scenario::new();
        sc.at(0).workload(ThreadId(3), KernelClass::BusyWait, OperandWeight::HALF);
        sc.probe(
            "w",
            Probe::WakeupSamples {
                caller: ThreadId(0),
                callee: ThreadId(3),
                count: 1,
                gap: MILLISECOND,
            },
            Window::span(0, 2 * MILLISECOND),
        );
        assert!(matches!(sc.validate(&cfg()), Err(ScenarioError::WakeupCalleeNotSleeping { .. })));
    }

    #[test]
    fn rejects_backwards_window() {
        let mut sc = Scenario::new();
        sc.probe("b", Probe::AcTrueMeanW, Window { from: 2, to: 1 });
        assert!(matches!(sc.validate(&cfg()), Err(ScenarioError::NegativeWindow { .. })));
    }

    #[test]
    fn rejects_sampling_plan_overflowing_its_window() {
        let mut sc = Scenario::new();
        // 10 samples of 1 ms gap cannot fit a 5 ms window.
        sc.probe(
            "w",
            Probe::WakeupSamples {
                caller: ThreadId(0),
                callee: ThreadId(1),
                count: 10,
                gap: MILLISECOND,
            },
            Window::span(0, 5 * MILLISECOND),
        );
        assert!(matches!(sc.validate(&cfg()), Err(ScenarioError::WindowOutOfRange { .. })));
    }

    #[test]
    fn rejects_span_probe_with_instant_window() {
        let mut sc = Scenario::new();
        sc.probe("m", Probe::AcTrueMeanW, Window::at(SECOND));
        assert!(matches!(
            sc.validate(&cfg()),
            Err(ScenarioError::WindowShapeMismatch { instant_probe: false, .. })
        ));
    }

    #[test]
    fn rejects_zero_sampling_interval() {
        let mut sc = Scenario::new();
        sc.probe(
            "s",
            Probe::CounterSeries { thread: ThreadId(0), every: 0 },
            Window::span(0, MILLISECOND),
        );
        assert!(matches!(sc.validate(&cfg()), Err(ScenarioError::ZeroInterval { .. })));
    }

    #[test]
    fn rejects_oversized_sampling_plan() {
        let mut sc = Scenario::new();
        sc.probe(
            "s",
            Probe::CounterSeries { thread: ThreadId(0), every: 1 },
            Window::span(0, 100 * MILLISECOND),
        );
        assert!(matches!(sc.validate(&cfg()), Err(ScenarioError::SamplingPlanTooLarge { .. })));
    }

    #[test]
    fn rejects_scenario_beyond_the_time_cap() {
        let mut sc = Scenario::new();
        sc.run_until(MAX_WINDOW_NS + 1);
        assert!(matches!(sc.validate(&cfg()), Err(ScenarioError::ScenarioTooLong { .. })));
    }

    #[test]
    fn rejects_metered_mean_over_a_sample_starved_window() {
        // 56 ms holds one 50 ms sample, but outside the inner 80 %.
        let mut sc = Scenario::new();
        sc.probe("m", Probe::AcMeteredW, Window::span(0, 56 * MILLISECOND));
        assert!(matches!(sc.validate(&cfg()), Err(ScenarioError::MeterWindowTooShort { .. })));
        // 120 ms (the generator's floor) is comfortably enough.
        let mut ok = Scenario::new();
        ok.probe("m", Probe::AcMeteredW, Window::span(0, 120 * MILLISECOND));
        assert!(ok.validate(&cfg()).is_ok());
    }

    #[test]
    fn run_until_is_a_minimum_not_a_cap() {
        let mut sc = Scenario::new();
        sc.run_until(MILLISECOND);
        sc.at(5 * MILLISECOND).preheat();
        sc.probe("tail", Probe::AcPowerW, Window::at(7 * MILLISECOND));
        assert_eq!(sc.run_until_ns(), MILLISECOND);
        assert_eq!(sc.end(), 7 * MILLISECOND);
        assert!(sc.validate(&cfg()).is_ok(), "steps after run_until are legal");
    }
}
