//! OS-side control interfaces (the sysfs knobs the paper drives).
//!
//! "We use the Linux cpufreq governor 'userspace' to control processor
//! frequencies. By default, we enabled all available C-states. We use
//! sysfs files to control C-states and hardware threads."

use crate::cstate::ThreadState;
use serde::{Deserialize, Serialize};
use zen2_topology::LogicalCpu;

/// Per-CPU cpuidle configuration: which idle states the governor may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdleConfig {
    /// `state1` (C1) enabled.
    pub c1_enabled: bool,
    /// `state2` (C2) enabled.
    pub c2_enabled: bool,
}

impl Default for IdleConfig {
    fn default() -> Self {
        Self { c1_enabled: true, c2_enabled: true }
    }
}

impl IdleConfig {
    /// The state an idle thread settles in under this configuration.
    /// With every idle state disabled, the OS falls back to the POLL loop
    /// — which is *active* from the hardware's point of view.
    pub fn deepest_idle_state(&self) -> ThreadState {
        if self.c2_enabled {
            ThreadState::C2
        } else if self.c1_enabled {
            ThreadState::C1
        } else {
            ThreadState::Active
        }
    }
}

/// The sysfs path for a cpuidle state-disable knob, as in the paper's
/// footnote 5.
pub fn cpuidle_disable_path(cpu: LogicalCpu, state: u8) -> String {
    format!("/sys/devices/system/cpu/{cpu}/cpuidle/state{state}/disable")
}

/// The sysfs path for a hotplug knob, as in the paper's footnote 6.
pub fn online_path(cpu: LogicalCpu) -> String {
    format!("/sys/devices/system/cpu/{cpu}/online")
}

/// The sysfs path of the userspace governor's setspeed file.
pub fn setspeed_path(cpu: LogicalCpu) -> String {
    format!("/sys/devices/system/cpu/{cpu}/cpufreq/scaling_setspeed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deepest_state_selection() {
        let both = IdleConfig::default();
        assert_eq!(both.deepest_idle_state(), ThreadState::C2);
        let c1_only = IdleConfig { c1_enabled: true, c2_enabled: false };
        assert_eq!(c1_only.deepest_idle_state(), ThreadState::C1);
        let none = IdleConfig { c1_enabled: false, c2_enabled: false };
        assert_eq!(none.deepest_idle_state(), ThreadState::Active, "POLL fallback");
    }

    #[test]
    fn sysfs_paths_match_the_papers_footnotes() {
        assert_eq!(
            cpuidle_disable_path(LogicalCpu(7), 2),
            "/sys/devices/system/cpu/cpu7/cpuidle/state2/disable"
        );
        assert_eq!(online_path(LogicalCpu(127)), "/sys/devices/system/cpu/cpu127/online");
        assert!(setspeed_path(LogicalCpu(0)).ends_with("cpu0/cpufreq/scaling_setspeed"));
    }
}
