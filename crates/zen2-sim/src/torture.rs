//! Scenario torture: a seeded random-[`Scenario`] generator plus a
//! physics-invariant checker for every resulting [`Run`].
//!
//! The paper's evidence is bounded by its 16 figures; this module is how
//! scenario diversity stops being bounded by them. [`generate_case`]
//! derives a topology-valid random case — machine preset, ablation
//! switches, action timeline, probe set — from `(root_seed, index)`
//! through [`child_seed`], so any case anywhere in a soak is
//! reproducible from two numbers. [`Invariants::check`] then audits the
//! run against contracts the simulator must never break, whatever the
//! scenario:
//!
//! * **Residency conservation** — per-core time-at-frequency fractions
//!   sum to exactly 1: the [`FreqResidency`] histogram over the full
//!   window accounts every nanosecond (integer arithmetic, no float
//!   slop), and the `Freq(core)`-filtered event stream agrees
//!   bit-for-bit with the all-events stream filtered client-side.
//! * **Power envelopes** — every AC reading sits between the all-PC6
//!   floor and a PPT-bounded ceiling derived from the config's own
//!   power parameters; RAPL rails, package power, energies, counters,
//!   latencies and bandwidths all stay physical (NaN trips every check).
//! * **Trace discipline** — monotone timestamps, events inside their
//!   probe window and matching their filter, every `FreqRequested`
//!   target a defined P-state, applied frequencies never above nominal,
//!   request→apply pairing never time-travelling, and every scheduled
//!   P-state step producing its request record.
//! * **[`Snapshot`] identity** — accumulators built from the run
//!   round-trip through their exact-JSON wire format bit-for-bit.
//!
//! Fork/worker-count/shard-split invariance and the differential
//! `System::run_scenario`-vs-streaming check need more than one
//! execution of the same case, so they live in the `torture` bin and
//! the proptest suite, both of which drive this module. A greedy
//! [`shrink_scenario`] reduces a failing case to a minimal reproducer
//! (the vendored proptest shim does not shrink), and [`inject_fault`]
//! seeds deliberate violations so the checker itself stays tested. See
//! `docs/TORTURE.md` for the invariant catalog with physical rationale.

use crate::config::SimConfig;
use crate::probe::{EventFilter, Measurement, Probe, ProbeSpec, Run, Window};
use crate::scenario::{Op, Scenario, ScenarioError, Step};
use crate::session::Case;
use crate::snapshot::Snapshot;
use crate::stats::{FreqResidency, OnlineStats, TransitionStats};
use crate::sweep::child_seed;
use crate::time::{Ns, MILLISECOND};
use crate::trace::{Event, Record};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;
use zen2_isa::{KernelClass, OperandWeight};
use zen2_topology::{CoreId, SocketId, ThreadId};

/// Label of the mandatory all-events trace probe every generated
/// scenario carries over its full `[0, end]` window.
pub const EV_ALL: &str = "ev-all";

/// Label of the mandatory per-core `Freq`-filtered trace probe (the
/// residency cross-check's second, independently filtered source).
pub const EV_CORE: &str = "ev-core";

/// Workload classes the generator schedules (everything but the
/// internal `Idle`/`Poll` pseudo-kernels, which the engine reserves for
/// its own idle transitions).
const WORKLOADS: &[KernelClass] = &[
    KernelClass::Pause,
    KernelClass::BusyWait,
    KernelClass::Compute,
    KernelClass::Matmul,
    KernelClass::Sqrt,
    KernelClass::AddPd,
    KernelClass::MulPd,
    KernelClass::MemoryRead,
    KernelClass::MemoryWrite,
    KernelClass::MemoryCopy,
    KernelClass::Firestarter,
    KernelClass::StreamTriad,
    KernelClass::PointerChase,
    KernelClass::VXorps,
];

/// Generates the `index`-th torture case of a soak rooted at
/// `root_seed`: a random machine preset with random ablation switches,
/// a topology-valid action timeline, and a probe set that always
/// includes the invariant probes ([`EV_ALL`], [`EV_CORE`]), a
/// zero-length window at `t = 0`, an instant probe exactly at the
/// scenario end, and span probes ending exactly at the end — the
/// boundary shapes regressions like to hide in.
///
/// Deterministic: the same `(root_seed, index)` always yields the same
/// case, on any machine, under any worker split.
pub fn generate_case(root_seed: u64, index: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(child_seed(root_seed, index));
    let config = random_config(&mut rng);
    let scenario = random_scenario(&config, &mut rng);
    let seed = rng.next_u64();
    Case::new(format!("torture-{index}"), config, scenario, seed)
}

/// The first `n` cases of a soak rooted at `root_seed`, lazily — feed
/// this straight into [`Session::run_streaming`](crate::Session).
pub fn cases(root_seed: u64, n: u64) -> impl Iterator<Item = Case> {
    (0..n).map(move |i| generate_case(root_seed, i))
}

fn random_config(rng: &mut StdRng) -> SimConfig {
    let mut cfg = match rng.gen_range(0u32..3) {
        0 => SimConfig::epyc_7502_2s(),
        1 => SimConfig::epyc_7502_1s(),
        _ => SimConfig::epyc_7742_1s(),
    };
    if rng.gen_bool(0.25) {
        cfg.ccx_coupling = !cfg.ccx_coupling;
    }
    if rng.gen_bool(0.25) {
        cfg.global_package_c6 = !cfg.global_package_c6;
    }
    cfg
}

/// A span `[a, b]` with `a < b <= end`, biased toward short windows so
/// degenerate (nanosecond-scale) spans appear regularly.
fn random_span(rng: &mut StdRng, end: Ns) -> (Ns, Ns) {
    let a = rng.gen_range(0..end);
    let b = if rng.gen_bool(0.2) {
        rng.gen_range(a + 1..=(a + 1000).min(end))
    } else {
        rng.gen_range(a + 1..=end)
    };
    (a, b)
}

fn random_scenario(cfg: &SimConfig, rng: &mut StdRng) -> Scenario {
    let num_threads = cfg.topology.num_threads() as u32;
    let num_cores = cfg.topology.num_cores() as u32;
    let num_sockets = cfg.topology.num_sockets() as u32;
    let end = rng.gen_range(20 * MILLISECOND..=150 * MILLISECOND);
    let mut sc = Scenario::new();

    // A small set of distinct action targets: scenario cost scales with
    // active threads, and a handful exercises every interaction (SMT
    // siblings, CCX coupling, package-C6 criterion) as well as 128 do.
    let mut targets: Vec<u32> = Vec::new();
    let k = rng.gen_range(1..=6usize);
    while targets.len() < k {
        let t = rng.gen_range(0..num_threads);
        if !targets.contains(&t) {
            targets.push(t);
        }
    }

    // Replay hotplug state while generating (times are drawn sorted), so
    // no workload or idle step ever targets a thread that is offline at
    // that point — the generator proposes only valid timelines.
    let mut offline = vec![false; num_threads as usize];
    let n_steps = rng.gen_range(0..=10usize);
    let mut times: Vec<Ns> = (0..n_steps).map(|_| rng.gen_range(0..=end)).collect();
    times.sort_unstable();
    for at in times {
        let online: Vec<u32> = targets.iter().copied().filter(|&t| !offline[t as usize]).collect();
        match rng.gen_range(0u32..100) {
            0..=34 => {
                if let Some(&t) = online.choose(rng) {
                    let class = WORKLOADS.choose(rng).copied().unwrap_or(KernelClass::BusyWait);
                    let weight = OperandWeight(rng.gen_range(0.0..=1.0));
                    sc.at(at).workload(ThreadId(t), class, weight);
                }
            }
            35..=49 => {
                if let Some(&t) = online.choose(rng) {
                    sc.at(at).idle(ThreadId(t));
                }
            }
            50..=64 => {
                if let Some(&t) = targets.choose(rng) {
                    if let Some(&mhz) = cfg.pstates.frequencies_mhz().choose(rng) {
                        sc.at(at).pstate(ThreadId(t), mhz);
                    }
                }
            }
            65..=74 => {
                if let Some(&t) = targets.choose(rng) {
                    sc.at(at).cstate(ThreadId(t), rng.gen_range(1..=2u8), rng.gen_bool(0.5));
                }
            }
            75..=89 => {
                if let Some(&t) = targets.choose(rng) {
                    let was_online = !offline[t as usize];
                    sc.at(at).online(ThreadId(t), !was_online);
                    offline[t as usize] = was_online;
                }
            }
            90..=94 => {
                sc.at(at).preheat();
            }
            _ => {
                // `tracing(false)` would blind the invariant probes
                // mid-run, so the generator only ever turns tracing on.
                sc.at(at).tracing(true);
            }
        }
    }

    // Mandatory probes: the two invariant trace streams over the full
    // window (spans ending exactly at the scenario end), plus instant
    // (zero-length) windows at both boundaries.
    let focus = CoreId(rng.gen_range(0..num_cores));
    sc.probe(EV_ALL, Probe::TraceEvents(EventFilter::All), Window::span(0, end));
    sc.probe(EV_CORE, Probe::TraceEvents(EventFilter::Freq(focus)), Window::span(0, end));
    sc.probe("ac-end", Probe::AcPowerW, Window::at(end));
    sc.probe("ghz-start", Probe::EffectiveGhz(focus), Window::at(0));

    for i in 0..rng.gen_range(0usize..=5) {
        let label = format!("p{i}");
        let (a, b) = random_span(rng, end);
        match rng.gen_range(0u32..10) {
            0 => {
                sc.probe(label, Probe::AcTrueMeanW, Window::span(a, b));
            }
            1 => {
                // The LMG670 integrates 50 ms windows; give the metered
                // mean a window its inner-80% trim can populate.
                if end >= 120 * MILLISECOND {
                    let from = rng.gen_range(0..=end - 120 * MILLISECOND);
                    sc.probe(label, Probe::AcMeteredW, Window::span(from, end));
                } else {
                    sc.probe(label, Probe::MeterSamples, Window::span(a, b));
                }
            }
            2 => {
                sc.probe(label, Probe::RaplW, Window::span(a, b));
            }
            3 => {
                let core = CoreId(rng.gen_range(0..num_cores));
                sc.probe(label, Probe::RaplCoreW(core), Window::span(a, b));
            }
            4 => {
                let thread = ThreadId(rng.gen_range(0..num_threads));
                sc.probe(label, Probe::CounterDelta(thread), Window::span(a, b));
            }
            5 => {
                let thread = ThreadId(rng.gen_range(0..num_threads));
                let every = ((b - a) / rng.gen_range(1..=16u64)).max(1);
                sc.probe(label, Probe::CounterSeries { thread, every }, Window::span(a, b));
            }
            6 => {
                // Wakeup sampling needs a callee that sleeps across every
                // sample time; an untouched thread sleeps from boot.
                let callee = (0..num_threads).find(|t| !targets.contains(t));
                let count = rng.gen_range(1..=4u64);
                match callee {
                    Some(callee) if b - a >= count => {
                        let caller =
                            ThreadId(if callee == 0 { num_threads - 1 } else { callee - 1 });
                        let gap = ((b - a) / (count + 1)).max(1);
                        sc.probe(
                            label,
                            Probe::WakeupSamples {
                                caller,
                                callee: ThreadId(callee),
                                count: count as usize,
                                gap,
                            },
                            Window::span(a, b),
                        );
                    }
                    _ => {
                        sc.probe(label, Probe::AcTrueMeanW, Window::span(a, b));
                    }
                }
            }
            7 => {
                sc.probe(label, Probe::AcEnergyJ, Window::span(a, b));
            }
            8 => {
                let t = match rng.gen_range(0u32..3) {
                    0 => 0,
                    1 => end,
                    _ => rng.gen_range(0..=end),
                };
                let probe = match rng.gen_range(0u32..6) {
                    0 => Probe::EffectiveGhz(CoreId(rng.gen_range(0..num_cores))),
                    1 => Probe::AcPowerW,
                    2 => Probe::PkgTrueW(SocketId(rng.gen_range(0..num_sockets))),
                    3 => Probe::L3LatencyNs(CoreId(rng.gen_range(0..num_cores))),
                    4 => Probe::DramLatencyNs,
                    _ => Probe::StreamTriadGbs(rng.gen_range(1..=num_cores)),
                };
                sc.probe(label, probe, Window::at(t));
            }
            _ => {
                let filter = match rng.gen_range(0u32..5) {
                    0 => EventFilter::All,
                    1 => EventFilter::Freq(CoreId(rng.gen_range(0..num_cores))),
                    2 => EventFilter::ThreadState(ThreadId(rng.gen_range(0..num_threads))),
                    3 => EventFilter::PackageSleep(SocketId(rng.gen_range(0..num_sockets))),
                    _ => EventFilter::CapChanged(SocketId(rng.gen_range(0..num_sockets))),
                };
                sc.probe(label, Probe::TraceEvents(filter), Window::span(a, b));
            }
        }
    }

    // run_until boundaries: sometimes the explicit minimum coincides
    // with the probes' end, sometimes it sits *below* the last step or
    // window (steps after `run_until` are legal — it is a minimum, not
    // a cap), and sometimes it is absent entirely.
    match rng.gen_range(0u32..3) {
        0 => {
            sc.run_until(end);
        }
        1 => {
            let t = rng.gen_range(0..=end);
            sc.run_until(t);
        }
        _ => {}
    }
    sc
}

// ---- invariant checking ----------------------------------------------------

/// One audited contract a [`Run`] broke. [`Violation::kind`] names the
/// invariant family, so tests can assert a tampered run trips exactly
/// its own invariant and nothing else.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Per-core residency fractions failed to sum to 1, or the filtered
    /// and client-filtered event streams disagreed.
    Residency {
        /// Label of the trace probe the histogram was reduced from.
        label: String,
        /// What went wrong.
        detail: String,
    },
    /// A power, energy, frequency, latency, or bandwidth reading left
    /// its physical envelope (NaN always lands here).
    Power {
        /// Label of the offending measurement (`final_ac_w` for the
        /// run's closing power).
        label: String,
        /// The reading.
        value: f64,
        /// Lowest admissible value.
        lo: f64,
        /// Highest admissible value.
        hi: f64,
    },
    /// A trace stream broke its discipline: non-monotone timestamps,
    /// events outside the probe window or filter, undefined request
    /// targets, super-nominal applies, or broken request→apply pairing.
    Trace {
        /// Label of the offending trace probe.
        label: String,
        /// What went wrong.
        detail: String,
    },
    /// A hardware counter ran backwards or beat its own reference clock.
    Counters {
        /// Label of the offending counter probe.
        label: String,
        /// What went wrong.
        detail: String,
    },
    /// An accumulator built from the run failed to round-trip through
    /// its exact-JSON [`Snapshot`] wire format bit-for-bit.
    Snapshot {
        /// Which accumulator.
        what: &'static str,
    },
    /// Two execution paths disagreed on the same case (reported by the
    /// `torture` bin's differential mode, not by [`Invariants::check`]).
    Differential {
        /// What disagreed.
        detail: String,
    },
    /// The run does not structurally match its scenario (missing or
    /// re-ordered measurements, a run shorter than its scenario) — or
    /// the generator proposed a scenario that failed validation.
    Malformed {
        /// What went wrong.
        detail: String,
    },
}

impl Violation {
    /// The invariant family this violation belongs to.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Residency { .. } => "residency",
            Self::Power { .. } => "power",
            Self::Trace { .. } => "trace",
            Self::Counters { .. } => "counters",
            Self::Snapshot { .. } => "snapshot",
            Self::Differential { .. } => "differential",
            Self::Malformed { .. } => "malformed",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Residency { label, detail } => write!(f, "residency[{label}]: {detail}"),
            Self::Power { label, value, lo, hi } => {
                write!(f, "power[{label}]: {value} W outside [{lo:.1}, {hi:.1}]")
            }
            Self::Trace { label, detail } => write!(f, "trace[{label}]: {detail}"),
            Self::Counters { label, detail } => write!(f, "counters[{label}]: {detail}"),
            Self::Snapshot { what } => {
                write!(f, "snapshot[{what}]: wire round-trip is not bit-identical")
            }
            Self::Differential { detail } => write!(f, "differential: {detail}"),
            Self::Malformed { detail } => write!(f, "malformed: {detail}"),
        }
    }
}

/// The physics-invariant checker for one machine configuration: every
/// bound is derived from the config's own power and P-state parameters,
/// so the same checker audits the 2-socket 7502, the 1-socket presets,
/// and any ablation variant.
#[derive(Debug, Clone)]
pub struct Invariants {
    ac_floor_w: f64,
    ac_ceil_w: f64,
    socket_dc_ceil_w: f64,
    system_dc_ceil_w: f64,
    nominal_mhz: u32,
    table_mhz: Vec<u32>,
    topology: zen2_topology::Topology,
}

/// The admissible ceiling of a windowed RAPL power reading.
///
/// RAPL counters publish every 1 ms (`zen2_rapl`'s `UPDATE_PERIOD_NS`;
/// the paper's Section VII measures exactly this). ΔE/Δt over a window
/// shorter than the update period therefore spikes legitimately: one
/// counter update inside a 17 µs window credits a full millisecond of
/// energy to 17 µs of wall time. Scale the steady-state ceiling by the
/// worst case — up to two boundary updates beyond the window's own
/// share. (The torture soak *found* this: the first 10⁴-case run
/// flagged a 5 kW "violation" on a degenerate 17 µs RaplW window.)
fn rapl_window_ceiling(dc_ceil_w: f64, window: &Window) -> f64 {
    let len = (window.to - window.from).max(1);
    dc_ceil_w * (len + 2 * zen2_rapl::accounting::UPDATE_PERIOD_NS) as f64 / len as f64
}

impl Invariants {
    /// Derives the envelopes for one configuration.
    ///
    /// The AC floor is the all-packages-PC6 state (package C6 power per
    /// socket, DRAM in self-refresh, platform overhead, through the PSU
    /// efficiency curve) with 5 % slack for thermal/leakage transients;
    /// the ceiling allows every socket 1.6× TDP (PPT caps the *SMU
    /// estimate*, and the paper's point is that true power exceeds it)
    /// plus 150 W of DRAM and fan headroom.
    pub fn for_config(cfg: &SimConfig) -> Self {
        let sockets = cfg.topology.num_sockets() as f64;
        let p = &cfg.power;
        let floor_dc = sockets * p.package.pc6_w + p.dram.self_refresh_w() + p.platform_dc_w;
        let ceil_dc = sockets * p.package.tdp_w * 1.6 + 150.0 + p.platform_dc_w;
        Self {
            ac_floor_w: p.psu.ac_from_dc(floor_dc) * 0.95,
            ac_ceil_w: p.psu.ac_from_dc(ceil_dc),
            socket_dc_ceil_w: p.package.tdp_w * 1.6,
            system_dc_ceil_w: sockets * p.package.tdp_w * 1.6,
            nominal_mhz: cfg.nominal_mhz(),
            table_mhz: cfg.pstates.frequencies_mhz(),
            topology: cfg.topology.clone(),
        }
    }

    /// Audits one run of `scenario` and returns every violation found
    /// (empty = the run upholds every invariant).
    pub fn check(&self, scenario: &Scenario, run: &Run) -> Vec<Violation> {
        let mut out = Vec::new();
        let end = scenario.end();
        let Some(offset) = run.end_ns.checked_sub(end) else {
            return vec![Violation::Malformed {
                detail: format!(
                    "run ends at {} ns but the scenario alone is {end} ns long",
                    run.end_ns
                ),
            }];
        };
        if run.measurements.len() != scenario.probes().len() {
            return vec![Violation::Malformed {
                detail: format!(
                    "{} measurements for {} probes",
                    run.measurements.len(),
                    scenario.probes().len()
                ),
            }];
        }
        for (spec, (label, m)) in scenario.probes().iter().zip(&run.measurements) {
            if &spec.label != label {
                out.push(Violation::Malformed {
                    detail: format!("probe {:?} delivered as {label:?}", spec.label),
                });
                continue;
            }
            self.check_measurement(spec, m, offset, scenario, &mut out);
        }
        self.check_ac("final_ac_w", run.final_ac_w, &mut out);
        self.check_residency(scenario, run, offset, end, &mut out);
        self.check_snapshots(scenario, run, &mut out);
        out
    }

    fn check_ac(&self, label: &str, w: f64, out: &mut Vec<Violation>) {
        if !(w >= self.ac_floor_w && w <= self.ac_ceil_w) {
            out.push(Violation::Power {
                label: label.to_string(),
                value: w,
                lo: self.ac_floor_w,
                hi: self.ac_ceil_w,
            });
        }
    }

    fn check_bounds(&self, label: &str, v: f64, lo: f64, hi: f64, out: &mut Vec<Violation>) {
        if !(v >= lo && v <= hi) {
            out.push(Violation::Power { label: label.to_string(), value: v, lo, hi });
        }
    }

    // Negated comparisons here are load-bearing: a NaN fails `!(a <= b)`
    // but would pass the clippy-preferred `a > b`, and a NaN that slips
    // through an envelope check is exactly the kind of bug this module
    // exists to catch.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn check_measurement(
        &self,
        spec: &ProbeSpec,
        m: &Measurement,
        offset: Ns,
        scenario: &Scenario,
        out: &mut Vec<Violation>,
    ) {
        let label = spec.label.as_str();
        match (&spec.probe, m) {
            (Probe::AcTrueMeanW | Probe::AcMeteredW | Probe::AcPowerW, Measurement::Watts(w)) => {
                self.check_ac(label, *w, out);
            }
            (Probe::PkgTrueW(_), Measurement::Watts(w)) => {
                self.check_bounds(label, *w, 0.0, self.socket_dc_ceil_w, out);
            }
            (Probe::RaplCoreW(_), Measurement::Watts(w)) => {
                let hi = rapl_window_ceiling(self.socket_dc_ceil_w, &spec.window);
                self.check_bounds(label, *w, 0.0, hi, out);
            }
            (Probe::RaplW, Measurement::WattsPair { pkg_w, core_w }) => {
                let hi = rapl_window_ceiling(self.system_dc_ceil_w, &spec.window);
                self.check_bounds(label, *pkg_w, 0.0, hi, out);
                // The package rail contains the core rail: AMD's package
                // counter is cores + SoC, never less than its cores.
                self.check_bounds(label, *core_w, 0.0, *pkg_w + 1e-6, out);
            }
            (Probe::MeterSamples, Measurement::Samples(samples)) => {
                for pair in samples.windows(2) {
                    if pair[1].t_s <= pair[0].t_s {
                        out.push(Violation::Trace {
                            label: label.to_string(),
                            detail: format!(
                                "meter samples run backwards ({} s then {} s)",
                                pair[0].t_s, pair[1].t_s
                            ),
                        });
                        break;
                    }
                }
                for s in samples {
                    // LMG670 noise is well under 1 W at these powers.
                    self.check_bounds(
                        label,
                        s.watts,
                        self.ac_floor_w - 2.0,
                        self.ac_ceil_w + 2.0,
                        out,
                    );
                }
            }
            (Probe::AcEnergyJ, Measurement::Joules(j)) => {
                let len = spec.window.secs();
                self.check_bounds(
                    label,
                    *j,
                    self.ac_floor_w * len * 0.9 - 0.1,
                    self.ac_ceil_w * len * 1.1 + 0.1,
                    out,
                );
            }
            (Probe::EffectiveGhz(_), Measurement::Ghz(g)) => {
                self.check_bounds(label, *g, 0.0, self.nominal_mhz as f64 / 1000.0 + 1e-3, out);
            }
            (Probe::L3LatencyNs(_) | Probe::DramLatencyNs, Measurement::Nanos(n)) => {
                if !(*n > 0.0 && *n < 1e6) {
                    out.push(Violation::Power {
                        label: label.to_string(),
                        value: *n,
                        lo: 0.0,
                        hi: 1e6,
                    });
                }
            }
            (Probe::StreamTriadGbs(_), Measurement::GigabytesPerSec(b)) => {
                if !(*b > 0.0 && *b < 1e4) {
                    out.push(Violation::Power {
                        label: label.to_string(),
                        value: *b,
                        lo: 0.0,
                        hi: 1e4,
                    });
                }
            }
            (Probe::WakeupSamples { .. }, Measurement::DurationsNs(ds)) => {
                for d in ds {
                    if !(*d >= 0.0 && *d <= 1e8) {
                        out.push(Violation::Power {
                            label: label.to_string(),
                            value: *d,
                            lo: 0.0,
                            hi: 1e8,
                        });
                    }
                }
            }
            (Probe::CounterDelta(_), Measurement::CounterDelta { begin, end, wall_s }) => {
                self.check_counter_step(label, begin, end, out);
                // The TSC is invariant: it ticks at the nominal rate no
                // matter what the core clock, C-states, or hotplug do.
                let expected_tsc = wall_s * self.nominal_mhz as f64 * 1e6;
                let dt = end.tsc - begin.tsc;
                if !((dt - expected_tsc).abs() <= expected_tsc * 1e-3 + 10.0) {
                    out.push(Violation::Counters {
                        label: label.to_string(),
                        detail: format!(
                            "TSC advanced {dt} over {wall_s} s (expected {expected_tsc})"
                        ),
                    });
                }
            }
            (Probe::CounterSeries { .. }, Measurement::CounterSeries(snaps)) => {
                for pair in snaps.windows(2) {
                    self.check_counter_step(label, &pair[0], &pair[1], out);
                }
            }
            (Probe::TraceEvents(filter), Measurement::Events(records)) => {
                self.check_events(spec, filter, records, offset, scenario, out);
            }
            _ => out.push(Violation::Malformed {
                detail: format!("probe {label:?} delivered a foreign measurement shape"),
            }),
        }
    }

    // Same NaN-trapping rationale as `check_measurement`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn check_counter_step(
        &self,
        label: &str,
        a: &crate::perf::ThreadCounters,
        b: &crate::perf::ThreadCounters,
        out: &mut Vec<Violation>,
    ) {
        let fields = [
            ("tsc", a.tsc, b.tsc),
            ("aperf", a.aperf, b.aperf),
            ("mperf", a.mperf, b.mperf),
            ("cycles", a.cycles, b.cycles),
            ("instructions", a.instructions, b.instructions),
        ];
        for (name, from, to) in fields {
            if !(to >= from) {
                out.push(Violation::Counters {
                    label: label.to_string(),
                    detail: format!("{name} ran backwards ({from} -> {to})"),
                });
            }
        }
        // APERF/MPERF only tick in C0 and never faster than the TSC's
        // nominal reference.
        let dt = b.tsc - a.tsc;
        for (name, from, to) in [("aperf", a.aperf, b.aperf), ("mperf", a.mperf, b.mperf)] {
            if !(to - from <= dt * (1.0 + 1e-6) + 1.0) {
                out.push(Violation::Counters {
                    label: label.to_string(),
                    detail: format!("{name} outran the TSC ({} vs {dt})", to - from),
                });
            }
        }
    }

    fn check_events(
        &self,
        spec: &ProbeSpec,
        filter: &EventFilter,
        records: &[Record],
        offset: Ns,
        scenario: &Scenario,
        out: &mut Vec<Violation>,
    ) {
        let label = spec.label.as_str();
        let (from, to) = (offset + spec.window.from, offset + spec.window.to);
        let mut monotone = true;
        for pair in records.windows(2) {
            if pair[1].at_ns < pair[0].at_ns {
                out.push(Violation::Trace {
                    label: label.to_string(),
                    detail: format!(
                        "timestamps run backwards ({} ns then {} ns)",
                        pair[0].at_ns, pair[1].at_ns
                    ),
                });
                monotone = false;
                break;
            }
        }
        for r in records {
            if r.at_ns < from || r.at_ns > to {
                out.push(Violation::Trace {
                    label: label.to_string(),
                    detail: format!("event at {} ns outside window [{from}, {to}]", r.at_ns),
                });
                break;
            }
        }
        if let Some(r) = records.iter().find(|r| !filter.matches(&r.event)) {
            out.push(Violation::Trace {
                label: label.to_string(),
                detail: format!("event {:?} leaked through filter {filter:?}", r.event),
            });
        }
        for r in records {
            match r.event {
                Event::FreqRequested { target_mhz, .. }
                    if !self.table_mhz.contains(&target_mhz) =>
                {
                    out.push(Violation::Trace {
                        label: label.to_string(),
                        detail: format!("request for undefined P-state {target_mhz} MHz"),
                    });
                }
                Event::FreqApplied { mhz, .. } if mhz == 0 || mhz > self.nominal_mhz => {
                    out.push(Violation::Trace {
                        label: label.to_string(),
                        detail: format!("applied {mhz} MHz outside (0, nominal]"),
                    });
                }
                _ => {}
            }
        }
        // Pairing and step coverage only make sense on the one stream
        // that sees everything over the whole scenario.
        if matches!(filter, EventFilter::All) && spec.window.from == 0 && monotone {
            self.check_pairing(label, records, out);
            self.check_step_requests(label, records, offset, scenario, out);
        }
    }

    /// Request→apply pairing on the all-events stream, with the same
    /// per-core queue semantics as [`TransitionStats`]: unmatched
    /// applies are legitimate (the PPT controller and CCX re-derivation
    /// retarget cores without a traced request), but a *matched* apply
    /// must never precede its request. No upper latency bound: a
    /// throttled or coupling-masked request legitimately waits until
    /// conditions change — the soak found a real 103 ms wait within a
    /// 150 ms scenario, so any fixed bound is a flake source.
    fn check_pairing(&self, label: &str, records: &[Record], out: &mut Vec<Violation>) {
        let mut pending: BTreeMap<u32, Vec<(Ns, u32)>> = BTreeMap::new();
        for r in records {
            match r.event {
                Event::FreqRequested { core, target_mhz } => {
                    let queue = pending.entry(core.0).or_default();
                    if queue.iter().all(|&(_, mhz)| mhz != target_mhz) {
                        queue.push((r.at_ns, target_mhz));
                    }
                }
                Event::FreqApplied { core, mhz, .. } => {
                    let Some(queue) = pending.get_mut(&core.0) else { continue };
                    let Some(at) = queue.iter().position(|&(_, target)| target == mhz) else {
                        continue;
                    };
                    let (requested_at, _) = queue[at];
                    queue.drain(..=at);
                    if r.at_ns.checked_sub(requested_at).is_none() {
                        out.push(Violation::Trace {
                            label: label.to_string(),
                            detail: format!(
                                "core {} applied {mhz} MHz at {} ns before its request at \
                                 {requested_at} ns",
                                core.0, r.at_ns
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    }

    /// Every scheduled `PstateMhz` step must surface as a
    /// `FreqRequested` record for the thread's core at exactly the
    /// step's time — the tracer may not drop or shift requests.
    fn check_step_requests(
        &self,
        label: &str,
        records: &[Record],
        offset: Ns,
        scenario: &Scenario,
        out: &mut Vec<Violation>,
    ) {
        for step in scenario.steps() {
            let Op::PstateMhz { thread, mhz } = step.op else { continue };
            let core = self.topology.core_of(thread);
            let at = offset + step.at;
            let found = records.iter().any(|r| {
                r.at_ns == at
                    && matches!(r.event, Event::FreqRequested { core: c, target_mhz }
                        if c == core && target_mhz == mhz)
            });
            if !found {
                out.push(Violation::Trace {
                    label: label.to_string(),
                    detail: format!(
                        "P-state step ({} MHz on thread {} at {} ns) left no request record",
                        mhz, thread.0, step.at
                    ),
                });
            }
        }
    }

    /// Residency conservation and filter agreement: the `Freq(core)`
    /// stream's histogram must account every nanosecond of the window
    /// (fractions sum to exactly 1 in integer arithmetic) and must be
    /// bit-identical to the histogram built from the all-events stream
    /// filtered client-side.
    fn check_residency(
        &self,
        scenario: &Scenario,
        run: &Run,
        offset: Ns,
        end: Ns,
        out: &mut Vec<Violation>,
    ) {
        let full = |s: &ProbeSpec| s.window.from == 0 && s.window.to == end;
        let core_spec = scenario
            .probes()
            .iter()
            .find(|s| matches!(s.probe, Probe::TraceEvents(EventFilter::Freq(_))) && full(s));
        let all_spec = scenario
            .probes()
            .iter()
            .find(|s| matches!(s.probe, Probe::TraceEvents(EventFilter::All)) && full(s));
        let (Some(core_spec), Some(all_spec)) = (core_spec, all_spec) else { return };
        let Probe::TraceEvents(core_filter @ EventFilter::Freq(core)) = core_spec.probe else {
            return;
        };
        let find = |label: &str| {
            run.measurements.iter().find(|(l, _)| l == label).and_then(|(_, m)| match m {
                Measurement::Events(records) => Some(records),
                _ => None,
            })
        };
        let (Some(core_events), Some(all_events)) = (find(&core_spec.label), find(&all_spec.label))
        else {
            return;
        };
        let (from, to) = (offset, offset + end);
        let mut filtered = FreqResidency::new();
        filtered.observe(core_events, from, to);
        if filtered.total_ns() != end {
            out.push(Violation::Residency {
                label: core_spec.label.clone(),
                detail: format!(
                    "histogram accounts {} of {end} ns (fractions sum to {:.6}, not 1)",
                    filtered.total_ns(),
                    filtered.total_ns() as f64 / end.max(1) as f64
                ),
            });
        }
        let reference_records: Vec<Record> =
            all_events.iter().filter(|r| core_filter.matches(&r.event)).cloned().collect();
        let mut reference = FreqResidency::new();
        reference.observe(&reference_records, from, to);
        if filtered != reference {
            let known = |r: &FreqResidency| r.total_ns() - r.unknown_ns();
            out.push(Violation::Residency {
                label: core_spec.label.clone(),
                detail: format!(
                    "core {}: Freq-filtered stream disagrees with the all-events stream \
                     ({} vs {} known ns)",
                    core.0,
                    known(&filtered),
                    known(&reference)
                ),
            });
        }
    }

    /// Accumulators built from the run must round-trip through their
    /// exact-JSON wire format bit-for-bit — the contract checkpointed
    /// sweeps stand on.
    fn check_snapshots(&self, scenario: &Scenario, run: &Run, out: &mut Vec<Violation>) {
        fn roundtrip<S: Snapshot + PartialEq>(x: &S, what: &'static str, out: &mut Vec<Violation>) {
            let text = x.to_json_text();
            match S::from_json_text(&text) {
                Ok(back) if back == *x && back.to_json_text() == text => {}
                _ => out.push(Violation::Snapshot { what }),
            }
        }
        let mut stats = OnlineStats::new();
        stats.push(run.final_ac_w);
        for (_, m) in &run.measurements {
            match m {
                Measurement::Watts(w) => stats.push(*w),
                Measurement::Ghz(g) => stats.push(*g),
                Measurement::Joules(j) => stats.push(*j),
                _ => {}
            }
        }
        roundtrip(&stats, "OnlineStats", out);
        let end = scenario.end();
        let full_all = scenario.probes().iter().find(|s| {
            matches!(s.probe, Probe::TraceEvents(EventFilter::All))
                && s.window.from == 0
                && s.window.to == end
        });
        if let Some(spec) = full_all {
            if let Some(Measurement::Events(records)) =
                run.measurements.iter().find(|(l, _)| *l == spec.label).map(|(_, m)| m)
            {
                let mut transitions = TransitionStats::new();
                transitions.observe(records);
                roundtrip(&transitions, "TransitionStats", out);
                let mut residency = FreqResidency::new();
                let offset = run.end_ns - end;
                residency.observe(records, offset, offset + end);
                roundtrip(&residency, "FreqResidency", out);
            }
        }
    }
}

/// Convenience: derive the checker from the case's own config and audit
/// its run.
pub fn check_case(case: &Case, run: &Run) -> Vec<Violation> {
    Invariants::for_config(&case.config).check(&case.scenario, run)
}

// ---- deliberate faults -----------------------------------------------------

/// A deliberate, seeded defect for checker self-validation and the
/// `torture` bin's reproducer drill: each fault trips exactly its own
/// invariant family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Splices a bogus `FreqApplied` into the [`EV_CORE`] stream so the
    /// per-core residency no longer agrees with the all-events stream.
    Residency,
    /// Appends two out-of-order package-sleep records to the [`EV_ALL`]
    /// stream so its timestamps run backwards.
    Trace,
    /// Replaces the run's closing AC power with a megawatt.
    Power,
}

impl Fault {
    /// Parses a `--inject-fault` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "residency" => Some(Self::Residency),
            "trace" => Some(Self::Trace),
            "power" => Some(Self::Power),
            _ => None,
        }
    }

    /// The [`Violation::kind`] this fault must trip — and the only one.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Residency => "residency",
            Self::Trace => "trace",
            Self::Power => "power",
        }
    }
}

/// Tampers with a run so it violates exactly one invariant family
/// (see [`Fault`]). The case provides the probe layout the tampering
/// targets; a run without the targeted probe is left unchanged.
pub fn inject_fault(case: &Case, run: &mut Run, fault: Fault) {
    let end = case.scenario.end();
    let end_ns = run.end_ns;
    fn find<'a>(run: &'a mut Run, label: &str) -> Option<&'a mut Measurement> {
        run.measurements.iter_mut().find(|(l, _)| l == label).map(|(_, m)| m)
    }
    match fault {
        Fault::Power => run.final_ac_w = 1.0e6,
        Fault::Trace => {
            if let Some(Measurement::Events(records)) = find(run, EV_ALL) {
                let socket = SocketId(0);
                records.push(Record {
                    at_ns: end_ns,
                    event: Event::PackageSleep { socket, asleep: true },
                });
                records.push(Record {
                    at_ns: end_ns - 1,
                    event: Event::PackageSleep { socket, asleep: false },
                });
            }
        }
        Fault::Residency => {
            let core = case.scenario.probes().iter().find_map(|s| match s.probe {
                Probe::TraceEvents(EventFilter::Freq(core)) => Some(core),
                _ => None,
            });
            let Some(core) = core else { return };
            if let Some(Measurement::Events(records)) = find(run, EV_CORE) {
                // Mid-window, at a timestamp no SMU event lands on, so
                // the splice stays monotone and credits real time to a
                // frequency the machine never ran at.
                let at_ns = end_ns - end / 2 - 7;
                let idx = records.partition_point(|r| r.at_ns <= at_ns);
                records.insert(
                    idx,
                    Record { at_ns, event: Event::FreqApplied { core, mhz: 1, fast_path: false } },
                );
            }
        }
    }
}

// ---- shrinking -------------------------------------------------------------

/// Greedily shrinks a failing scenario to a minimal one: repeatedly
/// drops steps and probes (and the explicit `run_until` minimum) while
/// `still_fails` keeps returning `true`, to a fixpoint. Deterministic;
/// the vendored proptest shim cannot shrink, so both the proptest suite
/// and the `torture` bin reduce reproducers through this.
pub fn shrink_scenario(
    scenario: &Scenario,
    still_fails: &mut dyn FnMut(&Scenario) -> bool,
) -> Scenario {
    let mut steps: Vec<Step> = scenario.steps().to_vec();
    let mut probes: Vec<ProbeSpec> = scenario.probes().to_vec();
    let mut run_until = scenario.run_until_ns();
    loop {
        let mut changed = false;
        let mut i = steps.len();
        while i > 0 {
            i -= 1;
            let mut candidate = steps.clone();
            candidate.remove(i);
            if still_fails(&rebuild(&candidate, &probes, run_until)) {
                steps = candidate;
                changed = true;
            }
        }
        let mut i = probes.len();
        while i > 0 {
            i -= 1;
            let mut candidate = probes.clone();
            candidate.remove(i);
            if still_fails(&rebuild(&steps, &candidate, run_until)) {
                probes = candidate;
                changed = true;
            }
        }
        if run_until > 0 && still_fails(&rebuild(&steps, &probes, 0)) {
            run_until = 0;
            changed = true;
        }
        if !changed {
            break;
        }
    }
    rebuild(&steps, &probes, run_until)
}

/// Reassembles a scenario from parts through the public builder — the
/// shrinker's constructor, also usable to replay a rendered reproducer.
pub fn rebuild(steps: &[Step], probes: &[ProbeSpec], run_until: Ns) -> Scenario {
    let mut sc = Scenario::new();
    for s in steps {
        let at = sc.at(s.at);
        match s.op {
            Op::Workload { thread, class, weight } => {
                at.workload(thread, class, weight);
            }
            Op::Idle { thread } => {
                at.idle(thread);
            }
            Op::PstateMhz { thread, mhz } => {
                at.pstate(thread, mhz);
            }
            Op::CstateEnabled { thread, level, enabled } => {
                at.cstate(thread, level, enabled);
            }
            Op::Online { thread, online } => {
                at.online(thread, online);
            }
            Op::Preheat => {
                at.preheat();
            }
            Op::Tracing(enabled) => {
                at.tracing(enabled);
            }
        }
    }
    for p in probes {
        sc.probe(p.label.clone(), p.probe, p.window);
    }
    if run_until > 0 {
        sc.run_until(run_until);
    }
    sc
}

/// Renders a self-contained reproducer: the two numbers that regenerate
/// the case, the machine it ran on, the violations, and the shrunk
/// minimal scenario.
pub fn render_reproducer(
    root_seed: u64,
    index: u64,
    case: &Case,
    violations: &[Violation],
    shrunk: &Scenario,
) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "torture reproducer");
    let _ = writeln!(out, "==================");
    let _ = writeln!(out, "root seed : {root_seed}");
    let _ = writeln!(
        out,
        "case index: {index}  (regenerate: torture::generate_case({root_seed}, {index}))"
    );
    let _ = writeln!(out, "case seed : {}", case.seed);
    let t = &case.config.topology;
    let _ = writeln!(
        out,
        "machine   : {} threads / {} cores / {} sockets, ccx_coupling={}, global_package_c6={}",
        t.num_threads(),
        t.num_cores(),
        t.num_sockets(),
        case.config.ccx_coupling,
        case.config.global_package_c6,
    );
    let _ = writeln!(out, "violations:");
    for v in violations {
        let _ = writeln!(out, "  - {v}");
    }
    let _ = writeln!(
        out,
        "shrunk scenario ({} steps, {} probes, run_until {} ns):",
        shrunk.steps().len(),
        shrunk.probes().len(),
        shrunk.run_until_ns(),
    );
    for s in shrunk.steps() {
        let _ = writeln!(out, "  step  at {:>12} ns: {:?}", s.at, s.op);
    }
    for p in shrunk.probes() {
        let _ = writeln!(
            out,
            "  probe {:?}: {:?} over [{}, {}] ns",
            p.label, p.probe, p.window.from, p.window.to
        );
    }
    out
}

// ---- invalid proposals -----------------------------------------------------

/// Number of distinct invalid timelines [`invalid_proposal`] can build —
/// one per [`ScenarioError`] variant the validator names.
pub const INVALID_PROPOSALS: usize = 15;

/// Mutates a *valid* scenario into one the validator must reject,
/// returning the proposal and the name of the [`ScenarioError`] variant
/// it must be rejected with. `kind` selects one of
/// [`INVALID_PROPOSALS`] mutations; the mutation only ever targets
/// threads the base scenario leaves untouched, so the expected error —
/// and no other — fires regardless of the base timeline.
pub fn invalid_proposal(cfg: &SimConfig, base: &Scenario, kind: usize) -> (Scenario, &'static str) {
    let num_threads = cfg.topology.num_threads() as u32;
    let num_cores = cfg.topology.num_cores() as u32;
    let num_sockets = cfg.topology.num_sockets() as u32;
    // A thread no base step touches: mutations on it cannot interact
    // with the base schedule's hotplug state.
    let free = (0..num_threads)
        .find(|&t| base.steps().iter().all(|s| s.op.target() != Some(ThreadId(t))))
        .unwrap_or(0);
    let free = ThreadId(free);
    let mut sc = base.clone();
    let name = match kind {
        0 => {
            sc.at(0).idle(ThreadId(num_threads));
            "ThreadOutOfRange"
        }
        1 => {
            sc.probe("bad-core", Probe::EffectiveGhz(CoreId(num_cores)), Window::at(0));
            "CoreOutOfRange"
        }
        2 => {
            sc.probe("bad-socket", Probe::PkgTrueW(SocketId(num_sockets)), Window::at(0));
            "SocketOutOfRange"
        }
        3 => {
            sc.at(0).pstate(free, 123_456);
            "UndefinedPstate"
        }
        4 => {
            sc.at(0).cstate(free, 7, false);
            "UndefinedCstate"
        }
        5 => {
            sc.at(1).online(free, false);
            sc.at(2).workload(free, KernelClass::BusyWait, OperandWeight::HALF);
            "ActionOnOfflineThread"
        }
        6 => {
            let label =
                sc.probes().first().map(|p| p.label.clone()).unwrap_or_else(|| "dup".to_string());
            sc.probe(label.clone(), Probe::AcPowerW, Window::at(0));
            if sc.probes().len() == 1 {
                sc.probe(label, Probe::AcPowerW, Window::at(0));
            }
            "DuplicateLabel"
        }
        7 => {
            sc.at(0).workload(free, KernelClass::BusyWait, OperandWeight::HALF);
            let caller = ThreadId(if free.0 == 0 { 1 } else { 0 });
            sc.probe(
                "busy-callee",
                Probe::WakeupSamples { caller, callee: free, count: 1, gap: MILLISECOND / 2 },
                Window::span(MILLISECOND, 2 * MILLISECOND),
            );
            "WakeupCalleeNotSleeping"
        }
        8 => {
            sc.probe("backwards", Probe::AcTrueMeanW, Window { from: 2, to: 1 });
            "NegativeWindow"
        }
        9 => {
            sc.probe(
                "overfull",
                Probe::WakeupSamples {
                    caller: ThreadId(0),
                    callee: free,
                    count: 10,
                    gap: MILLISECOND,
                },
                Window::span(0, 5 * MILLISECOND),
            );
            "WindowOutOfRange"
        }
        10 => {
            sc.probe("span-as-instant", Probe::AcTrueMeanW, Window::at(0));
            "WindowShapeMismatch"
        }
        11 => {
            sc.probe(
                "zero-every",
                Probe::CounterSeries { thread: free, every: 0 },
                Window::span(0, MILLISECOND),
            );
            "ZeroInterval"
        }
        12 => {
            sc.probe(
                "firehose",
                Probe::CounterSeries { thread: free, every: 1 },
                Window::span(0, 100 * MILLISECOND),
            );
            "SamplingPlanTooLarge"
        }
        13 => {
            sc.run_until(crate::probe::MAX_WINDOW_NS + 1);
            "ScenarioTooLong"
        }
        _ => {
            sc.probe("starved-meter", Probe::AcMeteredW, Window::span(0, 10 * MILLISECOND));
            "MeterWindowTooShort"
        }
    };
    (sc, name)
}

/// The name of a [`ScenarioError`]'s variant, for matching rejections
/// against [`invalid_proposal`] expectations.
pub fn error_name(e: &ScenarioError) -> &'static str {
    match e {
        ScenarioError::ThreadOutOfRange { .. } => "ThreadOutOfRange",
        ScenarioError::CoreOutOfRange { .. } => "CoreOutOfRange",
        ScenarioError::SocketOutOfRange { .. } => "SocketOutOfRange",
        ScenarioError::UndefinedPstate { .. } => "UndefinedPstate",
        ScenarioError::UndefinedCstate { .. } => "UndefinedCstate",
        ScenarioError::ActionOnOfflineThread { .. } => "ActionOnOfflineThread",
        ScenarioError::DuplicateLabel { .. } => "DuplicateLabel",
        ScenarioError::WakeupCalleeNotSleeping { .. } => "WakeupCalleeNotSleeping",
        ScenarioError::NegativeWindow { .. } => "NegativeWindow",
        ScenarioError::WindowOutOfRange { .. } => "WindowOutOfRange",
        ScenarioError::WindowShapeMismatch { .. } => "WindowShapeMismatch",
        ScenarioError::ZeroInterval { .. } => "ZeroInterval",
        ScenarioError::SamplingPlanTooLarge { .. } => "SamplingPlanTooLarge",
        ScenarioError::ScenarioTooLong { .. } => "ScenarioTooLong",
        ScenarioError::MeterWindowTooShort { .. } => "MeterWindowTooShort",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;

    fn run_case(case: &Case) -> Run {
        let mut sys = System::new(case.config.clone(), case.seed);
        sys.run_scenario(&case.scenario).expect("generated scenarios validate")
    }

    #[test]
    fn generated_cases_validate_and_pass_every_invariant() {
        for index in 0..12 {
            let case = generate_case(0xF00D, index);
            case.scenario.validate(&case.config).expect("generator proposes valid timelines");
            let run = run_case(&case);
            let violations = check_case(&case, &run);
            assert!(
                violations.is_empty(),
                "case {index}: {:?}",
                violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_case(7, 3), generate_case(7, 3));
        assert_ne!(generate_case(7, 3), generate_case(7, 4));
    }

    #[test]
    fn every_generated_case_carries_the_boundary_probes() {
        let case = generate_case(11, 0);
        let end = case.scenario.end();
        let probes = case.scenario.probes();
        assert!(probes.iter().any(|p| p.label == EV_ALL && p.window == Window::span(0, end)));
        assert!(probes.iter().any(|p| p.label == EV_CORE && p.window == Window::span(0, end)));
        assert!(probes.iter().any(|p| p.window == Window::at(end)), "instant probe at end");
        assert!(probes.iter().any(|p| p.window == Window::at(0)), "instant probe at start");
    }

    #[test]
    fn every_invalid_proposal_is_rejected_with_its_named_error() {
        let case = generate_case(0xBAD, 2);
        for kind in 0..INVALID_PROPOSALS {
            let (proposal, expected) = invalid_proposal(&case.config, &case.scenario, kind);
            let err = proposal
                .validate(&case.config)
                .expect_err(&format!("proposal {kind} ({expected}) must be rejected"));
            assert_eq!(error_name(&err), expected, "proposal {kind}: got {err}");
        }
    }

    #[test]
    fn residency_fault_trips_exactly_the_residency_invariant() {
        let case = generate_case(1, 0);
        let mut run = run_case(&case);
        inject_fault(&case, &mut run, Fault::Residency);
        let violations = check_case(&case, &run);
        assert!(!violations.is_empty(), "fault must trip");
        assert!(
            violations.iter().all(|v| v.kind() == "residency"),
            "only residency may trip: {violations:?}"
        );
    }

    #[test]
    fn trace_fault_trips_exactly_the_trace_invariant() {
        let case = generate_case(1, 1);
        let mut run = run_case(&case);
        inject_fault(&case, &mut run, Fault::Trace);
        let violations = check_case(&case, &run);
        assert!(!violations.is_empty(), "fault must trip");
        assert!(
            violations.iter().all(|v| v.kind() == "trace"),
            "only trace may trip: {violations:?}"
        );
    }

    #[test]
    fn power_fault_trips_exactly_the_power_invariant() {
        let case = generate_case(1, 2);
        let mut run = run_case(&case);
        inject_fault(&case, &mut run, Fault::Power);
        let violations = check_case(&case, &run);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].kind(), "power");
        assert!(matches!(&violations[0], Violation::Power { label, .. } if label == "final_ac_w"));
    }

    #[test]
    fn shrinker_reduces_a_power_fault_to_the_empty_scenario() {
        let case = generate_case(3, 0);
        let fails = |sc: &Scenario| {
            let candidate = Case::new("shrink", case.config.clone(), sc.clone(), case.seed);
            if candidate.scenario.validate(&candidate.config).is_err() {
                return false;
            }
            let mut run = run_case(&candidate);
            inject_fault(&candidate, &mut run, Fault::Power);
            check_case(&candidate, &run).iter().any(|v| v.kind() == "power")
        };
        let mut fails = fails;
        let shrunk = shrink_scenario(&case.scenario, &mut fails);
        assert!(shrunk.steps().is_empty(), "a run-level fault needs no steps: {shrunk:?}");
        assert!(shrunk.probes().is_empty(), "a run-level fault needs no probes");
        assert_eq!(shrunk.run_until_ns(), 0);
    }

    #[test]
    fn rebuild_round_trips_a_generated_scenario() {
        let case = generate_case(9, 4);
        let sc = &case.scenario;
        let back = rebuild(sc.steps(), sc.probes(), sc.run_until_ns());
        assert_eq!(&back, sc);
    }
}
