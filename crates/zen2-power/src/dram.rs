//! DIMM power model.
//!
//! DRAM power is the part of the system the paper shows AMD's RAPL to be
//! blind to: "No DRAM domain is available and the RAPL package domain
//! reports significantly lower power compared to the external measurement"
//! — so this component feeds *only* the true-power path, never the RAPL
//! estimate.

use serde::{Deserialize, Serialize};

/// Whole-system DIMM power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramPowerModel {
    /// Number of DIMMs installed (16 on the paper's dual-socket board).
    pub dimms: u32,
    /// Per-DIMM power in self-refresh (packages in PC6), watts.
    pub self_refresh_w_per_dimm: f64,
    /// Per-DIMM standby power with the memory controller active, watts.
    pub standby_w_per_dimm: f64,
    /// Energy cost of traffic, W per GB/s of read+write DRAM traffic.
    pub w_per_gbs: f64,
}

impl Default for DramPowerModel {
    fn default() -> Self {
        Self::sixteen_dimms()
    }
}

impl DramPowerModel {
    /// One DIMM per channel on both sockets (the paper's configuration).
    pub fn sixteen_dimms() -> Self {
        Self { dimms: 16, self_refresh_w_per_dimm: 0.75, standby_w_per_dimm: 1.25, w_per_gbs: 0.23 }
    }

    /// Total DIMM power with all packages in PC6.
    pub fn self_refresh_w(&self) -> f64 {
        self.dimms as f64 * self.self_refresh_w_per_dimm
    }

    /// Total DIMM standby power with memory controllers awake.
    pub fn standby_w(&self) -> f64 {
        self.dimms as f64 * self.standby_w_per_dimm
    }

    /// Total DIMM power given traffic in GB/s (read + write), with awake
    /// controllers.
    pub fn power_w(&self, traffic_gbs: f64) -> f64 {
        assert!(traffic_gbs >= 0.0, "traffic cannot be negative");
        self.standby_w() + self.w_per_gbs * traffic_gbs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floors_are_ordered() {
        let d = DramPowerModel::sixteen_dimms();
        assert!(d.self_refresh_w() < d.standby_w());
        assert!((d.self_refresh_w() - 12.0).abs() < 1e-9);
        assert!((d.standby_w() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn traffic_power_is_linear() {
        let d = DramPowerModel::sixteen_dimms();
        let idle = d.power_w(0.0);
        let loaded = d.power_w(100.0);
        assert!((loaded - idle - 23.0).abs() < 1e-9);
    }

    #[test]
    fn firestarter_traffic_level() {
        // ~185 GB/s of FIRESTARTER traffic adds ~43 W — part of the gap
        // between RAPL (2x170 W) and the wall (509 W).
        let d = DramPowerModel::sixteen_dimms();
        let add = d.power_w(185.0) - d.standby_w();
        assert!((add - 42.55).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_traffic_rejected() {
        let _ = DramPowerModel::sixteen_dimms().power_w(-1.0);
    }
}
