//! Power models for the simulated EPYC 7502 system.
//!
//! The model is component-based and calibrated end-to-end against the
//! paper's external AC measurements (ZES LMG670):
//!
//! * [`voltage::VfCurve`] — the voltage/frequency operating points behind
//!   the P-state table (dynamic power scales with `f·V²`).
//! * [`core::CorePowerModel`] — per-core power: a frequency-scaled base
//!   plus per-unit switched capacitance driven by `zen2-isa` activity
//!   vectors, with an operand-toggle term for data-dependent power
//!   (Section VII-B). C1 leaves a small clock-gate residual (+0.09 W/core,
//!   frequency-independent, Fig. 7); C2 power-gates the core entirely.
//! * [`package::PackagePowerParams`] — socket-level budget: the deep
//!   package sleep floor, the large "awake" adder paid as soon as *any*
//!   thread in the system leaves the deepest C-state (+81.2 W system-wide,
//!   Fig. 7), the I/O-die share scaled by its P-state, and the PPT limit
//!   that the EDC/PPT controller enforces (Fig. 6).
//! * [`dram::DramPowerModel`] — DIMM standby/self-refresh plus traffic
//!   energy; *not* visible to RAPL, which is the paper's headline RAPL
//!   finding.
//! * [`psu::PsuModel`] — linear AC/DC conversion loss, mapping component
//!   DC power onto the wall-power readings of the paper.
//! * [`thermal::ThermalModel`] — first-order package RC and a
//!   leakage-vs-temperature term; the indirect path by which operand data
//!   becomes (barely) visible to RAPL.
//! * [`meter::PowerMeter`] — the LMG670: ±(0.015 % + 0.0625 W) accuracy at
//!   20 Sa/s, sampled out-of-band.

pub mod core;
pub mod dram;
pub mod meter;
pub mod package;
pub mod psu;
pub mod thermal;
pub mod voltage;

#[cfg(test)]
mod proptests;

pub use crate::core::CorePowerModel;
pub use dram::DramPowerModel;
pub use meter::{MeterSample, PowerMeter};
pub use package::PackagePowerParams;
pub use psu::PsuModel;
pub use thermal::{LeakageModel, ThermalModel};
pub use voltage::VfCurve;

/// The complete calibrated power-model bundle for the paper's test system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemPowerParams {
    /// Voltage/frequency curve shared by all cores.
    pub vf: VfCurve,
    /// Per-core power model.
    pub core: CorePowerModel,
    /// Per-socket budget.
    pub package: PackagePowerParams,
    /// Memory power model (whole system).
    pub dram: DramPowerModel,
    /// AC conversion.
    pub psu: PsuModel,
    /// Package thermal model.
    pub thermal: ThermalModel,
    /// Leakage-vs-temperature model.
    pub leakage: LeakageModel,
    /// Fixed platform DC power (fans, board, BMC, storage), in watts.
    pub platform_dc_w: f64,
}

impl Default for SystemPowerParams {
    fn default() -> Self {
        Self::epyc_7502_2s()
    }
}

impl SystemPowerParams {
    /// The calibration used throughout the reproduction (see DESIGN.md §3).
    pub fn epyc_7502_2s() -> Self {
        Self {
            vf: VfCurve::epyc_7502(),
            core: CorePowerModel::zen2(),
            package: PackagePowerParams::epyc_7502(),
            dram: DramPowerModel::sixteen_dimms(),
            psu: PsuModel::server_psu(),
            thermal: ThermalModel::two_socket_air(),
            leakage: LeakageModel::zen2(),
            platform_dc_w: 38.0,
        }
    }

    /// A single-socket EPYC 7742 system for the paper's future-work
    /// many-core prediction (same core model, top-bin voltage curve,
    /// 225 W-class package, eight DIMMs).
    pub fn epyc_7742_1s() -> Self {
        Self {
            vf: VfCurve::epyc_7742(),
            package: PackagePowerParams::epyc_7742(),
            dram: DramPowerModel { dimms: 8, ..DramPowerModel::sixteen_dimms() },
            ..Self::epyc_7502_2s()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_floor_matches_fig7_all_c2() {
        // All 128 threads in C2: both packages in the deep sleep state,
        // DRAM in self-refresh. Paper: 99.1 W AC.
        let p = SystemPowerParams::epyc_7502_2s();
        let dc = 2.0 * p.package.pc6_w + p.dram.self_refresh_w() + p.platform_dc_w;
        let ac = p.psu.ac_from_dc(dc);
        assert!((ac - 99.1).abs() < 1.5, "idle floor {ac:.1} W vs paper 99.1 W");
    }

    #[test]
    fn first_wake_adder_matches_fig7() {
        // One thread leaving C2 wakes both packages: +81.2 W AC. The
        // just-woken dies sit near the sleeping steady state (~29 °C),
        // where the leakage multiplier shaves ~2 % off the adder.
        let p = SystemPowerParams::epyc_7502_2s();
        let idle_die_c = p.thermal.steady_state_c(p.package.pc6_w);
        let leak = p.leakage.multiplier(idle_die_c);
        let delta_dc = 2.0 * p.package.awake_adder_w * leak
            + (p.dram.standby_w() - p.dram.self_refresh_w())
            + p.core.c1_residual_w;
        let delta_ac = p.psu.marginal_ac_per_dc * delta_dc;
        assert!((delta_ac - 81.2).abs() < 1.5, "wake adder {delta_ac:.1} W vs paper 81.2 W");
    }
}
