//! Socket-level power budget.
//!
//! Fig. 7 of the paper fixes the package-level calibration:
//!
//! * all threads of *all* packages in C2 → both packages in the deep
//!   package sleep state (PC6): the system idles at 99.1 W AC;
//! * a single thread anywhere leaving C2 wakes **both** packages
//!   (+81.2 W AC) — "there appears to be only one criterion for deep
//!   package sleep states: All threads of all packages must be in the
//!   deepest sleep state";
//! * each further core out of C2 adds only ~0.09 W (C1) or ~0.33 W
//!   (active pause at 2.5 GHz).
//!
//! [`PackagePowerParams`] carries the per-socket constants; the global
//! PC6 criterion itself lives in the simulator's C-state controller.

use serde::{Deserialize, Serialize};
use zen2_mem::{DramFreq, IodPstate};

/// Per-socket power constants (DC watts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackagePowerParams {
    /// Deep package sleep (PC6) floor: retention voltage on the core
    /// plane, I/O die mostly gated.
    pub pc6_w: f64,
    /// Cost of waking the package out of PC6 (core power plane at active
    /// voltage, I/O die and L3 meshes clocking, DDR PHYs out of low-power)
    /// with the I/O die at its reference P-state. Excludes per-core power.
    pub awake_adder_w: f64,
    /// The I/O-die share inside `awake_adder_w`; scales with the I/O-die
    /// P-state ("using higher I/O die P-states reduces power consumption").
    pub iod_share_w: f64,
    /// Infinity-fabric energy per memory traffic, W per GB/s.
    pub fabric_w_per_gbs: f64,
    /// Thermal design power (the paper's stated 180 W per socket).
    pub tdp_w: f64,
    /// The SMU's package-power target for its PPT control loop, applied to
    /// the SMU's *estimated* (RAPL-model) power. Matches the 170 W the
    /// RAPL package counter reports under FIRESTARTER in Fig. 6.
    pub ppt_estimated_w: f64,
}

impl Default for PackagePowerParams {
    fn default() -> Self {
        Self::epyc_7502()
    }
}

impl PackagePowerParams {
    /// Calibrated constants for the EPYC 7502 (see the crate tests for the
    /// end-to-end Fig. 7 arithmetic).
    pub fn epyc_7502() -> Self {
        Self {
            pc6_w: 15.3,
            // Calibrated so that, *after* the leakage multiplier at the
            // cool just-woken die temperature (~29 °C, factor ~0.981), the
            // system-level wake step lands on the paper's +81.2 W AC.
            awake_adder_w: 34.2,
            iod_share_w: 20.0,
            fabric_w_per_gbs: 0.0,
            tdp_w: 180.0,
            ppt_estimated_w: 170.0,
        }
    }

    /// An EPYC 7742 package (225 W TDP class): more cores and L3 behind
    /// the same I/O die, a proportionally larger PPT budget.
    pub fn epyc_7742() -> Self {
        Self {
            pc6_w: 17.0,
            awake_adder_w: 38.0,
            iod_share_w: 20.0,
            fabric_w_per_gbs: 0.0,
            tdp_w: 225.0,
            ppt_estimated_w: 212.0,
        }
    }

    /// The awake adder with the I/O die at a given P-state.
    pub fn awake_adder_at(&self, pstate: IodPstate, dram: DramFreq) -> f64 {
        let non_iod = self.awake_adder_w - self.iod_share_w;
        non_iod + self.iod_share_w * pstate.relative_power(dram)
    }

    /// Package power when the socket sits in PC6.
    pub fn sleeping_w(&self) -> f64 {
        self.pc6_w
    }

    /// Package base power (before per-core contributions) when awake.
    pub fn awake_base_w(&self, pstate: IodPstate, dram: DramFreq) -> f64 {
        self.pc6_w + self.awake_adder_at(pstate, dram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awake_base_matches_calibration() {
        let p = PackagePowerParams::epyc_7502();
        let base = p.awake_base_w(IodPstate::Auto, DramFreq::Mhz1467);
        assert!((base - 49.5).abs() < 1e-9, "awake base {base}");
    }

    #[test]
    fn deeper_iod_pstate_saves_power() {
        let p = PackagePowerParams::epyc_7502();
        let at_p0 = p.awake_base_w(IodPstate::P0, DramFreq::Mhz1467);
        let at_p3 = p.awake_base_w(IodPstate::P3, DramFreq::Mhz1467);
        assert!(at_p3 < at_p0);
        // The I/O die never fully powers down while awake.
        assert!(at_p0 - at_p3 < p.iod_share_w * 0.65);
    }

    #[test]
    fn ppt_target_sits_below_tdp() {
        // Fig. 6: RAPL reports 170 W while the TDP is 180 W — the control
        // loop regulates its own estimate, not the external truth.
        let p = PackagePowerParams::epyc_7502();
        assert!(p.ppt_estimated_w < p.tdp_w);
        assert_eq!(p.ppt_estimated_w, 170.0);
    }

    #[test]
    fn sleeping_is_much_cheaper_than_awake() {
        let p = PackagePowerParams::epyc_7502();
        assert!(p.sleeping_w() * 3.0 < p.awake_base_w(IodPstate::Auto, DramFreq::Mhz1467));
    }
}
