//! Voltage/frequency operating points.

use serde::{Deserialize, Serialize};

/// Piecewise-linear V/f curve.
///
/// Dynamic power scales with `f·V²`; the curve turns a requested core
/// frequency into the supply voltage the SMU asks of the external
/// regulator. Points are `(GHz, V)` sorted by frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VfCurve {
    points: Vec<(f64, f64)>,
}

impl Default for VfCurve {
    fn default() -> Self {
        Self::epyc_7502()
    }
}

impl VfCurve {
    /// Builds a curve from `(GHz, V)` points.
    ///
    /// # Panics
    /// Panics if fewer than two points are given, points are not strictly
    /// increasing in frequency, or voltages are non-increasing (a V/f
    /// curve is monotone).
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "a V/f curve needs at least two points");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "frequencies must be strictly increasing");
            assert!(w[0].1 <= w[1].1, "voltage must be non-decreasing with frequency");
        }
        for &(f, v) in &points {
            assert!(f > 0.0 && v > 0.0, "points must be positive");
        }
        Self { points }
    }

    /// The paper system's three P-state operating points. Voltages are the
    /// calibration quantity behind the measured active-power ratios at
    /// 1.5 / 2.2 / 2.5 GHz.
    pub fn epyc_7502() -> Self {
        Self::new(vec![(1.5, 0.85), (2.2, 0.95), (2.5, 1.00)])
    }

    /// A 64-core EPYC 7742's curve: top-bin dies run noticeably lower
    /// voltage at matched frequency (how AMD fits twice the cores into a
    /// 225 W envelope). Used by the future-work many-core prediction.
    pub fn epyc_7742() -> Self {
        Self::new(vec![(1.5, 0.78), (1.8, 0.83), (2.25, 0.90)])
    }

    /// Supply voltage at `freq_ghz`, interpolating between points and
    /// clamping at the curve ends (the regulator has a floor and a fused
    /// maximum).
    pub fn voltage(&self, freq_ghz: f64) -> f64 {
        assert!(freq_ghz > 0.0, "frequency must be positive");
        let first = self.points[0];
        let last = *self.points.last().expect("non-empty by construction");
        if freq_ghz <= first.0 {
            return first.1;
        }
        if freq_ghz >= last.0 {
            return last.1;
        }
        for w in self.points.windows(2) {
            let (f0, v0) = w[0];
            let (f1, v1) = w[1];
            if freq_ghz <= f1 {
                let t = (freq_ghz - f0) / (f1 - f0);
                return v0 + t * (v1 - v0);
            }
        }
        unreachable!("freq within range is covered by a segment")
    }

    /// The `f·V²` dynamic-power scale factor at `freq_ghz` (GHz·V²).
    pub fn fv2(&self, freq_ghz: f64) -> f64 {
        let v = self.voltage(freq_ghz);
        freq_ghz * v * v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_points_are_exact() {
        let c = VfCurve::epyc_7502();
        assert!((c.voltage(1.5) - 0.85).abs() < 1e-12);
        assert!((c.voltage(2.2) - 0.95).abs() < 1e-12);
        assert!((c.voltage(2.5) - 1.00).abs() < 1e-12);
    }

    #[test]
    fn interpolation_is_linear_between_anchors() {
        let c = VfCurve::epyc_7502();
        // Midpoint of the 1.5-2.2 segment.
        assert!((c.voltage(1.85) - 0.90).abs() < 1e-12);
        // 2.1 GHz: used by the Fig. 6 equilibrium arithmetic.
        assert!((c.voltage(2.1) - 0.935_714).abs() < 1e-5);
    }

    #[test]
    fn clamping_outside_range() {
        let c = VfCurve::epyc_7502();
        assert_eq!(c.voltage(0.4), 0.85);
        assert_eq!(c.voltage(3.5), 1.00);
    }

    #[test]
    fn fv2_is_monotone() {
        let c = VfCurve::epyc_7502();
        let mut prev = 0.0;
        for i in 1..=35 {
            let f = i as f64 * 0.1;
            let s = c.fv2(f);
            assert!(s > prev);
            prev = s;
        }
    }

    #[test]
    fn fv2_values_used_in_calibration() {
        let c = VfCurve::epyc_7502();
        assert!((c.fv2(2.5) - 2.5).abs() < 1e-12);
        assert!((c.fv2(2.1) - 1.8387).abs() < 1e-3);
        assert!((c.fv2(1.5) - 1.0838).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_points_rejected() {
        let _ = VfCurve::new(vec![(2.0, 0.9), (1.5, 0.85)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn non_monotone_voltage_rejected() {
        let _ = VfCurve::new(vec![(1.5, 0.95), (2.0, 0.85)]);
    }
}
