//! The external AC reference: a ZES LMG670 with L60-CH-A1 channels.
//!
//! "In our configuration, the power measurement has an accuracy of
//! ±(0.015 % + 0.0625 W). During the experiments, a separate system
//! collects the active power values at 20 Sa/s. The out-of-band data
//! collection avoids any perturbation." (Section IV)
//!
//! The meter integrates true active power over each 50 ms sample window
//! and adds instrument error within the accuracy band.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One 50 ms active-power sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeterSample {
    /// Sample timestamp (window end) in seconds since measurement start.
    pub t_s: f64,
    /// Measured active power in watts.
    pub watts: f64,
}

/// ZES LMG670 model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerMeter {
    /// Relative accuracy term (0.00015 = 0.015 %).
    pub rel_accuracy: f64,
    /// Absolute accuracy term in watts.
    pub abs_accuracy_w: f64,
    /// Sample rate in samples per second.
    pub samples_per_s: f64,
}

impl Default for PowerMeter {
    fn default() -> Self {
        Self::lmg670()
    }
}

impl PowerMeter {
    /// The paper's instrument configuration.
    pub fn lmg670() -> Self {
        Self { rel_accuracy: 0.00015, abs_accuracy_w: 0.0625, samples_per_s: 20.0 }
    }

    /// The sample period in seconds.
    pub fn period_s(&self) -> f64 {
        1.0 / self.samples_per_s
    }

    /// The specified accuracy bound at a power level.
    pub fn accuracy_bound_w(&self, watts: f64) -> f64 {
        self.rel_accuracy * watts.abs() + self.abs_accuracy_w
    }

    /// Produces one reading of a window whose true average power is
    /// `true_watts`. Instrument error is Gaussian with the accuracy bound
    /// as a 2-sigma envelope.
    pub fn read<R: Rng + ?Sized>(&self, rng: &mut R, true_watts: f64) -> f64 {
        let sigma = self.accuracy_bound_w(true_watts) / 2.0;
        // Box-Muller keeps the dependency surface at `rand` core.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        true_watts + sigma * z
    }

    /// Averages samples over the inner window of a measurement interval,
    /// implementing the paper's methodology: "we use average power values
    /// within the inner 8 s of a 10 s interval ... This approach avoids
    /// inaccuracies due to misaligned timestamps."
    pub fn inner_window_mean(samples: &[MeterSample], start_s: f64, end_s: f64) -> f64 {
        assert!(end_s > start_s, "window must have positive length");
        let len = end_s - start_s;
        let trim = len * 0.1;
        let (lo, hi) = (start_s + trim, end_s - trim);
        let inner: Vec<f64> =
            samples.iter().filter(|s| s.t_s >= lo && s.t_s <= hi).map(|s| s.watts).collect();
        assert!(!inner.is_empty(), "no samples in the inner window [{lo}, {hi}]");
        inner.iter().sum::<f64>() / inner.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1234)
    }

    #[test]
    fn accuracy_bound_matches_spec() {
        let m = PowerMeter::lmg670();
        // At 500 W: 0.015 % = 75 mW plus 62.5 mW.
        assert!((m.accuracy_bound_w(500.0) - 0.1375).abs() < 1e-9);
        assert!((m.accuracy_bound_w(0.0) - 0.0625).abs() < 1e-12);
        assert!((m.period_s() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn readings_stay_within_a_few_bounds() {
        let m = PowerMeter::lmg670();
        let mut r = rng();
        let bound = m.accuracy_bound_w(300.0);
        for _ in 0..2000 {
            let v = m.read(&mut r, 300.0);
            assert!((v - 300.0).abs() < 3.0 * bound, "reading {v}");
        }
    }

    #[test]
    fn readings_are_unbiased() {
        let m = PowerMeter::lmg670();
        let mut r = rng();
        let mean: f64 = (0..4000).map(|_| m.read(&mut r, 250.0)).sum::<f64>() / 4000.0;
        assert!((mean - 250.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn inner_window_drops_the_edges() {
        // 10 s of samples; the first and last second carry garbage.
        let mut samples = Vec::new();
        for i in 0..200 {
            let t = i as f64 * 0.05;
            let w = if !(1.0..=9.0).contains(&t) { 1000.0 } else { 100.0 };
            samples.push(MeterSample { t_s: t, watts: w });
        }
        let mean = PowerMeter::inner_window_mean(&samples, 0.0, 10.0);
        assert!((mean - 100.0).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_window_rejected() {
        let _ = PowerMeter::inner_window_mean(&[], 5.0, 5.0);
    }
}
