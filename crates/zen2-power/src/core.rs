//! Per-core power model.
//!
//! A core's *true* DC power (what the external meter eventually sees) is
//!
//! ```text
//! P = f·V² · (k_base + k_units · Σ(unit_activity · unit_weight) · toggle)
//!     [ × smt_power_ratio when both hardware threads are active ]
//! ```
//!
//! with a small clock-gate residual in C1 and full power gating in C2.
//! The `toggle` factor injects operand-data dependence (Section VII-B):
//! only the kernel's `toggle_sensitivity` share of the unit power scales
//! with it.
//!
//! Calibration (see DESIGN.md §3 and the tests below):
//! * pause loop at 2.5 GHz: 0.306 W DC (+0.33 W AC per core, Fig. 7),
//! * C1 residual 0.083 W DC (+0.09 W AC, frequency-independent, Fig. 7),
//! * FIRESTARTER: package lands on the Fig. 6 equilibria together with the
//!   PPT controller in `zen2-sim`.

use serde::{Deserialize, Serialize};
use zen2_isa::{ActivityVector, Kernel, OperandWeight, SmtMode, ToggleModel};

/// Calibrated true-power model for one Zen 2 core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorePowerModel {
    /// Ungateable active-core base (clock distribution, L1/L2 arrays), in
    /// W per (GHz·V²).
    pub k_base: f64,
    /// Scale on the weighted unit activity, in W per (GHz·V²).
    pub k_units: f64,
    /// Per-unit switched-capacitance weights.
    pub unit_weights: ActivityVector,
    /// Clock-gated (C1) residual power in watts — frequency-independent:
    /// "the hardware counters for cycles, aperf, and mperf do not advance
    /// on cores that are in C1".
    pub c1_residual_w: f64,
    /// Power-gated (C2) residual power in watts.
    pub c2_residual_w: f64,
    /// Operand-toggle model shared by all data-sensitive kernels.
    pub toggle: ToggleModel,
}

impl Default for CorePowerModel {
    fn default() -> Self {
        Self::zen2()
    }
}

impl CorePowerModel {
    /// The calibrated model for the paper's EPYC 7502.
    pub fn zen2() -> Self {
        Self {
            k_base: 0.10,
            k_units: 0.497,
            unit_weights: ActivityVector {
                frontend: 0.8,
                int_alu: 0.7,
                fp128: 1.0,
                fp256_upper: 1.0,
                load_store: 0.6,
                l2: 0.3,
                l3: 0.4,
            },
            c1_residual_w: 0.0833,
            c2_residual_w: 0.0,
            toggle: ToggleModel::with_relative_swing(0.44),
        }
    }

    /// Measured SMT power ratios for kernels where the paper pins them
    /// down; all other kernels derive the ratio from saturated activity
    /// scaling. (FIRESTARTER: true power rises ~11.7 % with the second
    /// thread — more than the hardware's own event-based estimate sees,
    /// which is why RAPL reads the same 170 W in both Fig. 6 columns while
    /// AC differs by 20 W.)
    fn smt_power_ratio(&self, kernel: &Kernel) -> Option<f64> {
        use zen2_isa::KernelClass::*;
        match kernel.class {
            Firestarter => Some(1.117),
            // +0.05 W AC for the second pause thread on top of 0.33 W.
            Pause => Some(1.151),
            Poll => Some(1.16),
            _ => None,
        }
    }

    /// True DC power of a core running `kernel` at `freq_ghz`/`voltage_v`
    /// with the given SMT occupancy and operand weight.
    pub fn active_power_w(
        &self,
        kernel: &Kernel,
        smt: SmtMode,
        freq_ghz: f64,
        voltage_v: f64,
        weight: OperandWeight,
    ) -> f64 {
        assert!(freq_ghz > 0.0 && voltage_v > 0.0, "operating point must be positive");
        let fv2 = freq_ghz * voltage_v * voltage_v;
        let single = kernel.core_activity(SmtMode::Single).weighted_sum(&self.unit_weights);
        let toggle = self.toggle_multiplier(kernel, weight);
        let p_single = fv2 * (self.k_base + self.k_units * single * toggle);
        match smt {
            SmtMode::Single => p_single,
            SmtMode::Both => {
                if let Some(ratio) = self.smt_power_ratio(kernel) {
                    p_single * ratio
                } else {
                    let both = kernel.core_activity(SmtMode::Both).weighted_sum(&self.unit_weights);
                    fv2 * (self.k_base + self.k_units * both * toggle)
                }
            }
        }
    }

    /// The multiplier the operand weight applies to this kernel's unit
    /// power: `1 - s + s·toggle_factor(w)` with `s` the kernel's toggle
    /// sensitivity.
    pub fn toggle_multiplier(&self, kernel: &Kernel, weight: OperandWeight) -> f64 {
        let s = kernel.toggle_sensitivity;
        (1.0 - s) + s * self.toggle.factor(weight)
    }

    /// Core current draw in amperes at an operating point — the quantity
    /// the EDC manager supervises.
    pub fn current_a(
        &self,
        kernel: &Kernel,
        smt: SmtMode,
        freq_ghz: f64,
        voltage_v: f64,
        weight: OperandWeight,
    ) -> f64 {
        self.active_power_w(kernel, smt, freq_ghz, voltage_v, weight) / voltage_v
    }

    /// Power of a core whose threads are all in C1 (clock-gated).
    pub fn c1_power_w(&self) -> f64 {
        self.c1_residual_w
    }

    /// Power of a core whose threads are all in C2 (power-gated).
    pub fn c2_power_w(&self) -> f64 {
        self.c2_residual_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zen2_isa::{KernelClass, WorkloadSet};

    fn model() -> CorePowerModel {
        CorePowerModel::zen2()
    }

    fn kernels() -> WorkloadSet {
        WorkloadSet::paper()
    }

    #[test]
    fn pause_at_nominal_matches_fig7_increment() {
        // +0.33 W AC per active pause core at 2.5 GHz = 0.306 W DC.
        let set = kernels();
        let p = model().active_power_w(
            set.kernel(KernelClass::Pause),
            SmtMode::Single,
            2.5,
            1.0,
            OperandWeight::HALF,
        );
        assert!((p - 0.306).abs() < 0.015, "pause core {p:.3} W DC");
    }

    #[test]
    fn second_pause_thread_adds_fig7_increment() {
        // +0.05 W AC = 0.046 W DC for the sibling thread.
        let set = kernels();
        let m = model();
        let k = set.kernel(KernelClass::Pause);
        let single = m.active_power_w(k, SmtMode::Single, 2.5, 1.0, OperandWeight::HALF);
        let both = m.active_power_w(k, SmtMode::Both, 2.5, 1.0, OperandWeight::HALF);
        assert!((both - single - 0.046).abs() < 0.01, "delta {:.3}", both - single);
    }

    #[test]
    fn pause_power_scales_with_frequency_and_voltage() {
        // Fig. 7: "active power does depend on frequency as expected".
        let set = kernels();
        let m = model();
        let k = set.kernel(KernelClass::Pause);
        let at_25 = m.active_power_w(k, SmtMode::Single, 2.5, 1.0, OperandWeight::HALF);
        let at_15 = m.active_power_w(k, SmtMode::Single, 1.5, 0.85, OperandWeight::HALF);
        assert!((at_15 / at_25 - 1.5 * 0.85 * 0.85 / 2.5).abs() < 1e-9);
    }

    #[test]
    fn c_states_are_frequency_independent_and_ordered() {
        let m = model();
        assert!(m.c1_power_w() > m.c2_power_w());
        assert!((m.c1_power_w() - 0.0833).abs() < 1e-9);
        assert_eq!(m.c2_power_w(), 0.0);
    }

    #[test]
    fn firestarter_single_thread_power_matches_calibration() {
        // At the no-SMT equilibrium (2.1 GHz, 0.9357 V): ~3.85 W/core, so
        // 32 cores + uncore ≈ 172 W package (Fig. 6 arithmetic).
        let set = kernels();
        let p = model().active_power_w(
            set.kernel(KernelClass::Firestarter),
            SmtMode::Single,
            2.1,
            0.935_714,
            OperandWeight::HALF,
        );
        assert!((p - 3.85).abs() < 0.08, "firestarter core {p:.3} W");
    }

    #[test]
    fn firestarter_smt_ratio_exceeds_activity_scaling() {
        let set = kernels();
        let m = model();
        let k = set.kernel(KernelClass::Firestarter);
        let single = m.active_power_w(k, SmtMode::Single, 2.05, 0.9286, OperandWeight::HALF);
        let both = m.active_power_w(k, SmtMode::Both, 2.05, 0.9286, OperandWeight::HALF);
        assert!((both / single - 1.117).abs() < 1e-9);
    }

    #[test]
    fn vxorps_swing_matches_fig10() {
        // Weight 0 -> 1 should swing each core by ~0.30 W DC at 2.5 GHz
        // (21 W AC over 64 cores).
        let set = kernels();
        let m = model();
        let k = set.kernel(KernelClass::VXorps);
        let lo = m.active_power_w(k, SmtMode::Both, 2.5, 1.0, OperandWeight::ZERO);
        let hi = m.active_power_w(k, SmtMode::Both, 2.5, 1.0, OperandWeight::FULL);
        let delta = hi - lo;
        assert!((delta - 0.304).abs() < 0.06, "vxorps swing {delta:.3} W/core");
    }

    #[test]
    fn shr_swing_is_an_order_of_magnitude_smaller() {
        let set = kernels();
        let m = model();
        let vx = set.kernel(KernelClass::VXorps);
        let shr = set.kernel(KernelClass::Shr);
        let swing = |k: &zen2_isa::Kernel| {
            m.active_power_w(k, SmtMode::Both, 2.5, 1.0, OperandWeight::FULL)
                - m.active_power_w(k, SmtMode::Both, 2.5, 1.0, OperandWeight::ZERO)
        };
        assert!(swing(vx) > 6.0 * swing(shr));
    }

    #[test]
    fn current_follows_power_over_voltage() {
        let set = kernels();
        let m = model();
        let k = set.kernel(KernelClass::AddPd);
        let p = m.active_power_w(k, SmtMode::Single, 2.5, 1.0, OperandWeight::HALF);
        let i = m.current_a(k, SmtMode::Single, 2.5, 1.0, OperandWeight::HALF);
        assert!((i - p / 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_kernel_costs_only_base() {
        let set = kernels();
        let p = model().active_power_w(
            set.kernel(KernelClass::Idle),
            SmtMode::Single,
            2.5,
            1.0,
            OperandWeight::HALF,
        );
        assert!((p - 2.5 * 0.10).abs() < 1e-9);
    }
}
