//! Property-based tests of the power models' physical sanity.

use crate::core::CorePowerModel;
use crate::psu::PsuModel;
use crate::thermal::{LeakageModel, ThermalModel};
use crate::voltage::VfCurve;
use proptest::prelude::*;
use zen2_isa::{KernelClass, OperandWeight, SmtMode, WorkloadSet};

fn arb_kernel() -> impl Strategy<Value = KernelClass> {
    prop::sample::select(vec![
        KernelClass::Pause,
        KernelClass::BusyWait,
        KernelClass::Compute,
        KernelClass::Matmul,
        KernelClass::Sqrt,
        KernelClass::AddPd,
        KernelClass::MulPd,
        KernelClass::MemoryRead,
        KernelClass::Firestarter,
        KernelClass::StreamTriad,
        KernelClass::VXorps,
        KernelClass::Shr,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128 })]

    /// Core power is monotone in frequency along the V/f curve for every
    /// kernel, SMT mode and operand weight.
    #[test]
    fn core_power_is_monotone_in_frequency(class in arb_kernel(),
                                           both in any::<bool>(),
                                           weight in 0.0f64..=1.0) {
        let set = WorkloadSet::paper();
        let model = CorePowerModel::zen2();
        let vf = VfCurve::epyc_7502();
        let kernel = set.kernel(class);
        let smt = if both { SmtMode::Both } else { SmtMode::Single };
        let w = OperandWeight(weight);
        let mut prev = 0.0;
        for mhz in (1500..=2500).step_by(100) {
            let f = mhz as f64 / 1000.0;
            let p = model.active_power_w(kernel, smt, f, vf.voltage(f), w);
            prop_assert!(p > prev, "{class:?} at {f} GHz: {p} <= {prev}");
            prev = p;
        }
    }

    /// SMT never reduces core power, and always stays below 2x.
    #[test]
    fn smt_power_ratio_is_bounded(class in arb_kernel(), weight in 0.0f64..=1.0) {
        let set = WorkloadSet::paper();
        let model = CorePowerModel::zen2();
        let kernel = set.kernel(class);
        let w = OperandWeight(weight);
        let single = model.active_power_w(kernel, SmtMode::Single, 2.5, 1.0, w);
        let both = model.active_power_w(kernel, SmtMode::Both, 2.5, 1.0, w);
        prop_assert!(both >= single - 1e-12, "{class:?}: {both} < {single}");
        prop_assert!(both <= 2.0 * single + 1e-12, "{class:?}: {both} > 2x {single}");
    }

    /// Operand weight moves power monotonically, scaled by the kernel's
    /// toggle sensitivity, and never below zero.
    #[test]
    fn toggle_power_is_monotone_in_weight(class in arb_kernel()) {
        let set = WorkloadSet::paper();
        let model = CorePowerModel::zen2();
        let kernel = set.kernel(class);
        let mut prev = 0.0;
        for i in 0..=10 {
            let w = OperandWeight(i as f64 / 10.0);
            let p = model.active_power_w(kernel, SmtMode::Single, 2.5, 1.0, w);
            prop_assert!(p > 0.0);
            prop_assert!(p >= prev - 1e-12, "{class:?} not monotone at w={}", i);
            prev = p;
        }
    }

    /// PSU conversion is monotone and efficiency stays within physical
    /// bounds over the whole operating range.
    #[test]
    fn psu_is_physical(dc in 1.0f64..2_000.0) {
        let psu = PsuModel::server_psu();
        let ac = psu.ac_from_dc(dc);
        prop_assert!(ac > dc, "conversion cannot create energy");
        let eff = psu.efficiency(dc);
        prop_assert!(eff > 0.0 && eff < 1.0);
        prop_assert!(psu.ac_from_dc(dc + 1.0) > ac);
    }

    /// Thermal stepping converges toward steady state from any start and
    /// never overshoots it.
    #[test]
    fn thermal_step_never_overshoots(start in -20.0f64..150.0,
                                     power in 0.0f64..300.0,
                                     dt in 0.001f64..1_000.0) {
        let t = ThermalModel::two_socket_air();
        let target = t.steady_state_c(power);
        let next = t.step(start, power, dt);
        if start < target {
            prop_assert!(next >= start && next <= target + 1e-9);
        } else {
            prop_assert!(next <= start && next >= target - 1e-9);
        }
    }

    /// The leakage multiplier stays close to 1 over the realistic die
    /// temperature range and is monotone in temperature.
    #[test]
    fn leakage_multiplier_is_tame(a in 20.0f64..110.0, b in 20.0f64..110.0) {
        let l = LeakageModel::zen2();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(l.multiplier(lo) <= l.multiplier(hi));
        prop_assert!(l.multiplier(hi) < 1.05);
        prop_assert!(l.multiplier(lo) > 0.95);
    }

    /// V/f interpolation stays within the anchor voltage range.
    #[test]
    fn vf_curve_stays_in_range(f in 0.1f64..4.0) {
        let vf = VfCurve::epyc_7502();
        let v = vf.voltage(f);
        prop_assert!((0.85..=1.00).contains(&v));
    }
}
