//! AC/DC conversion.
//!
//! The external reference measures *wall* power; all component models in
//! this crate produce DC. A linear loss model (fixed conversion overhead
//! plus a proportional term) matches server PSUs well over the load range
//! the paper exercises (99 W idle to 509 W FIRESTARTER) and keeps the
//! calibration chain invertible.

use serde::{Deserialize, Serialize};

/// Linear PSU loss model: `AC = idle_loss + marginal · DC`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PsuModel {
    /// Fixed conversion overhead in watts (fans in the PSU, standby rail).
    pub idle_loss_w: f64,
    /// Marginal AC watts per DC watt.
    pub marginal_ac_per_dc: f64,
}

impl Default for PsuModel {
    fn default() -> Self {
        Self::server_psu()
    }
}

impl PsuModel {
    /// Calibration for the paper's system: ~81 % efficient at the 99 W
    /// idle point, ~90 % at the 509 W FIRESTARTER point.
    pub fn server_psu() -> Self {
        Self { idle_loss_w: 12.0, marginal_ac_per_dc: 1.08 }
    }

    /// Wall power for a DC load.
    pub fn ac_from_dc(&self, dc_w: f64) -> f64 {
        assert!(dc_w >= 0.0, "DC load cannot be negative");
        self.idle_loss_w + self.marginal_ac_per_dc * dc_w
    }

    /// Conversion efficiency at a DC load.
    pub fn efficiency(&self, dc_w: f64) -> f64 {
        assert!(dc_w > 0.0, "efficiency undefined at zero load");
        dc_w / self.ac_from_dc(dc_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_improves_with_load() {
        let psu = PsuModel::server_psu();
        assert!(psu.efficiency(80.0) < psu.efficiency(460.0));
        assert!((psu.efficiency(80.0) - 0.808).abs() < 0.01);
        assert!((psu.efficiency(460.0) - 0.901).abs() < 0.01);
    }

    #[test]
    fn idle_and_firestarter_anchor_points() {
        let psu = PsuModel::server_psu();
        assert!((psu.ac_from_dc(80.65) - 99.1).abs() < 0.1);
        assert!((psu.ac_from_dc(460.4) - 509.2).abs() < 0.5);
    }

    #[test]
    fn marginal_watt_is_the_fig7_conversion() {
        // Component deltas calibrated in DC convert to the paper's AC
        // deltas through the marginal term: 0.306 W DC -> 0.33 W AC.
        let psu = PsuModel::server_psu();
        let delta = psu.ac_from_dc(100.306) - psu.ac_from_dc(100.0);
        assert!((delta - 0.33).abs() < 0.003);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_load_rejected() {
        let _ = PsuModel::server_psu().ac_from_dc(-1.0);
    }
}
