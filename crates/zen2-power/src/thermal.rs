//! Package thermal model and leakage feedback.
//!
//! The paper pre-heats the system ("we execute FIRESTARTER for 15 min in
//! order to create a stable temperature") because leakage power rises with
//! die temperature. The same mechanism is the *only* path by which operand
//! data reaches AMD's RAPL model: higher true power → warmer die → more
//! leakage reported through the thermal-diode term — "the results indicate
//! that this is due to indirect effects, e.g., an increased temperature
//! based on the number of set bits" (Section VII-B).

use serde::{Deserialize, Serialize};

/// First-order (RC) package thermal model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Thermal resistance junction-to-ambient, °C per watt of package
    /// power.
    pub r_th_c_per_w: f64,
    /// Thermal time constant in seconds.
    pub tau_s: f64,
    /// Ambient (inlet) temperature in °C.
    pub ambient_c: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self::two_socket_air()
    }
}

impl ThermalModel {
    /// Air-cooled 2U server calibration: 180 W package settles at ~70 °C.
    pub fn two_socket_air() -> Self {
        Self { r_th_c_per_w: 0.25, tau_s: 60.0, ambient_c: 25.0 }
    }

    /// Steady-state die temperature at a package power.
    pub fn steady_state_c(&self, package_w: f64) -> f64 {
        assert!(package_w >= 0.0);
        self.ambient_c + self.r_th_c_per_w * package_w
    }

    /// Advances the die temperature over `dt_s` seconds toward the steady
    /// state for `package_w`.
    pub fn step(&self, current_c: f64, package_w: f64, dt_s: f64) -> f64 {
        assert!(dt_s >= 0.0, "time cannot run backwards");
        let target = self.steady_state_c(package_w);
        let alpha = 1.0 - (-dt_s / self.tau_s).exp();
        current_c + (target - current_c) * alpha
    }
}

/// Leakage-vs-temperature multiplier on package power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageModel {
    /// Share of package power that is leakage at the reference temperature.
    pub leakage_fraction: f64,
    /// Relative leakage increase per °C.
    pub per_c: f64,
    /// Reference temperature at which the calibrated powers hold, °C.
    pub reference_c: f64,
}

impl Default for LeakageModel {
    fn default() -> Self {
        Self::zen2()
    }
}

impl LeakageModel {
    /// 7 nm-class leakage behavior: ~12 % of power is leakage, growing
    /// ~0.4 %/°C of itself.
    pub fn zen2() -> Self {
        Self { leakage_fraction: 0.12, per_c: 0.004, reference_c: 68.0 }
    }

    /// The multiplier on package power at a die temperature.
    pub fn multiplier(&self, die_c: f64) -> f64 {
        1.0 + self.leakage_fraction * self.per_c * (die_c - self.reference_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_at_tdp() {
        let t = ThermalModel::two_socket_air();
        assert!((t.steady_state_c(180.0) - 70.0).abs() < 1e-9);
        assert_eq!(t.steady_state_c(0.0), 25.0);
    }

    #[test]
    fn step_converges_exponentially() {
        let t = ThermalModel::two_socket_air();
        let mut temp = t.ambient_c;
        // One time constant: ~63 % of the way there.
        temp = t.step(temp, 180.0, 60.0);
        assert!((temp - (25.0 + 45.0 * 0.632)).abs() < 0.2);
        // Fifteen minutes (the paper's pre-heat): fully settled.
        let settled = t.step(t.ambient_c, 180.0, 900.0);
        assert!((settled - 70.0).abs() < 0.01);
    }

    #[test]
    fn step_is_monotone_toward_target() {
        let t = ThermalModel::two_socket_air();
        let warm = t.step(80.0, 100.0, 30.0);
        assert!(warm < 80.0, "cooling toward a lower steady state");
        let cold = t.step(30.0, 100.0, 30.0);
        assert!(cold > 30.0, "heating toward a higher steady state");
    }

    #[test]
    fn leakage_multiplier_is_small_but_positive() {
        let l = LeakageModel::zen2();
        assert!((l.multiplier(l.reference_c) - 1.0).abs() < 1e-12);
        let hot = l.multiplier(78.0);
        assert!(hot > 1.0 && hot < 1.01, "ten degrees adds ~0.5 %: {hot}");
        assert!(l.multiplier(58.0) < 1.0);
    }

    #[test]
    fn fig10_indirect_path_magnitude() {
        // The 21 W vxorps swing warms each package by ~2.4 C, which moves
        // leakage by well under one percent - the reason RAPL's averages
        // stay within 0.08 % while the wall sees 7.6 %.
        let t = ThermalModel::two_socket_air();
        let l = LeakageModel::zen2();
        let dt = t.steady_state_c(140.0 + 9.7) - t.steady_state_c(140.0);
        let dm = l.multiplier(70.0 + dt) - l.multiplier(70.0);
        assert!(dm < 0.002, "indirect leakage shift {dm}");
        assert!(dm > 0.0);
    }
}
