//! Telemetry sinks for the `zen2-sim` observability facade.
//!
//! `zen2-sim` instruments its execution paths against the pure-data
//! [`Recorder`] trait ([`zen2_sim::obs`]); this crate provides the
//! implementations that turn those calls into something usable:
//!
//! * [`JsonlSink`] — a machine-readable trace file, one JSON object per
//!   line (validated by the `obscheck` bin).
//! * [`SummarySink`] — bounded-memory aggregation into an end-of-run
//!   table (span durations, counters, worker utilization), built on the
//!   same Welford/P² accumulators as the sweeps themselves.
//! * [`Heartbeat`] — rate-limited `done/total … cases/s … eta` lines on
//!   stderr for long runs.
//! * [`MemorySink`] — owned records for tests asserting on engine
//!   behavior (cache hits, evictions, span shapes).
//! * [`Multi`] — fan-out, since a run usually wants several at once.
//! * [`clock`] — the single wall-clock read the `no-wallclock` lint
//!   allows; every timestamp in every sink comes from here.
//!
//! Telemetry is strictly out-of-band: attaching any of these to a
//! [`Session`](zen2_sim::Session) cannot change a result (the facade's
//! methods return nothing), and the workspace test
//! `tests/observability.rs` asserts byte-identical output with the full
//! sink stack attached or not, across worker/shard splits. See
//! `docs/OBSERVABILITY.md` for the event schema and a profiling
//! walkthrough.
//!
//! ```
//! use std::sync::Arc;
//! use zen2_obs::{Heartbeat, MemorySink, Multi, SummarySink};
//! use zen2_sim::Recorder;
//!
//! let memory = Arc::new(MemorySink::new());
//! let sinks = Multi::new(vec![
//!     memory.clone(),
//!     Arc::new(SummarySink::new()),
//!     Arc::new(Heartbeat::every_ns(u64::MAX)),
//! ]);
//! // A Session would do this internally once `.recorder(...)` is set:
//! sinks.counter(zen2_sim::obs::CTR_CASES_DONE, 3);
//! assert_eq!(memory.counter_total("cases.done"), 3);
//! ```

pub mod clock;
pub mod heartbeat;
pub mod jsonl;
pub mod memory;
pub mod multi;
pub mod summary;

pub use heartbeat::Heartbeat;
pub use jsonl::JsonlSink;
pub use memory::{MemorySink, Record, Value};
pub use multi::Multi;
pub use summary::SummarySink;
pub use zen2_sim::obs::{Attr, AttrValue, Recorder, SpanId};
