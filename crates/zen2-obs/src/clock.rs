//! The one wall-clock read in the workspace.
//!
//! The `no-wallclock` lint forbids `std::time::Instant` everywhere
//! except this file: simulated results must be a pure function of
//! `(config, scenario, seed)`, so host time may only ever flow into
//! *telemetry* (timestamps on trace lines, throughput in progress
//! lines), never into a `Run`. Funnelling every read through
//! [`now_ns`] keeps that boundary auditable — a sink that wants a
//! timestamp imports this module, and the lint allowlist stays one
//! file long.
//!
//! Timestamps are nanoseconds since the first read in the process
//! (monotonic, never wraps in practice), so trace lines from one run
//! are directly comparable and small enough to subtract in a shell
//! one-liner.

use std::sync::OnceLock;
use std::time::Instant;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds of monotonic wall time since the process's first read.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Seconds of wall time elapsed since an earlier [`now_ns`] reading.
pub fn secs_since(start_ns: u64) -> f64 {
    now_ns().saturating_sub(start_ns) as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_relative_to_first_read() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        assert!(secs_since(a) >= 0.0);
    }
}
