//! The live-progress sink: rate-limited one-line heartbeats on stderr.
//!
//! A paper-scale sweep is silent for minutes at a time; the heartbeat
//! turns the engine's own telemetry into `done/total`, cases/sec, and
//! an ETA without any extra thread or timer — it prints (at most once
//! per interval) from within the `cases.done` counter callback, which
//! the session emits on every delivery.
//!
//! The [`EVT_SWEEP_TOTAL`] event re-arms the sink with the sweep's
//! label, extent, and resume offset, so one shared heartbeat follows a
//! multi-experiment run (`all`) across its sweeps.

use std::sync::Mutex;

use zen2_sim::obs::{Attr, AttrValue, Recorder, SpanId, CTR_CASES_DONE, EVT_SWEEP_TOTAL};

use crate::clock;

/// Prints progress lines to stderr, at most once per interval.
#[derive(Debug)]
pub struct Heartbeat {
    interval_ns: u64,
    inner: Mutex<State>,
}

#[derive(Debug, Default)]
struct State {
    label: String,
    total: u64,
    start: u64,
    done: u64,
    started_ns: u64,
    last_print_ns: u64,
}

impl Heartbeat {
    /// A heartbeat printing at most every 2 seconds.
    pub fn new() -> Heartbeat {
        Heartbeat::every_ns(2_000_000_000)
    }

    /// A heartbeat with an explicit minimum interval between lines.
    pub fn every_ns(interval_ns: u64) -> Heartbeat {
        Heartbeat { interval_ns, inner: Mutex::new(State::default()) }
    }
}

impl Default for Heartbeat {
    fn default() -> Self {
        Heartbeat::new()
    }
}

impl Recorder for Heartbeat {
    fn span_open(&self, _id: SpanId, _parent: Option<SpanId>, _name: &'static str, _: &[Attr<'_>]) {
    }

    fn span_close(&self, _id: SpanId) {}

    fn counter(&self, name: &'static str, delta: u64) {
        if name != CTR_CASES_DONE {
            return;
        }
        let now = clock::now_ns();
        let mut s = self.inner.lock().expect("heartbeat poisoned");
        s.done += delta;
        if now.saturating_sub(s.last_print_ns) < self.interval_ns {
            return;
        }
        s.last_print_ns = now;
        let elapsed = now.saturating_sub(s.started_ns) as f64 / 1e9;
        let rate = if elapsed > 0.0 { s.done as f64 / elapsed } else { 0.0 };
        let position = s.start + s.done;
        if s.total > 0 {
            let pct = 100.0 * position as f64 / s.total as f64;
            let eta = if rate > 0.0 {
                format!("{:.0}s", s.total.saturating_sub(position) as f64 / rate)
            } else {
                "-".to_string()
            };
            eprintln!(
                "[{}] {}/{} ({:.1}%) {:.0} cases/s eta {}",
                s.label, position, s.total, pct, rate, eta
            );
        } else {
            eprintln!("[{}] {} cases {:.0} cases/s", s.label, position, rate);
        }
    }

    fn gauge(&self, _name: &'static str, _value: f64) {}

    fn observe(&self, _name: &'static str, _value: f64) {}

    fn event(&self, name: &'static str, attrs: &[Attr<'_>]) {
        if name != EVT_SWEEP_TOTAL {
            return;
        }
        let mut s = self.inner.lock().expect("heartbeat poisoned");
        s.label = String::from("sweep");
        s.total = 0;
        s.start = 0;
        for (k, v) in attrs {
            match (*k, v) {
                ("sweep", AttrValue::Str(label)) => s.label = (*label).to_string(),
                ("total", AttrValue::U64(n)) => s.total = *n,
                ("start", AttrValue::U64(n)) => s.start = *n,
                _ => {}
            }
        }
        s.done = 0;
        s.started_ns = clock::now_ns();
        s.last_print_ns = 0;
        if s.start > 0 {
            eprintln!("[{}] resuming at {}/{}", s.label, s.start, s.total);
        } else {
            eprintln!("[{}] {} cases", s.label, s.total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_progress_state() {
        let hb = Heartbeat::every_ns(0);
        hb.event(
            EVT_SWEEP_TOTAL,
            &[
                ("sweep", AttrValue::Str("fig09")),
                ("total", AttrValue::U64(100)),
                ("start", AttrValue::U64(10)),
            ],
        );
        hb.counter(CTR_CASES_DONE, 1);
        hb.counter(CTR_CASES_DONE, 4);
        let s = hb.inner.lock().unwrap();
        assert_eq!(s.label, "fig09");
        assert_eq!(s.total, 100);
        assert_eq!(s.start, 10);
        assert_eq!(s.done, 5);
    }

    #[test]
    fn ignores_unrelated_telemetry() {
        let hb = Heartbeat::new();
        hb.counter("cache.hit", 7);
        hb.event("other.event", &[("total", AttrValue::U64(9))]);
        let s = hb.inner.lock().unwrap();
        assert_eq!(s.done, 0);
        assert_eq!(s.total, 0);
    }
}
