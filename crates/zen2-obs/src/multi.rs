//! Fan-out to several sinks: a sweep typically wants a JSONL trace, a
//! summary table, *and* a heartbeat at once, and the session takes one
//! recorder.

use std::sync::Arc;

use zen2_sim::obs::{Attr, Recorder, SpanId};

/// Forwards every call to each sink, in order.
pub struct Multi {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl Multi {
    /// A fan-out over `sinks` (empty is fine: every call is a no-op).
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Multi {
        Multi { sinks }
    }
}

impl Recorder for Multi {
    fn span_open(
        &self,
        id: SpanId,
        parent: Option<SpanId>,
        name: &'static str,
        attrs: &[Attr<'_>],
    ) {
        for s in &self.sinks {
            s.span_open(id, parent, name, attrs);
        }
    }

    fn span_close(&self, id: SpanId) {
        for s in &self.sinks {
            s.span_close(id);
        }
    }

    fn counter(&self, name: &'static str, delta: u64) {
        for s in &self.sinks {
            s.counter(name, delta);
        }
    }

    fn gauge(&self, name: &'static str, value: f64) {
        for s in &self.sinks {
            s.gauge(name, value);
        }
    }

    fn observe(&self, name: &'static str, value: f64) {
        for s in &self.sinks {
            s.observe(name, value);
        }
    }

    fn event(&self, name: &'static str, attrs: &[Attr<'_>]) {
        for s in &self.sinks {
            s.event(name, attrs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemorySink;

    #[test]
    fn forwards_to_every_sink() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let multi = Multi::new(vec![a.clone(), b.clone()]);
        multi.counter("cases.done", 2);
        multi.span_open(SpanId(1), None, "sweep", &[]);
        multi.span_close(SpanId(1));
        assert_eq!(a.counter_total("cases.done"), 2);
        assert_eq!(b.counter_total("cases.done"), 2);
        assert_eq!(a.span_count("sweep"), 1);
        assert_eq!(b.span_count("sweep"), 1);
    }
}
