//! The end-of-run summary sink: bounded-size aggregation of a whole
//! run's telemetry into one human-readable table.
//!
//! Everything aggregates through the same on-line accumulators the
//! sweeps themselves use ([`OnlineStats`] = Welford + P² quantiles), so
//! memory stays O(distinct names) no matter how many cases ran: span
//! durations per span name, one distribution per `observe` name,
//! plain totals per counter, last level per gauge, and per-worker busy
//! time derived from `case` spans' `worker` attribute against the
//! `pool` spans' wall time (the utilization column).

use std::collections::BTreeMap;
use std::sync::Mutex;

use zen2_sim::obs::{Attr, AttrValue, Recorder, SpanId, SPAN_CASE, SPAN_POOL};
use zen2_sim::OnlineStats;

use crate::clock;

/// Aggregates a run's telemetry; render the table with
/// [`SummarySink::render`] once the run is done.
#[derive(Debug, Default)]
pub struct SummarySink {
    inner: Mutex<Summary>,
}

#[derive(Debug, Default)]
struct Summary {
    /// Open spans: id → (name, open timestamp, `worker` attr of `case`
    /// spans).
    open: BTreeMap<u64, (&'static str, u64, Option<u64>)>,
    /// Span duration distributions (seconds), per span name.
    spans: BTreeMap<&'static str, OnlineStats>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    observed: BTreeMap<&'static str, OnlineStats>,
    /// Busy nanoseconds per worker index, from closed `case` spans.
    worker_busy_ns: BTreeMap<u64, u64>,
    /// Total wall nanoseconds spent inside `pool` spans.
    pool_wall_ns: u64,
}

impl SummarySink {
    /// An empty sink.
    pub fn new() -> SummarySink {
        SummarySink::default()
    }

    /// The aggregated table: span durations, counters, gauges, observed
    /// distributions, and per-worker utilization.
    pub fn render(&self) -> String {
        let s = self.inner.lock().expect("summary sink poisoned");
        let mut out = String::new();
        if !s.spans.is_empty() {
            out.push_str(&format!(
                "{:<14}{:>9}{:>12}{:>12}{:>12}{:>12}\n",
                "span", "count", "mean", "p50", "p95", "max"
            ));
            for (name, d) in &s.spans {
                out.push_str(&format!(
                    "{:<14}{:>9}{:>12}{:>12}{:>12}{:>12}\n",
                    name,
                    d.count(),
                    fmt_secs(d.mean()),
                    fmt_secs(d.p50()),
                    fmt_secs(d.p95()),
                    fmt_secs(d.max()),
                ));
            }
        }
        if !s.observed.is_empty() {
            out.push_str(&format!(
                "{:<14}{:>9}{:>12}{:>12}{:>12}{:>12}\n",
                "observed", "count", "mean", "p50", "p95", "max"
            ));
            for (name, d) in &s.observed {
                out.push_str(&format!(
                    "{:<14}{:>9}{:>12.2}{:>12.2}{:>12.2}{:>12.2}\n",
                    name,
                    d.count(),
                    d.mean(),
                    d.p50(),
                    d.p95(),
                    d.max(),
                ));
            }
        }
        if !s.counters.is_empty() {
            out.push_str(&format!("{:<22}{:>13}\n", "counter", "total"));
            for (name, total) in &s.counters {
                out.push_str(&format!("{name:<22}{total:>13}\n"));
            }
        }
        if !s.gauges.is_empty() {
            out.push_str(&format!("{:<22}{:>13}\n", "gauge", "last"));
            for (name, value) in &s.gauges {
                out.push_str(&format!("{name:<22}{value:>13.2}\n"));
            }
        }
        if !s.worker_busy_ns.is_empty() && s.pool_wall_ns > 0 {
            out.push_str(&format!("{:<10}{:>12}{:>8}\n", "worker", "busy", "util"));
            for (worker, busy) in &s.worker_busy_ns {
                let util = 100.0 * *busy as f64 / s.pool_wall_ns as f64;
                out.push_str(&format!(
                    "{:<10}{:>12}{:>7.1}%\n",
                    worker,
                    fmt_secs(*busy as f64 / 1e9),
                    util
                ));
            }
        }
        out
    }
}

/// A duration in seconds as a short human unit (ns/µs/ms/s).
fn fmt_secs(secs: f64) -> String {
    if !secs.is_finite() {
        return "-".to_string();
    }
    let ns = secs * 1e9;
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{secs:.2}s")
    }
}

impl Recorder for SummarySink {
    fn span_open(
        &self,
        id: SpanId,
        _parent: Option<SpanId>,
        name: &'static str,
        attrs: &[Attr<'_>],
    ) {
        let t = clock::now_ns();
        let worker = (name == SPAN_CASE)
            .then(|| {
                attrs.iter().find_map(|(k, v)| match v {
                    AttrValue::U64(w) if *k == "worker" => Some(*w),
                    _ => None,
                })
            })
            .flatten();
        let mut s = self.inner.lock().expect("summary sink poisoned");
        s.open.insert(id.0, (name, t, worker));
    }

    fn span_close(&self, id: SpanId) {
        let t = clock::now_ns();
        let mut s = self.inner.lock().expect("summary sink poisoned");
        let Some((name, opened, worker)) = s.open.remove(&id.0) else { return };
        let dur_ns = t.saturating_sub(opened);
        s.spans.entry(name).or_default().push(dur_ns as f64 / 1e9);
        if name == SPAN_POOL {
            s.pool_wall_ns += dur_ns;
        }
        if let Some(w) = worker {
            *s.worker_busy_ns.entry(w).or_insert(0) += dur_ns;
        }
    }

    fn counter(&self, name: &'static str, delta: u64) {
        let mut s = self.inner.lock().expect("summary sink poisoned");
        *s.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: f64) {
        let mut s = self.inner.lock().expect("summary sink poisoned");
        s.gauges.insert(name, value);
    }

    fn observe(&self, name: &'static str, value: f64) {
        let mut s = self.inner.lock().expect("summary sink poisoned");
        s.observed.entry(name).or_default().push(value);
    }

    fn event(&self, _name: &'static str, _attrs: &[Attr<'_>]) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_spans_counters_and_workers() {
        let sink = SummarySink::new();
        sink.span_open(SpanId(1), None, SPAN_POOL, &[]);
        sink.span_open(SpanId(2), Some(SpanId(1)), SPAN_CASE, &[("worker", AttrValue::U64(0))]);
        sink.span_close(SpanId(2));
        sink.span_close(SpanId(1));
        sink.counter("cache.hit", 3);
        sink.counter("cache.hit", 2);
        sink.gauge("cache.len", 4.0);
        sink.observe("shard.cases", 64.0);
        let table = sink.render();
        assert!(table.contains("case"), "span section: {table}");
        assert!(table.contains("cache.hit"), "counter section: {table}");
        assert!(table.contains("5"), "counter total: {table}");
        assert!(table.contains("worker"), "worker section: {table}");
        assert!(table.contains("shard.cases"), "observed section: {table}");
    }

    #[test]
    fn duration_units_scale() {
        assert_eq!(fmt_secs(5e-9), "5ns");
        assert_eq!(fmt_secs(5e-6), "5.0µs");
        assert_eq!(fmt_secs(5e-3), "5.00ms");
        assert_eq!(fmt_secs(5.0), "5.00s");
    }
}
