//! The JSONL file sink: one self-describing JSON object per line,
//! rendered with the exact hand-rolled [`Json`] tree the snapshot layer
//! already uses (the vendored serde shim has no serializer).
//!
//! Every line carries `"e"` (the record kind) and `"t"` (nanoseconds
//! from [`crate::clock`]); the per-kind fields are documented in
//! `docs/OBSERVABILITY.md` and validated by the `obscheck` bin, which
//! CI runs over a real sweep's trace.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use zen2_sim::obs::{Attr, AttrValue, Recorder, SpanId};
use zen2_sim::Json;

use crate::clock;

/// Writes one JSON object per telemetry call to a buffered file.
///
/// Spans are written as separate `span_open` / `span_close` lines (a
/// crashed run leaves opens with no close, and the trace survives up to
/// the buffer); the close line repeats the span's name and total
/// duration so most consumers never need to join against the open.
///
/// I/O errors cannot be surfaced through the fire-and-forget
/// [`Recorder`] methods, so the first one is held and returned by
/// [`JsonlSink::finish`].
pub struct JsonlSink {
    inner: Mutex<Inner>,
}

struct Inner {
    out: BufWriter<File>,
    /// Open spans: id → (name, open timestamp), for the close line.
    open: BTreeMap<u64, (&'static str, u64)>,
    err: Option<io::Error>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    /// Errors when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        let out = BufWriter::new(File::create(path)?);
        Ok(JsonlSink { inner: Mutex::new(Inner { out, open: BTreeMap::new(), err: None }) })
    }

    /// Flushes the buffer and reports the first write error, if any.
    ///
    /// # Errors
    /// Errors when any line failed to write, or the final flush fails.
    pub fn finish(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("jsonl sink poisoned");
        if let Some(err) = inner.err.take() {
            return Err(err);
        }
        inner.out.flush()
    }

    fn emit(&self, line: Json, on_open: Option<(u64, &'static str, u64)>, on_close: Option<u64>) {
        let mut inner = self.inner.lock().expect("jsonl sink poisoned");
        if let Some((id, name, t)) = on_open {
            inner.open.insert(id, (name, t));
        }
        if let Some(id) = on_close {
            inner.open.remove(&id);
        }
        if inner.err.is_none() {
            let text = line.render();
            if let Err(e) =
                inner.out.write_all(text.as_bytes()).and_then(|()| inner.out.write_all(b"\n"))
            {
                inner.err = Some(e);
            }
        }
    }
}

/// Attribute lists as a JSON object (insertion order preserved).
fn attrs_json(attrs: &[Attr<'_>]) -> Json {
    Json::Obj(attrs.iter().map(|(k, v)| ((*k).to_string(), attr_json(*v))).collect())
}

fn attr_json(v: AttrValue<'_>) -> Json {
    match v {
        AttrValue::U64(n) => Json::u64(n),
        AttrValue::F64(x) => Json::f64(x),
        AttrValue::Str(s) => Json::str(s),
        AttrValue::Bool(b) => Json::Bool(b),
    }
}

impl Recorder for JsonlSink {
    fn span_open(
        &self,
        id: SpanId,
        parent: Option<SpanId>,
        name: &'static str,
        attrs: &[Attr<'_>],
    ) {
        let t = clock::now_ns();
        let line = Json::obj([
            ("e", Json::str("span_open")),
            ("t", Json::u64(t)),
            ("id", Json::u64(id.0)),
            ("parent", parent.map_or(Json::Null, |p| Json::u64(p.0))),
            ("name", Json::str(name)),
            ("attrs", attrs_json(attrs)),
        ]);
        self.emit(line, Some((id.0, name, t)), None);
    }

    fn span_close(&self, id: SpanId) {
        let t = clock::now_ns();
        let (name, opened) = {
            let inner = self.inner.lock().expect("jsonl sink poisoned");
            inner.open.get(&id.0).copied().unwrap_or(("?", t))
        };
        let line = Json::obj([
            ("e", Json::str("span_close")),
            ("t", Json::u64(t)),
            ("id", Json::u64(id.0)),
            ("name", Json::str(name)),
            ("dur_ns", Json::u64(t.saturating_sub(opened))),
        ]);
        self.emit(line, None, Some(id.0));
    }

    fn counter(&self, name: &'static str, delta: u64) {
        let line = Json::obj([
            ("e", Json::str("counter")),
            ("t", Json::u64(clock::now_ns())),
            ("name", Json::str(name)),
            ("delta", Json::u64(delta)),
        ]);
        self.emit(line, None, None);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        let line = Json::obj([
            ("e", Json::str("gauge")),
            ("t", Json::u64(clock::now_ns())),
            ("name", Json::str(name)),
            ("value", Json::f64(value)),
        ]);
        self.emit(line, None, None);
    }

    fn observe(&self, name: &'static str, value: f64) {
        let line = Json::obj([
            ("e", Json::str("observe")),
            ("t", Json::u64(clock::now_ns())),
            ("name", Json::str(name)),
            ("value", Json::f64(value)),
        ]);
        self.emit(line, None, None);
    }

    fn event(&self, name: &'static str, attrs: &[Attr<'_>]) {
        let line = Json::obj([
            ("e", Json::str("event")),
            ("t", Json::u64(clock::now_ns())),
            ("name", Json::str(name)),
            ("attrs", attrs_json(attrs)),
        ]);
        self.emit(line, None, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_line_is_json_with_kind_and_time() {
        let dir = std::env::temp_dir().join("zen2-obs-jsonl-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.span_open(SpanId(1), None, "sweep", &[("workers", AttrValue::U64(4))]);
        sink.span_open(SpanId(2), Some(SpanId(1)), "case", &[("label", AttrValue::Str("a\"b"))]);
        sink.counter("cases.done", 1);
        sink.gauge("cache.len", 2.0);
        sink.observe("shard.cases", 64.0);
        sink.event("sweep.total", &[("total", AttrValue::U64(10))]);
        sink.span_close(SpanId(2));
        sink.span_close(SpanId(1));
        sink.finish().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8);
        for line in &lines {
            let doc = Json::parse(line).unwrap();
            doc.get("e").unwrap().as_str().unwrap();
            doc.get("t").unwrap().as_u64().unwrap();
        }
        // The close line names the span it closes and carries a duration.
        let close = Json::parse(lines[6]).unwrap();
        assert_eq!(close.get("e").unwrap().as_str().unwrap(), "span_close");
        assert_eq!(close.get("name").unwrap().as_str().unwrap(), "case");
        close.get("dur_ns").unwrap().as_u64().unwrap();
        std::fs::remove_file(&path).ok();
    }
}
