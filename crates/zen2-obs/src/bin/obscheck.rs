//! Validates a JSONL telemetry trace written by
//! [`zen2_obs::JsonlSink`]: every line must parse as one JSON object
//! carrying `"e"` (a known record kind) and `"t"`, plus the per-kind
//! required fields, and every `span_close` must reference an earlier
//! `span_open`. CI runs this over a real sweep's trace so the schema in
//! `docs/OBSERVABILITY.md` cannot rot silently.
//!
//! ```text
//! usage: obscheck <trace.jsonl>
//! ```
//!
//! Exits 0 with a per-kind line count on success, 1 with the offending
//! line on the first violation, 2 on usage errors.

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

use zen2_sim::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: obscheck <trace.jsonl>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("obscheck: reading {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match check(&text) {
        Ok(counts) => {
            let total: usize = counts.values().sum();
            println!("obscheck: {total} lines ok ({path})");
            for (kind, n) in &counts {
                println!("  {kind:<12}{n:>9}");
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("obscheck: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Validates the whole trace; returns per-kind line counts.
fn check(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut opened: BTreeSet<u64> = BTreeSet::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let doc = Json::parse(line).map_err(|e| format!("line {lineno}: not JSON: {e}"))?;
        let kind = field_str(&doc, "e", lineno)?;
        field_u64(&doc, "t", lineno)?;
        match kind.as_str() {
            "span_open" => {
                let id = field_u64(&doc, "id", lineno)?;
                field_str(&doc, "name", lineno)?;
                let parent = doc.get("parent").map_err(|e| format!("line {lineno}: {e}"))?;
                if !matches!(parent, Json::Null | Json::Num(_)) {
                    return Err(format!("line {lineno}: parent must be null or a span id"));
                }
                if let Json::Num(_) = parent {
                    let pid = parent.as_u64().map_err(|e| format!("line {lineno}: {e}"))?;
                    if !opened.contains(&pid) {
                        return Err(format!("line {lineno}: parent span {pid} never opened"));
                    }
                }
                opened.insert(id);
            }
            "span_close" => {
                let id = field_u64(&doc, "id", lineno)?;
                field_str(&doc, "name", lineno)?;
                field_u64(&doc, "dur_ns", lineno)?;
                if !opened.contains(&id) {
                    return Err(format!("line {lineno}: close of span {id} that never opened"));
                }
            }
            "counter" => {
                field_str(&doc, "name", lineno)?;
                let delta = field_u64(&doc, "delta", lineno)?;
                if delta == 0 {
                    return Err(format!("line {lineno}: counter delta must be non-zero"));
                }
            }
            "gauge" | "observe" => {
                field_str(&doc, "name", lineno)?;
                doc.get("value")
                    .and_then(Json::as_f64)
                    .map_err(|e| format!("line {lineno}: {e}"))?;
            }
            "event" => {
                field_str(&doc, "name", lineno)?;
                if !matches!(doc.get("attrs"), Ok(Json::Obj(_))) {
                    return Err(format!("line {lineno}: event attrs must be an object"));
                }
            }
            other => return Err(format!("line {lineno}: unknown record kind {other:?}")),
        }
        *counts.entry(kind).or_insert(0) += 1;
    }
    if counts.is_empty() {
        return Err("empty trace (no lines)".to_string());
    }
    Ok(counts)
}

fn field_str(doc: &Json, key: &str, lineno: usize) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .map_err(|e| format!("line {lineno}: {e}"))
}

fn field_u64(doc: &Json, key: &str, lineno: usize) -> Result<u64, String> {
    doc.get(key).and_then(Json::as_u64).map_err(|e| format!("line {lineno}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_valid_trace() {
        let trace = concat!(
            r#"{"e":"span_open","t":1,"id":1,"parent":null,"name":"sweep","attrs":{}}"#,
            "\n",
            r#"{"e":"counter","t":2,"name":"cases.done","delta":1}"#,
            "\n",
            r#"{"e":"gauge","t":3,"name":"cache.len","value":2.5}"#,
            "\n",
            r#"{"e":"observe","t":4,"name":"shard.cases","value":64}"#,
            "\n",
            r#"{"e":"event","t":5,"name":"sweep.total","attrs":{"total":10}}"#,
            "\n",
            r#"{"e":"span_close","t":6,"id":1,"name":"sweep","dur_ns":5}"#,
            "\n",
        );
        let counts = check(trace).unwrap();
        assert_eq!(counts["span_open"], 1);
        assert_eq!(counts["span_close"], 1);
        assert_eq!(counts.values().sum::<usize>(), 6);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(check("not json\n").is_err());
        assert!(check(r#"{"t":1}"#).is_err(), "missing kind");
        assert!(check(r#"{"e":"counter","t":1,"name":"x","delta":0}"#).is_err(), "zero delta");
        assert!(check(r#"{"e":"mystery","t":1}"#).is_err(), "unknown kind");
        assert!(
            check(r#"{"e":"span_close","t":1,"id":9,"name":"x","dur_ns":1}"#).is_err(),
            "close without open"
        );
        assert!(check("").is_err(), "empty trace");
    }
}
