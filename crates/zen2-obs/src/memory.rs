//! The in-memory sink: records every telemetry call as an owned value,
//! for tests that assert on engine behavior (cache hit rates, eviction
//! counts, span shapes) without touching the filesystem.

use std::sync::Mutex;

use zen2_sim::obs::{Attr, AttrValue, Recorder, SpanId};

/// An owned attribute value (the facade hands out borrows only).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A flag.
    Bool(bool),
}

impl Value {
    fn own(v: AttrValue<'_>) -> Value {
        match v {
            AttrValue::U64(n) => Value::U64(n),
            AttrValue::F64(x) => Value::F64(x),
            AttrValue::Str(s) => Value::Str(s.to_string()),
            AttrValue::Bool(b) => Value::Bool(b),
        }
    }
}

/// One recorded telemetry call.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A span opened.
    SpanOpen {
        /// The span's id.
        id: u64,
        /// The parent span, if any.
        parent: Option<u64>,
        /// The span name (`"sweep"`, `"case"`, …).
        name: &'static str,
        /// The open-call attributes, owned.
        attrs: Vec<(&'static str, Value)>,
    },
    /// A span closed.
    SpanClose {
        /// The id of the span being closed.
        id: u64,
    },
    /// A counter increment.
    Counter {
        /// The counter name.
        name: &'static str,
        /// The increment (never zero).
        delta: u64,
    },
    /// A gauge level.
    Gauge {
        /// The gauge name.
        name: &'static str,
        /// The level.
        value: f64,
    },
    /// One distribution observation.
    Observe {
        /// The distribution name.
        name: &'static str,
        /// The observation.
        value: f64,
    },
    /// A point event.
    Event {
        /// The event name.
        name: &'static str,
        /// The event attributes, owned.
        attrs: Vec<(&'static str, Value)>,
    },
}

/// Collects every call into a `Vec<Record>` behind a mutex.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<Record>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of everything recorded so far, in arrival order.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().expect("memory sink poisoned").clone()
    }

    /// Sum of all deltas recorded for counter `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.records()
            .iter()
            .filter_map(|r| match r {
                Record::Counter { name: n, delta } if *n == name => Some(*delta),
                _ => None,
            })
            .sum()
    }

    /// How many spans named `name` were opened.
    pub fn span_count(&self, name: &str) -> usize {
        self.records()
            .iter()
            .filter(|r| matches!(r, Record::SpanOpen { name: n, .. } if *n == name))
            .count()
    }

    /// The last level recorded for gauge `name`, if any.
    pub fn gauge_last(&self, name: &str) -> Option<f64> {
        self.records().iter().rev().find_map(|r| match r {
            Record::Gauge { name: n, value } if *n == name => Some(*value),
            _ => None,
        })
    }

    fn push(&self, r: Record) {
        self.records.lock().expect("memory sink poisoned").push(r);
    }
}

fn own_attrs(attrs: &[Attr<'_>]) -> Vec<(&'static str, Value)> {
    attrs.iter().map(|(k, v)| (*k, Value::own(*v))).collect()
}

impl Recorder for MemorySink {
    fn span_open(
        &self,
        id: SpanId,
        parent: Option<SpanId>,
        name: &'static str,
        attrs: &[Attr<'_>],
    ) {
        self.push(Record::SpanOpen {
            id: id.0,
            parent: parent.map(|p| p.0),
            name,
            attrs: own_attrs(attrs),
        });
    }

    fn span_close(&self, id: SpanId) {
        self.push(Record::SpanClose { id: id.0 });
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.push(Record::Counter { name, delta });
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.push(Record::Gauge { name, value });
    }

    fn observe(&self, name: &'static str, value: f64) {
        self.push(Record::Observe { name, value });
    }

    fn event(&self, name: &'static str, attrs: &[Attr<'_>]) {
        self.push(Record::Event { name, attrs: own_attrs(attrs) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_summarizes() {
        let sink = MemorySink::new();
        sink.span_open(SpanId(7), None, "case", &[("index", AttrValue::U64(3))]);
        sink.counter("cache.hit", 2);
        sink.counter("cache.hit", 3);
        sink.gauge("cache.len", 1.0);
        sink.gauge("cache.len", 4.0);
        sink.span_close(SpanId(7));
        assert_eq!(sink.counter_total("cache.hit"), 5);
        assert_eq!(sink.counter_total("cache.miss"), 0);
        assert_eq!(sink.span_count("case"), 1);
        assert_eq!(sink.gauge_last("cache.len"), Some(4.0));
        let records = sink.records();
        assert_eq!(records.len(), 6);
        assert_eq!(
            records[0],
            Record::SpanOpen {
                id: 7,
                parent: None,
                name: "case",
                attrs: vec![("index", Value::U64(3))],
            }
        );
    }
}
