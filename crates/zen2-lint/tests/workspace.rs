//! Meta-test: the real tree must be lint-clean. This is what keeps the
//! determinism contract machine-checked on every `cargo test` run, not
//! just in the dedicated CI job.

use std::path::Path;

#[test]
fn real_tree_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = zen2_lint::run_check(&root).expect("workspace scan succeeds");
    assert!(
        report.is_clean(),
        "the tree must pass `zen2-lint check`; findings:\n{}",
        report.render()
    );
    // Sanity: the scan actually covered the workspace, not an empty dir.
    assert!(report.files > 100, "only {} files scanned — wrong root?", report.files);
}

#[test]
fn ratchet_file_is_committed_and_fully_explained() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = std::fs::read_to_string(root.join(zen2_lint::workspace::RATCHET_FILE))
        .expect("zen2-lint.ratchet is committed at the workspace root");
    let baseline = zen2_lint::ratchet::parse(&text).expect("ratchet file parses");
    assert!(!baseline.entries.is_empty());
    for (path, entry) in &baseline.entries {
        assert!(
            !entry.reason.trim().is_empty() && !entry.reason.starts_with("TODO"),
            "ratchet entry for {path} has no real reason"
        );
    }
}
