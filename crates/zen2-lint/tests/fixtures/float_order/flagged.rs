fn totals(xs: &[f64]) -> f64 {
    let direct: f64 = xs.iter().sum();
    let folded = xs.iter().fold(0.0, |a, b| a + b);
    let mut acc = 0.0f64;
    for x in xs {
        acc += x;
    }
    direct + folded + acc
}
