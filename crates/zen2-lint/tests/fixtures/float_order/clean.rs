fn count(xs: &[u64]) -> u64 {
    let total: u64 = xs.iter().sum();
    let mut events = 0u64;
    for x in xs {
        events += x;
    }
    total + events
}

fn extremes(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::MIN, f64::max)
}
