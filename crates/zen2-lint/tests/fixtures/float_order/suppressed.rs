fn weighted(xs: &[f64]) -> f64 {
    // zen2-lint: allow(float-order) — caller passes a fixed-order slice; single left-to-right pass
    let total: f64 = xs.iter().sum();
    let mut acc = 0.0;
    for x in xs {
        // zen2-lint: allow(float-order) — chronological trace order; the order is the contract
        acc += x;
    }
    total + acc
}
