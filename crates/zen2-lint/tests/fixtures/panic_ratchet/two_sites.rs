fn risky(v: &[u32]) -> u32 {
    let a = v.first().unwrap();
    let b = v.last().expect("non-empty");
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_panics_do_not_count() {
        let s = "7".parse::<u32>().unwrap();
        assert_eq!(super::risky(&[s]), 14);
    }
}
