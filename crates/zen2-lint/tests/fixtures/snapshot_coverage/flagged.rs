struct Novel {
    sum: f64,
}

struct Bundle(GroupedStats<Novel>);
