struct Novel {
    sum: f64,
}

impl Snapshot for Novel {}

struct Bundle(GroupedStats<Novel>);

struct Generic<A>(GroupedStats<A>);
