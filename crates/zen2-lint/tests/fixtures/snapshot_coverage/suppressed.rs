struct Imported;

// zen2-lint: allow(snapshot-coverage) — impl Snapshot for Imported lives in the downstream tool crate
struct Bundle(GroupedStats<Imported>);
