use std::collections::BTreeMap;

fn tally(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
