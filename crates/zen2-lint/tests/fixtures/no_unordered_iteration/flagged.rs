use std::collections::HashMap;

fn tally(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
