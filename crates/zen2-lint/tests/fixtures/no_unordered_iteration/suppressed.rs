use std::collections::HashSet;

fn all_unique(xs: &[u64]) -> bool {
    // zen2-lint: allow(no-unordered-iteration) — membership-only; never iterated
    let seen: HashSet<&u64> = xs.iter().collect();
    seen.len() == xs.len()
}
