use std::thread;

fn bounded_helper() {
    // zen2-lint: allow(no-thread-escape) — joined before returning; no result data crosses the boundary
    let h = thread::spawn(|| ());
    h.join().ok();
}
