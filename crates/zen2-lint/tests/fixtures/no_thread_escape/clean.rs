fn no_threads(xs: &[i32]) -> i32 {
    xs.iter().sum()
}
