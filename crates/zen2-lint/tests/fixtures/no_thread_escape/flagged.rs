use std::thread;

fn fan_out() -> i32 {
    let h = thread::spawn(|| 42);
    thread::scope(|_s| {});
    h.join().unwrap_or(0)
}
