fn g() -> u32 {
    // zen2-lint: allow(no-thread-escape) — nothing here spawns
    42
}
