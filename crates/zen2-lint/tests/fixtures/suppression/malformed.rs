fn f() -> u32 {
    // zen2-lint: allow(no-wallclock)
    42
}

fn g() -> u32 {
    // zen2-lint: allow(no-such-rule) — the rule name is wrong
    42
}
