use std::time::{Duration, Instant};

fn timing() -> u64 {
    let t0 = Instant::now();
    let _ = std::time::SystemTime::now();
    t0.elapsed().as_nanos() as u64 + Duration::from_secs(1).as_nanos() as u64
}
