fn wall_probe() -> u64 {
    // zen2-lint: allow(no-wallclock) — host-side diagnostics only; the value never reaches a Run
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos() as u64
}
