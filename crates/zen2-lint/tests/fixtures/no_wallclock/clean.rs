use zen2_sim::time::{Duration, Instant, Ns};

fn plan(now: Instant, step: Duration) -> Ns {
    // The virtual clock alias shares the name but is simulated time.
    now + step
}

fn span_only() -> std::time::Duration {
    std::time::Duration::from_millis(5)
}
