use std::collections::BTreeMap;

fn legacy(map: &mut BTreeMap<String, u32>, cfg: &[u32]) {
    map.insert(format!("{:?}", cfg), 1); // zen2-lint: allow(no-debug-keying) — version-pinned guard string, not an identity
}
