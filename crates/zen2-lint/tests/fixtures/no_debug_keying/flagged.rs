use std::collections::BTreeMap;

fn index(map: &mut BTreeMap<String, u32>, cfg: &[u32]) {
    map.insert(format!("{:?}", cfg), 1);
    let _ = map.get(&format!("{cfg:?}"));
}
