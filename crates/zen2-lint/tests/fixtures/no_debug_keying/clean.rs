fn describe(cfg: &[u32]) -> String {
    // Debug formatting for display (logs, error messages) is fine.
    format!("cfg = {:?}", cfg)
}
