fn golden_trace() {
    // zen2-lint: allow(seed-discipline) — golden-trace generator: the pinned literal IS the artifact's identity
    let mut rng = Rng::seed_from_u64(0xDEAD);
    consume(rng.next());
}
