fn per_case(child_seed: u64) {
    let mut rng = Rng::seed_from_u64(child_seed);
    consume(rng.next());
}

fn derived(case_seed: u64) {
    let mut rng = Rng::seed_from_u64(seeds::child(case_seed, 1));
    consume(rng.next());
}

fn threaded(seed: u64) {
    let mut rng = Rng::seed_from_u64(seed ^ 0x9e37);
    consume(rng.next());
}

#[cfg(test)]
mod tests {
    #[test]
    fn pinned() {
        let mut rng = Rng::seed_from_u64(7);
        consume(rng.next());
    }
}
