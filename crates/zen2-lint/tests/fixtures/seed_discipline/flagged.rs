fn run() {
    let mut rng = Rng::seed_from_u64(42);
    let other = SmallRng::from_seed(SEED_BYTES);
    consume(rng.next(), other);
}
