//! Fixture-based self-tests: every rule must fire on its injected
//! violation, stay quiet on the clean variant, and respect a justified
//! inline suppression. Fixtures live under `tests/fixtures/` and are
//! excluded from the workspace scan, so the deliberate violations in
//! them never fail the real tree.

use zen2_lint::{check_files, ratchet, Report, SourceFile};

/// Runs the full engine over one fixture pretending to live at `rel`.
fn check_at(rel: &str, text: &str) -> Report {
    check_files(&[SourceFile::parse(rel, text)], &ratchet::Baseline::empty())
}

fn rule_lines(report: &Report, rule: &str) -> Vec<usize> {
    report.findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
}

/// Asserts the (flagged, clean, suppressed) triple for a rule: the
/// flagged fixture fires on exactly `lines`, the clean one is silent,
/// and the suppressed one is silent *because of* its annotation.
fn assert_triple(
    rule: &str,
    rel: &str,
    flagged: &str,
    clean: &str,
    suppressed: &str,
    lines: &[usize],
) {
    let f = check_at(rel, flagged);
    assert_eq!(rule_lines(&f, rule), lines, "{rule}: flagged fixture");
    assert!(f.suppressed == 0, "{rule}: flagged fixture has no annotations");

    let c = check_at(rel, clean);
    assert!(c.is_clean(), "{rule}: clean fixture should pass, got:\n{}", c.render());

    let s = check_at(rel, suppressed);
    assert!(s.is_clean(), "{rule}: suppressed fixture should pass, got:\n{}", s.render());
    assert!(s.suppressed > 0, "{rule}: the suppression must actually be exercised");
}

#[test]
fn no_wallclock_triple() {
    assert_triple(
        "no-wallclock",
        "crates/zen2-sim/src/fixture.rs",
        include_str!("fixtures/no_wallclock/flagged.rs"),
        include_str!("fixtures/no_wallclock/clean.rs"),
        include_str!("fixtures/no_wallclock/suppressed.rs"),
        &[1, 4, 5],
    );
}

#[test]
fn no_wallclock_bench_crate_is_allowlisted() {
    let report = check_at(
        "crates/zen2-bench/benches/fixture.rs",
        include_str!("fixtures/no_wallclock/flagged.rs"),
    );
    assert!(report.is_clean(), "bench crate may read wall time:\n{}", report.render());
}

#[test]
fn no_thread_escape_triple() {
    assert_triple(
        "no-thread-escape",
        "crates/zen2-experiments/src/fixture.rs",
        include_str!("fixtures/no_thread_escape/flagged.rs"),
        include_str!("fixtures/no_thread_escape/clean.rs"),
        include_str!("fixtures/no_thread_escape/suppressed.rs"),
        &[4, 5],
    );
}

#[test]
fn no_thread_escape_session_is_home() {
    let report = check_at(
        "crates/zen2-sim/src/session.rs",
        include_str!("fixtures/no_thread_escape/flagged.rs"),
    );
    assert!(
        rule_lines(&report, "no-thread-escape").is_empty(),
        "session.rs owns the worker pool:\n{}",
        report.render()
    );
}

#[test]
fn no_unordered_iteration_triple() {
    // The `use` line must NOT be flagged — only construction sites.
    assert_triple(
        "no-unordered-iteration",
        "crates/zen2-experiments/src/fixture.rs",
        include_str!("fixtures/no_unordered_iteration/flagged.rs"),
        include_str!("fixtures/no_unordered_iteration/clean.rs"),
        include_str!("fixtures/no_unordered_iteration/suppressed.rs"),
        &[4],
    );
}

#[test]
fn no_unordered_iteration_scoped_to_result_crates() {
    let report = check_at(
        "crates/zen2-rapl/src/fixture.rs",
        include_str!("fixtures/no_unordered_iteration/flagged.rs"),
    );
    assert!(report.is_clean(), "non-result crates are out of scope:\n{}", report.render());
}

#[test]
fn no_debug_keying_triple() {
    assert_triple(
        "no-debug-keying",
        "crates/zen2-sim/src/fixture.rs",
        include_str!("fixtures/no_debug_keying/flagged.rs"),
        include_str!("fixtures/no_debug_keying/clean.rs"),
        include_str!("fixtures/no_debug_keying/suppressed.rs"),
        &[4, 5],
    );
}

#[test]
fn snapshot_coverage_triple() {
    assert_triple(
        "snapshot-coverage",
        "crates/zen2-experiments/src/fixture.rs",
        include_str!("fixtures/snapshot_coverage/flagged.rs"),
        include_str!("fixtures/snapshot_coverage/clean.rs"),
        include_str!("fixtures/snapshot_coverage/suppressed.rs"),
        &[5],
    );
}

#[test]
fn snapshot_coverage_sees_impls_across_files() {
    // The impl may live in any other scanned file.
    let use_site = SourceFile::parse(
        "crates/zen2-experiments/src/fixture.rs",
        include_str!("fixtures/snapshot_coverage/flagged.rs"),
    );
    let impl_site =
        SourceFile::parse("crates/zen2-sim/src/elsewhere.rs", "impl Snapshot for Novel {}\n");
    let report = check_files(&[use_site, impl_site], &ratchet::Baseline::empty());
    assert!(report.is_clean(), "cross-file impl must satisfy the rule:\n{}", report.render());
}

#[test]
fn panic_ratchet_pins_counts_exactly() {
    let rel = "crates/zen2-sim/src/fixture.rs";
    let text = include_str!("fixtures/panic_ratchet/two_sites.rs");
    let entry = |n: usize| {
        ratchet::parse(&format!("{rel} = {n}  # fixture invariants\n")).expect("valid baseline")
    };

    // Exact match (test-module unwrap excluded): clean.
    let ok = check_files(&[SourceFile::parse(rel, text)], &entry(2));
    assert!(ok.is_clean(), "exact ceiling should pass:\n{}", ok.render());

    // No entry at all: flagged.
    let none = check_at(rel, text);
    assert_eq!(rule_lines(&none, "panic-ratchet"), [2]);

    // Growth past the ceiling: flagged.
    let grew = check_files(&[SourceFile::parse(rel, text)], &entry(1));
    assert_eq!(rule_lines(&grew, "panic-ratchet"), [2]);
    assert!(grew.findings[0].message.contains("grew"));

    // Shrinkage below the pin: flagged, telling you to tighten.
    let shrank = check_files(&[SourceFile::parse(rel, text)], &entry(3));
    assert_eq!(rule_lines(&shrank, "panic-ratchet"), [2]);
    assert!(shrank.findings[0].message.contains("tighten"));
}

#[test]
fn panic_ratchet_flags_stale_and_unexplained_entries() {
    let clean_file = SourceFile::parse("crates/zen2-sim/src/fixture.rs", "fn ok() {}\n");
    let baseline = ratchet::parse(
        "crates/zen2-sim/src/gone.rs = 2  # TODO: explain why these panic sites are acceptable\n",
    )
    .expect("valid baseline");
    let report = check_files(&[clean_file], &baseline);
    let messages: Vec<_> = report.findings.iter().map(|f| (f.rule, f.message.as_str())).collect();
    assert!(
        messages.iter().any(|(r, m)| *r == "panic-ratchet" && m.contains("stale")),
        "{messages:?}"
    );
    assert!(
        messages.iter().any(|(r, m)| *r == "panic-ratchet" && m.contains("unexplained")),
        "{messages:?}"
    );
}

#[test]
fn malformed_and_unused_annotations_are_findings() {
    let bad = check_at(
        "crates/zen2-sim/src/fixture.rs",
        include_str!("fixtures/suppression/malformed.rs"),
    );
    assert_eq!(rule_lines(&bad, "suppression"), [2, 7], "{}", bad.render());

    let unused =
        check_at("crates/zen2-sim/src/fixture.rs", include_str!("fixtures/suppression/unused.rs"));
    assert_eq!(rule_lines(&unused, "suppression"), [2], "{}", unused.render());
    assert!(unused.findings[0].message.contains("unused"));
}
