//! Fixture-based self-tests: every rule must fire on its injected
//! violation, stay quiet on the clean variant, and respect a justified
//! inline suppression. Fixtures live under `tests/fixtures/` and are
//! excluded from the workspace scan, so the deliberate violations in
//! them never fail the real tree.

use zen2_lint::{check_files, ratchet, CheckContext, Report, SourceFile};

/// Runs the full engine over one fixture pretending to live at `rel`.
fn check_at(rel: &str, text: &str) -> Report {
    check_files(&[SourceFile::parse(rel, text)], &CheckContext::local(ratchet::Baseline::empty()))
}

fn rule_lines(report: &Report, rule: &str) -> Vec<usize> {
    report.findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
}

/// Asserts the (flagged, clean, suppressed) triple for a rule: the
/// flagged fixture fires on exactly `lines`, the clean one is silent,
/// and the suppressed one is silent *because of* its annotation.
fn assert_triple(
    rule: &str,
    rel: &str,
    flagged: &str,
    clean: &str,
    suppressed: &str,
    lines: &[usize],
) {
    let f = check_at(rel, flagged);
    assert_eq!(rule_lines(&f, rule), lines, "{rule}: flagged fixture");
    assert!(f.suppressed == 0, "{rule}: flagged fixture has no annotations");

    let c = check_at(rel, clean);
    assert!(c.is_clean(), "{rule}: clean fixture should pass, got:\n{}", c.render());

    let s = check_at(rel, suppressed);
    assert!(s.is_clean(), "{rule}: suppressed fixture should pass, got:\n{}", s.render());
    assert!(s.suppressed > 0, "{rule}: the suppression must actually be exercised");
}

#[test]
fn no_wallclock_triple() {
    assert_triple(
        "no-wallclock",
        "crates/zen2-sim/src/fixture.rs",
        include_str!("fixtures/no_wallclock/flagged.rs"),
        include_str!("fixtures/no_wallclock/clean.rs"),
        include_str!("fixtures/no_wallclock/suppressed.rs"),
        &[1, 4, 5],
    );
}

#[test]
fn no_wallclock_allowlist_is_one_file() {
    let flagged = include_str!("fixtures/no_wallclock/flagged.rs");

    // The telemetry clock module is the single blessed reader.
    let clock = check_at("crates/zen2-obs/src/clock.rs", flagged);
    assert!(clock.is_clean(), "zen2_obs::clock owns the wall clock:\n{}", clock.render());

    // Its siblings are not: sinks must take timestamps from `clock`.
    let sibling = check_at("crates/zen2-obs/src/jsonl.rs", flagged);
    assert_eq!(rule_lines(&sibling, "no-wallclock"), [1, 4, 5], "obs sinks go through clock");

    // Neither is the bench crate, which used to be allowlisted whole.
    let bench = check_at("crates/zen2-bench/benches/fixture.rs", flagged);
    assert_eq!(rule_lines(&bench, "no-wallclock"), [1, 4, 5], "benches go through clock too");
}

#[test]
fn no_thread_escape_triple() {
    assert_triple(
        "no-thread-escape",
        "crates/zen2-experiments/src/fixture.rs",
        include_str!("fixtures/no_thread_escape/flagged.rs"),
        include_str!("fixtures/no_thread_escape/clean.rs"),
        include_str!("fixtures/no_thread_escape/suppressed.rs"),
        &[4, 5],
    );
}

#[test]
fn no_thread_escape_session_is_home() {
    let report = check_at(
        "crates/zen2-sim/src/session.rs",
        include_str!("fixtures/no_thread_escape/flagged.rs"),
    );
    assert!(
        rule_lines(&report, "no-thread-escape").is_empty(),
        "session.rs owns the worker pool:\n{}",
        report.render()
    );
}

#[test]
fn no_unordered_iteration_triple() {
    // The `use` line must NOT be flagged — only construction sites.
    assert_triple(
        "no-unordered-iteration",
        "crates/zen2-experiments/src/fixture.rs",
        include_str!("fixtures/no_unordered_iteration/flagged.rs"),
        include_str!("fixtures/no_unordered_iteration/clean.rs"),
        include_str!("fixtures/no_unordered_iteration/suppressed.rs"),
        &[4],
    );
}

#[test]
fn no_unordered_iteration_scoped_to_result_crates() {
    let report = check_at(
        "crates/zen2-rapl/src/fixture.rs",
        include_str!("fixtures/no_unordered_iteration/flagged.rs"),
    );
    assert!(report.is_clean(), "non-result crates are out of scope:\n{}", report.render());
}

#[test]
fn no_debug_keying_triple() {
    assert_triple(
        "no-debug-keying",
        "crates/zen2-sim/src/fixture.rs",
        include_str!("fixtures/no_debug_keying/flagged.rs"),
        include_str!("fixtures/no_debug_keying/clean.rs"),
        include_str!("fixtures/no_debug_keying/suppressed.rs"),
        &[4, 5],
    );
}

#[test]
fn snapshot_coverage_triple() {
    assert_triple(
        "snapshot-coverage",
        "crates/zen2-experiments/src/fixture.rs",
        include_str!("fixtures/snapshot_coverage/flagged.rs"),
        include_str!("fixtures/snapshot_coverage/clean.rs"),
        include_str!("fixtures/snapshot_coverage/suppressed.rs"),
        &[5],
    );
}

#[test]
fn snapshot_coverage_sees_impls_across_files() {
    // The impl may live in any other scanned file.
    let use_site = SourceFile::parse(
        "crates/zen2-experiments/src/fixture.rs",
        include_str!("fixtures/snapshot_coverage/flagged.rs"),
    );
    let impl_site =
        SourceFile::parse("crates/zen2-sim/src/elsewhere.rs", "impl Snapshot for Novel {}\n");
    let report =
        check_files(&[use_site, impl_site], &CheckContext::local(ratchet::Baseline::empty()));
    assert!(report.is_clean(), "cross-file impl must satisfy the rule:\n{}", report.render());
}

#[test]
fn panic_ratchet_pins_counts_exactly() {
    let rel = "crates/zen2-sim/src/fixture.rs";
    let text = include_str!("fixtures/panic_ratchet/two_sites.rs");
    let entry = |n: usize| {
        ratchet::parse(&format!("{rel} = {n}  # fixture invariants\n")).expect("valid baseline")
    };

    // Exact match (test-module unwrap excluded): clean.
    let ok = check_files(&[SourceFile::parse(rel, text)], &CheckContext::local(entry(2)));
    assert!(ok.is_clean(), "exact ceiling should pass:\n{}", ok.render());

    // No entry at all: flagged.
    let none = check_at(rel, text);
    assert_eq!(rule_lines(&none, "panic-ratchet"), [2]);

    // Growth past the ceiling: flagged.
    let grew = check_files(&[SourceFile::parse(rel, text)], &CheckContext::local(entry(1)));
    assert_eq!(rule_lines(&grew, "panic-ratchet"), [2]);
    assert!(grew.findings[0].message.contains("grew"));

    // Shrinkage below the pin: flagged, telling you to tighten.
    let shrank = check_files(&[SourceFile::parse(rel, text)], &CheckContext::local(entry(3)));
    assert_eq!(rule_lines(&shrank, "panic-ratchet"), [2]);
    assert!(shrank.findings[0].message.contains("tighten"));
}

#[test]
fn panic_ratchet_flags_stale_and_unexplained_entries() {
    let clean_file = SourceFile::parse("crates/zen2-sim/src/fixture.rs", "fn ok() {}\n");
    let baseline = ratchet::parse(
        "crates/zen2-sim/src/gone.rs = 2  # TODO: explain why these panic sites are acceptable\n",
    )
    .expect("valid baseline");
    let report = check_files(&[clean_file], &CheckContext::local(baseline));
    let messages: Vec<_> = report.findings.iter().map(|f| (f.rule, f.message.as_str())).collect();
    assert!(
        messages.iter().any(|(r, m)| *r == "panic-ratchet" && m.contains("stale")),
        "{messages:?}"
    );
    assert!(
        messages.iter().any(|(r, m)| *r == "panic-ratchet" && m.contains("unexplained")),
        "{messages:?}"
    );
}

#[test]
fn malformed_and_unused_annotations_are_findings() {
    let bad = check_at(
        "crates/zen2-sim/src/fixture.rs",
        include_str!("fixtures/suppression/malformed.rs"),
    );
    assert_eq!(rule_lines(&bad, "suppression"), [2, 7], "{}", bad.render());

    let unused =
        check_at("crates/zen2-sim/src/fixture.rs", include_str!("fixtures/suppression/unused.rs"));
    assert_eq!(rule_lines(&unused, "suppression"), [2], "{}", unused.render());
    assert!(unused.findings[0].message.contains("unused"));
}

#[test]
fn seed_discipline_triple() {
    assert_triple(
        "seed-discipline",
        "crates/zen2-sim/src/fixture.rs",
        include_str!("fixtures/seed_discipline/flagged.rs"),
        include_str!("fixtures/seed_discipline/clean.rs"),
        include_str!("fixtures/seed_discipline/suppressed.rs"),
        &[2, 3],
    );
}

#[test]
fn seed_discipline_covers_power_but_not_infra_crates() {
    let flagged = include_str!("fixtures/seed_discipline/flagged.rs");
    let power = check_at("crates/zen2-power/src/fixture.rs", flagged);
    assert_eq!(rule_lines(&power, "seed-discipline"), [2, 3], "zen2-power is in seed scope");
    let infra = check_at("crates/zen2-rapl/src/fixture.rs", flagged);
    assert!(infra.is_clean(), "infra crates are out of seed scope:\n{}", infra.render());
}

#[test]
fn float_order_triple() {
    assert_triple(
        "float-order",
        "crates/zen2-sim/src/fixture.rs",
        include_str!("fixtures/float_order/flagged.rs"),
        include_str!("fixtures/float_order/clean.rs"),
        include_str!("fixtures/float_order/suppressed.rs"),
        &[2, 3, 6],
    );
}

#[test]
fn float_order_blesses_stats_home_and_skips_infra() {
    let flagged = include_str!("fixtures/float_order/flagged.rs");
    let home = check_at("crates/zen2-sim/src/stats.rs", flagged);
    assert!(home.is_clean(), "stats.rs is the blessed home:\n{}", home.render());
    let infra = check_at("crates/zen2-rapl/src/fixture.rs", flagged);
    assert!(infra.is_clean(), "infra crates are out of scope:\n{}", infra.render());
}

// ---- snapshot-schema: the lock must pin key sets and order against ----
// ---- the checkpoint format version.                                ----

/// A miniature workspace: one MAGIC, one Snapshot impl.
fn schema_files(magic: &str, body: &str) -> Vec<SourceFile> {
    let text = format!(
        "pub const MAGIC: &str = \"{magic}\";\npub struct W {{ n: u64 }}\nimpl Snapshot for W {{\n    fn snapshot(&self) -> Json {{\n        {body}\n    }}\n}}\n"
    );
    vec![SourceFile::parse("crates/zen2-sim/src/fixture.rs", &text)]
}

fn schema_ctx(lock: Option<zen2_lint::schema::Lock>) -> CheckContext {
    CheckContext { ratchet: ratchet::Baseline::empty(), deadpub: None, schema_lock: Some(lock) }
}

#[test]
fn snapshot_schema_locks_then_detects_field_reorder() {
    use zen2_lint::schema;

    let v1 = schema_files("ck v1", "Json::obj([(\"count\", a), (\"mean\", b)])");
    let lock = schema::parse_lock(&schema::render_lock(&schema::extract(&v1), None))
        .expect("generated lock parses");
    let ok = check_files(&v1, &schema_ctx(Some(lock.clone())));
    assert!(ok.is_clean(), "fresh lock should pass:\n{}", ok.render());

    // Deliberate field reorder, same format version: drift must fail
    // the check and point at the MAGIC bump.
    let reordered = schema_files("ck v1", "Json::obj([(\"mean\", b), (\"count\", a)])");
    let drift = check_files(&reordered, &schema_ctx(Some(lock.clone())));
    assert_eq!(rule_lines(&drift, "snapshot-schema").len(), 1, "{}", drift.render());
    assert!(drift.findings[0].message.contains("bump MAGIC"), "{}", drift.render());

    // Regeneration refuses under the unchanged version…
    let blockers = schema::regeneration_blockers(&schema::extract(&reordered), &lock);
    assert!(!blockers.is_empty(), "same-version drift must block regeneration");

    // …and a version bump unlocks it: regenerate, check passes again.
    let bumped = schema_files("ck v2", "Json::obj([(\"mean\", b), (\"count\", a)])");
    let ex2 = schema::extract(&bumped);
    let mismatch = check_files(&bumped, &schema_ctx(Some(lock.clone())));
    assert_eq!(rule_lines(&mismatch, "snapshot-schema").len(), 1, "{}", mismatch.render());
    assert!(schema::regeneration_blockers(&ex2, &lock).is_empty(), "bump unlocks regeneration");
    let lock2 = schema::parse_lock(&schema::render_lock(&ex2, Some(&lock))).expect("new lock");
    let ok2 = check_files(&bumped, &schema_ctx(Some(lock2)));
    assert!(ok2.is_clean(), "regenerated lock should pass:\n{}", ok2.render());
}

#[test]
fn snapshot_schema_missing_lock_and_new_impl_are_findings() {
    let v1 = schema_files("ck v1", "Json::obj([(\"count\", a)])");
    let missing = check_files(&v1, &schema_ctx(None));
    assert_eq!(rule_lines(&missing, "snapshot-schema"), [1], "{}", missing.render());
    assert!(missing.findings[0].message.contains("missing"));

    // A lock that has never seen this impl: the new entry is a finding
    // at the impl's source line.
    let empty = zen2_lint::schema::parse_lock("format = ck v1\n").expect("minimal lock");
    let fresh = check_files(&v1, &schema_ctx(Some(empty)));
    assert_eq!(rule_lines(&fresh, "snapshot-schema"), [5], "{}", fresh.render());
}

#[test]
fn snapshot_schema_regeneration_preserves_comments() {
    use zen2_lint::schema;
    let v1 = schema_files("ck v1", "Json::obj([(\"count\", a)])");
    let ex = schema::extract(&v1);
    let first = schema::render_lock(&ex, None);
    let annotated = first.replace(" = {count}", " = {count}  # counts only; mean lives in Welford");
    let prior = schema::parse_lock(&annotated).expect("annotated lock parses");
    let again = schema::render_lock(&ex, Some(&prior));
    assert!(
        again.contains("# counts only; mean lives in Welford"),
        "entry comments must survive regeneration:\n{again}"
    );
}

// ---- dead-pub: the reachability ratchet must fail on growth and on ----
// ---- shrinkage (stale entries), and reject unexplained keeps.      ----

fn deadpub_files() -> Vec<SourceFile> {
    let lib = "pub fn used() {}\npub fn orphan() {}\n";
    let root = "fn main() { used(); }\n";
    vec![
        SourceFile::parse("crates/zen2-sim/src/fixture.rs", lib),
        SourceFile::parse("crates/zen2-sim/src/main.rs", root),
    ]
}

fn deadpub_ctx(baseline: &str) -> CheckContext {
    CheckContext {
        ratchet: ratchet::Baseline::empty(),
        deadpub: Some(zen2_lint::deadpub::parse(baseline).expect("valid baseline")),
        schema_lock: None,
    }
}

#[test]
fn dead_pub_ratchet_growth_and_shrinkage() {
    // Growth: an unlisted dead item fails at its definition line.
    let grew = check_files(&deadpub_files(), &deadpub_ctx(""));
    assert_eq!(rule_lines(&grew, "dead-pub"), [2], "{}", grew.render());
    assert!(grew.findings[0].message.contains("orphan"));

    // A reasoned entry passes.
    let kept = check_files(
        &deadpub_files(),
        &deadpub_ctx("crates/zen2-sim/src/fixture.rs::orphan = kept  # exercised by ops scripts\n"),
    );
    assert!(kept.is_clean(), "reasoned keep should pass:\n{}", kept.render());

    // A TODO reason does not count.
    let todo = check_files(
        &deadpub_files(),
        &deadpub_ctx("crates/zen2-sim/src/fixture.rs::orphan = kept  # TODO: justify\n"),
    );
    assert_eq!(rule_lines(&todo, "dead-pub"), [2], "{}", todo.render());
    assert!(todo.findings[0].message.contains("unexplained"));

    // Shrinkage: an entry whose item became reachable again is stale.
    let stale = check_files(
        &deadpub_files(),
        &deadpub_ctx(
            "crates/zen2-sim/src/fixture.rs::orphan = kept  # exercised by ops scripts\ncrates/zen2-sim/src/fixture.rs::used = kept  # left over\n",
        ),
    );
    assert_eq!(rule_lines(&stale, "dead-pub"), [1], "{}", stale.render());
    assert!(stale.findings[0].message.contains("stale"));
    assert_eq!(stale.findings[0].rel, "zen2-lint.deadpub");
}

#[test]
fn dead_pub_roots_reach_through_impls_and_doctests() {
    // An impl of a live type keeps what its body references alive.
    let lib =
        "pub struct Live;\npub fn helper() {}\nimpl Live {\n    pub fn go() { helper(); }\n}\n";
    let root = "fn main() { Live::go(); }\n";
    let files = vec![
        SourceFile::parse("crates/zen2-sim/src/fixture.rs", lib),
        SourceFile::parse("crates/zen2-sim/src/main.rs", root),
    ];
    let report = check_files(&files, &deadpub_ctx(""));
    assert!(report.is_clean(), "impl bodies propagate liveness:\n{}", report.render());

    // A doctest fence is a root: `fenced` is only used there.
    let doc = "/// ```\n/// fenced();\n/// ```\npub fn fenced() {}\n";
    let files = vec![
        SourceFile::parse("crates/zen2-sim/src/fixture.rs", doc),
        SourceFile::parse("crates/zen2-sim/src/main.rs", "fn main() {}\n"),
    ];
    let report = check_files(&files, &deadpub_ctx(""));
    assert!(report.is_clean(), "doctests exercise API:\n{}", report.render());
}
