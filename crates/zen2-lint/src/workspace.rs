//! Workspace discovery: which `.rs` files the lint pass covers.
//!
//! Scanned roots: `src/`, `tests/`, `examples/`, and `crates/` —
//! excluding `crates/vendor/` (third-party shims, not ours to lint) and
//! `crates/zen2-lint/tests/fixtures/` (deliberate violations used by
//! the rule self-tests). Traversal is sorted so reports are
//! byte-identical across runs and machines.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the committed panic-ratchet file at the workspace root.
pub const RATCHET_FILE: &str = "zen2-lint.ratchet";

/// Name of the committed dead-pub baseline at the workspace root.
pub const DEADPUB_FILE: &str = "zen2-lint.deadpub";

/// Name of the committed snapshot-schema lock at the workspace root.
pub const SCHEMA_LOCK_FILE: &str = "SNAPSHOT_SCHEMA.lock";

const SCAN_ROOTS: &[&str] = &["src", "tests", "examples", "crates"];
const SKIP_PREFIXES: &[&str] = &["crates/vendor/", "crates/zen2-lint/tests/fixtures/"];

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// All lintable `.rs` files under `root`, as `(absolute, relative)`
/// pairs sorted by relative path. Relative paths always use `/`.
pub fn collect(root: &Path) -> io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, top, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(out)
}

fn walk(dir: &Path, rel: &str, out: &mut Vec<(PathBuf, String)>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let child_rel = format!("{rel}/{name}");
        if SKIP_PREFIXES.iter().any(|p| child_rel.starts_with(p) || format!("{child_rel}/") == *p) {
            continue;
        }
        let path = entry.path();
        if path.is_dir() {
            walk(&path, &child_rel, out)?;
        } else if name.ends_with(".rs") {
            out.push((path, child_rel));
        }
    }
    Ok(())
}
