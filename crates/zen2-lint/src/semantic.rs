//! Item-aware single-file rules: seed discipline and float reduction
//! order. Both run over the token stream *plus* the item tree
//! ([`crate::items`]), which is what lets them see enclosing-function
//! parameters and tell a definition from a call.

use crate::items::{Item, ItemKind};
use crate::lexer::{matching, Token, TokenKind};
use crate::rules::{
    is_code_ident, seq, statement_start, FLOAT_ORDER, RESULT_CRATES, SEED_DISCIPLINE,
};
use crate::{Finding, SourceFile};

/// Crates whose RNG seeding must be derivation-rooted. Result crates
/// plus `zen2-power`, whose meter-noise RNG feeds the fig09 quality
/// numbers.
pub const SEED_SCOPE: &[&str] =
    &["crates/zen2-sim/", "crates/zen2-experiments/", "crates/zen2-power/"];

/// The one file allowed to hand-roll order-sensitive float loops: the
/// blessed accumulators (`Welford`, `P2Quantile`, …) live here, and
/// their merge order is part of their tested contract.
pub const FLOAT_ORDER_HOME: &str = "crates/zen2-sim/src/stats.rs";

/// seed-discipline: every `seed_from_u64(…)` / `from_seed(…)` call in
/// non-test code of [`SEED_SCOPE`] crates must root its seed expression
/// in the derivation chain — `child_seed`, `seeds::child`, or a
/// `seed`-named parameter of the enclosing function. A literal (or any
/// other untracked) seed silently forks the RNG universe: two
/// experiments can share a stream, and a sweep's per-case independence
/// guarantee (docs/SWEEPS.md) no longer holds.
pub fn seed_discipline(f: &SourceFile, out: &mut Vec<Finding>) {
    if !SEED_SCOPE.iter().any(|p| f.rel.starts_with(p)) {
        return;
    }
    let toks = &f.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(is_code_ident(t, "seed_from_u64") || is_code_ident(t, "from_seed")) {
            continue;
        }
        // A definition (`fn from_seed(…)`) is not a call site.
        if i > 0 && is_code_ident(&toks[i - 1], "fn") {
            continue;
        }
        let Some(open) = toks.get(i + 1).filter(|n| n.text == "(").map(|_| i + 1) else {
            continue;
        };
        if f.is_test_code(t.line) {
            continue;
        }
        let close = matching(toks, open, "(", ")").unwrap_or(toks.len());
        let args = &toks[open + 1..close.min(toks.len())];
        if seed_expr_is_rooted(args, &f.items, i) {
            continue;
        }
        out.push(f.finding(
            SEED_DISCIPLINE,
            t.line,
            format!(
                "`{}` seed is not rooted in the derivation chain: use child_seed/seeds::child, or thread a `seed` parameter through — literal seeds fork the RNG universe outside the sweep's control",
                t.text
            ),
        ));
    }
}

/// True when the argument tokens of a seeding call trace back to the
/// derivation chain.
fn seed_expr_is_rooted(args: &[Token], items: &[Item], call_idx: usize) -> bool {
    if args.iter().any(|t| is_code_ident(t, "child_seed")) {
        return true;
    }
    if (0..args.len()).any(|k| seq(args, k, &["seeds", "::", "child"])) {
        return true;
    }
    // A `seed`-named parameter of the enclosing fn, used in the
    // expression, counts as rooted: the caller owns the derivation.
    let params = enclosing_fn_params(items, call_idx);
    args.iter().any(|t| {
        t.kind == TokenKind::Ident
            && params.iter().any(|p| p == &t.text && p.to_ascii_lowercase().contains("seed"))
    })
}

/// Parameter names of the innermost `fn` item whose token range
/// contains `idx` (closures are invisible to the item layer; their
/// captures resolve to the enclosing fn, which is what we want).
fn enclosing_fn_params(items: &[Item], idx: usize) -> Vec<String> {
    let mut best: Option<&Item> = None;
    fn visit<'a>(items: &'a [Item], idx: usize, best: &mut Option<&'a Item>) {
        for item in items {
            if item.range.0 <= idx && idx < item.range.1 {
                if item.kind == ItemKind::Fn {
                    *best = Some(item);
                }
                visit(&item.children, idx, best);
            }
        }
    }
    visit(items, idx, &mut best);
    best.map(|f| f.params.clone()).unwrap_or_default()
}

/// float-order: order-sensitive `f64` reductions in result crates
/// outside [`FLOAT_ORDER_HOME`]. Float addition is not associative, so
/// a `.sum()` / `.fold()` / loop-carried `+=` over a collection bakes
/// one particular evaluation order into the result — exactly the thing
/// the shard/worker split invariance forbids unless the order is itself
/// deterministic and documented. The blessed accumulators in `stats.rs`
/// exist so reductions have one audited home; everything else needs a
/// reasoned suppression stating why its order is fixed.
pub fn float_order(f: &SourceFile, out: &mut Vec<Finding>) {
    if !RESULT_CRATES.iter().any(|p| f.rel.starts_with(p)) || f.rel == FLOAT_ORDER_HOME {
        return;
    }
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if toks[i].text != "." {
            continue;
        }
        let Some(m) = toks.get(i + 1) else { continue };
        if !(is_code_ident(m, "sum") || is_code_ident(m, "product") || is_code_ident(m, "fold")) {
            continue;
        }
        if !toks.get(i + 2).is_some_and(|n| n.text == "(" || n.text == "::") {
            continue;
        }
        if f.is_test_code(m.line) {
            continue;
        }
        if is_code_ident(m, "fold") && fold_is_min_max(toks, i + 2) {
            continue; // min/max are associative+commutative: order-free.
        }
        if statement_has_float(toks, i) {
            out.push(f.finding(
                FLOAT_ORDER,
                m.line,
                format!(
                    "order-sensitive float reduction `.{}()` outside {FLOAT_ORDER_HOME}: float addition is not associative — use a stats.rs accumulator, or suppress with a reason documenting why the iteration order is fixed",
                    m.text
                ),
            ));
        }
    }
    float_accumulation_loops(f, out);
}

/// The `+=` half of float-order: a local float accumulated inside a
/// `for` loop body.
fn float_accumulation_loops(f: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &f.tokens;
    let loops = for_loop_bodies(toks);
    for i in 0..toks.len().saturating_sub(1) {
        if !(toks[i].text == "+" && toks[i + 1].text == "=") {
            continue;
        }
        if f.is_test_code(toks[i].line) {
            continue;
        }
        if !loops.iter().any(|&(a, b)| a < i && i < b) {
            continue;
        }
        let Some(name) = accumulator_name(toks, i) else { continue };
        if !local_is_float(toks, &name) {
            continue;
        }
        out.push(f.finding(
            FLOAT_ORDER,
            toks[i].line,
            format!(
                "loop-carried float accumulation `{name} +=`: this bakes the loop's iteration order into the value — use a stats.rs accumulator, or suppress with a reason documenting why the order is fixed"
            ),
        ));
    }
}

/// Name of the place being `+=`-assigned at token `i` (the `+`), when
/// it is a plain local or an indexed local — `self.field +=` and other
/// projections return `None` (struct fields accumulate across calls by
/// design; the declaring type owns that contract).
fn accumulator_name(toks: &[Token], i: usize) -> Option<String> {
    let mut j = i.checked_sub(1)?;
    if toks[j].text == "]" {
        // `name[idx] += …`: scan back to the matching `[`.
        let mut depth = 0i32;
        loop {
            match toks[j].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j = j.checked_sub(1)?;
        }
        j = j.checked_sub(1)?;
    }
    let t = toks.get(j)?;
    if t.kind != TokenKind::Ident {
        return None;
    }
    if j > 0 && toks[j - 1].text == "." {
        return None;
    }
    Some(t.text.clone())
}

/// True when a `let [mut] name …;` binding in this file carries a float
/// signal (type annotation or literal).
fn local_is_float(toks: &[Token], name: &str) -> bool {
    for k in 0..toks.len() {
        let decl = seq(toks, k, &["let", "mut", name]) || seq(toks, k, &["let", name]);
        if decl && statement_has_float(toks, k + 1) {
            return true;
        }
    }
    false
}

/// True when the reduction at `open` (the token after `.fold`) is a
/// `min`/`max` fold — associative and commutative, so evaluation order
/// cannot change the result (modulo NaN, which the sim never emits).
fn fold_is_min_max(toks: &[Token], open: usize) -> bool {
    let open = if toks[open].text == "::" {
        // Turbofish: `.fold::<…>(…)` — find the call parenthesis.
        let mut k = open;
        while k < toks.len() && toks[k].text != "(" {
            k += 1;
        }
        k
    } else {
        open
    };
    let close = matching(toks, open, "(", ")").unwrap_or(toks.len());
    (open..close.min(toks.len())).any(|k| {
        seq(toks, k, &["f64", "::", "min"])
            || seq(toks, k, &["f64", "::", "max"])
            || seq(toks, k, &["f32", "::", "min"])
            || seq(toks, k, &["f32", "::", "max"])
    })
}

/// True when the statement containing token `i` mentions a float type
/// or literal anywhere. Tail expressions have no closing `;`, so the
/// scan also stops at braces in both directions.
fn statement_has_float(toks: &[Token], i: usize) -> bool {
    let start = statement_start(toks, i);
    let mut k = i;
    while k < toks.len() && !matches!(toks[k].text.as_str(), ";" | "{" | "}") {
        k += 1;
    }
    toks[start..k.min(toks.len())].iter().any(is_float_signal)
}

fn is_float_signal(t: &Token) -> bool {
    match t.kind {
        TokenKind::Ident => t.text == "f64" || t.text == "f32",
        TokenKind::Num => {
            t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32")
        }
        _ => false,
    }
}

/// Token ranges `(open_brace, close_brace)` of every `for … in … { }`
/// loop body. `impl Trait for Type` and `for<'a>` bounds never have an
/// `in` between the `for` and the first `{`, so they don't qualify.
fn for_loop_bodies(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for k in 0..toks.len() {
        if !is_code_ident(&toks[k], "for") {
            continue;
        }
        let mut saw_in = false;
        let mut j = k + 1;
        while j < toks.len() && toks[j].text != "{" {
            if is_code_ident(&toks[j], "in") {
                saw_in = true;
            }
            if toks[j].text == ";" {
                break;
            }
            j += 1;
        }
        if saw_in && j < toks.len() && toks[j].text == "{" {
            let close = matching(toks, j, "{", "}").unwrap_or(toks.len());
            out.push((j, close));
        }
    }
    out
}
