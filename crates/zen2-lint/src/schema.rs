//! snapshot-schema: a static lock on the checkpoint wire format.
//!
//! Every `impl Snapshot` emits its state as `Json::obj([("key", …), …])`
//! literals; the key *names and order* are the wire format that PR 5's
//! checkpoint files carry and that a future `Checkpoint::merge` must
//! agree on. This pass extracts those key groups statically — from the
//! token stream, per Snapshot-implementing type — and pins them in a
//! committed `SNAPSHOT_SCHEMA.lock` alongside the checkpoint format
//! version (`const MAGIC` in `checkpoint.rs`). Reordering, adding, or
//! removing a key without bumping the version is a silent wire-format
//! break: old checkpoint files would restore garbage or refuse to load
//! with no explanation. `check` turns that into a lint failure at the
//! PR that introduces it.
//!
//! Extraction covers `Json::obj` literals in *every* non-test impl
//! block of a type that has an `impl Snapshot` anywhere in the
//! workspace — inherent helpers like `GroupedStats::shape_snapshot`
//! write wire bytes too. Known limits: obj literals built outside impl
//! blocks of Snapshot types (e.g. `Checkpoint`'s own header, which has
//! no `Snapshot` impl) and keys assembled from non-literal expressions
//! are invisible to the extractor; see `docs/LINTS.md`.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{walk_items, ItemKind};
use crate::lexer::TokenKind;
use crate::rules::{seq, SNAPSHOT_SCHEMA};
use crate::workspace::SCHEMA_LOCK_FILE;
use crate::{Finding, SourceFile};

/// One extracted schema entry: the key groups (one per `Json::obj`
/// literal, in source order) and the line of the first one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedEntry {
    pub groups: Vec<Vec<String>>,
    pub line: usize,
}

/// Everything the extractor learns from the tree.
#[derive(Debug, Default)]
pub struct Extraction {
    /// The checkpoint format version (`const MAGIC` string), if found.
    pub format: Option<String>,
    /// `"<rel>::<Type>"` → extracted key groups.
    pub entries: BTreeMap<String, ExtractedEntry>,
}

/// Statically extracts the snapshot wire schema of the whole tree.
pub fn extract(files: &[SourceFile]) -> Extraction {
    let mut ex = Extraction::default();

    // Pass 1: which types implement Snapshot, workspace-wide.
    let mut snapshot_types: BTreeSet<String> = BTreeSet::new();
    for f in files {
        if f.is_test_file() {
            continue;
        }
        walk_items(&f.items, &mut |it| {
            if it.kind == ItemKind::Impl
                && it.impl_trait.as_deref() == Some("Snapshot")
                && !f.is_test_code(it.line)
            {
                if let Some(t) = &it.impl_type {
                    snapshot_types.insert(t.clone());
                }
            }
        });
    }

    // Pass 2: the checkpoint format version — the string initializer of
    // the first `const MAGIC` in the (sorted) tree.
    'version: for f in files {
        let toks = &f.tokens;
        for i in 0..toks.len() {
            if seq(toks, i, &["const", "MAGIC"]) {
                for t in &toks[i + 2..] {
                    if t.text == ";" {
                        break;
                    }
                    if t.kind == TokenKind::Str {
                        ex.format = Some(t.text.clone());
                        break 'version;
                    }
                }
            }
        }
    }

    // Pass 3: key groups from every obj literal inside impl blocks of
    // Snapshot types.
    for f in files {
        if f.is_test_file() {
            continue;
        }
        walk_items(&f.items, &mut |it| {
            if it.kind != ItemKind::Impl {
                return;
            }
            let Some(ty) = &it.impl_type else { return };
            if !snapshot_types.contains(ty) {
                return;
            }
            let toks = &f.tokens;
            for i in it.range.0..it.range.1.min(toks.len()) {
                if !seq(toks, i, &["obj", "(", "["]) || f.is_test_code(toks[i].line) {
                    continue;
                }
                let keys = obj_literal_keys(toks, i + 2);
                if keys.is_empty() {
                    continue;
                }
                let key = format!("{}::{ty}", f.rel);
                let entry = ex
                    .entries
                    .entry(key)
                    .or_insert(ExtractedEntry { groups: Vec::new(), line: toks[i].line });
                entry.groups.push(keys);
            }
        });
    }
    ex
}

/// The key names of one `obj([("k", …), …])` literal whose `[` sits at
/// `open`. Keys of *nested* obj literals are excluded (they are their
/// own group): a key string sits at bracket depth exactly 2 relative to
/// the opening `[`, right after a `(`.
fn obj_literal_keys(toks: &[crate::lexer::Token], open: usize) -> Vec<String> {
    let mut keys = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "[" | "(" | "{" => depth += 1,
            "]" | ")" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {
                if t.kind == TokenKind::Str
                    && depth == 2
                    && i > 0
                    && toks[i - 1].text == "("
                    && toks.get(i + 1).is_some_and(|n| n.text == ",")
                {
                    keys.push(t.text.clone());
                }
            }
        }
        i += 1;
    }
    keys
}

/// One lock-file entry: pinned key groups plus a preserved trailing
/// comment.
#[derive(Debug, Clone, Default)]
pub struct LockEntry {
    pub groups: Vec<Vec<String>>,
    pub comment: String,
}

/// The parsed `SNAPSHOT_SCHEMA.lock`.
#[derive(Debug, Clone, Default)]
pub struct Lock {
    /// Leading `#` comment lines, preserved verbatim across regeneration.
    pub header: Vec<String>,
    /// The checkpoint format version the schema was locked under.
    pub format: String,
    pub entries: BTreeMap<String, LockEntry>,
}

/// Parses the lock file. Format: a leading `#` comment block, one
/// `format = <version>` line, then sorted `path::Type = {a,b}{c}` lines
/// with optional trailing `# comment`.
pub fn parse_lock(text: &str) -> Result<Lock, String> {
    let mut lock = Lock::default();
    let mut saw_format = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') {
            if !saw_format && lock.entries.is_empty() {
                lock.header.push(raw.to_string());
            }
            continue;
        }
        let (body, comment) = match line.split_once(" #") {
            Some((b, c)) => (b.trim(), c.trim().to_string()),
            None => (line, String::new()),
        };
        let (key, value) = body
            .split_once('=')
            .ok_or_else(|| format!("schema lock line {lineno}: expected `name = value`"))?;
        let (key, value) = (key.trim(), value.trim());
        if key == "format" {
            if saw_format {
                return Err(format!("schema lock line {lineno}: duplicate `format` line"));
            }
            lock.format = value.to_string();
            saw_format = true;
            continue;
        }
        if !saw_format {
            return Err(format!(
                "schema lock line {lineno}: entries must come after the `format = …` line"
            ));
        }
        let groups = parse_groups(value)
            .map_err(|e| format!("schema lock line {lineno}: {e} in `{value}`"))?;
        if lock.entries.insert(key.to_string(), LockEntry { groups, comment }).is_some() {
            return Err(format!("schema lock line {lineno}: duplicate entry for {key}"));
        }
    }
    if !saw_format {
        return Err("schema lock: missing `format = <version>` line".to_string());
    }
    Ok(lock)
}

fn parse_groups(value: &str) -> Result<Vec<Vec<String>>, String> {
    let mut groups = Vec::new();
    let mut rest = value.trim();
    while !rest.is_empty() {
        let inner = rest.strip_prefix('{').ok_or("expected `{`")?;
        let (body, tail) = inner.split_once('}').ok_or("unclosed `{`")?;
        groups.push(body.split(',').map(|s| s.trim().to_string()).collect());
        rest = tail.trim_start();
    }
    if groups.is_empty() {
        return Err("empty group list".to_string());
    }
    Ok(groups)
}

fn render_groups(groups: &[Vec<String>]) -> String {
    groups.iter().map(|g| format!("{{{}}}", g.join(","))).collect()
}

const DEFAULT_HEADER: &str = "\
# zen2-lint snapshot-schema lock: the exact key names and order every
# `impl Snapshot` writes to checkpoint files, pinned against the
# checkpoint format version below. Changing a key set/order is a wire
# format change: bump MAGIC in crates/zen2-sim/src/checkpoint.rs, then
# regenerate this file with `cargo run -p zen2-lint -- schema`.";

/// Renders a lock file from an extraction, carrying over the header
/// block and per-entry comments of `prior`.
pub fn render_lock(ex: &Extraction, prior: Option<&Lock>) -> String {
    let mut out = String::new();
    match prior.filter(|p| !p.header.is_empty()) {
        Some(p) => {
            for l in &p.header {
                out.push_str(l);
                out.push('\n');
            }
        }
        None => {
            out.push_str(DEFAULT_HEADER);
            out.push('\n');
        }
    }
    out.push_str(&format!("format = {}\n", ex.format.as_deref().unwrap_or("UNKNOWN")));
    for (key, entry) in &ex.entries {
        out.push_str(&format!("{key} = {}", render_groups(&entry.groups)));
        if let Some(c) = prior.and_then(|p| p.entries.get(key)).filter(|e| !e.comment.is_empty()) {
            out.push_str(&format!("  # {}", c.comment));
        }
        out.push('\n');
    }
    out
}

/// The snapshot-schema rule: compares the tree's extracted schema with
/// the committed lock. Not inline-suppressible — the lock file is the
/// only ledger, and the escape hatch is a deliberate format-version
/// bump.
pub fn check(files: &[SourceFile], lock: Option<&Lock>) -> Vec<Finding> {
    let ex = extract(files);
    let mut out = Vec::new();
    let lock_finding = |line: usize, message: String| Finding {
        rule: SNAPSHOT_SCHEMA,
        rel: SCHEMA_LOCK_FILE.to_string(),
        line,
        message,
    };
    let Some(format) = &ex.format else {
        out.push(lock_finding(
            1,
            "cannot locate the checkpoint format version (`const MAGIC: &str = …`) anywhere in the tree — the schema lock has nothing to pin against".to_string(),
        ));
        return out;
    };
    let Some(lock) = lock else {
        out.push(lock_finding(
            1,
            format!(
                "{SCHEMA_LOCK_FILE} is missing — generate it with `cargo run -p zen2-lint -- schema` and commit it"
            ),
        ));
        return out;
    };
    if lock.format != *format {
        out.push(lock_finding(
            1,
            format!(
                "checkpoint format version is `{format}` but the lock was generated under `{}` — regenerate with `cargo run -p zen2-lint -- schema` and review the schema diff",
                lock.format
            ),
        ));
        return out;
    }
    for (key, entry) in &ex.entries {
        let rel = key.rsplit_once("::").map(|(r, _)| r).unwrap_or(key);
        match lock.entries.get(key) {
            None => out.push(Finding {
                rule: SNAPSHOT_SCHEMA,
                rel: rel.to_string(),
                line: entry.line,
                message: format!(
                    "new snapshot wire schema `{key}` is not in {SCHEMA_LOCK_FILE} — record it with `cargo run -p zen2-lint -- schema`"
                ),
            }),
            Some(locked) if locked.groups != entry.groups => out.push(Finding {
                rule: SNAPSHOT_SCHEMA,
                rel: rel.to_string(),
                line: entry.line,
                message: format!(
                    "snapshot wire schema of `{key}` drifted from the lock ({} locked vs {} now) without a checkpoint format-version bump — bump MAGIC in crates/zen2-sim/src/checkpoint.rs, then regenerate the lock",
                    render_groups(&locked.groups),
                    render_groups(&entry.groups)
                ),
            }),
            Some(_) => {}
        }
    }
    for key in lock.entries.keys() {
        if !ex.entries.contains_key(key) {
            out.push(lock_finding(
                1,
                format!(
                    "stale lock entry `{key}`: no such snapshot schema exists anymore — bump MAGIC in crates/zen2-sim/src/checkpoint.rs (removal is a wire-format change), then regenerate the lock"
                ),
            ));
        }
    }
    out
}

/// Why `schema` (regeneration) refuses to run: an existing entry
/// changed or vanished while the format version stayed put.
pub fn regeneration_blockers(ex: &Extraction, prior: &Lock) -> Vec<String> {
    let mut blockers = Vec::new();
    if ex.format.as_deref() != Some(prior.format.as_str()) {
        return blockers; // Version moved: everything may change.
    }
    for (key, locked) in &prior.entries {
        match ex.entries.get(key) {
            Some(e) if e.groups == locked.groups => {}
            Some(_) => blockers.push(format!("`{key}` changed")),
            None => blockers.push(format!("`{key}` was removed")),
        }
    }
    blockers
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
const MAGIC: &str = \"test-format v1\";
pub struct W;
impl Snapshot for W {
    fn snapshot(&self) -> Json {
        Json::obj([(\"count\", Json::u64(self.n)), (\"mean\", Json::f64(self.m))])
    }
}
impl W {
    fn aux(&self) -> Json {
        Json::obj([(\"rows\", Json::obj([(\"inner\", Json::Null)]))])
    }
}
";

    fn extraction() -> Extraction {
        extract(&[SourceFile::parse("crates/zen2-sim/src/w.rs", SRC)])
    }

    #[test]
    fn extracts_format_groups_and_nested_objects() {
        let ex = extraction();
        assert_eq!(ex.format.as_deref(), Some("test-format v1"));
        let e = &ex.entries["crates/zen2-sim/src/w.rs::W"];
        // Trait impl group, inherent outer group, nested inner group —
        // in source order; nested keys never leak into the outer group.
        let got: Vec<Vec<&str>> =
            e.groups.iter().map(|g| g.iter().map(String::as_str).collect()).collect();
        assert_eq!(got, vec![vec!["count", "mean"], vec!["rows"], vec!["inner"]]);
    }

    #[test]
    fn lock_round_trips_and_preserves_comments() {
        let ex = extraction();
        let first = render_lock(&ex, None);
        let mut lock = parse_lock(&first).expect("valid lock");
        lock.entries.get_mut("crates/zen2-sim/src/w.rs::W").unwrap().comment =
            "audited 2026-08".to_string();
        let second = render_lock(&ex, Some(&lock));
        assert!(second.contains("# audited 2026-08"), "{second}");
        let reparsed = parse_lock(&second).expect("still valid");
        assert_eq!(reparsed.format, "test-format v1");
        assert_eq!(
            reparsed.entries["crates/zen2-sim/src/w.rs::W"].groups,
            ex.entries["crates/zen2-sim/src/w.rs::W"].groups
        );
    }

    #[test]
    fn parse_rejects_malformed_locks() {
        assert!(parse_lock("a::B = {x}\n").is_err(), "entry before format");
        assert!(parse_lock("format = v1\na::B = x\n").is_err(), "groups without braces");
        assert!(parse_lock("format = v1\nformat = v2\n").is_err(), "duplicate format");
        assert!(parse_lock("").is_err(), "empty");
    }

    #[test]
    fn regeneration_refuses_silent_drift_but_allows_bumped() {
        let ex = extraction();
        let lock = parse_lock(&render_lock(&ex, None)).unwrap();
        assert!(regeneration_blockers(&ex, &lock).is_empty());

        let mut drifted = lock.clone();
        drifted.entries.get_mut("crates/zen2-sim/src/w.rs::W").unwrap().groups =
            vec![vec!["mean".to_string(), "count".to_string()]];
        assert_eq!(regeneration_blockers(&ex, &drifted).len(), 1);

        let mut bumped = drifted.clone();
        bumped.format = "test-format v0".to_string();
        assert!(regeneration_blockers(&ex, &bumped).is_empty(), "version bump unlocks");
    }
}
