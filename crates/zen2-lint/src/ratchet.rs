//! The committed panic-ratchet file (`zen2-lint.ratchet`).
//!
//! One entry per `zen2-sim` source file that still has `unwrap()` /
//! `expect()` calls in non-test code:
//!
//! ```text
//! crates/zen2-sim/src/foo.rs = 3  # why those panic sites are fine
//! ```
//!
//! The count is an exact pin, not just a ceiling: growth fails `check`,
//! and shrinkage fails too (with a message telling you to regenerate),
//! so the file on disk always matches reality and every entry carries a
//! current, human-written reason. `render` preserves reasons across
//! regeneration; new entries get a `TODO` reason, which `check` flags
//! until a human replaces it.

use std::collections::BTreeMap;

/// One pinned file: its exact count and the justification.
#[derive(Debug, Clone)]
pub struct Entry {
    pub count: usize,
    pub reason: String,
}

/// The parsed ratchet file, keyed by workspace-relative path.
#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: BTreeMap<String, Entry>,
}

impl Baseline {
    pub fn empty() -> Self {
        Self::default()
    }
}

/// Parses the ratchet file. Blank lines and `#`-leading comment lines
/// are skipped; anything else must be `path = count  # reason`.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut entries = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (body, reason) = match line.split_once('#') {
            Some((b, r)) => (b.trim(), r.trim().to_string()),
            None => (line, String::new()),
        };
        let (path, count) = body
            .split_once('=')
            .ok_or_else(|| format!("ratchet line {lineno}: expected `path = count  # reason`"))?;
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| format!("ratchet line {lineno}: count is not a number"))?;
        let path = path.trim().to_string();
        if entries.insert(path.clone(), Entry { count, reason }).is_some() {
            return Err(format!("ratchet line {lineno}: duplicate entry for {path}"));
        }
    }
    Ok(Baseline { entries })
}

/// Renders a fresh ratchet file from measured `counts` (path →
/// `(count, first_line)`), carrying over the reason of any entry that
/// already existed in `prior`.
pub fn render(counts: &BTreeMap<String, (usize, usize)>, prior: &Baseline) -> String {
    let mut out = String::from(
        "# zen2-lint panic-ratchet: exact per-file unwrap()/expect() counts in\n\
         # zen2-sim non-test code. `zen2-lint check` fails if a count moves in\n\
         # either direction; regenerate with `cargo run -p zen2-lint -- baseline`\n\
         # after deliberate changes. Every entry needs a `# reason`.\n",
    );
    for (path, (count, _)) in counts {
        let reason = prior
            .entries
            .get(path)
            .map(|e| e.reason.clone())
            .filter(|r| !r.trim().is_empty())
            .unwrap_or_else(|| "TODO: explain why these panic sites are acceptable".to_string());
        out.push_str(&format!("{path} = {count}  # {reason}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_preserves_reasons() {
        let prior = parse("crates/zen2-sim/src/a.rs = 2  # invariant X\n").unwrap();
        assert_eq!(prior.entries["crates/zen2-sim/src/a.rs"].count, 2);
        let mut counts = BTreeMap::new();
        counts.insert("crates/zen2-sim/src/a.rs".to_string(), (1, 10));
        counts.insert("crates/zen2-sim/src/b.rs".to_string(), (4, 3));
        let rendered = render(&counts, &prior);
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(reparsed.entries["crates/zen2-sim/src/a.rs"].reason, "invariant X");
        assert!(reparsed.entries["crates/zen2-sim/src/b.rs"].reason.starts_with("TODO"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("no equals sign").is_err());
        assert!(parse("a.rs = notanumber").is_err());
        assert!(parse("a.rs = 1\na.rs = 2").is_err());
    }
}
